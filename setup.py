"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can be installed in editable mode on machines whose setuptools/pip
combination cannot build PEP 660 editable wheels offline
(``python setup.py develop`` or ``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
