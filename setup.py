"""Setuptools packaging for the Chain-NN reproduction library.

The library itself needs only NumPy; the compiled kernel backend
(:mod:`repro.kernels`) is an optional extra::

    pip install -e .            # numpy reference kernels only
    pip install -e .[numba]     # + the JIT-compiled kernel backend

Every numba import in the library is guarded, so installations without the
extra run the bit-identical NumPy reference backend.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
_VERSION = re.search(r'__version__ = "([^"]+)"',
                     _INIT.read_text(encoding="utf-8")).group(1)

setup(
    name="repro-chain-nn",
    version=_VERSION,
    description=("Reproduction of Chain-NN (DATE 2017): an energy-efficient "
                 "1D chain architecture for accelerating deep convolutional "
                 "neural networks"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "numba": ["numba>=0.57"],
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": ["repro = repro.cli:main"],
    },
)
