"""Benchmark: regenerate Table V (comparison with the state-of-the-art works).

Paper claims: Chain-NN reaches 1421 GOPS/W, which is 2.5x-4.1x better than
DaDianNao (349.7 GOPS/W) and Eyeriss (570.1 GOPS/W once scaled to 28 nm),
and needs only 6.51k logic gates per PE against Eyeriss's 11.02k (1.7x area
efficiency).
"""

from __future__ import annotations

from repro.experiments.table5 import run_table5


def test_table5_state_of_the_art_comparison(benchmark):
    result = benchmark(run_table5)

    # Chain-NN wins the modelled energy-efficiency comparison
    assert result.chain_nn_wins_energy()

    # published ratios bracket the paper's 2.5x-4.1x claim
    low, high = result.published_ratio_range
    assert 2.3 < low < 2.7
    assert high > 4.0

    # the modelled (first-principles) ratios land in the same band
    low_m, high_m = result.modelled_ratio_range
    assert 2.2 < low_m < 2.9
    assert 3.7 < high_m < 4.5

    # area efficiency: ~1.7x fewer gates per PE than the 2D spatial baseline
    assert 1.5 < result.modelled_area_ratio < 1.9

    print()
    print(result.report())


def test_table5_throughput_column(benchmark):
    """Peak-throughput ordering of the comparison is preserved: DaDianNao's
    4608 MACs lead in raw GOPS, Chain-NN leads Eyeriss by ~10x."""
    result = benchmark(run_table5)
    rows = result.comparison.modelled_rows
    peaks = {name: row["Peak Throughput (GOPS)"] for name, row in rows.items()}
    chain = next(v for k, v in peaks.items() if "Chain-NN" in k)
    memory_centric = next(v for k, v in peaks.items() if "Memory-centric" in k)
    spatial = next(v for k, v in peaks.items() if "spatial" in k)
    assert memory_centric > chain > spatial
