"""Benchmark: Winograd F(2x2,3x3) execution mode vs the direct dataflow.

The acceptance bar for the Winograd PR: the transform-domain cost model
records **>= 1.8x modeled MAC reduction** on every eligible VGG-16 layer
(with the input/output transform overhead broken out per layer), and the
mapping search with the algorithm axis enabled (``auto``) is **never worse**
than the direct-only search on every zoo network for every objective — the
never-worse guarantee extended from schedules to algorithms.  The measured
numbers land in ``BENCH_winograd.json`` at the repo root; the "Winograd
execution" section of EXPERIMENTS.md is regenerated from that file.
"""

from __future__ import annotations

import time

import numpy as np

from _record import record_benchmark
from repro.analysis.winograd import (
    network_winograd_coverage,
    winograd_layer_summary,
)
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.reference import conv2d_im2col
from repro.cnn.zoo import NETWORKS, get_network
from repro.core.config import ChainConfig
from repro.mapping import OBJECTIVES, ScheduleOptimizer
from repro.sim.winograd import conv2d_winograd, winograd_tolerance

#: schedule granularity the searches optimise for
BATCH = 16

#: modeled MAC-reduction floor the acceptance criterion names
MAC_REDUCTION_FLOOR = 1.8


def _layer_summaries(network):
    """Transform-domain accounting for every eligible conv layer."""
    rows = []
    for layer in network.conv_layers:
        summary = winograd_layer_summary(layer)
        if summary["eligible"]:
            rows.append(summary)
    return rows


def test_winograd_model_and_algorithm_axis(benchmark):
    config = ChainConfig()
    payload = {"batch": BATCH, "strategy": "exhaustive", "networks": {}}

    # ------------------------------------------------------------------ #
    # modeled MAC reduction + transform overhead, per eligible layer
    # ------------------------------------------------------------------ #
    for name in ("alexnet", "vgg16"):
        network = get_network(name)
        summaries = _layer_summaries(network)
        coverage = network_winograd_coverage(network)
        payload["networks"][name] = {
            "winograd_mac_coverage": coverage["mac_coverage"],
            "eligible_layers": coverage["eligible_layers"],
            "layers": summaries,
        }
        if name == "vgg16":
            assert len(summaries) == 13
            for summary in summaries:
                # the acceptance bar: >= 1.8x modeled multiply reduction on
                # every eligible VGG-16 layer, ragged edge tiles included
                assert summary["mac_reduction"] >= MAC_REDUCTION_FLOOR, (
                    f"{summary['layer']}: mac_reduction "
                    f"{summary['mac_reduction']:.3f} below the "
                    f"{MAC_REDUCTION_FLOOR}x floor"
                )
                # the overhead breakout the record must carry
                assert summary["transform_overhead_cycles"] > 0
                assert 0.0 < summary["transform_overhead_fraction"] < 1.0
            payload["vgg16_min_mac_reduction"] = min(
                summary["mac_reduction"] for summary in summaries)

    # ------------------------------------------------------------------ #
    # never-worse: auto (algorithm axis) vs direct-only, all zoo networks,
    # all four objectives
    # ------------------------------------------------------------------ #
    search_seconds = 0.0
    for name in sorted(NETWORKS):
        network = get_network(name)
        modes = {}
        for objective in OBJECTIVES:
            values = {}
            for mode in ("direct", "auto"):
                optimizer = ScheduleOptimizer(
                    config=config, objective=objective,
                    strategy="exhaustive", batch=BATCH, algorithm=mode,
                )
                start = time.perf_counter()
                schedule = optimizer.optimize(network)
                search_seconds += time.perf_counter() - start
                values[mode] = schedule.objective_value()
                if mode == "auto":
                    winograd_layers = [
                        layer for layer, algorithm
                        in schedule.algorithms().items()
                        if algorithm == "winograd"
                    ]
            assert values["auto"] <= values["direct"] * (1 + 1e-12), (
                f"{name}/{objective}: auto {values['auto']} worse than "
                f"direct {values['direct']}"
            )
            modes[objective] = {
                "direct": values["direct"],
                "auto": values["auto"],
                "improvement_pct": (
                    (values["direct"] - values["auto"]) / values["direct"]
                    * 100.0 if values["direct"] else 0.0),
                "winograd_layers": winograd_layers,
            }
        payload["networks"].setdefault(name, {})["objectives"] = modes

    vgg_throughput = payload["networks"]["vgg16"]["objectives"]["throughput"]
    # on VGG-16 the axis must actually pay: every layer flips to Winograd
    # and the batch throughput improves
    assert len(vgg_throughput["winograd_layers"]) == 13
    assert vgg_throughput["auto"] < vgg_throughput["direct"]
    payload["vgg16_throughput_cycle_speedup"] = (
        vgg_throughput["direct"] / vgg_throughput["auto"])
    payload["search_seconds"] = search_seconds

    # ------------------------------------------------------------------ #
    # functional fast path: transform-domain wall time vs the im2col golden
    # on the largest eligible AlexNet layer, correctness included
    # ------------------------------------------------------------------ #
    layer = next(l for l in get_network("alexnet").conv_layers
                 if l.name == "conv3")
    ifmaps, weights = WorkloadGenerator(seed=2017).layer_pair(layer)
    start = time.perf_counter()
    reference = conv2d_im2col(layer, ifmaps, weights)
    im2col_s = time.perf_counter() - start
    start = time.perf_counter()
    result = conv2d_winograd(layer, ifmaps, weights)
    winograd_s = time.perf_counter() - start
    error = float(np.max(np.abs(reference - result)))
    assert error <= winograd_tolerance(reference)
    payload["functional"] = {
        "layer": layer.name,
        "im2col_s": im2col_s,
        "winograd_s": winograd_s,
        "max_abs_error": error,
        "tolerance": winograd_tolerance(reference),
    }

    record_benchmark("winograd", payload)

    vgg16 = get_network("vgg16")

    def one_auto_search():
        return ScheduleOptimizer(config=config, objective="throughput",
                                 strategy="exhaustive", batch=BATCH,
                                 algorithm="auto").optimize(vgg16)

    benchmark.pedantic(one_auto_search, rounds=3, iterations=1)
