"""Benchmark: vectorized cycle-engine fast path vs the scalar reference.

The acceptance bar for the unified-engine PR: the NumPy fast path must
produce bit-identical ofmaps and identical ``CycleSimStats`` counters while
running a conv layer at least 10x faster than the register-accurate scalar
path — and it must handle full AlexNet-scale layers, which the scalar engine
cannot touch in reasonable time.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _record import record_benchmark
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.cnn.zoo import alexnet
from repro.core.config import ChainConfig
from repro.sim.cycle import CycleAccurateChainSimulator


@pytest.fixture(scope="module")
def layer():
    """A conv layer big enough for the scalar engine to feel (~1 s)."""
    return ConvLayer("bench-fast", in_channels=2, out_channels=4, in_height=24,
                     in_width=24, kernel_size=3, padding=1)


@pytest.fixture(scope="module")
def tensors(layer):
    return WorkloadGenerator(seed=11).layer_pair(layer)


def test_vectorized_at_least_10x_faster_and_bit_identical(benchmark, layer, tensors):
    ifmaps, weights = tensors
    config = ChainConfig()
    scalar_sim = CycleAccurateChainSimulator(config, backend="scalar")
    fast_sim = CycleAccurateChainSimulator(config, backend="vectorized")

    # both timed WITHOUT the reference cross-check so the speedup compares
    # equal work; correctness is asserted separately below
    start = time.perf_counter()
    scalar_result = scalar_sim.run_layer(layer, ifmaps, weights,
                                         check_against_reference=False)
    scalar_seconds = time.perf_counter() - start

    fast_seconds = min(
        _timed(fast_sim, layer, ifmaps, weights) for _ in range(3)
    )
    fast_result = benchmark(fast_sim.run_layer, layer, ifmaps, weights)

    # bit-identical outputs, identical counters
    assert np.array_equal(scalar_result.ofmaps, fast_result.ofmaps)
    assert scalar_result.stats == fast_result.stats

    # measured ~200x locally; the hard 10x bar applies in timing mode, while
    # the CI functional smoke pass (--benchmark-disable, shared runners) only
    # requires the fast path to actually be faster
    speedup = scalar_seconds / fast_seconds
    record_benchmark("cycle", {
        "layer": layer.name,
        "scalar_seconds": scalar_seconds,
        "vectorized_seconds": fast_seconds,
        "vectorized_ns_per_mac": 1e9 * fast_seconds / fast_result.stats.macs,
        "speedup_vs_scalar": speedup,
    })
    floor = 2.0 if benchmark.disabled else 10.0
    assert speedup >= floor, (
        f"vectorized path only {speedup:.1f}x faster "
        f"({scalar_seconds:.3f}s scalar vs {fast_seconds:.4f}s vectorized)"
    )


def _timed(simulator, layer, ifmaps, weights) -> float:
    start = time.perf_counter()
    simulator.run_layer(layer, ifmaps, weights, check_against_reference=False)
    return time.perf_counter() - start


def test_alexnet_conv_layers_cycle_verifiable(benchmark):
    """Every AlexNet conv layer now cycle-verifies against the reference."""
    network = alexnet()
    generator = WorkloadGenerator(seed=12)
    workloads = [(layer, *generator.layer_pair(layer)) for layer in network.conv_layers]
    simulator = CycleAccurateChainSimulator()

    def verify_all():
        errors = {}
        for layer, ifmaps, weights in workloads:
            result = simulator.run_layer(layer, ifmaps, weights)
            errors[layer.name] = result.reference_max_abs_error
        return errors

    errors = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    assert set(errors) == {"conv1", "conv2", "conv3", "conv4", "conv5"}
    assert all(error < 1e-9 for error in errors.values())
