"""Benchmark: regenerate Table IV (memory-communication breakdown, batch 4).

Paper claims: the column-wise scan and stationary kernels push almost all
traffic into cheap, short-distance accesses — oMemory dominates (755 MB per
4-image batch), kMemory is next (117 MB), while iMemory (26 MB) and DRAM
(24.5 MB) stay small.
"""

from __future__ import annotations

from repro.experiments.table4 import PAPER_TABLE4, run_table4


def test_table4_memory_breakdown(benchmark):
    result = benchmark(run_table4)

    # oMemory column reproduces exactly (same accumulation dataflow)
    assert result.omemory_max_deviation() < 0.01

    # ordering: oMemory >> kMemory > iMemory, DRAM filtered by the hierarchy
    assert result.ordering_preserved()
    totals = result.measured["Total"]
    assert totals["oMemory"] > 5 * totals["kMemory"]
    assert totals["DRAM"] < totals["oMemory"] / 10

    # kMemory and the stride-1 iMemory rows stay within ~15-20 %
    for layer in ("conv3", "conv4", "conv5"):
        assert abs(result.measured[layer]["kMemory"] / PAPER_TABLE4[layer]["kMemory"] - 1) < 0.1
        assert abs(result.measured[layer]["iMemory"] / PAPER_TABLE4[layer]["iMemory"] - 1) < 0.15

    print()
    print(result.report())


def test_table4_reuse_argument(benchmark, paper_config, alexnet_network):
    """Sec. V.C's reuse claim: each stationary weight serves K*E MACs between
    kMemory reads, and each streamed ifmap pixel serves ~K^2 MACs."""
    from repro.memory.traffic import TrafficModel

    model = TrafficModel(paper_config)
    conv3 = alexnet_network.conv_layer("conv3")

    summary = benchmark(model.reuse_summary, conv3)
    assert summary["weight_macs_per_kmemory_read"] > 30       # ~ K * E = 39
    assert summary["ifmap_macs_per_imemory_read"] > 100       # K^2 x Tm sharing
    assert summary["macs_per_omemory_access"] > 4             # K^2 / 2 accesses
