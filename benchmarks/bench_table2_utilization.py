"""Benchmark: regenerate Table II (active PEs of a 576-PE systolic chain).

Paper claim: 84-100 % of the 576 PEs stay active for every mainstream kernel
size (3x3 ... 11x11), with the 11x11 case being the 84 % floor.
"""

from __future__ import annotations

from repro.experiments.table2 import PAPER_TABLE2, run_table2


def test_table2_utilization(benchmark):
    result = benchmark(run_table2, 576)

    # exact reproduction of the active-PE column
    assert result.max_active_pe_mismatch() == 0
    for kernel, row in PAPER_TABLE2.items():
        assert result.measured[kernel]["active_primitives"] == row["active_primitives"]

    # the 84 % worst case (11x11 kernels)
    assert abs(result.minimum_efficiency_pct - 84.0) < 0.1

    print()
    print(result.report())


def test_table2_scales_to_other_chain_lengths(benchmark):
    """The same machinery answers the chain-length design question instantly."""
    result = benchmark(run_table2, 1152)
    assert result.minimum_efficiency_pct >= 84.0
