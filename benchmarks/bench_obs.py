"""Benchmark: overhead and fidelity of the observability layer (repro.obs).

The acceptance bars for the observability PR:

* **disabled tracing costs <=1%** — the span/counter calls stay in the hot
  paths permanently, so the budget is estimated as *measured per-op
  disabled cost x ops the workload actually performs*, over the workload's
  wall time (the instrumentation cannot be compiled out, and subtracting
  two noisy end-to-end timings of a ~0.1% effect measures only noise);
* **enabled tracing costs <=5%** — full recording on, same workload,
  best-of-N min-time comparison (floor asserted in timing mode, recorded
  honestly in the smoke pass);
* **tracing observes, never perturbs** — sweep metrics and the searched
  schedule are bit-identical with tracing on vs off, serial *and* through
  a real 2-worker supervised pool (always asserted), and the merged
  parallel trace passes structural validation.

Records ``BENCH_obs.json`` (per-op costs, op counts, overhead percentages,
trace sizes) at the repo root; the "Observability" section of
EXPERIMENTS.md is regenerated from that file.

Pools are constructed directly (not through ``LazyRuntime``) so the
parallel identity check exercises real worker processes even on
single-core runners where the lazy path would degrade to serial.
"""

from __future__ import annotations

import os
import tempfile
import time

from _record import record_benchmark
from repro.cnn.zoo import get_network
from repro.core.config import ChainConfig
from repro.engine import workload_fingerprint
from repro.engine.cache import canonical_json
from repro.engine.executor import SweepExecutor
from repro.mapping import ScheduleOptimizer
from repro.obs import trace as obs_trace
from repro.obs.export import export_trace, validate_chrome_trace
from repro.obs.metrics import REGISTRY
from repro.runtime import FaultPlan, RetryPolicy, SupervisedRuntime

#: worker processes for the parallel identity leg
WORKERS = 2

#: timing repetitions per configuration (best-of suppresses runner noise)
ROUNDS = 3

#: repetitions for the per-op disabled-cost microbenchmarks
NOOP_OPS = 200_000

#: the sweep half of the workload (same grid as the faults benchmark)
SWEEP_PES = range(128, 1153, 16)


def _workload(network):
    """One sweep + one mapping search; returns the comparable outputs."""
    configs = [ChainConfig(num_pes=pes) for pes in SWEEP_PES]
    with SweepExecutor(engine="analytical", network=network,
                       batch=16) as executor:
        records = executor.run(configs, parallel=False)
    schedule = ScheduleOptimizer(objective="throughput", strategy="greedy",
                                 batch=16).optimize(network)
    return [r.metrics for r in records], schedule.to_json_dict()


def _best_of(fn):
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _disabled_op_costs():
    """Measured per-call cost of the two disabled-path operations."""
    assert not obs_trace.enabled()
    started = time.perf_counter()
    for _ in range(NOOP_OPS):
        with obs_trace.span("bench.noop"):
            pass
    span_s = (time.perf_counter() - started) / NOOP_OPS
    count = REGISTRY.counter("bench.noop")
    started = time.perf_counter()
    for _ in range(NOOP_OPS):
        count.inc()
    counter_s = (time.perf_counter() - started) / NOOP_OPS
    count.value = 0
    return span_s, counter_s


def _counter_total():
    return sum(REGISTRY.snapshot()["counters"].values())


def test_observability_overhead_and_identity(benchmark):
    network = get_network("alexnet")

    # -- untraced baseline (metrics on — that is the permanent default) ----
    obs_trace.disable()
    base_seconds, (base_metrics, base_schedule) = _best_of(
        lambda: _workload(network))
    span_op_s, counter_op_s = _disabled_op_costs()

    # -- traced run: wall-clock overhead + op counts + bit-identity --------
    recorder = obs_trace.enable(env=False)
    counters_before = _counter_total()
    try:
        traced_seconds, (traced_metrics, traced_schedule) = _best_of(
            lambda: _workload(network))
        span_events = len(recorder.events)
        metric_increments = (_counter_total() - counters_before) // ROUNDS
    finally:
        obs_trace.disable()
    assert traced_metrics == base_metrics
    assert traced_schedule == base_schedule
    enabled_overhead_pct = (traced_seconds / base_seconds - 1.0) * 100.0
    # span() no-ops and counter adds the workload would execute untraced,
    # priced at their measured per-op costs (three rounds buffered spans)
    disabled_cost_s = (span_events / ROUNDS) * span_op_s \
        + metric_increments * counter_op_s
    disabled_overhead_pct = disabled_cost_s / base_seconds * 100.0

    # -- parallel identity through a real supervised pool ------------------
    fingerprint = canonical_json(workload_fingerprint(network))
    payloads = [
        {"engine": "analytical", "engine_kwargs": {},
         "network_fingerprint": fingerprint, "config": config, "batch": 16}
        for config in (ChainConfig(num_pes=pes) for pes in SWEEP_PES)
    ]

    def _pool_map():
        pool = SupervisedRuntime.create(WORKERS, fault_plan=FaultPlan.none())
        if pool is None:
            return None
        pool.policy = RetryPolicy(backoff=0.01)
        try:
            pool.broadcast("sweep.set_network",
                           {"fingerprint": fingerprint, "network": network})
            return pool.map("sweep.point", payloads)
        finally:
            pool.close()

    untraced_parallel = _pool_map()
    pools_available = untraced_parallel is not None
    merged_trace = None
    if pools_available:
        assert [r.metrics for r in untraced_parallel] == base_metrics
        obs_trace.enable()  # env export: the pool workers must self-enable
        try:
            traced_parallel = _pool_map()
            assert [r.metrics for r in traced_parallel] == base_metrics
            with tempfile.TemporaryDirectory() as tmp:
                path = os.path.join(tmp, "trace.json")
                export_trace(path)
                merged_trace = validate_chrome_trace(path)
            assert merged_trace["processes"] >= WORKERS
        finally:
            obs_trace.disable()

    record_benchmark("obs", {
        "workers": WORKERS if pools_available else 0,
        "pools_available": pools_available,
        "sweep_points": len(payloads),
        "base_seconds": base_seconds,
        "traced_seconds": traced_seconds,
        "enabled_overhead_pct": enabled_overhead_pct,
        "disabled_span_ns": span_op_s * 1e9,
        "disabled_counter_inc_ns": counter_op_s * 1e9,
        "span_events_per_run": span_events // ROUNDS,
        "metric_increments_per_run": metric_increments,
        "disabled_overhead_pct": disabled_overhead_pct,
        "merged_trace_spans": (merged_trace or {}).get("spans", 0),
        "merged_trace_processes": (merged_trace or {}).get("processes", 0),
        "bit_identical_serial": True,
        "bit_identical_parallel": pools_available,
    })

    def traced_workload():
        obs_trace.enable(env=False)
        try:
            return _workload(network)
        finally:
            obs_trace.disable()

    metrics, schedule = benchmark.pedantic(traced_workload, rounds=1,
                                           iterations=1)
    assert metrics == base_metrics and schedule == base_schedule

    # the budgets only bind in timing mode: the smoke pass runs single
    # repetitions on shared runners where scheduler noise exceeds them
    if not benchmark.disabled:
        assert disabled_overhead_pct <= 1.0, (
            f"disabled instrumentation costs {disabled_overhead_pct:.3f}% "
            f"of the workload (budget 1%)")
        assert enabled_overhead_pct <= 5.0, (
            f"enabled tracing overhead {enabled_overhead_pct:.1f}% exceeds "
            f"the 5% budget ({traced_seconds:.3f}s traced vs "
            f"{base_seconds:.3f}s base)")
