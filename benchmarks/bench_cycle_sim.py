"""Benchmark: cycle-accurate simulation of the chain (the ModelSim-check path).

Not a paper artifact by itself, but the mechanism the paper's verification
methodology relies on: the register-accurate simulator must (a) agree exactly
with the software reference on the quantised operands, and (b) agree with the
analytical cycle model that generates Fig. 9.
"""

from __future__ import annotations

import pytest

from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.core.config import ChainConfig
from repro.core.performance import PerformanceModel
from repro.sim.cycle import CycleAccurateChainSimulator
from repro.sim.functional import FunctionalChainSimulator


@pytest.fixture(scope="module")
def layer():
    return ConvLayer("bench", in_channels=2, out_channels=4, in_height=12, in_width=12,
                     kernel_size=3, padding=1)


@pytest.fixture(scope="module")
def tensors(layer):
    return WorkloadGenerator(seed=1).layer_pair(layer)


def test_cycle_accurate_layer_simulation(benchmark, layer, tensors):
    simulator = CycleAccurateChainSimulator(ChainConfig())
    ifmaps, weights = tensors

    result = benchmark(simulator.run_layer, layer, ifmaps, weights)

    # exact functional agreement with the reference on quantised operands
    assert result.reference_max_abs_error < 1e-9
    # cycle count agrees with the detailed analytical model
    detailed = PerformanceModel(ChainConfig(), mode="detailed")
    predicted = detailed.pair_cycles(layer) * layer.channel_pairs()
    assert result.stats.primitive_cycles == pytest.approx(predicted, rel=0.15)


def test_functional_simulator_throughput(benchmark, tensors):
    """The dataflow-level simulator handles a conv2-like geometry quickly."""
    layer = ConvLayer("func", in_channels=8, out_channels=8, in_height=27, in_width=27,
                      kernel_size=5, padding=2)
    generator = WorkloadGenerator(seed=2)
    ifmaps, weights = generator.layer_pair(layer)
    simulator = FunctionalChainSimulator(ChainConfig())

    result = benchmark(simulator.run_layer, layer, ifmaps, weights)
    assert result.stats.pairs_processed == 64
    assert result.max_abs_error_vs_reference(ifmaps, weights) < 1e-9
