"""Machine-readable benchmark trajectory: ``BENCH_<name>.json`` at repo root.

Benchmarks call :func:`record_benchmark` with a flat payload of measured
numbers (ns/point, points/s, speedups); the helper stamps a small schema
header and writes ``BENCH_<name>.json`` next to ``ROADMAP.md`` so future PRs
— and the CI artifact upload — can track performance regressions across the
repo's history without parsing pytest output.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Dict, Optional

#: repo root (this file lives in benchmarks/)
REPO_ROOT = Path(__file__).resolve().parent.parent

SCHEMA = "repro-bench/1"


def peak_rss_mb() -> Optional[float]:
    """Peak resident-set size of this process in MB (``None`` off-POSIX).

    ``ru_maxrss`` is the lifetime high-water mark, which is exactly the
    number a memory regression in any earlier benchmark phase would move;
    Linux reports it in KiB, macOS in bytes.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    scale = 1024.0 if platform.system() != "Darwin" else 1024.0 * 1024.0
    return peak / scale


def record_benchmark(name: str, payload: Dict[str, Any]) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root; returns the path.

    ``payload`` must be JSON-serialisable; the helper adds the schema tag,
    the Python/platform fingerprint and the process's peak RSS so absolute
    numbers (and memory regressions) can be judged in context when machines
    differ between runs.
    """
    if not name or any(char in name for char in "/\\"):
        raise ValueError(f"benchmark name must be a plain identifier, got {name!r}")
    document = {
        "schema": SCHEMA,
        "name": name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "peak_rss_mb": peak_rss_mb(),
        **payload,
    }
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
