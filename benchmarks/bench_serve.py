"""Benchmark: evaluation-service throughput and the sqlite cache index.

The acceptance bars for the evaluation-as-a-service PR:

* **coalescing pays >=5x** — a 10k-point mixed-client workload (32
  concurrent clients, request sizes 1..64 points) through the coalescing
  window must deliver at least 5x the points/s of the same server fed
  sequential single-point requests (floor asserted in timing mode,
  recorded honestly in the smoke pass);
* **the index beats the file scan** — on a 10k-record cache, an indexed
  hit lookup must be faster than locating the same record by directory
  scan, and ``quick_stats()`` (one sqlite aggregate) must beat the
  ``stats()`` walk of the unindexed cache (asserted in timing mode).

Records ``BENCH_serve.json`` (points/s both legs, speedup, batch shape,
queue-wait p50/p99 from the coalescer's raw samples, lookup and stats
latencies) at the repo root; the "Evaluation service throughput" section
of EXPERIMENTS.md is regenerated from that file.

Both serve legs run server and clients in one process on one event loop
— the same interpreter the engines run in — so the comparison isolates
coalescing, not network stacks.  The smoke pass scales the workload down
but exercises every path.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from _record import record_benchmark
from repro.engine.base import RunRecord
from repro.engine.cache import RunCache
from repro.obs.metrics import REGISTRY
from repro.serve.client import request_json
from repro.serve.server import EvalServer

#: concurrent clients in the coalesced leg (matches the CI smoke step)
CLIENTS = 32

#: mixed request sizes the clients cycle through (points per request)
REQUEST_SIZES = (1, 2, 4, 8, 16, 32, 64)

#: coalescing window — the server default
WINDOW_MS = 4.0

#: total design points per leg: timing mode / smoke pass
POINTS, SMOKE_POINTS = 10_000, 1_500

#: sequential single-point requests to time (points/s extrapolates)
SEQUENTIAL_REQUESTS, SMOKE_SEQUENTIAL = 300, 40

#: cache records for the index-vs-scan comparison: timing / smoke
INDEX_RECORDS, SMOKE_INDEX_RECORDS = 10_000, 2_000

#: sampled hit lookups (indexed is cheap; the O(n) scan uses fewer)
LOOKUP_SAMPLES, SCAN_SAMPLES = 256, 16


def _grid_spec(j: int, k: int) -> str:
    """A ``k``-point AlexNet-legal PE grid, varied by request index."""
    start = 128 + (j % 128) * 8  # >=121 PEs: AlexNet's largest kernel
    return f"pe={start}:{start + (k - 1) * 8}:8"


def _mixed_sizes(total_points: int) -> List[int]:
    sizes: List[int] = []
    while sum(sizes) < total_points:
        sizes.append(REQUEST_SIZES[len(sizes) % len(REQUEST_SIZES)])
    sizes[-1] -= sum(sizes) - total_points
    return [k for k in sizes if k > 0]


async def _sweep(port: int, spec: str) -> None:
    status, _ = await request_json("127.0.0.1", port, "/v1/sweep",
                                   {"grid": spec, "top": 1})
    assert status == 200, f"sweep {spec} failed with {status}"


def _percentile(samples: Sequence[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(int(q * len(ordered)), len(ordered) - 1)]


async def _serve_legs(total_points: int,
                      sequential_requests: int) -> Dict[str, float]:
    server = await EvalServer(port=0, window_ms=WINDOW_MS).start()
    try:
        await _sweep(server.port, _grid_spec(0, 2))  # warm the engine/context

        started = time.perf_counter()
        for j in range(sequential_requests):
            await _sweep(server.port, _grid_spec(j, 1))
        sequential_s = time.perf_counter() - started

        sizes = _mixed_sizes(total_points)
        requests = [(j, k) for j, k in enumerate(sizes)]
        shards = [requests[c::CLIENTS] for c in range(CLIENTS)]
        before = REGISTRY.flat()
        wait_skip = len(server.coalescer.queue_waits)

        async def client(shard: List[Tuple[int, int]]) -> None:
            for j, k in shard:
                await _sweep(server.port, _grid_spec(j, k))

        started = time.perf_counter()
        await asyncio.gather(*(client(shard) for shard in shards if shard))
        coalesced_s = time.perf_counter() - started

        after = REGISTRY.flat()
        batches = after["serve.coalesced_batches"] \
            - before.get("serve.coalesced_batches", 0)
        waits = list(server.coalescer.queue_waits)[wait_skip:]
    finally:
        await server.stop()

    sequential_pps = sequential_requests / sequential_s
    coalesced_pps = total_points / coalesced_s
    return {
        "points": total_points,
        "requests": len(sizes),
        "clients": CLIENTS,
        "window_ms": WINDOW_MS,
        "sequential_requests": sequential_requests,
        "sequential_points_per_s": sequential_pps,
        "coalesced_points_per_s": coalesced_pps,
        "coalesce_speedup": coalesced_pps / sequential_pps,
        "coalesced_batches": batches,
        "mean_points_per_batch": total_points / max(batches, 1),
        "queue_wait_p50_ms": _percentile(waits, 0.50) * 1e3,
        "queue_wait_p99_ms": _percentile(waits, 0.99) * 1e3,
    }


# --------------------------------------------------------------------- #
# cache index vs file scan
# --------------------------------------------------------------------- #
def _index_record(i: int) -> RunRecord:
    return RunRecord(engine="bench-serve", network="alexnet", batch=16,
                     config_summary=f"record {i}",
                     metrics={"fps": float(i)},
                     extra={"payload": "x" * 64})


def _scan_lookup(root: Path, key: str) -> None:
    """The pre-index hit path: walk the directory to find one record."""
    name = f"{key}.json"
    for path in root.glob("*.json"):
        if path.name == name:
            path.stat()
            return
    raise AssertionError(f"{key} not on disk")


def _index_leg(root: Path, records: int) -> Dict[str, float]:
    cache = RunCache(root)
    assert cache.index is not None and cache.index.available
    for i in range(records):
        cache.put(f"rec{i:06d}", _index_record(i))

    stride = max(records // LOOKUP_SAMPLES, 1)
    keys = [f"rec{i:06d}" for i in range(0, records, stride)]
    started = time.perf_counter()
    for key in keys:
        assert cache.index.lookup(key) is not None
    index_lookup_us = (time.perf_counter() - started) / len(keys) * 1e6

    started = time.perf_counter()
    for key in keys[:SCAN_SAMPLES]:
        _scan_lookup(root, key)
    scan_lookup_us = (time.perf_counter() - started) / SCAN_SAMPLES * 1e6

    started = time.perf_counter()
    quick = cache.quick_stats()
    quick_stats_ms = (time.perf_counter() - started) * 1e3
    assert quick["indexed"] and quick["entries"] == records

    unindexed = RunCache(root, use_index=False)
    started = time.perf_counter()
    walked = unindexed.stats()
    stats_scan_ms = (time.perf_counter() - started) * 1e3
    assert walked["entries"] == records

    return {
        "index_records": records,
        "index_lookup_us": index_lookup_us,
        "scan_lookup_us": scan_lookup_us,
        "lookup_speedup": scan_lookup_us / index_lookup_us,
        "quick_stats_ms": quick_stats_ms,
        "stats_scan_ms": stats_scan_ms,
    }


def test_serve_throughput_and_cache_index(benchmark, tmp_path):
    smoke = benchmark.disabled
    serve_stats = benchmark.pedantic(
        lambda: asyncio.run(_serve_legs(
            SMOKE_POINTS if smoke else POINTS,
            SMOKE_SEQUENTIAL if smoke else SEQUENTIAL_REQUESTS)),
        rounds=1, iterations=1)
    index_stats = _index_leg(
        tmp_path, SMOKE_INDEX_RECORDS if smoke else INDEX_RECORDS)

    record_benchmark("serve", {**serve_stats, **index_stats})

    assert serve_stats["coalesced_batches"] > 0, "nothing coalesced"
    # the floors only bind in timing mode: the smoke pass runs a scaled
    # workload on shared runners where scheduler noise dominates
    if not smoke:
        assert serve_stats["coalesce_speedup"] >= 5.0, (
            f"coalesced leg delivers {serve_stats['coalesced_points_per_s']:.0f}"
            f" points/s, only {serve_stats['coalesce_speedup']:.1f}x the "
            f"sequential {serve_stats['sequential_points_per_s']:.0f} (floor 5x)")
        assert index_stats["index_lookup_us"] < index_stats["scan_lookup_us"], (
            f"indexed hit lookup ({index_stats['index_lookup_us']:.0f}us) "
            f"lost to the file scan ({index_stats['scan_lookup_us']:.0f}us)")
        assert index_stats["quick_stats_ms"] < index_stats["stats_scan_ms"], (
            f"quick_stats ({index_stats['quick_stats_ms']:.1f}ms) lost to "
            f"the stats walk ({index_stats['stats_scan_ms']:.1f}ms)")
