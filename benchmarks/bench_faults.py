"""Benchmark: fault-tolerant supervision of the parallel runtime.

The acceptance bars for the fault-tolerance PR:

* **supervision is near-free when nothing fails** — the supervised pool's
  no-fault sweep must stay within 5% of the unsupervised base pool (the
  floor is asserted in timing mode, where best-of-N repetition suppresses
  shared-runner noise; the smoke pass records the measured ratio honestly);
* **recovery is bounded and fast** — under the seeded 20% crash plan the
  same sweep must complete with results bit-identical to serial, and the
  per-death recovery latency (extra wall-clock per worker death, dominated
  by the respawn backoff + context replay) is recorded so regressions in
  the recovery path show up in the trajectory.

Records ``BENCH_faults.json`` (supervision overhead, chaos recovery
latency, death/respawn counts, worker count) at the repo root; the "Fault
tolerance" section of EXPERIMENTS.md is regenerated from that file.

Pools are constructed directly (not through ``LazyRuntime``) so the
benchmark exercises real worker processes even on single-core runners
where the lazy path would degrade to serial.
"""

from __future__ import annotations

import time

from _record import record_benchmark
from repro.cnn.zoo import get_network
from repro.core.config import ChainConfig
from repro.engine import create_engine, workload_fingerprint
from repro.engine.cache import canonical_json
from repro.runtime import FaultPlan, ParallelRuntime, RetryPolicy, SupervisedRuntime

#: worker processes the pools run (modest: the tasks are analytical closed
#: forms, so the benchmark measures dispatch/supervision, not compute)
WORKERS = 2

#: the seeded chaos plan of the acceptance criterion
CHAOS_SPEC = "crash:p=0.2,seed=7,attempts=1"

#: timing repetitions per pool (best-of suppresses runner noise)
ROUNDS = 3


def _payloads(network, fingerprint, configs):
    return [
        {
            "engine": "analytical",
            "engine_kwargs": {},
            "network_fingerprint": fingerprint,
            "config": config,
            "batch": 16,
        }
        for config in configs
    ]


def _timed_map(pool, network, fingerprint, payloads):
    """Broadcast the network once, then best-of-ROUNDS timed maps."""
    pool.broadcast("sweep.set_network",
                   {"fingerprint": fingerprint, "network": network})
    best = float("inf")
    results = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        results = pool.map("sweep.point", payloads)
        best = min(best, time.perf_counter() - started)
    return best, results


def test_supervision_overhead_and_recovery_latency(benchmark):
    network = get_network("alexnet")
    fingerprint = canonical_json(workload_fingerprint(network))
    configs = [ChainConfig(num_pes=pes) for pes in range(128, 1153, 16)]
    payloads = _payloads(network, fingerprint, configs)

    engine = create_engine("analytical")
    serial_metrics = [engine.evaluate(network, c, 16).metrics for c in configs]

    base_pool = ParallelRuntime.create(WORKERS, fault_plan=FaultPlan.none())
    if base_pool is None:
        record_benchmark("faults", {
            "workers": 0,
            "points": len(configs),
            "pools_available": False,
        })
        return
    try:
        base_seconds, base_results = _timed_map(
            base_pool, network, fingerprint, payloads)
    finally:
        base_pool.close()
    assert [r.metrics for r in base_results] == serial_metrics

    supervised = SupervisedRuntime.create(WORKERS, fault_plan=FaultPlan.none())
    supervised.policy = RetryPolicy(backoff=0.01)
    try:
        clean_seconds, clean_results = _timed_map(
            supervised, network, fingerprint, payloads)
        clean_stats = supervised.stats.as_dict()
    finally:
        supervised.close()
    assert [r.metrics for r in clean_results] == serial_metrics
    assert clean_stats["worker_deaths"] == 0  # no-fault path really is no-fault
    overhead_pct = (clean_seconds / base_seconds - 1.0) * 100.0

    chaotic = SupervisedRuntime.create(WORKERS, fault_plan=CHAOS_SPEC)
    chaotic.policy = RetryPolicy(backoff=0.01)
    try:
        chaotic.broadcast("sweep.set_network",
                          {"fingerprint": fingerprint, "network": network})
        started = time.perf_counter()
        chaos_results = chaotic.map("sweep.point", payloads)
        chaos_seconds = time.perf_counter() - started
        chaos_stats = chaotic.stats.as_dict()
    finally:
        chaotic.close()
    # the acceptance criterion: bit-identical to serial under 20% crashes
    assert [r.metrics for r in chaos_results] == serial_metrics
    deaths = chaos_stats["worker_deaths"]
    recovery_latency = (max(0.0, chaos_seconds - clean_seconds)
                        / max(1, deaths))

    record_benchmark("faults", {
        "workers": WORKERS,
        "points": len(configs),
        "pools_available": True,
        "fault_spec": CHAOS_SPEC,
        "base_pool_seconds": base_seconds,
        "supervised_seconds": clean_seconds,
        "supervision_overhead_pct": overhead_pct,
        "chaos_seconds": chaos_seconds,
        "chaos_worker_deaths": deaths,
        "chaos_respawns": chaos_stats["respawns"],
        "chaos_retries": chaos_stats["retries"],
        "recovery_latency_seconds_per_death": recovery_latency,
        "bit_identical": True,
    })

    def supervised_clean_map():
        pool = SupervisedRuntime.create(WORKERS, fault_plan=FaultPlan.none())
        pool.policy = RetryPolicy(backoff=0.01)
        try:
            return _timed_map(pool, network, fingerprint, payloads)[1]
        finally:
            pool.close()

    results = benchmark.pedantic(supervised_clean_map, rounds=1, iterations=1)
    assert [r.metrics for r in results] == serial_metrics

    # the <=5% floor only binds in timing mode: the smoke pass runs single
    # repetitions on shared runners where scheduler noise exceeds the margin
    if not benchmark.disabled:
        assert overhead_pct <= 5.0, (
            f"supervision overhead {overhead_pct:.1f}% exceeds the 5% budget "
            f"({clean_seconds:.3f}s supervised vs {base_seconds:.3f}s base)"
        )
