"""Benchmark: columnar batch sweep vs the scalar per-point explorer.

The acceptance bar for the columnar design-space PR: on a >= 10k-point grid
the struct-of-arrays path of ``analytical-batch`` must deliver at least 100x
the points/s of the scalar per-point analytical path while staying
numerically identical (the identity is asserted exhaustively in
``tests/test_batch_sweep.py``; here a spot check guards the benchmark
itself).  Measured numbers land in ``BENCH_sweep.json`` at the repo root so
future PRs can track the sweep-throughput trajectory.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _record import record_benchmark
from repro.analysis.batch import BatchDesignEvaluator, DesignGrid
from repro.core.config import ChainConfig
from repro.engine import create_engine

#: 129 PE counts x 81 frequencies = 10449 design points (>= the 10k bar)
GRID_SPEC = "pe=128:1152:8,freq=200:1000:10,batch=128"

#: scalar points measured to extrapolate the per-point path's points/s
#: (running all 10k points through Python objects would take minutes)
SCALAR_SAMPLE_POINTS = 64


@pytest.fixture(scope="module")
def grid():
    return DesignGrid.parse(GRID_SPEC, base=ChainConfig())


@pytest.fixture(scope="module")
def evaluator(alexnet_network):
    return BatchDesignEvaluator(alexnet_network, base=ChainConfig())


def test_columnar_sweep_100x_faster_than_scalar(benchmark, grid, evaluator,
                                                alexnet_network):
    assert grid.n_points >= 10_000

    # warm the per-precision tile constants so the timed run is steady state
    evaluator.evaluate_grid(grid.take(np.arange(16)))
    start = time.perf_counter()
    result = evaluator.evaluate_grid(grid)
    batch_seconds = time.perf_counter() - start
    batch_pps = grid.n_points / batch_seconds

    scalar_engine = create_engine("analytical")
    sample = np.linspace(0, grid.n_points - 1, SCALAR_SAMPLE_POINTS).astype(int)
    start = time.perf_counter()
    records = [
        scalar_engine.evaluate(alexnet_network, grid.config_at(int(index)),
                               batch=int(grid.batch[index]))
        for index in sample
    ]
    scalar_seconds = time.perf_counter() - start
    scalar_pps = len(sample) / scalar_seconds

    # spot-check numerical identity on the sampled points
    for index, record in zip(sample, records):
        assert result.fps[index] == pytest.approx(record.metric("fps"), rel=1e-9)
        assert result.power_w[index] == pytest.approx(record.metric("power_w"), rel=1e-9)

    speedup = batch_pps / scalar_pps
    record_benchmark("sweep", {
        "grid": GRID_SPEC,
        "n_points": grid.n_points,
        "batch_points_per_s": batch_pps,
        "batch_ns_per_point": 1e9 / batch_pps,
        "scalar_points_per_s": scalar_pps,
        "scalar_sample_points": int(len(sample)),
        "speedup_vs_scalar": speedup,
    })

    # measured ~2000x locally; 100x is the acceptance bar, relaxed only for
    # the CI functional smoke pass on noisy shared runners
    floor = 25.0 if benchmark.disabled else 100.0
    assert speedup >= floor, (
        f"columnar path only {speedup:.0f}x the scalar path "
        f"({batch_pps:,.0f} vs {scalar_pps:,.0f} points/s)"
    )

    benchmark.pedantic(evaluator.evaluate_grid, args=(grid,), rounds=3, iterations=1)


def test_pareto_reduction_on_dense_grid(benchmark, grid, evaluator):
    """The frontier reducer keeps up with dense grids and is never empty."""
    result = evaluator.evaluate_grid(grid)
    frontier = benchmark.pedantic(result.pareto, rounds=3, iterations=1)
    assert 0 < frontier.n_points < result.n_points
    # every frontier point beats every other frontier point somewhere
    assert float(frontier.total_gates.min()) <= float(result.total_gates.min())
