"""Benchmark: vectorized functional-simulator backend vs the scalar walk.

The acceptance bar for the vectorized-functional PR: the NumPy backend must
produce bit-identical ofmaps and identical ``FunctionalRunStats`` counters
while evaluating an AlexNet conv layer at least 50x faster than the
per-window scalar walk — and whole-network functional verification of
AlexNet must complete in well under a minute, turning it into a CI-friendly
step instead of an overnight job.

Records ``BENCH_functional.json`` (scalar vs vectorized seconds, speedup,
windows/s, whole-network verification time) at the repo root.

The scalar walk on the *full* AlexNet conv3 (16.6M windows) takes minutes,
so its time is measured on a channel-reduced probe with the same spatial
geometry and extrapolated per channel pair — every pair of a layer performs
exactly the same per-window work, so scalar time is linear in the pair count
by construction.  Bit-identity is asserted on the probe (both backends) and
on the full layer (vectorized vs the closed-form counters and the golden
reference).
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from _record import REPO_ROOT, record_benchmark
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.zoo import alexnet
from repro.core.config import ChainConfig
from repro.sim.functional import FunctionalChainSimulator
from repro.sim.network import FunctionalNetworkRunner


def _merged_record(payload: dict) -> None:
    """Merge ``payload`` into BENCH_functional.json, keeping earlier keys.

    The two benchmarks here contribute to one trajectory file; whichever
    runs later folds the other's numbers in instead of clobbering them.
    """
    path = REPO_ROOT / "BENCH_functional.json"
    if path.is_file():
        try:
            previous = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            previous = {}
        for key, value in previous.items():
            payload.setdefault(key, value)
    record_benchmark("functional", payload)


def test_vectorized_functional_backend_speedup_on_alexnet_conv3(benchmark):
    layer = alexnet().conv_layer("conv3")
    # same spatial geometry (13x13, K=3, pad 1), 64x fewer channel pairs:
    # per-pair scalar work is identical, so full-layer scalar time is
    # probe time * (channel_pairs / probe pairs)
    probe = layer.scaled(name="conv3-probe", in_channels=32, out_channels=48)
    generator = WorkloadGenerator(seed=13)
    ifmaps, weights = generator.layer_pair(layer)
    probe_ifmaps, probe_weights = generator.layer_pair(probe)

    config = ChainConfig()
    scalar_sim = FunctionalChainSimulator(config, backend="scalar")
    fast_sim = FunctionalChainSimulator(config, backend="vectorized")

    start = time.perf_counter()
    scalar_probe = scalar_sim.run_layer(probe, probe_ifmaps, probe_weights)
    scalar_probe_seconds = time.perf_counter() - start

    # bit-identical outputs and identical counters on the probe
    fast_probe = fast_sim.run_layer(probe, probe_ifmaps, probe_weights)
    assert np.array_equal(scalar_probe.ofmaps, fast_probe.ofmaps)
    assert scalar_probe.stats == fast_probe.stats

    fast_seconds = min(_timed(fast_sim, layer, ifmaps, weights) for _ in range(3))
    fast_result = benchmark(fast_sim.run_layer, layer, ifmaps, weights)
    assert fast_result.max_abs_error_vs_reference(ifmaps, weights) < 1e-9

    pair_ratio = layer.channel_pairs() / probe.channel_pairs()
    scalar_seconds = scalar_probe_seconds * pair_ratio
    speedup = scalar_seconds / fast_seconds
    _merged_record({
        "layer": layer.name,
        "windows_evaluated": fast_result.stats.windows_evaluated,
        "scalar_seconds": scalar_seconds,
        "scalar_seconds_measured_on_probe": scalar_probe_seconds,
        "scalar_probe_pairs": probe.channel_pairs(),
        "layer_pairs": layer.channel_pairs(),
        "vectorized_seconds": fast_seconds,
        "vectorized_windows_per_s": fast_result.stats.windows_evaluated / fast_seconds,
        "speedup_vs_scalar": speedup,
    })
    # measured ~150x locally; the hard 50x bar applies in timing mode, the CI
    # smoke pass (--benchmark-disable, shared runners) uses a lower floor
    floor = 10.0 if benchmark.disabled else 50.0
    assert speedup >= floor, (
        f"vectorized functional backend only {speedup:.1f}x faster "
        f"({scalar_seconds:.2f}s scalar vs {fast_seconds:.3f}s vectorized)"
    )


def _timed(simulator, layer, ifmaps, weights) -> float:
    start = time.perf_counter()
    simulator.run_layer(layer, ifmaps, weights)
    return time.perf_counter() - start


def test_alexnet_network_functional_verification_is_seconds_scale(benchmark):
    """Whole-network AlexNet dataflow verification stays under a minute."""
    runner = FunctionalNetworkRunner(backend="vectorized", seed=13)
    result = benchmark.pedantic(runner.run, args=(alexnet(),), rounds=1, iterations=1)
    assert result.passed, result.describe()
    assert len(result.conv_stages) == 5
    assert result.seconds < 60.0, (
        f"AlexNet functional verification took {result.seconds:.1f}s"
    )
    _merged_record({
        "alexnet_verify_seconds": result.seconds,
        "alexnet_verify_windows_kept": result.stats.windows_kept,
        "alexnet_verify_max_abs_error": result.max_abs_error,
    })
