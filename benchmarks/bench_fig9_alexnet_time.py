"""Benchmark: regenerate Fig. 9 and the Sec. V.B throughput numbers.

Paper claims: per-layer AlexNet convolution times of 159.3 / 102.1 / 57.2 /
42.9 / 28.6 ms for a 128-image batch at 700 MHz, kernel loading once per
batch (3.25 ms total), 326.2 fps at batch 128, 275.6 fps at batch 4 and a
peak throughput of 806.4 GOPS.
"""

from __future__ import annotations

from repro.experiments.fig9 import (
    PAPER_CONV_TIME_MS,
    PAPER_FPS_BATCH128,
    PAPER_FPS_BATCH4,
    run_fig9,
)


def test_fig9_alexnet_layer_times(benchmark):
    result = benchmark(run_fig9)

    # per-layer times: conv1/3/4/5 reproduce to <1 %; conv2 to ~18 %
    for name, ratio in result.conv_time_ratio().items():
        tolerance = 0.20 if name == "conv2" else 0.01
        assert abs(ratio - 1.0) <= tolerance, f"{name}: {ratio:.3f}"

    # ordering of the bars is identical to the paper
    measured = result.measured_conv_time_ms
    assert sorted(measured, key=measured.get, reverse=True) == \
        sorted(PAPER_CONV_TIME_MS, key=PAPER_CONV_TIME_MS.get, reverse=True)

    # frame rates and peak throughput
    assert abs(result.measured_fps_batch128 / PAPER_FPS_BATCH128 - 1.0) < 0.06
    assert abs(result.measured_fps_batch4 / PAPER_FPS_BATCH4 - 1.0) < 0.05
    assert result.measured_peak_gops == 806.4

    print()
    print(result.report())


def test_fig9_batch_amortisation(benchmark, paper_chip, alexnet_network):
    """Kernel loading is paid once per batch, so fps grows with batch size."""

    def sweep():
        return [
            paper_chip.performance_model.network_performance(alexnet_network, batch).frames_per_second
            for batch in (1, 4, 16, 64, 128)
        ]

    fps = benchmark(sweep)
    assert fps == sorted(fps)
    assert fps[-1] / fps[0] > 1.10
