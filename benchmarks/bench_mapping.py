"""Benchmark: mapping search vs the paper's fixed Table II mapping.

The acceptance bar for the mapping-search PR: on AlexNet and VGG-16 the
searched schedule's objective value is **never worse** than the Table II
baseline for any objective, and **strictly better** for at least one
network/objective pair — with every searched mapping functionally verified
(bit-identical to the baseline stripe plan, im2col golden reference matched
to float round-off).  Measured baseline-vs-searched objective values land in
``BENCH_mapping.json`` at the repo root; the "Mapping search" section of
EXPERIMENTS.md is regenerated from that file.
"""

from __future__ import annotations

import time

import pytest

from _record import record_benchmark
from repro.cnn.zoo import get_network
from repro.core.config import ChainConfig
from repro.mapping import OBJECTIVES, MapSpace, ScheduleOptimizer

#: schedule granularity the searches optimise for
BATCH = 16

#: the networks the acceptance criterion names
NETWORK_NAMES = ("alexnet", "vgg16")


def _optimize_all(network, config):
    """One exhaustive search per objective; returns {objective: schedule}."""
    schedules = {}
    for objective in OBJECTIVES:
        optimizer = ScheduleOptimizer(config=config, objective=objective,
                                      strategy="exhaustive", batch=BATCH)
        schedules[objective] = optimizer.optimize(network)
    return schedules


def test_searched_schedules_beat_table2_and_verify(benchmark):
    config = ChainConfig()
    payload = {"batch": BATCH, "strategy": "exhaustive", "networks": {}}
    strictly_better = []
    search_seconds = 0.0
    candidates_evaluated = 0

    for name in NETWORK_NAMES:
        network = get_network(name)
        mapspace = MapSpace(network, config)

        start = time.perf_counter()
        schedules = _optimize_all(network, config)
        search_seconds += time.perf_counter() - start

        objectives = {}
        for objective, schedule in schedules.items():
            baseline = schedule.baseline_objective_value()
            searched = schedule.objective_value()
            # the hard acceptance bar: never worse than Table II
            assert searched <= baseline * (1 + 1e-12), (
                f"{name}/{objective}: searched {searched} worse than "
                f"baseline {baseline}"
            )
            if searched < baseline * (1 - 1e-9):
                strictly_better.append([name, objective])
            objectives[objective] = {
                "baseline": baseline,
                "searched": searched,
                "improvement_pct": schedule.improvement_fraction() * 100.0,
            }
            candidates_evaluated += schedule.evaluations

        # verification depends only on the stripe-height profile; verify
        # each distinct profile once (geometry dedup happens inside verify)
        profiles = {}
        for schedule in schedules.values():
            profile = tuple(sorted(schedule.stripe_heights().items()))
            profiles.setdefault(profile, schedule)
        verifier = ScheduleOptimizer(config=config, strategy="exhaustive",
                                     batch=BATCH)
        max_error = 0.0
        distinct_pairs = set()
        all_passed = True
        for schedule in profiles.values():
            verification = verifier.verify(network, schedule, seed=2017)
            assert verification.passed, verification.describe()
            max_error = max(max_error, verification.max_abs_error)
            # dedupe across profiles: verify() dedupes per schedule only
            distinct_pairs.update(
                (entry.layer_name, entry.candidate.stripe_height)
                for entry in verification.layers)
            all_passed = all_passed and verification.passed

        payload["networks"][name] = {
            "pruned_candidates": mapspace.total_pruned_size(),
            "full_candidates": mapspace.total_full_size(),
            "objectives": objectives,
            "verification": {
                "passed": all_passed,
                "max_abs_error": max_error,
                "distinct_mappings": len(distinct_pairs),
                "bit_identical": all_passed,
            },
        }

    # the other half of the acceptance bar: a strict win somewhere
    assert strictly_better, "search never improved on the Table II mapping"
    payload["strictly_better_pairs"] = strictly_better
    payload["search_seconds"] = search_seconds
    payload["candidates_evaluated"] = candidates_evaluated
    payload["candidates_per_second"] = (candidates_evaluated / search_seconds
                                        if search_seconds else 0.0)
    record_benchmark("mapping", payload)

    alexnet = get_network("alexnet")

    def one_search():
        return ScheduleOptimizer(config=config, objective="latency",
                                 strategy="exhaustive", batch=BATCH
                                 ).optimize(alexnet)

    benchmark.pedantic(one_search, rounds=3, iterations=1)


def test_annealing_matches_exhaustive_on_alexnet():
    """The seeded annealer finds schedules as good as exhaustive on AlexNet.

    This is the reproducibility claim CI leans on: the same seed must yield
    the same searched schedule (and therefore the same objective value) on
    every platform, via :func:`repro.cnn.generator.stable_seed`.
    """
    network = get_network("alexnet")
    config = ChainConfig()
    for objective in ("latency", "energy"):
        exhaustive = ScheduleOptimizer(config=config, objective=objective,
                                       strategy="exhaustive", batch=BATCH
                                       ).optimize(network)
        runs = [
            ScheduleOptimizer(config=config, objective=objective,
                              strategy="anneal", batch=BATCH).optimize(network)
            for _ in range(2)
        ]
        assert runs[0].to_json_dict() == runs[1].to_json_dict()
        # never worse than baseline, and within 25 % of the exhaustive optimum
        assert runs[0].objective_value() <= runs[0].baseline_objective_value()
        assert runs[0].objective_value() <= exhaustive.objective_value() * 1.25
