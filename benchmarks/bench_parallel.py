"""Benchmark: the persistent shared-memory parallel runtime.

The acceptance bar for the parallel-runtime PR: fanning work over persistent
workers must leave every result **bit-identical** to the serial path —
functional network verification (ofmaps, counters, golden errors), mapping
search (schedules) and design-point sweeps (records) — while the wall-clock
scales with the worker count on machines that have the cores.  The timing
claim is only asserted where it can physically hold (``--benchmark-only`` /
timing mode on a 4+-core machine); the smoke pass asserts the identity
guarantees everywhere and records the measured scaling curve honestly,
including on single-core runners where the speedup is ~1x by construction.

Records ``BENCH_parallel.json`` (worker-count scaling of whole-network
functional verification, mapping-search and sweep parallel timings, CPU
count) at the repo root; the "Parallel runtime" section of EXPERIMENTS.md is
regenerated from that file.

Whole-network verification of VGG-16 (the acceptance criterion's workload,
~4 minutes serial) is exercised when ``REPRO_BENCH_NETWORK=vgg16`` is set;
the default CI smoke pass measures AlexNet so the benchmark stays a
seconds-scale step.
"""

from __future__ import annotations

import os
import time

from _record import record_benchmark
from repro.cnn.zoo import get_network
from repro.core.config import ChainConfig
from repro.engine.executor import SweepExecutor
from repro.mapping import ScheduleOptimizer
from repro.sim.network import FunctionalNetworkRunner

#: worker counts of the scaling curve (the CPU count is appended when larger)
WORKER_COUNTS = (2, 4)

#: zoo network the verification scaling is measured on
NETWORK = os.environ.get("REPRO_BENCH_NETWORK", "alexnet")


def _assert_identical(serial, parallel) -> None:
    """Whole-network verification results must match bit for bit."""
    assert serial.stats == parallel.stats, (serial.stats, parallel.stats)
    assert serial.max_abs_error == parallel.max_abs_error
    assert len(serial.stages) == len(parallel.stages)
    for left, right in zip(serial.stages, parallel.stages):
        assert left.name == right.name
        assert left.max_abs_error == right.max_abs_error
        assert left.windows_kept == right.windows_kept
        assert left.chain_cycles == right.chain_cycles
    assert serial.passed and parallel.passed


def test_parallel_functional_verification_scaling(benchmark):
    network = get_network(NETWORK)
    cpus = os.cpu_count() or 1

    started = time.perf_counter()
    serial = FunctionalNetworkRunner(backend="vectorized", seed=13).run(network)
    serial_seconds = time.perf_counter() - started

    counts = sorted(set(WORKER_COUNTS) | ({cpus} if cpus > max(WORKER_COUNTS) else set()))
    scaling = {}
    for workers in counts:
        with FunctionalNetworkRunner(backend="vectorized", seed=13,
                                     workers=workers) as runner:
            started = time.perf_counter()
            parallel = runner.run(network)
            seconds = time.perf_counter() - started
        _assert_identical(serial, parallel)
        scaling[str(workers)] = {
            "seconds": seconds,
            "speedup_vs_serial": serial_seconds / seconds if seconds else 0.0,
        }

    # mapping search: parallel schedules must equal serial ones exactly
    started = time.perf_counter()
    searched = ScheduleOptimizer(objective="latency", strategy="exhaustive",
                                 batch=16).optimize(network)
    map_serial_seconds = time.perf_counter() - started
    started = time.perf_counter()
    searched_parallel = ScheduleOptimizer(objective="latency",
                                          strategy="exhaustive", batch=16,
                                          workers=max(WORKER_COUNTS)
                                          ).optimize(network)
    map_parallel_seconds = time.perf_counter() - started
    assert searched.to_json_dict() == searched_parallel.to_json_dict()

    # sweeps: the persistent pool returns records identical to serial runs
    configs = [ChainConfig(num_pes=pes) for pes in range(128, 1153, 64)]
    with SweepExecutor(engine="analytical", network=network,
                       max_workers=max(WORKER_COUNTS)) as executor:
        started = time.perf_counter()
        serial_records = executor.run(configs, parallel=False)
        sweep_serial_seconds = time.perf_counter() - started
        started = time.perf_counter()
        parallel_records = executor.run(configs, parallel=True)
        sweep_parallel_seconds = time.perf_counter() - started
        assert [r.metrics for r in serial_records] == \
            [r.metrics for r in parallel_records]

    best = max(entry["speedup_vs_serial"] for entry in scaling.values())
    record_benchmark("parallel", {
        "network": network.name,
        "cpu_count": cpus,
        "verify_serial_seconds": serial_seconds,
        "verify_scaling": scaling,
        "verify_best_speedup": best,
        "map_serial_seconds": map_serial_seconds,
        "map_parallel_seconds": map_parallel_seconds,
        "sweep_serial_seconds": sweep_serial_seconds,
        "sweep_parallel_seconds": sweep_parallel_seconds,
        "bit_identical": True,
    })

    def verify_with_pool():
        with FunctionalNetworkRunner(backend="vectorized", seed=13,
                                     workers=min(cpus, max(WORKER_COUNTS))
                                     ) as runner:
            return runner.run(network)

    result = benchmark.pedantic(verify_with_pool, rounds=1, iterations=1)
    assert result.passed

    # the wall-clock acceptance bar only binds where the cores exist: the
    # smoke pass (shared runners, possibly 1-2 cores) records the curve but
    # must not fail for lacking hardware
    if not benchmark.disabled and cpus >= 4:
        four = scaling.get("4", scaling[str(max(counts))])
        assert four["speedup_vs_serial"] >= 3.0, (
            f"4-worker verification only {four['speedup_vs_serial']:.2f}x "
            f"faster on {cpus} cores"
        )


def test_persistent_pool_amortises_worker_startup():
    """Re-running a sweep on a live executor reuses workers and caches.

    The second parallel call must not rebuild the pool: the broadcast
    network and per-worker engines are already in place, so only the small
    per-point payloads move.  (Timing is recorded by the scaling benchmark;
    here we pin the *behavioural* contract so a regression to per-call pools
    cannot land silently.)
    """
    network = get_network("alexnet")
    configs = [ChainConfig(num_pes=pes) for pes in (144, 288, 432, 576)]
    with SweepExecutor(engine="analytical", network=network,
                       max_workers=2) as executor:
        first = executor.run(configs, parallel=True)
        runtime = executor._pool.runtime
        second = executor.run(configs, parallel=True)
        if runtime is not None:  # platforms with pools: same live pool
            assert executor._pool.runtime is runtime
            assert all(p.is_alive() for p in runtime._processes)
        assert [r.metrics for r in first] == [r.metrics for r in second]
