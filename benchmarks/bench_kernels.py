"""Benchmark: compiled (numba) kernel backend vs the NumPy reference.

The acceptance bar for the compiled-kernel PR: with numba installed, the
``repro.kernels`` numba backend must be **bit-identical** to the NumPy
reference on both hot kernels and at least 5x faster on the VGG-16 conv
block product / 3x faster on mapping-candidate scoring in timing mode
(``repro bench kernels --timing``; the smoke pass on shared CI runners uses
lower floors).  Without numba both benchmarks still run — they measure the
reference backend, assert the cross-backend identity over whatever backends
are available, and simply skip the speedup floor (there is nothing to
compare against).

Records ``BENCH_kernels.json`` (per-kernel seconds per backend, speedups,
numpy absolute throughput, numba version) at the repo root.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from _record import REPO_ROOT, record_benchmark
from repro.analysis.batch import MAPPING_RESULT_COLUMNS, MappingBatchEvaluator
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.zoo import vgg16
from repro.core.config import ChainConfig
from repro.cnn.reference import pad_input
from repro.kernels import available_backends, numba_version, warmup
from repro.sim.functional_vectorized import vectorized_layer_ofmaps

BACKENDS = available_backends()

#: timing repeats per backend (best-of, to shed scheduler noise)
REPEATS = 3


def _merged_record(payload: dict) -> None:
    """Merge ``payload`` into BENCH_kernels.json, keeping earlier keys."""
    path = REPO_ROOT / "BENCH_kernels.json"
    if path.is_file():
        try:
            previous = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            previous = {}
        for key, value in previous.items():
            payload.setdefault(key, value)
    payload.setdefault("backends_available", list(BACKENDS))
    payload.setdefault("numba_version", numba_version())
    record_benchmark("kernels", payload)


def _best_of(fn) -> float:
    return min(_timed(fn) for _ in range(REPEATS))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_ofmap_kernel_backend_speedup_on_vgg_conv_block(benchmark):
    """VGG-16 conv block product: bit-identical, and >= 5x with numba."""
    # conv4_2 geometry (512x28x28 <- 512 3x3 kernels over 256 channels),
    # channel-reduced 16x so the numpy reference stays benchmark-friendly;
    # per-pair kernel work is identical, so the speedup is representative
    layer = vgg16().conv_layer("conv4_2").scaled(
        name="conv4_2-probe", in_channels=64, out_channels=128)
    ifmaps, weights = WorkloadGenerator(seed=13).layer_pair(layer)
    padded = pad_input(ifmaps, layer.padding)

    seconds = {}
    ofmaps = {}
    for backend in BACKENDS:
        warmup(backend)  # JIT compile outside the timed region
        ofmaps[backend] = vectorized_layer_ofmaps(layer, padded, weights,
                                                  kernel_backend=backend)
        seconds[backend] = _best_of(
            lambda backend=backend: vectorized_layer_ofmaps(
                layer, padded, weights, kernel_backend=backend))
    for backend in BACKENDS:
        assert np.array_equal(ofmaps["numpy"], ofmaps[backend]), backend

    benchmark(vectorized_layer_ofmaps, layer, padded, weights,
              kernel_backend=BACKENDS[-1])

    windows = layer.channel_pairs() * layer.out_height * layer.out_width
    payload = {
        "ofmap_layer": layer.name,
        "ofmap_windows": windows,
        "ofmap_numpy_seconds": seconds["numpy"],
        "ofmap_numpy_windows_per_s": windows / seconds["numpy"],
    }
    if "numba" in seconds:
        payload["ofmap_numba_seconds"] = seconds["numba"]
        payload["ofmap_speedup_numba_vs_numpy"] = (
            seconds["numpy"] / seconds["numba"])
    _merged_record(payload)

    if "numba" in seconds:
        speedup = seconds["numpy"] / seconds["numba"]
        # the hard 5x bar applies in timing mode; the smoke pass
        # (--benchmark-disable, shared runners) uses a lower floor
        floor = 2.0 if benchmark.disabled else 5.0
        assert speedup >= floor, (
            f"numba ofmap kernel only {speedup:.1f}x faster "
            f"({seconds['numpy']:.3f}s numpy vs {seconds['numba']:.3f}s numba)"
        )


def test_scorer_kernel_backend_speedup_on_candidate_batch(benchmark):
    """10^5-candidate mapping scoring: identical columns, >= 3x with numba."""
    layer = vgg16().conv_layer("conv3_1")
    config = ChainConfig()
    evaluators = {
        backend: MappingBatchEvaluator(layer, config, batch=16,
                                       kernel_backend=backend)
        for backend in BACKENDS
    }
    rng = np.random.default_rng(2017)
    n = 100_000
    max_primitives = config.num_pes // (layer.kernel_size ** 2)
    primitives = rng.integers(1, max_primitives + 1, size=n, dtype=np.int64)
    stripes = rng.integers(1, layer.kernel_size + 1, size=n, dtype=np.int64)
    chunk = rng.integers(1, 33, size=n, dtype=np.int64)
    image_major = rng.integers(0, 2, size=n).astype(bool)
    columns = (primitives, stripes, chunk, image_major)

    seconds = {}
    results = {}
    for backend, evaluator in evaluators.items():
        warmup(backend)
        results[backend] = evaluator.evaluate(*columns)
        seconds[backend] = _best_of(lambda ev=evaluator: ev.evaluate(*columns))
    for backend in BACKENDS:
        for column in MAPPING_RESULT_COLUMNS:
            assert np.array_equal(results["numpy"][column],
                                  results[backend][column]), (backend, column)

    benchmark(evaluators[BACKENDS[-1]].evaluate, *columns)

    payload = {
        "scorer_layer": layer.name,
        "scorer_candidates": n,
        "scorer_numpy_seconds": seconds["numpy"],
        "scorer_numpy_candidates_per_s": n / seconds["numpy"],
    }
    if "numba" in seconds:
        payload["scorer_numba_seconds"] = seconds["numba"]
        payload["scorer_speedup_numba_vs_numpy"] = (
            seconds["numpy"] / seconds["numba"])
    _merged_record(payload)

    if "numba" in seconds:
        speedup = seconds["numpy"] / seconds["numba"]
        floor = 1.2 if benchmark.disabled else 3.0
        assert speedup >= floor, (
            f"numba scorer only {speedup:.1f}x faster "
            f"({seconds['numpy']:.3f}s numpy vs {seconds['numba']:.3f}s numba)"
        )
