"""Benchmark: regenerate Fig. 5 (single-channel vs dual-channel PE throughput).

Paper claims: with a single ifmap channel the systolic primitive reaches only
1/K of its peak rate (33 % for 3x3 kernels); the dual-channel column-wise
scan sustains one output per cycle (100 % utilization after initialisation).
"""

from __future__ import annotations

from repro.experiments.fig5 import run_fig5


def test_fig5_single_vs_dual_channel(benchmark):
    result = benchmark(run_fig5)

    for kernel, row in result.analytical.items():
        # dual channel buys exactly a factor K
        assert abs(row["speedup"] - kernel) < 1e-9
        # single channel is pinned near 1/K of peak
        assert row["single_channel"] < 1.2 / kernel
        # dual channel sits close to full utilization
        assert row["dual_channel"] > 0.9

    # the register-accurate primitive confirms the high utilization even with
    # fill, drain and stripe-edge losses included
    assert result.cycle_sim_utilization > 0.5

    print()
    print(result.report())


def test_fig5_alexnet_impact(benchmark, alexnet_network):
    """End-to-end impact on AlexNet: a single-channel chain is several times slower."""
    from repro.baselines.single_channel import SingleChannelChain
    from repro.core.config import ChainConfig
    from repro.core.performance import PerformanceModel

    def run():
        dual = PerformanceModel(ChainConfig()).network_performance(alexnet_network, 4)
        single = SingleChannelChain().workload_time_s(alexnet_network, 4)
        return single / dual.total_time_per_batch_s

    slowdown = benchmark(run)
    # AlexNet mixes K = 11, 5 and 3 layers, so the slowdown is between 3x and 11x
    assert 3.0 < slowdown < 11.0
