"""Benchmark-regression gate: freshly measured vs committed ``BENCH_*.json``.

CI measures every benchmark on the pull request's code and then calls this
script, which compares the throughput/speedup fields of the fresh records
against the values committed at ``HEAD`` (read through ``git show``, so the
fresh files can overwrite the working tree copies first):

* a fresh value below ``committed / warn_factor`` (default 2x) prints a
  warning — shared CI runners are noisy, so a modest slide only surfaces;
* a fresh value below ``committed / fail_factor`` (default 5x) **fails the
  build** — a collapse of that size is a lost fast path (a vectorized
  kernel silently degraded to a Python loop, a pool degraded to serial),
  not machine noise.

Usage::

    python benchmarks/check_regression.py [--names sweep,cycle,...]
        [--warn-factor 2.0] [--fail-factor 5.0]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

#: repo root (this file lives in benchmarks/)
REPO_ROOT = Path(__file__).resolve().parent.parent

#: benchmark name -> higher-is-better fields guarded against regression.
#: Only same-machine ratios belong here: a field like the parallel bench's
#: ``verify_best_speedup`` tracks the runner's *core count*, so comparing it
#: against a baseline committed from a different machine would fail CI for
#: lacking hardware (the parallel bench asserts its own bit-identity and
#: core-gated speedup floors instead).
WATCHED_FIELDS: Dict[str, List[str]] = {
    "sweep": ["batch_points_per_s", "speedup_vs_scalar"],
    "cycle": ["speedup_vs_scalar"],
    "functional": ["speedup_vs_scalar", "vectorized_windows_per_s"],
    "mapping": ["candidates_per_second"],
    "parallel": [],
    # speedups depend on whether the runner leg has numba installed, and the
    # absolute throughputs on its core count — machine-dependent like
    # "parallel", so the record is tracked but not gated
    "kernels": [],
    # overhead percentages and recovery latencies are wall-clock deltas on
    # a shared runner — pure machine noise between machines; the benchmark
    # asserts its own bit-identity and (in timing mode) the 5% overhead
    # budget, so the record is tracked but not ratio-gated
    "faults": [],
    # both fields are deterministic model outputs (no wall clock): the
    # modeled multiply reduction of the worst eligible VGG-16 layer and the
    # modeled cycle speedup the algorithm axis buys on VGG-16 throughput
    "winograd": ["vgg16_min_mac_reduction", "vgg16_throughput_cycle_speedup"],
    # overhead percentages and per-op nanosecond costs are wall-clock
    # measurements on a shared runner — machine noise between machines; the
    # benchmark asserts its own bit-identity and (in timing mode) the
    # 1%/5% overhead budgets, so the record is tracked but not ratio-gated
    "obs": [],
    # points/s, queue waits and lookup latencies are wall-clock throughput
    # on a shared runner — machine noise between machines; the benchmark
    # asserts its own floors in timing mode (>=5x coalesce speedup, index
    # beats the file scan), so the record is tracked but not ratio-gated
    "serve": [],
}


def committed_record(name: str) -> Optional[Dict[str, Any]]:
    """The ``BENCH_<name>.json`` committed at HEAD (``None`` when absent)."""
    result = subprocess.run(
        ["git", "show", f"HEAD:BENCH_{name}.json"],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    if result.returncode != 0:
        return None
    try:
        return json.loads(result.stdout)
    except ValueError:
        return None


def fresh_record(name: str) -> Optional[Dict[str, Any]]:
    """The freshly measured ``BENCH_<name>.json`` in the working tree."""
    path = REPO_ROOT / f"BENCH_{name}.json"
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        return None


def compare(name: str, warn_factor: float, fail_factor: float) -> List[str]:
    """Failures for one benchmark (warnings print as a side effect)."""
    fresh = fresh_record(name)
    committed = committed_record(name)
    if fresh is None:
        print(f"[{name}] no fresh record — benchmark did not run, skipping")
        return []
    if committed is None:
        print(f"[{name}] no committed baseline — first measurement, skipping")
        return []
    failures: List[str] = []
    for field in WATCHED_FIELDS.get(name, []):
        was, now = committed.get(field), fresh.get(field)
        if not isinstance(was, (int, float)) or not isinstance(now, (int, float)):
            continue
        if was <= 0:
            continue
        ratio = now / was
        verdict = "ok"
        if now * fail_factor < was:
            verdict = "FAIL"
            failures.append(
                f"{name}.{field}: {now:.4g} vs committed {was:.4g} "
                f"({ratio:.2f}x, below the 1/{fail_factor:g} collapse floor)"
            )
        elif now * warn_factor < was:
            verdict = "WARN (shared-runner noise or a real slide)"
        print(f"[{name}] {field}: committed {was:.4g} -> fresh {now:.4g} "
              f"({ratio:.2f}x) {verdict}")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--names", default=",".join(sorted(WATCHED_FIELDS)),
                        help="comma-separated benchmark names to check")
    parser.add_argument("--warn-factor", type=float, default=2.0,
                        help="warn when fresh < committed / this (default 2)")
    parser.add_argument("--fail-factor", type=float, default=5.0,
                        help="fail when fresh < committed / this (default 5)")
    args = parser.parse_args(argv)
    if args.fail_factor < args.warn_factor:
        parser.error("--fail-factor must be >= --warn-factor")

    failures: List[str] = []
    for name in args.names.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in WATCHED_FIELDS:
            parser.error(f"unknown benchmark {name!r}; "
                         f"known: {', '.join(sorted(WATCHED_FIELDS))}")
        failures += compare(name, args.warn_factor, args.fail_factor)
    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbenchmark regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
