"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section and, in addition to timing the model with pytest-benchmark, asserts
the qualitative claim the artifact supports (who wins, by roughly what
factor).  Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see
the rendered paper-vs-measured tables.
"""

from __future__ import annotations

import pytest

from repro.cnn.zoo import alexnet
from repro.core.accelerator import ChainNN
from repro.core.config import ChainConfig


@pytest.fixture(scope="session")
def alexnet_network():
    """AlexNet geometry shared by all benchmarks."""
    return alexnet()


@pytest.fixture(scope="session")
def paper_chip():
    """The 576-PE, 700 MHz Chain-NN instantiation."""
    return ChainNN.paper_configuration()


@pytest.fixture(scope="session")
def paper_config():
    """The paper's chain configuration."""
    return ChainConfig.paper_default()
