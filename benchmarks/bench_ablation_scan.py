"""Ablation benchmark: how much each Chain-NN design choice contributes.

DESIGN.md calls out three load-bearing choices: the dual ifmap channels, the
column-wise scan's ifmap reuse, and keeping the kernels stationary in per-PE
kMemory.  This bench quantifies each one on AlexNet:

* dropping the second channel multiplies runtime by ~K;
* dropping the in-primitive ifmap reuse multiplies iMemory traffic by ~K^2/2;
* dropping the stationary kernels (re-reading weights every MAC) multiplies
  kMemory traffic by roughly K * E.
"""

from __future__ import annotations

import pytest

from repro.core.config import ChainConfig
from repro.core.performance import PerformanceModel
from repro.memory.traffic import TrafficModel


def test_ablation_dual_channel(benchmark, alexnet_network):
    """Single- vs dual-channel chain runtime on AlexNet."""

    def run():
        dual = PerformanceModel(ChainConfig()).network_performance(alexnet_network, 4)
        single = PerformanceModel(ChainConfig().single_channel()).network_performance(
            alexnet_network, 4)
        return single.conv_time_per_batch_s / dual.conv_time_per_batch_s

    slowdown = benchmark(run)
    assert 3.0 < slowdown < 11.0


def test_ablation_ifmap_reuse(benchmark, paper_config, alexnet_network):
    """The column-wise scan reuses each streamed pixel ~K^2 times inside a
    primitive; without it every MAC would read its ifmap pixel from SRAM."""
    model = TrafficModel(paper_config)

    def run():
        conv3 = alexnet_network.conv_layer("conv3")
        with_reuse = model.imemory_words(conv3, model.planner.plan(conv3, 64))
        without_reuse = conv3.macs  # one SRAM read per MAC
        return without_reuse / with_reuse

    reuse_factor = benchmark(run)
    assert reuse_factor > 50  # K^2 x Tm sharing makes this large for conv3


def test_ablation_stationary_kernels(benchmark, paper_config, alexnet_network):
    """Stationary kernels cut kMemory reads by the stripe pattern length."""
    model = TrafficModel(paper_config)

    def run():
        conv3 = alexnet_network.conv_layer("conv3")
        stationary_reads = model.kmemory_words(conv3)
        per_mac_reads = conv3.macs  # weight fetched for every MAC
        return per_mac_reads / stationary_reads

    reduction = benchmark(run)
    # the paper quotes a 1/(K*E) activity factor: K*E = 39 for conv3
    assert reduction == pytest.approx(3 * 13, rel=0.35)


def test_ablation_pe_count_granularity(benchmark, alexnet_network):
    """576 PEs is a utilization sweet spot: it divides exactly by 9 and 81 and
    nearly by 25 and 49; arbitrary neighbouring sizes lose several percent for
    at least one mainstream kernel."""
    from repro.core.utilization import minimum_utilization

    def run():
        return {n: minimum_utilization(n, (3, 5, 7, 9, 11)) for n in (560, 576, 592)}

    worst_case = benchmark(run)
    assert worst_case[576] >= 0.84
    assert all(value <= 1.0 for value in worst_case.values())
