"""Ablation benchmark: scaling the chain (parallelism, frequency, batch).

The paper argues the 1D chain "involves fewer overheads when scaled up to a
higher parallelism or clock frequency" (Sec. III.B); this bench sweeps both
axes with the library's models and checks the scaling behaviour is the clean
one the claim implies: near-linear throughput in PE count and frequency, flat
gates-per-PE, and a GOPS/W that does not collapse as the design grows.
"""

from __future__ import annotations

from repro.analysis.sweep import DesignSpaceExplorer
from repro.cnn.zoo import alexnet


def test_sweep_chain_length(benchmark):
    explorer = DesignSpaceExplorer(alexnet(), batch=16)

    points = benchmark(explorer.sweep_chain_length, (288, 576, 1152))

    fps = [point.fps for point in points]
    assert fps == sorted(fps)
    # near-linear scaling: 4x the PEs buys at least 3x the frame rate
    assert fps[2] / fps[0] > 3.0
    # gates per PE stay flat (the "fewer overheads when scaled" claim)
    gates_per_pe = [point.total_gates / point.config.num_pes for point in points]
    assert max(gates_per_pe) / min(gates_per_pe) < 1.05
    # energy efficiency does not collapse with scale
    efficiency = [point.gops_per_watt for point in points]
    assert min(efficiency) > 0.5 * max(efficiency)

    print()
    for point in points:
        print(point.as_row())


def test_sweep_frequency(benchmark):
    explorer = DesignSpaceExplorer(alexnet(), batch=16)

    points = benchmark(explorer.sweep_frequency, (350, 700, 1000))

    assert points[1].peak_gops == 806.4
    fps = [point.fps for point in points]
    assert fps == sorted(fps)
    # doubling the clock roughly doubles the frame rate
    assert 1.8 < fps[1] / fps[0] < 2.05


def test_sweep_batch_size(benchmark):
    explorer = DesignSpaceExplorer(alexnet(), batch=16)

    fps_by_batch = benchmark(explorer.sweep_batch_size, (1, 4, 16, 64, 128))

    values = list(fps_by_batch.values())
    assert values == sorted(values)
    # the paper's own two data points: 275.6 fps at batch 4, 326.2 at batch 128
    assert fps_by_batch[128] > fps_by_batch[4] > fps_by_batch[1]
    assert 1.1 < fps_by_batch[128] / fps_by_batch[4] < 1.5
