"""Benchmark: regenerate Fig. 10 (power breakdown and energy efficiency).

Paper claims: 567.5 mW total while sustaining the 806.4 GOPS peak —
1421 GOPS/W — split as ~81 % chain, ~9 % kMemory, ~1 % iMemory, ~10 %
oMemory; core-only efficiency ~1.7 TOPS/W versus DaDianNao's ~3.0 TOPS/W
core-only but only 349.7 GOPS/W whole-chip.
"""

from __future__ import annotations

from repro.experiments.fig10 import (
    PAPER_EFFICIENCY_GOPS_W,
    PAPER_TOTAL_MW,
    run_fig10,
)


def test_fig10_power_breakdown(benchmark):
    result = benchmark(run_fig10)

    # calibrated model reproduces the published operating point exactly
    assert abs(result.calibrated.total_w * 1e3 / PAPER_TOTAL_MW - 1.0) < 0.01
    assert abs(result.measured_efficiency() / PAPER_EFFICIENCY_GOPS_W - 1.0) < 0.01

    # breakdown shape: the chain dominates, iMemory is negligible
    fractions = result.calibrated.fractions()
    assert fractions["chain"] > 0.75
    assert fractions["iMemory"] < 0.02
    assert fractions["oMemory"] > fractions["kMemory"] > fractions["iMemory"]

    # representative (uncalibrated) energies land in the right regime
    representative_total = sum(result.measured_breakdown_mw(calibrated=False).values())
    assert 250 < representative_total < 1200

    print()
    print(result.report())


def test_fig10_core_vs_memory_split(benchmark):
    """The Fig. 10 right-hand argument: DaDianNao's core alone is more efficient,
    Chain-NN wins once the memory system is included."""
    result = benchmark(run_fig10)
    numbers = result.chain_vs_dadiannao()
    assert numbers["DaDianNao core-only GOPS/W (published)"] > \
        numbers["Chain-NN core-only GOPS/W"]
    assert numbers["Chain-NN total GOPS/W"] > 3.5 * numbers["DaDianNao total GOPS/W (published)"]
