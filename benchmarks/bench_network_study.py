"""Benchmark: the zoo-network study and the bandwidth-requirement analysis.

Extension experiments beyond the paper's AlexNet-only evaluation (Sec. V.A
prepared VGG-16/MNIST/CIFAR-10 vectors but reported only AlexNet): run every
zoo network through the same models, and quantify the paper's
"invariant input bandwidth" claim.
"""

from __future__ import annotations

from repro.experiments.networks import run_network_study
from repro.memory.bandwidth import BandwidthAnalyzer


def test_network_study(benchmark):
    study = benchmark(run_network_study, 16)

    # the all-3x3 VGG-16 keeps the whole chain busy and sustains a higher
    # fraction of peak than AlexNet, whose conv1 wastes 16 % of the PEs and
    # streams at stride 4
    assert study.vgg_sustains_higher_fraction_of_peak_than_alexnet()
    assert study.rows["vgg16"].efficiency_vs_peak > 0.8
    assert study.rows["vgg16"].worst_spatial_utilization == 1.0

    # small networks cannot amortise kernel loading as well
    assert study.rows["lenet5"].kernel_load_fraction > \
        study.rows["vgg16"].kernel_load_fraction

    print()
    print(study.report())


def test_bandwidth_requirements(benchmark, alexnet_network, paper_config):
    analyzer = BandwidthAnalyzer(paper_config)

    table = benchmark(analyzer.summary_table, alexnet_network, 4)

    # the invariant-input-bandwidth claim: 2 words/cycle per primitive for any K
    assert set(analyzer.input_bandwidth_by_kernel().values()) == {2.0}

    # no AlexNet layer saturates a single LPDDR3-class DRAM interface
    assert all(row["DRAM util. (%)"] < 50.0 for row in table.values())

    # versus a memory-centric execution the DRAM demand drops by orders of magnitude
    assert all(row["reduction vs memory-centric (x)"] > 100 for row in table.values())

    print()
    for layer, row in table.items():
        print(layer, {k: round(v, 2) for k, v in row.items()})
