"""Tests for ConvLayer / PoolingLayer / FullyConnectedLayer shape math."""

from __future__ import annotations

import pytest

from repro.cnn.layer import ConvLayer, FullyConnectedLayer, PoolingLayer
from repro.errors import WorkloadError


class TestConvLayerGeometry:
    def test_alexnet_conv1_output_size(self):
        layer = ConvLayer("conv1", 3, 96, 227, 227, kernel_size=11, stride=4)
        assert layer.out_height == 55
        assert layer.out_width == 55

    def test_alexnet_conv2_output_size_with_padding_and_groups(self):
        layer = ConvLayer("conv2", 96, 256, 27, 27, kernel_size=5, padding=2, groups=2)
        assert layer.out_height == 27
        assert layer.in_channels_per_group == 48
        assert layer.out_channels_per_group == 128

    def test_padded_dimensions(self):
        layer = ConvLayer("c", 1, 1, 13, 13, kernel_size=3, padding=1)
        assert layer.padded_height == 15
        assert layer.padded_width == 15

    def test_out_shape_and_in_shape(self):
        layer = ConvLayer("c", 4, 8, 10, 12, kernel_size=3)
        assert layer.in_shape == (4, 10, 12)
        assert layer.out_shape == (8, 8, 10)

    def test_describe_mentions_name_and_kernel(self):
        layer = ConvLayer("convX", 3, 8, 32, 32, kernel_size=5, padding=2)
        text = layer.describe()
        assert "convX" in text and "K=5" in text


class TestConvLayerComplexity:
    def test_alexnet_total_macs(self):
        # the paper quotes ~666 million MACs for AlexNet's five conv layers
        from repro.cnn.zoo import alexnet

        total = alexnet().total_conv_macs
        assert total == pytest.approx(666e6, rel=0.01)

    def test_macs_per_output(self):
        layer = ConvLayer("c", 16, 8, 12, 12, kernel_size=3, groups=2)
        assert layer.macs_per_output == 3 * 3 * 8

    def test_operations_is_twice_macs(self):
        layer = ConvLayer("c", 3, 4, 8, 8, kernel_size=3)
        assert layer.operations == 2 * layer.macs

    def test_weight_count_with_groups(self):
        layer = ConvLayer("conv2", 96, 256, 27, 27, kernel_size=5, padding=2, groups=2)
        assert layer.weight_count == 5 * 5 * 48 * 256  # 307200, as used in Fig. 9

    def test_channel_pairs(self):
        layer = ConvLayer("conv3", 256, 384, 13, 13, kernel_size=3, padding=1)
        assert layer.channel_pairs() == 256 * 384

    def test_byte_footprints(self):
        layer = ConvLayer("c", 2, 4, 8, 8, kernel_size=3)
        assert layer.input_bytes() == 2 * 8 * 8 * 2
        assert layer.output_bytes() == 4 * 6 * 6 * 2
        assert layer.weight_bytes() == 4 * 2 * 9 * 2

    def test_scaled_copy(self):
        layer = ConvLayer("c", 2, 4, 8, 8, kernel_size=3)
        wider = layer.scaled(in_height=16, in_width=16)
        assert wider.out_height == 14
        assert layer.out_height == 6  # original untouched


class TestConvLayerValidation:
    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(WorkloadError):
            ConvLayer("bad", 0, 4, 8, 8, kernel_size=3)
        with pytest.raises(WorkloadError):
            ConvLayer("bad", 2, 4, 8, 8, kernel_size=0)

    def test_rejects_negative_padding(self):
        with pytest.raises(WorkloadError):
            ConvLayer("bad", 2, 4, 8, 8, kernel_size=3, padding=-1)

    def test_rejects_group_mismatch(self):
        with pytest.raises(WorkloadError):
            ConvLayer("bad", 3, 4, 8, 8, kernel_size=3, groups=2)

    def test_rejects_kernel_larger_than_input(self):
        with pytest.raises(WorkloadError):
            ConvLayer("bad", 1, 1, 4, 4, kernel_size=7)


class TestPoolingLayer:
    def test_output_size(self):
        pool = PoolingLayer("pool1", channels=96, in_height=55, in_width=55,
                            kernel_size=3, stride=2)
        assert pool.out_height == 27
        assert pool.out_width == 27

    def test_rejects_bad_mode(self):
        with pytest.raises(WorkloadError):
            PoolingLayer("p", 1, 8, 8, 2, 2, mode="median")

    def test_rejects_bad_geometry(self):
        with pytest.raises(WorkloadError):
            PoolingLayer("p", 0, 8, 8, 2, 2)


class TestFullyConnectedLayer:
    def test_mac_count(self):
        fc = FullyConnectedLayer("fc6", in_features=9216, out_features=4096)
        assert fc.macs == 9216 * 4096

    def test_as_conv_lowering(self):
        fc = FullyConnectedLayer("fc", in_features=128, out_features=10)
        conv = fc.as_conv()
        assert conv.kernel_size == 1
        assert conv.macs == fc.macs

    def test_rejects_bad_features(self):
        with pytest.raises(WorkloadError):
            FullyConnectedLayer("fc", in_features=0, out_features=10)
