"""Cross-model property tests (hypothesis).

These check invariants that must hold for *any* layer geometry, not just the
AlexNet/VGG shapes the paper evaluates: work conservation between the mapper
and the performance model, traffic lower bounds, utilization bounds, and
monotonicity of the analytical models in the quantities they should be
monotone in.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cnn.layer import ConvLayer
from repro.core.config import ChainConfig
from repro.core.mapper import LayerMapper
from repro.core.performance import PerformanceModel
from repro.core.scheduler import BatchScheduler
from repro.memory.traffic import TrafficModel


@st.composite
def layer_strategy(draw):
    """A random but valid ConvLayer covering the supported kernel/stride space."""
    kernel = draw(st.sampled_from([1, 2, 3, 5, 7, 11]))
    stride = draw(st.sampled_from([1, 1, 1, 2, 4]))
    padding = draw(st.integers(0, kernel // 2))
    extra = draw(st.integers(0, 40))
    size = kernel + extra
    groups = draw(st.sampled_from([1, 1, 2]))
    in_channels = groups * draw(st.integers(1, 8))
    out_channels = groups * draw(st.integers(1, 8))
    return ConvLayer(
        name="prop",
        in_channels=in_channels,
        out_channels=out_channels,
        in_height=size,
        in_width=size,
        kernel_size=kernel,
        stride=stride,
        padding=padding,
        groups=groups,
    )


class TestMappingInvariants:
    @given(layer=layer_strategy())
    @settings(max_examples=60, deadline=None)
    def test_active_pes_never_exceed_chain(self, layer):
        mapping = LayerMapper(ChainConfig()).map_layer(layer)
        assert 0 < mapping.active_pes <= 576
        assert 0 < mapping.spatial_utilization <= 1.0

    @given(layer=layer_strategy())
    @settings(max_examples=60, deadline=None)
    def test_passes_cover_all_channel_pairs(self, layer):
        mapping = LayerMapper(ChainConfig()).map_layer(layer)
        covered = mapping.passes * mapping.active_primitives
        assert covered >= mapping.channel_pairs
        assert (mapping.passes - 1) * mapping.active_primitives < mapping.channel_pairs

    @given(layer=layer_strategy())
    @settings(max_examples=60, deadline=None)
    def test_kernel_load_cycles_equal_weight_count(self, layer):
        mapping = LayerMapper(ChainConfig()).map_layer(layer)
        assert mapping.kernel_load_cycles == layer.weight_count


class TestPerformanceInvariants:
    @given(layer=layer_strategy())
    @settings(max_examples=60, deadline=None)
    def test_cycles_respect_the_mac_bound(self, layer):
        model = PerformanceModel(ChainConfig())
        perf = model.layer_performance(layer)
        # the chain can never do more than one MAC per active PE per cycle
        assert perf.conv_cycles_per_image * perf.mapping.active_pes >= layer.macs * 0.999

    @given(layer=layer_strategy())
    @settings(max_examples=60, deadline=None)
    def test_utilizations_bounded(self, layer):
        perf = PerformanceModel(ChainConfig()).layer_performance(layer)
        assert 0.0 < perf.temporal_utilization <= 1.0 + 1e-9
        assert 0.0 < perf.effective_utilization <= 1.0 + 1e-9

    @given(layer=layer_strategy(), batch=st.sampled_from([1, 2, 8, 32]))
    @settings(max_examples=40, deadline=None)
    def test_batch_time_scales_linearly_in_convolution(self, layer, batch):
        model = PerformanceModel(ChainConfig())
        one = model.layer_performance(layer, 1)
        many = model.layer_performance(layer, batch)
        assert many.conv_cycles_per_batch == pytest.approx(batch * one.conv_cycles_per_image)
        # kernel loading does not grow with the batch
        assert many.kernel_load_cycles == one.kernel_load_cycles

    @given(layer=layer_strategy())
    @settings(max_examples=40, deadline=None)
    def test_detailed_mode_never_faster_than_paper_mode(self, layer):
        assume(layer.stride == 1)
        paper = PerformanceModel(ChainConfig(), mode="paper").pair_cycles(layer)
        detailed = PerformanceModel(ChainConfig(), mode="detailed").pair_cycles(layer)
        assert detailed >= paper


class TestTrafficInvariants:
    @given(layer=layer_strategy())
    @settings(max_examples=60, deadline=None)
    def test_traffic_lower_bounds(self, layer):
        model = TrafficModel(ChainConfig())
        traffic = model.layer_traffic(layer, batch=1)
        word = 2
        # DRAM must at least move every weight, every ifmap pixel and every ofmap pixel once
        compulsory = (layer.weight_count + layer.input_pixels + layer.output_pixels) * word
        assert traffic.dram_bytes >= compulsory
        # oMemory sees at least one write per output value
        assert traffic.omemory_bytes >= layer.output_pixels * word
        # kMemory is read at least once per weight
        assert traffic.kmemory_bytes >= layer.weight_count * word * 0.99

    @given(layer=layer_strategy())
    @settings(max_examples=40, deadline=None)
    def test_traffic_monotone_in_batch(self, layer):
        model = TrafficModel(ChainConfig())
        one = model.layer_traffic(layer, batch=1)
        two = model.layer_traffic(layer, batch=2)
        assert two.omemory_bytes == 2 * one.omemory_bytes
        assert two.dram_bytes < 2 * one.dram_bytes  # weights amortised


class TestSchedulerInvariants:
    @given(batch=st.sampled_from([1, 2, 4, 16, 64, 128]))
    @settings(max_examples=12, deadline=None)
    def test_schedule_time_equals_performance_model(self, batch):
        from repro.cnn.zoo import alexnet

        config = ChainConfig()
        scheduler = BatchScheduler(config)
        schedule = scheduler.schedule(alexnet(), batch)
        perf = scheduler.performance.network_performance(alexnet(), batch)
        assert schedule.total_time_s == pytest.approx(perf.total_time_per_batch_s)
        assert schedule.kernel_load_cycles == pytest.approx(
            perf.kernel_load_time_s * config.frequency_hz)
