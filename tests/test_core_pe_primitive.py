"""Tests for the dual-channel PE and the 1D systolic primitive (cycle level)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnn.reference import conv2d_single_channel
from repro.core.pe import DualChannelPE, PEInputs, TaggedPsum
from repro.core.primitive import SystolicPrimitive
from repro.errors import MappingError, SimulationError


class TestTaggedPsum:
    def test_accumulate_preserves_tag(self):
        psum = TaggedPsum(value=10, start_timestamp=7)
        updated = psum.accumulate(5)
        assert updated.value == 15
        assert updated.start_timestamp == 7


class TestDualChannelPE:
    def test_weight_load_and_select(self):
        pe = DualChannelPE(position=0, kmemory_depth=4)
        pe.load_weight(2, 99)
        pe.select_weight(2)
        assert pe.active_weight == 99
        assert pe.kmemory_reads == 1

    def test_mac_uses_selected_channel(self):
        pe = DualChannelPE(position=0)
        pe.load_weight(0, 3)
        pe.select_weight(0)
        outputs = pe.evaluate(PEInputs(even_pixel=2, odd_pixel=7, psum=TaggedPsum(0, 1),
                                       channel_select="even"))
        pe.tick()
        # the psum computed this cycle only becomes visible downstream after
        # two further edges; this cycle's downstream values are the reset ones
        assert outputs.psum is None
        pe.evaluate(PEInputs(None, None, None, None))
        pe.tick()
        outputs = pe.evaluate(PEInputs(None, None, None, None))
        assert outputs.psum.value == 6

    def test_missing_pixel_forwards_psum_unchanged(self):
        pe = DualChannelPE(position=0)
        pe.load_weight(0, 3)
        pe.select_weight(0)
        pe.evaluate(PEInputs(even_pixel=None, odd_pixel=None, psum=TaggedPsum(5, 1),
                             channel_select="even"))
        pe.tick()
        pe.evaluate(PEInputs(None, None, None, None))
        pe.tick()
        outputs = pe.evaluate(PEInputs(None, None, None, None))
        assert outputs.psum.value == 5
        assert pe.idle_cycles >= 1

    def test_channel_registers_forward_with_one_cycle_delay(self):
        pe = DualChannelPE(position=0)
        first = pe.evaluate(PEInputs(even_pixel=11, odd_pixel=22, psum=None, channel_select=None))
        assert first.even_pixel is None and first.odd_pixel is None
        pe.tick()
        second = pe.evaluate(PEInputs(even_pixel=0, odd_pixel=0, psum=None, channel_select=None))
        assert second.even_pixel == 11 and second.odd_pixel == 22

    def test_reset_datapath_keeps_weights(self):
        pe = DualChannelPE(position=0)
        pe.load_weight(0, 7)
        pe.select_weight(0)
        pe.evaluate(PEInputs(1, 1, TaggedPsum(0, 1), "even"))
        pe.tick()
        pe.reset_datapath()
        assert pe.active_weight == 7
        assert pe.psum_reg_a.value is None


class TestSystolicPrimitiveBasics:
    def test_kernel_loading_is_column_major(self):
        primitive = SystolicPrimitive(kernel_size=3)
        kernel = np.arange(9).reshape(3, 3)
        cycles = primitive.load_kernel(kernel, slot=0)
        primitive.select_kernel(0)
        assert cycles == 9
        snapshot = primitive.weight_snapshot()
        # PE q holds kernel[q % K][q // K]
        assert snapshot[0] == kernel[0, 0]
        assert snapshot[1] == kernel[1, 0]
        assert snapshot[3] == kernel[0, 1]
        assert snapshot[8] == kernel[2, 2]

    def test_kernel_shape_mismatch(self):
        primitive = SystolicPrimitive(kernel_size=3)
        with pytest.raises(MappingError):
            primitive.load_kernel(np.zeros((2, 2)))

    def test_invalid_kernel_size(self):
        with pytest.raises(MappingError):
            SystolicPrimitive(kernel_size=0)

    def test_stripe_must_be_2d(self):
        primitive = SystolicPrimitive(kernel_size=2)
        primitive.load_kernel(np.ones((2, 2)))
        primitive.select_kernel()
        with pytest.raises(SimulationError):
            primitive.run_stripe(np.ones(5))

    def test_drain_latency_scales_with_kernel(self):
        assert SystolicPrimitive(3).drain_latency() == 2 * 9 + 2
        assert SystolicPrimitive(5).drain_latency() == 2 * 25 + 2


class TestSystolicPrimitiveConvolution:
    def _run(self, kernel_size, rows, width, seed=0):
        rng = np.random.default_rng(seed)
        stripe = rng.integers(-8, 8, size=(rows, width))
        kernel = rng.integers(-4, 4, size=(kernel_size, kernel_size))
        primitive = SystolicPrimitive(kernel_size=kernel_size)
        primitive.load_kernel(kernel)
        primitive.select_kernel()
        result = primitive.run_stripe(stripe)
        expected = conv2d_single_channel(stripe.astype(float), kernel.astype(float))
        out_rows = rows - kernel_size + 1
        produced = result.as_array(out_rows, width - kernel_size + 1)
        return result, produced, expected[:out_rows]

    def test_full_stripe_k3_matches_reference(self):
        result, produced, expected = self._run(3, rows=5, width=9)
        np.testing.assert_array_equal(produced, expected)
        assert len(result.outputs) == expected.size

    def test_full_stripe_k2_matches_reference(self):
        _, produced, expected = self._run(2, rows=3, width=7)
        np.testing.assert_array_equal(produced, expected)

    def test_full_stripe_k5_matches_reference(self):
        _, produced, expected = self._run(5, rows=9, width=12, seed=3)
        np.testing.assert_array_equal(produced, expected)

    def test_partial_stripe_produces_one_row(self):
        _, produced, expected = self._run(3, rows=3, width=8, seed=1)
        assert produced.shape == (1, 6)
        np.testing.assert_array_equal(produced, expected)

    def test_one_output_per_cycle_in_steady_state(self):
        result, _, expected = self._run(3, rows=5, width=30, seed=2)
        completion = [output.completion_cycle for output in result.outputs]
        # consecutive completions are one cycle apart within a column batch
        gaps = np.diff(sorted(completion))
        assert np.all(gaps >= 1)
        assert np.median(gaps) == 1.0

    def test_cycle_count_is_streaming_plus_drain(self):
        result, _, _ = self._run(3, rows=5, width=9)
        # K*(W-1) + (2K-1) streaming + drain
        assert result.cycles == (3 * 8 + 5) + SystolicPrimitive(3).drain_latency()

    def test_macs_counted(self):
        result, _, _ = self._run(3, rows=5, width=9)
        assert result.macs > 0
        assert result.macs <= result.cycles * 9

    def test_outputs_tagged_inside_stripe(self):
        result, _, _ = self._run(3, rows=5, width=9)
        for output in result.outputs:
            assert 0 <= output.out_row_in_stripe < 3
            assert 0 <= output.out_col < 7


class TestSystolicPrimitiveProperties:
    @given(
        kernel=st.integers(min_value=2, max_value=4),
        extra_width=st.integers(min_value=0, max_value=6),
        short_rows=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_primitive_equals_reference_convolution(self, kernel, extra_width, short_rows, seed):
        rows = max(kernel, 2 * kernel - 1 - short_rows)
        width = kernel + extra_width
        rng = np.random.default_rng(seed)
        stripe = rng.integers(-16, 16, size=(rows, width))
        weights = rng.integers(-8, 8, size=(kernel, kernel))
        primitive = SystolicPrimitive(kernel_size=kernel)
        primitive.load_kernel(weights)
        primitive.select_kernel()
        result = primitive.run_stripe(stripe)
        expected = conv2d_single_channel(stripe.astype(float), weights.astype(float))
        out_rows = rows - kernel + 1
        produced = result.as_array(out_rows, width - kernel + 1)
        np.testing.assert_array_equal(produced, expected[:out_rows])

    @given(
        kernel=st.integers(min_value=2, max_value=4),
        extra_width=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_output_count_matches_window_count(self, kernel, extra_width):
        width = kernel + extra_width
        rows = 2 * kernel - 1
        primitive = SystolicPrimitive(kernel_size=kernel)
        primitive.load_kernel(np.ones((kernel, kernel), dtype=int))
        primitive.select_kernel()
        result = primitive.run_stripe(np.ones((rows, width), dtype=int))
        assert len(result.outputs) == kernel * (width - kernel + 1)
