"""Tests for the layer mapper, the Fig. 7 dataflow planner and the controller FSM."""

from __future__ import annotations

import math

import pytest

from repro.cnn.layer import ConvLayer
from repro.cnn.zoo import alexnet
from repro.core.config import ChainConfig
from repro.core.controller import ChainController, Phase
from repro.core.dataflow import DataflowPlanner
from repro.core.mapper import LayerMapper
from repro.errors import MappingError, SimulationError


@pytest.fixture
def mapper(paper_config):
    return LayerMapper(paper_config)


@pytest.fixture
def planner(paper_config):
    return DataflowPlanner(paper_config)


class TestLayerMapper:
    def test_alexnet_conv3_mapping(self, mapper, alexnet_network):
        mapping = mapper.map_layer(alexnet_network.conv_layer("conv3"))
        assert mapping.active_primitives == 64
        assert mapping.active_pes == 576
        assert mapping.channel_pairs == 384 * 256
        assert mapping.passes == 1536
        assert mapping.kernel_load_cycles == 884_736

    def test_alexnet_conv1_mapping(self, mapper, alexnet_network):
        mapping = mapper.map_layer(alexnet_network.conv_layer("conv1"))
        assert mapping.active_primitives == 4
        assert mapping.spatial_utilization == pytest.approx(484 / 576)
        assert mapping.passes == 72

    def test_kmemory_refills_when_passes_exceed_capacity(self, mapper, alexnet_network):
        # conv3 needs 1536 weights per PE but kMemory holds 256
        mapping = mapper.map_layer(alexnet_network.conv_layer("conv3"))
        assert not mapping.weights_fit_in_kmemory
        assert mapping.kmemory_refills == 6

    def test_small_layer_fits_kmemory(self, mapper):
        layer = ConvLayer("small", 8, 8, 16, 16, kernel_size=3, padding=1)
        mapping = mapper.map_layer(layer)
        assert mapping.weights_fit_in_kmemory

    def test_kernel_too_large_for_chain(self):
        mapper = LayerMapper(ChainConfig(num_pes=36))
        with pytest.raises(MappingError):
            mapper.map_layer(ConvLayer("big", 1, 1, 20, 20, kernel_size=7))

    def test_stripes_per_pair(self, mapper, alexnet_network):
        mapping = mapper.map_layer(alexnet_network.conv_layer("conv3"))
        assert mapping.stripes_per_pair == [3, 3, 3, 3, 1]

    def test_map_network(self, mapper, alexnet_network):
        mappings = mapper.map_network(alexnet_network.conv_layers)
        assert len(mappings) == 5

    def test_describe(self, mapper, alexnet_network):
        text = mapper.map_layer(alexnet_network.conv_layer("conv1")).describe()
        assert "conv1" in text and "primitives" in text


class TestLayerMapperEdgeCases:
    """Mapper edge cases: oversized kernels, kMemory refills, grouped convs."""

    def test_kernel_area_exceeding_every_chain_size(self):
        # K^2 > P must raise for any chain shorter than the kernel area,
        # including the off-by-one boundary (P == K^2 - 1)
        layer = ConvLayer("k5", 1, 1, 16, 16, kernel_size=5)
        for pes in (1, 8, 24):
            with pytest.raises(MappingError):
                LayerMapper(ChainConfig(num_pes=pes)).map_layer(layer)
        mapping = LayerMapper(ChainConfig(num_pes=25)).map_layer(layer)
        assert mapping.active_primitives == 1
        assert mapping.spatial_utilization == 1.0

    def test_kmemory_refill_paths(self, alexnet_network):
        # conv3 needs 1536 weights/PE against a 256-word kMemory: chunking
        # the kernel stream changes the refill count but never the total
        # one-weight-per-cycle load volume
        layer = alexnet_network.conv_layer("conv3")
        mapper = LayerMapper(ChainConfig())
        full = mapper.map_layer_with(layer)
        assert (full.kernel_chunk, full.kmemory_refills) == (256, 6)
        halved = mapper.map_layer_with(layer, kernel_chunk=128)
        assert (halved.kernel_chunk, halved.kmemory_refills) == (128, 12)
        single = mapper.map_layer_with(layer, kernel_chunk=1)
        assert single.kmemory_refills == single.passes
        assert full.kernel_load_cycles == halved.kernel_load_cycles \
            == single.kernel_load_cycles == layer.weight_count

    def test_kernel_chunk_validation(self, mapper, alexnet_network):
        layer = alexnet_network.conv_layer("conv3")
        for chunk in (0, -1, 257):
            with pytest.raises(MappingError):
                mapper.map_layer_with(layer, kernel_chunk=chunk)

    def test_chunk_capped_by_weights_per_pe(self, mapper):
        # a layer whose weights fit easily: the effective chunk is the
        # per-PE weight demand, not the full kMemory capacity
        layer = ConvLayer("fits", 8, 8, 16, 16, kernel_size=3, padding=1)
        mapping = mapper.map_layer_with(layer, kernel_chunk=256)
        assert mapping.kernel_chunk == mapping.passes
        assert mapping.kmemory_refills == 1

    def test_grouped_conv_pass_accounting(self, mapper, grouped_layer):
        # groups halve the channel pairs: M * C/g, not M * C
        mapping = mapper.map_layer(grouped_layer)
        assert mapping.channel_pairs == 4 * 2
        # and passes follow the reduced pair count at any primitive budget
        narrowed = mapper.map_layer_with(grouped_layer, primitives=3)
        assert narrowed.passes == math.ceil(8 / 3)
        assert narrowed.active_primitives == 3
        assert narrowed.active_pes == 3 * 9

    def test_alexnet_grouped_layers_halve_pairs(self, mapper, alexnet_network):
        conv2 = alexnet_network.conv_layer("conv2")   # groups=2
        conv3 = alexnet_network.conv_layer("conv3")   # groups=1
        assert mapper.map_layer(conv2).channel_pairs == 256 * 48
        assert mapper.map_layer(conv3).channel_pairs == 384 * 256
        # kernel loading covers all groups' weights exactly once
        assert mapper.map_layer(conv2).kernel_load_cycles == conv2.weight_count

    def test_primitive_override_validation(self, mapper, alexnet_network):
        layer = alexnet_network.conv_layer("conv1")  # K=11 -> at most 4
        for primitives in (0, -2, 5):
            with pytest.raises(MappingError):
                mapper.map_layer_with(layer, primitives=primitives)
        narrowed = mapper.map_layer_with(layer, primitives=2)
        assert narrowed.active_primitives == 2
        assert narrowed.passes == math.ceil(288 / 2)

    def test_stripe_height_override(self, mapper, alexnet_network):
        layer = alexnet_network.conv_layer("conv3")  # E=13, K=3
        shorter = mapper.map_layer_with(layer, stripe_height=2)
        assert shorter.stripe_height == 2
        assert shorter.stripes_per_pair == [2, 2, 2, 2, 2, 2, 1]
        with pytest.raises(MappingError):
            mapper.map_layer_with(layer, stripe_height=4)
        with pytest.raises(MappingError):
            mapper.map_layer_with(layer, stripe_height=0)


class TestDataflowPlanner:
    def test_conv3_tiles(self, planner, alexnet_network, paper_config):
        layer = alexnet_network.conv_layer("conv3")
        tile = planner.plan(layer, active_primitives=64)
        assert tile.th == 3
        assert tile.stripe_rows == 5
        assert tile.tm == 64
        assert tile.ifmap_tile_bytes <= paper_config.imemory_bytes
        assert tile.ofmap_tile_bytes <= paper_config.omemory_bytes

    def test_conv1_tiles_fit_imemory(self, planner, alexnet_network, paper_config):
        layer = alexnet_network.conv_layer("conv1")
        tile = planner.plan(layer, active_primitives=4)
        assert tile.stripe_rows == 21
        assert tile.ifmap_tile_bytes <= paper_config.imemory_bytes

    def test_outer_and_inner_tile_counts(self, planner, alexnet_network):
        layer = alexnet_network.conv_layer("conv3")
        tile = planner.plan(layer, active_primitives=64)
        assert tile.outer_tiles == 6
        assert tile.inner_tiles == 5

    def test_iteration_order_counts(self, planner):
        layer = ConvLayer("t", 4, 6, 12, 12, kernel_size=3, padding=1)
        tile = planner.plan(layer, active_primitives=8)
        iterations = list(planner.iterations(tile, batch=2))
        # every (outer tile, image, inner tile, m, c) combination appears once
        expected = tile.outer_tiles * 2 * tile.inner_tiles * layer.out_channels \
            * layer.in_channels_per_group // tile.outer_tiles
        assert len(iterations) == expected
        # innermost loop is the ifmap channel
        assert [it.ifmap_channel for it in iterations[:4]] == [0, 1, 2, 3]

    def test_reuse_factors_positive_and_ordered(self, planner, alexnet_network):
        layer = alexnet_network.conv_layer("conv3")
        tile = planner.plan(layer, active_primitives=64)
        ifmap_reuse, weight_reuse, psum_reuse = planner.reuse_factors(tile)
        assert ifmap_reuse > psum_reuse > 0
        assert weight_reuse == pytest.approx(3 * 13)

    def test_tiny_imemory_raises(self):
        tiny = ChainConfig(imemory_bytes=64)
        planner = DataflowPlanner(tiny)
        layer = ConvLayer("wide", 1, 1, 64, 64, kernel_size=3)
        with pytest.raises(Exception):
            planner.plan(layer, active_primitives=1)

    def test_describe(self, planner, alexnet_network):
        layer = alexnet_network.conv_layer("conv2")
        tile = planner.plan(layer, active_primitives=23)
        assert "Tm=" in tile.describe()


class TestChainController:
    def test_normal_sequence(self, mapper, alexnet_network):
        mapping = mapper.map_layer(alexnet_network.conv_layer("conv3"))
        controller = ChainController()
        controller.configure(mapping)
        load = controller.load_kernels()
        assert load == mapping.kernel_load_cycles
        controller.stream(1000)
        controller.drain(20)
        controller.finish_layer()
        assert controller.phase == Phase.IDLE
        assert controller.layers_completed == 1
        assert controller.log.busy == load + 1020

    def test_busy_fraction(self, mapper, alexnet_network):
        mapping = mapper.map_layer(alexnet_network.conv_layer("conv5"))
        controller = ChainController()
        controller.configure(mapping)
        controller.load_kernels(10)
        controller.stream(90)
        controller.finish_layer()
        assert controller.busy_fraction == pytest.approx(100 / 101)

    def test_illegal_transition(self):
        controller = ChainController()
        with pytest.raises(SimulationError):
            controller.stream(10)

    def test_load_without_configure(self):
        controller = ChainController()
        with pytest.raises(SimulationError):
            controller.load_kernels()

    def test_finish_from_idle_rejected(self):
        controller = ChainController()
        with pytest.raises(SimulationError):
            controller.finish_layer()

    def test_negative_cycles_rejected(self, mapper, alexnet_network):
        mapping = mapper.map_layer(alexnet_network.conv_layer("conv5"))
        controller = ChainController()
        controller.configure(mapping)
        controller.load_kernels(5)
        with pytest.raises(SimulationError):
            controller.stream(-1)

    def test_reset(self, mapper, alexnet_network):
        mapping = mapper.map_layer(alexnet_network.conv_layer("conv5"))
        controller = ChainController()
        controller.configure(mapping)
        controller.reset()
        assert controller.phase == Phase.IDLE
        assert controller.log.total == 0
