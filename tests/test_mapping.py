"""Tests for the mapping-search subsystem (mapspace, strategies, optimizer).

The searched-vs-baseline equivalence tests in this module are part of the CI
equivalence gate (skips are failures): the searched schedule must never be
worse than the paper's Table II mapping, and every searched mapping must be
functionally equivalent — bit-identical ofmaps against the baseline stripe
plan, im2col golden reference matched to float round-off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.batch import MAPPING_RESULT_COLUMNS, MappingBatchEvaluator
from repro.cnn.generator import WorkloadGenerator, stable_seed
from repro.cnn.layer import ConvLayer
from repro.cnn.reference import conv2d_im2col
from repro.cnn.zoo import alexnet, tiny_test_network
from repro.core.config import ChainConfig
from repro.core.scheduler import BatchScheduler
from repro.engine import RunCache, create_engine
from repro.errors import ConfigurationError, MappingError
from repro.mapping import (
    OBJECTIVES,
    LayerMapSpace,
    MappingCandidate,
    MapSpace,
    OptimizedSchedule,
    ScheduleOptimizer,
    make_strategy,
)
from repro.mapping.mapspace import candidate_arrays
from repro.sim.functional import FunctionalChainSimulator


@pytest.fixture(scope="module")
def alexnet_net():
    return alexnet()


@pytest.fixture(scope="module")
def small_layer():
    return ConvLayer("small", in_channels=6, out_channels=10, in_height=14,
                     in_width=14, kernel_size=3, padding=1)


@pytest.fixture(scope="module")
def small_space(small_layer):
    # a small chain so the *full* space is brute-forceable
    return LayerMapSpace(small_layer, ChainConfig(num_pes=45,
                                                  kmemory_words_per_pe=8))


class TestLayerMapSpace:
    def test_baseline_is_the_table2_mapping(self, alexnet_net):
        space = LayerMapSpace(alexnet_net.conv_layer("conv3"))
        baseline = space.baseline()
        assert baseline.primitives == 64
        assert baseline.stripe_height == 3
        assert baseline.chunk == 256
        assert baseline.interleave == "batch"

    def test_baseline_is_enumerated(self, small_space):
        assert small_space.baseline() in small_space.enumerate()

    def test_every_enumerated_candidate_is_legal(self, small_space):
        for candidate in small_space.enumerate():
            small_space.validate(candidate)

    def test_pruned_size_matches_enumeration(self, small_space):
        assert small_space.pruned_size() == len(small_space.enumerate())
        assert small_space.pruned_size() < small_space.full_size()

    def test_illegal_candidates_raise_mapping_error(self, small_space):
        layer = small_space.layer
        too_many = small_space.max_primitives + 1
        with pytest.raises(MappingError):
            small_space.validate(MappingCandidate(too_many, layer.kernel_size, 1))
        with pytest.raises(MappingError):
            small_space.validate(MappingCandidate(1, layer.kernel_size + 1, 1))
        with pytest.raises(MappingError):
            small_space.validate(
                MappingCandidate(1, 1, small_space.kmemory_capacity + 1))
        with pytest.raises(MappingError):
            MappingCandidate(1, 1, 1, interleave="diagonal")

    def test_kernel_larger_than_chain_raises(self):
        layer = ConvLayer("big", 1, 1, 20, 20, kernel_size=7)
        with pytest.raises(MappingError):
            LayerMapSpace(layer, ChainConfig(num_pes=36))

    def test_pruning_keeps_the_full_space_optimum(self, small_space):
        """Exhaustive over the pruned space == brute force over the full space."""
        evaluator = MappingBatchEvaluator(small_space.layer, small_space.config,
                                          batch=4)
        full = [
            MappingCandidate(p, h, c, interleave)
            for p in range(1, small_space.max_primitives + 1)
            for h in range(1, small_space.layer.kernel_size + 1)
            for c in range(1, small_space.kmemory_capacity + 1)
            for interleave in ("batch", "image")
        ]
        pruned = small_space.enumerate()
        for column in ("first_image_latency_s", "time_per_batch_s",
                       "energy_per_batch_j", "edp_js"):
            full_best = evaluator.evaluate(*candidate_arrays(full))[column].min()
            pruned_best = evaluator.evaluate(*candidate_arrays(pruned))[column].min()
            assert pruned_best == pytest.approx(full_best, rel=1e-12)

    def test_sample_and_neighbor_stay_legal(self, small_space):
        rng = np.random.default_rng(stable_seed(1, "sample"))
        for candidate in small_space.sample(rng, 64):
            small_space.validate(candidate)
            small_space.validate(small_space.neighbor(candidate, rng))

    def test_network_mapspace(self, alexnet_net):
        space = MapSpace(alexnet_net)
        assert len(space) == 5
        assert space.total_pruned_size() < space.total_full_size()
        assert len(space.baseline_candidates()) == 5
        assert "AlexNet" in space.describe()


class TestMappingBatchEvaluator:
    def test_baseline_matches_mapper_accounting(self, alexnet_net):
        """The columnar baseline row reproduces the LayerMapper quantities."""
        from repro.core.mapper import LayerMapper

        config = ChainConfig()
        mapper = LayerMapper(config)
        for layer in alexnet_net.conv_layers:
            space = LayerMapSpace(layer, config)
            evaluator = MappingBatchEvaluator(layer, config, batch=16)
            columns = evaluator.evaluate(*candidate_arrays([space.baseline()]))
            mapping = mapper.map_layer(layer)
            assert columns["passes"][0] == mapping.passes
            assert columns["active_pes"][0] == mapping.active_pes
            assert columns["kmemory_refills"][0] == mapping.kmemory_refills
            assert columns["stripes"][0] == len(mapping.stripes_per_pair)

    def test_columnar_equals_per_candidate(self, small_space):
        """Evaluating a batch of candidates == evaluating them one by one."""
        evaluator = MappingBatchEvaluator(small_space.layer, small_space.config,
                                          batch=8)
        candidates = small_space.enumerate()[::7]
        together = evaluator.evaluate(*candidate_arrays(candidates))
        for index, candidate in enumerate(candidates):
            alone = evaluator.evaluate(*candidate_arrays([candidate]))
            for column in MAPPING_RESULT_COLUMNS:
                assert alone[column][0] == together[column][index]

    def test_image_major_reloads_and_batch_major_spills(self):
        """The interleave tradeoff: reloads vs partial-sum spills."""
        layer = ConvLayer("t", 8, 8, 12, 12, kernel_size=3, padding=1)
        config = ChainConfig(num_pes=18, kmemory_words_per_pe=4)  # refills > 1
        evaluator = MappingBatchEvaluator(layer, config, batch=4)
        space = LayerMapSpace(layer, config)
        base = space.baseline()
        batch_major, image_major = (
            MappingCandidate(base.primitives, base.stripe_height, base.chunk, kind)
            for kind in ("batch", "image"))
        columns = evaluator.evaluate(*candidate_arrays([batch_major, image_major]))
        assert columns["kmemory_refills"][0] > 1
        # batch-major: kernels once per batch, partials spill
        assert columns["kernel_load_cycles"][0] == layer.weight_count
        assert columns["spill_dram_words"][0] > 0
        # image-major: kernels per image, no spills, better first-image latency
        assert columns["kernel_load_cycles"][1] == layer.weight_count * 4
        assert columns["spill_dram_words"][1] == 0
        assert (columns["first_image_latency_s"][1]
                < columns["first_image_latency_s"][0])
        assert columns["time_per_batch_s"][1] > columns["time_per_batch_s"][0]

    def test_rejects_bad_configuration(self, small_layer):
        with pytest.raises(ConfigurationError):
            MappingBatchEvaluator(small_layer, batch=0)
        with pytest.raises(ConfigurationError):
            MappingBatchEvaluator(ConvLayer("k7", 1, 1, 20, 20, kernel_size=7),
                                  ChainConfig(num_pes=36))


class TestStrategies:
    def _scorer(self, space, objective="time_per_batch_s", batch=4):
        evaluator = MappingBatchEvaluator(space.layer, space.config, batch=batch)

        def scorer(candidates):
            return evaluator.evaluate(*candidate_arrays(list(candidates)))[objective]

        return scorer

    def test_exhaustive_finds_the_pruned_optimum(self, small_space):
        scorer = self._scorer(small_space)
        result = make_strategy("exhaustive").search(small_space, scorer)
        everything = scorer(small_space.enumerate())
        assert result.best_score == pytest.approx(float(everything.min()))

    @pytest.mark.parametrize("name", ["random", "anneal"])
    def test_stochastic_strategies_are_seed_deterministic(self, small_space, name):
        scorer = self._scorer(small_space)
        first = make_strategy(name, seed=7).search(small_space, scorer)
        second = make_strategy(name, seed=7).search(small_space, scorer)
        assert first.candidates == second.candidates
        assert first.scores == second.scores

    @pytest.mark.parametrize("name", ["random", "greedy", "anneal"])
    def test_strategies_never_lose_to_baseline(self, small_space, name):
        scorer = self._scorer(small_space, objective="first_image_latency_s")
        baseline_score = float(scorer([small_space.baseline()])[0])
        result = make_strategy(name).search(small_space, scorer)
        assert result.best_score <= baseline_score * (1 + 1e-12)

    def test_make_strategy_rejects_unknown_names_and_knobs(self):
        with pytest.raises(ConfigurationError):
            make_strategy("tabu")
        with pytest.raises(ConfigurationError):
            make_strategy("exhaustive", seed=1)


class TestScheduleOptimizer:
    @pytest.mark.parametrize("objective", sorted(OBJECTIVES))
    def test_searched_never_worse_than_table2_on_alexnet(self, alexnet_net,
                                                         objective):
        """The equivalence-gate claim, per objective (CI fails on skips)."""
        optimizer = ScheduleOptimizer(objective=objective, strategy="exhaustive",
                                      batch=16)
        schedule = optimizer.optimize(alexnet_net)
        assert (schedule.objective_value()
                <= schedule.baseline_objective_value() * (1 + 1e-12))

    def test_latency_strictly_better_on_alexnet(self, alexnet_net):
        """Image-major interleave beats batch-blocked loading on refill-heavy
        layers — the strictly-better half of the acceptance criterion."""
        optimizer = ScheduleOptimizer(objective="latency", strategy="exhaustive",
                                      batch=16)
        schedule = optimizer.optimize(alexnet_net)
        assert schedule.objective_value() < schedule.baseline_objective_value()
        assert schedule.improvement_fraction() > 0.25

    def test_schedule_round_trips_through_json(self, alexnet_net):
        optimizer = ScheduleOptimizer(objective="energy", strategy="exhaustive",
                                      batch=8)
        schedule = optimizer.optimize(alexnet_net)
        clone = OptimizedSchedule.from_json_dict(schedule.to_json_dict())
        assert clone.to_json_dict() == schedule.to_json_dict()
        assert clone.objective_value() == schedule.objective_value()

    def test_search_is_memoised_in_run_cache(self, alexnet_net, tmp_path):
        cache = RunCache(tmp_path)
        optimizer = ScheduleOptimizer(objective="latency", strategy="exhaustive",
                                      batch=16, cache=cache)
        first = optimizer.optimize(alexnet_net)
        assert not first.cached
        second = optimizer.optimize(alexnet_net)
        assert second.cached
        assert second.to_json_dict() == first.to_json_dict()
        # a different search configuration misses (fingerprint in the key)
        other = ScheduleOptimizer(objective="energy", strategy="exhaustive",
                                  batch=16, cache=cache)
        assert other.cache_key(alexnet_net) != optimizer.cache_key(alexnet_net)

    def test_verify_searched_mappings_on_tiny_network(self):
        network = tiny_test_network()
        optimizer = ScheduleOptimizer(objective="latency", strategy="exhaustive",
                                      batch=4, config=ChainConfig(num_pes=36))
        schedule = optimizer.optimize(network)
        verification = optimizer.verify(network, schedule)
        assert verification.passed
        assert verification.max_abs_error <= 1e-9

    def test_batch_scheduler_consumes_optimized_schedules(self, alexnet_net):
        optimizer = ScheduleOptimizer(objective="throughput",
                                      strategy="exhaustive", batch=16)
        schedule = optimizer.optimize(alexnet_net)
        timeline = BatchScheduler().schedule_optimized(alexnet_net, schedule)
        assert timeline.batch == 16
        assert timeline.total_time_s == pytest.approx(
            schedule.total_time_per_batch_s())
        assert timeline.frames_per_second == pytest.approx(
            schedule.frames_per_second())

    def test_batch_scheduler_rejects_foreign_schedules(self, alexnet_net):
        optimizer = ScheduleOptimizer(objective="throughput",
                                      strategy="exhaustive", batch=4,
                                      config=ChainConfig(num_pes=36))
        schedule = optimizer.optimize(tiny_test_network())
        with pytest.raises(ConfigurationError):
            BatchScheduler().schedule_optimized(alexnet_net, schedule)

    def test_rejects_unknown_objective(self):
        with pytest.raises(ConfigurationError):
            ScheduleOptimizer(objective="area")


class TestFunctionalEquivalence:
    """Searched stripe plans are bit-identical to the baseline dataflow."""

    @pytest.mark.parametrize("kernel_size,stride,padding,groups", [
        (3, 1, 1, 1),
        (3, 2, 0, 1),
        (5, 1, 2, 2),
        (7, 4, 3, 1),
    ])
    def test_all_stripe_heights_bit_identical(self, kernel_size, stride,
                                              padding, groups):
        layer = ConvLayer("t", 4, 4, 21, 21, kernel_size=kernel_size,
                          stride=stride, padding=padding, groups=groups)
        generator = WorkloadGenerator(seed=stable_seed(2017, layer.name))
        ifmaps, weights = generator.layer_pair(layer)
        reference = conv2d_im2col(layer, ifmaps, weights)
        simulator = FunctionalChainSimulator(backend="both")
        baseline = simulator.run_layer(layer, ifmaps, weights)
        for height in range(1, kernel_size + 1):
            run = simulator.run_layer(layer, ifmaps, weights, stripe_height=height)
            assert np.array_equal(run.ofmaps, baseline.ofmaps)
            assert run.stats.windows_kept == baseline.stats.windows_kept
            assert float(np.max(np.abs(run.ofmaps - reference))) <= 1e-9

    def test_network_runner_accepts_stripe_heights(self):
        from repro.sim.network import FunctionalNetworkRunner

        network = tiny_test_network()
        runner = FunctionalNetworkRunner(ChainConfig(num_pes=36), backend="both")
        heights = {layer.name: 2 for layer in network.conv_layers}
        result = runner.run(network, stripe_heights=heights)
        assert result.passed
        default = runner.run(network)
        assert result.max_abs_error == default.max_abs_error

    def test_rejects_illegal_stripe_height(self, small_layer):
        generator = WorkloadGenerator(seed=1)
        ifmaps, weights = generator.layer_pair(small_layer)
        simulator = FunctionalChainSimulator(backend="vectorized")
        with pytest.raises(ConfigurationError):
            simulator.run_layer(small_layer, ifmaps, weights, stripe_height=0)
        with pytest.raises(ConfigurationError):
            simulator.run_layer(small_layer, ifmaps, weights,
                                stripe_height=small_layer.kernel_size + 1)


class TestMappedEngine:
    def test_registered_and_reports_improvement(self, alexnet_net):
        engine = create_engine("analytical-mapped", objective="latency",
                               strategy="exhaustive")
        record = engine.evaluate(alexnet_net, batch=16)
        assert record.engine == "analytical-mapped"
        assert record.batch == 16
        assert record.metric("improvement_fraction") > 0.0
        assert record.metric("objective_value") <= record.metric(
            "baseline_objective_value")
        assert record.extra["schedule"]["layers"]

    def test_requested_batch_is_honored(self, alexnet_net):
        # batch=1 must evaluate batch 1, not be rewritten to a default
        engine = create_engine("analytical-mapped", strategy="exhaustive")
        record = engine.evaluate(alexnet_net, batch=1)
        assert record.batch == 1
        assert record.extra["schedule"]["batch"] == 1

    def test_fingerprint_carries_the_search_configuration(self):
        engine = create_engine("analytical-mapped", objective="energy",
                               strategy="anneal", seed=11, iterations=16)
        fingerprint = engine.fingerprint()
        assert fingerprint["objective"] == "energy"
        assert fingerprint["strategy"]["name"] == "anneal"
        assert fingerprint["strategy"]["seed"] == 11
        other = create_engine("analytical-mapped", objective="energy",
                              strategy="anneal", seed=12, iterations=16)
        assert other.fingerprint() != fingerprint


class TestStableSeed:
    def test_stable_seed_is_deterministic_and_sensitive(self):
        assert stable_seed(2017, "anneal", "conv3") == stable_seed(
            2017, "anneal", "conv3")
        assert stable_seed(2017, "anneal", "conv3") != stable_seed(
            2017, "anneal", "conv4")
        assert stable_seed(1) != stable_seed(2)

    def test_generator_spawn_is_order_independent(self, small_layer):
        parent = WorkloadGenerator(seed=2017)
        parent.ifmaps(small_layer)  # perturb the parent stream
        child_after = parent.spawn("conv1").weights(small_layer)
        child_fresh = WorkloadGenerator(seed=2017).spawn("conv1").weights(small_layer)
        assert np.array_equal(child_after, child_fresh)
