"""Tests for the column-wise scan schedule (the heart of the dual-channel PE)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scan import ColumnScanSchedule, stripe_plan
from repro.errors import ConfigurationError


class TestTimestampMapping:
    def test_fig5b_timestamps_for_k3(self):
        # Fig. 5(b): a 5-row stripe, column c gets timestamps 3c+1 .. 3c+5
        schedule = ColumnScanSchedule(kernel_size=3, width=8)
        assert [schedule.timestamp(r, 0) for r in range(5)] == [1, 2, 3, 4, 5]
        assert [schedule.timestamp(r, 1) for r in range(5)] == [4, 5, 6, 7, 8]
        assert [schedule.timestamp(r, 2) for r in range(5)] == [7, 8, 9, 10, 11]

    def test_total_timestamps(self):
        schedule = ColumnScanSchedule(kernel_size=3, width=8)
        assert schedule.total_timestamps == 3 * 7 + 5  # K*(W-1) + (2K-1)

    def test_fill_latency_is_k_squared(self):
        assert ColumnScanSchedule(3, 8).fill_latency == 9
        assert ColumnScanSchedule(5, 12).fill_latency == 25

    def test_out_of_range_rejected(self):
        schedule = ColumnScanSchedule(3, 8)
        with pytest.raises(ConfigurationError):
            schedule.timestamp(5, 0)
        with pytest.raises(ConfigurationError):
            schedule.timestamp(0, 8)

    def test_width_must_fit_kernel(self):
        with pytest.raises(ConfigurationError):
            ColumnScanSchedule(kernel_size=5, width=4)

    def test_stripe_rows_bounds(self):
        with pytest.raises(ConfigurationError):
            ColumnScanSchedule(3, 8, stripe_rows=2)
        with pytest.raises(ConfigurationError):
            ColumnScanSchedule(3, 8, stripe_rows=6)


class TestDualChannelInvariant:
    @pytest.mark.parametrize("kernel", [2, 3, 5, 7])
    def test_at_most_two_pixels_share_a_timestamp(self, kernel):
        schedule = ColumnScanSchedule(kernel, width=4 * kernel)
        for delivery in schedule.deliveries():
            assert delivery.pixel_count <= 2

    def test_shared_pixels_have_opposite_column_parity(self):
        schedule = ColumnScanSchedule(3, 10)
        for timestamp in range(1, schedule.total_timestamps + 1):
            pixels = schedule.pixels_at(timestamp)
            if len(pixels) == 2:
                assert pixels[0][1] % 2 != pixels[1][1] % 2

    def test_every_pixel_delivered_exactly_once(self):
        schedule = ColumnScanSchedule(3, 6)
        seen = set()
        for delivery in schedule.deliveries():
            for pixel in (delivery.even, delivery.odd):
                if pixel is not None:
                    assert pixel not in seen
                    seen.add(pixel)
        assert len(seen) == schedule.pixels_streamed()

    def test_average_rate_below_two_pixels_per_cycle(self):
        schedule = ColumnScanSchedule(5, 40)
        assert schedule.average_pixels_per_cycle() <= 2.0
        assert schedule.peak_pixels_per_cycle() == 2


class TestWindowEnumeration:
    def test_one_valid_window_per_cycle_in_steady_state(self):
        schedule = ColumnScanSchedule(3, 10)
        # every timestamp from K^2 up to the last interior window completes one
        interior = [schedule.window_ending_at(t) for t in range(9, schedule.total_timestamps + 1)]
        valid = [tag for tag in interior if tag.valid]
        assert len(valid) == 3 * (10 - 3 + 1)

    def test_window_pixels_are_the_k_by_k_patch_in_column_major_order(self):
        schedule = ColumnScanSchedule(3, 8)
        pixels = schedule.window_pixels(1, 2)
        assert pixels == [(1 + i, 2 + j) for j in range(3) for i in range(3)]

    def test_window_timestamps_are_consecutive(self):
        schedule = ColumnScanSchedule(3, 8)
        for tag in schedule.valid_windows():
            stamps = [schedule.timestamp(r, c)
                      for (r, c) in schedule.window_pixels(tag.out_row_in_stripe, tag.out_col)]
            assert stamps == list(range(tag.timestamp - 8, tag.timestamp + 1))

    def test_partial_stripe_produces_fewer_rows(self):
        schedule = ColumnScanSchedule(3, 8, stripe_rows=3)
        assert schedule.out_rows == 1
        rows = {tag.out_row_in_stripe for tag in schedule.valid_windows()}
        assert rows == {0}

    def test_window_pixels_validation(self):
        schedule = ColumnScanSchedule(3, 8)
        with pytest.raises(ConfigurationError):
            schedule.window_pixels(3, 0)
        with pytest.raises(ConfigurationError):
            schedule.window_pixels(0, 6)

    def test_utilization_approaches_one_for_wide_stripes(self):
        narrow = ColumnScanSchedule(3, 6).utilization()
        wide = ColumnScanSchedule(3, 200).utilization()
        assert wide > narrow
        assert wide > 0.97


class TestPeSelection:
    def test_selection_is_none_before_pipeline_reaches_pe(self):
        schedule = ColumnScanSchedule(3, 8)
        assert schedule.pe_channel_select(5, 3) is None

    def test_pe_zero_follows_window_column_parity(self):
        schedule = ColumnScanSchedule(3, 8)
        # PE 0 at timestamp u serves the window starting at u; its column is
        # the window's start column
        assert schedule.pe_column(0, 1) == 0
        assert schedule.pe_column(0, 4) == 1
        assert schedule.pe_column(0, 7) == 2

    def test_pe_column_includes_window_offset(self):
        schedule = ColumnScanSchedule(3, 8)
        # PE 6 (q=6 -> in-window column 2) of the first window is at column 2
        assert schedule.pe_column(6, 7) == 2

    def test_channel_names(self):
        schedule = ColumnScanSchedule(3, 8)
        assert schedule.pe_channel_select(0, 1) == "even"
        assert schedule.pe_channel_select(0, 4) == "odd"

    def test_pe_index_bounds(self):
        schedule = ColumnScanSchedule(3, 8)
        with pytest.raises(ConfigurationError):
            schedule.pe_column(9, 10)


class TestStripePlan:
    def test_exact_multiple(self):
        assert stripe_plan(12, 3) == [3, 3, 3, 3]

    def test_remainder(self):
        assert stripe_plan(13, 3) == [3, 3, 3, 3, 1]

    def test_alexnet_conv1(self):
        assert stripe_plan(55, 11) == [11] * 5

    def test_single_row(self):
        assert stripe_plan(1, 5) == [1]

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            stripe_plan(0, 3)
        with pytest.raises(ConfigurationError):
            stripe_plan(5, 0)


class TestHypothesisInvariants:
    @given(kernel=st.integers(2, 7), extra_width=st.integers(0, 20))
    @settings(max_examples=50, deadline=None)
    def test_dual_channel_suffices_for_any_geometry(self, kernel, extra_width):
        schedule = ColumnScanSchedule(kernel, width=kernel + extra_width)
        assert schedule.peak_pixels_per_cycle() <= 2

    @given(kernel=st.integers(2, 6), extra_width=st.integers(0, 15),
           short=st.integers(0, 5))
    @settings(max_examples=50, deadline=None)
    def test_valid_window_count_matches_geometry(self, kernel, extra_width, short):
        width = kernel + extra_width
        stripe_rows = max(kernel, 2 * kernel - 1 - short)
        schedule = ColumnScanSchedule(kernel, width, stripe_rows=stripe_rows)
        expected = (stripe_rows - kernel + 1) * (width - kernel + 1)
        assert len(schedule.valid_windows()) == expected

    @given(kernel=st.integers(2, 6), extra_width=st.integers(0, 15))
    @settings(max_examples=50, deadline=None)
    def test_every_window_completion_timestamp_is_unique(self, kernel, extra_width):
        schedule = ColumnScanSchedule(kernel, width=kernel + extra_width)
        stamps = [tag.timestamp for tag in schedule.valid_windows()]
        assert len(stamps) == len(set(stamps))

    @given(kernel=st.integers(2, 6), extra_width=st.integers(0, 15))
    @settings(max_examples=50, deadline=None)
    def test_window_pixels_all_streamed_before_completion(self, kernel, extra_width):
        schedule = ColumnScanSchedule(kernel, width=kernel + extra_width)
        for tag in schedule.valid_windows():
            last = max(schedule.timestamp(r, c)
                       for (r, c) in schedule.window_pixels(tag.out_row_in_stripe, tag.out_col))
            assert last == tag.timestamp
