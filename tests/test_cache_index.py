"""Sqlite cache index: CRUD, self-healing, migration, degradation, stress.

The index is an accelerator over the file-per-record RunCache layout —
never the source of truth.  These tests pin the contract: every write
path keeps index and directory consistent, a missing/corrupt/disabled
index costs speed but never correctness, ``migrate`` reconciles any
drift idempotently (including against concurrent writers), and the
WAL-mode database survives the 8-process fork+Barrier stress with zero
lost or corrupt records.  Part of the CI equivalence gate.
"""

from __future__ import annotations

import multiprocessing
import sqlite3
import threading

import pytest

from repro.engine.base import RunRecord
from repro.engine.cache import RunCache
from repro.engine import cache_index
from repro.engine.cache_index import INDEX_ENV, INDEX_FILENAME, CacheIndex

STRESS_PROCESSES = 8
STRESS_SHARED_KEYS = 24
STRESS_PRIVATE_KEYS = 8


def _record(i: int = 0, engine: str = "idx-test") -> RunRecord:
    return RunRecord(engine=engine, network="tiny", batch=1,
                     config_summary=f"record {i}",
                     metrics={"fps": float(i)},
                     extra={"payload": "x" * 64})


# --------------------------------------------------------------------- #
# bare index CRUD
# --------------------------------------------------------------------- #
class TestCacheIndexUnit:
    def test_read_paths_never_materialise_the_database(self, tmp_path):
        index = CacheIndex(tmp_path)
        assert index.lookup("missing") is None
        assert index.totals() == (0, 0) or index.totals() is None
        assert not (tmp_path / INDEX_FILENAME).exists()

    def test_add_lookup_touch_remove(self, tmp_path):
        index = CacheIndex(tmp_path)
        index.add("k1", "k1.json", size=100, mtime=1.0, engine="analytical")
        row = index.lookup("k1")
        assert row == {"path": "k1.json", "size": 100, "mtime": 1.0,
                       "engine": "analytical"}
        assert index.touch("k1", mtime=2.0) is True
        assert index.lookup("k1")["mtime"] == 2.0
        assert index.touch("nope", mtime=2.0) is False
        index.remove("k1")
        assert index.lookup("k1") is None

    def test_upsert_keeps_engine_when_refreshed_without_one(self, tmp_path):
        index = CacheIndex(tmp_path)
        index.add("k", "k.json", 10, 1.0, engine="analytical")
        index.add("k", "k.json", 20, 2.0)  # migrate-style refresh, no engine
        assert index.lookup("k") == {"path": "k.json", "size": 20,
                                     "mtime": 2.0, "engine": "analytical"}

    def test_totals_keys_and_lru_order(self, tmp_path):
        index = CacheIndex(tmp_path)
        index.add("old", "old.json", 10, 1.0)
        index.add("new", "new.json", 30, 3.0)
        index.add("mid", "mid.json", 20, 2.0)
        assert index.totals() == (3, 60)
        assert sorted(index.keys()) == ["mid", "new", "old"]
        assert [key for key, *_ in index.lru()] == ["old", "mid", "new"]

    def test_corrupt_database_degrades_with_one_warning(self, tmp_path,
                                                        monkeypatch):
        (tmp_path / INDEX_FILENAME).write_bytes(b"this is not sqlite" * 64)
        monkeypatch.setattr(cache_index, "_warned_unavailable", False)
        index = CacheIndex(tmp_path)
        with pytest.warns(RuntimeWarning, match="cache migrate"):
            index.add("k", "k.json", 10, 1.0)
        assert index.available is False
        # subsequent operations are silent no-ops, not errors
        assert index.lookup("k") is None
        assert index.totals() is None
        assert list(index.lru()) == []


# --------------------------------------------------------------------- #
# RunCache integration
# --------------------------------------------------------------------- #
class TestRunCacheIntegration:
    def test_put_and_get_keep_the_index_in_sync(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.index is not None
        cache.put("k1", _record(1))
        row = cache.index.lookup("k1")
        assert row is not None and row["engine"] == "idx-test"
        before = row["mtime"]
        assert cache.get("k1").metrics["fps"] == 1.0
        assert cache.index.lookup("k1")["mtime"] >= before

    def test_get_self_heals_records_written_without_an_index(self, tmp_path):
        legacy = RunCache(tmp_path, use_index=False)
        legacy.put("legacy", _record(7))
        cache = RunCache(tmp_path)
        assert cache.index.lookup("legacy") is None
        assert cache.get("legacy") is not None  # hit via the file path
        assert cache.index.lookup("legacy") is not None  # now indexed

    def test_quick_stats_uses_the_index(self, tmp_path):
        cache = RunCache(tmp_path)
        for i in range(3):
            cache.put(f"k{i}", _record(i))
        quick = cache.quick_stats()
        assert quick["indexed"] is True and quick["entries"] == 3
        assert quick["bytes"] > 0
        unindexed = RunCache(tmp_path, use_index=False)
        assert unindexed.quick_stats()["indexed"] is False

    def test_stats_report_index_health(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("good", _record(1))
        # drift both ways: a row with no file, a file with no row
        cache.index.add("ghost", "ghost.json", 10, 1.0)
        RunCache(tmp_path, use_index=False).put("unseen", _record(2))
        health = cache.stats()["index"]
        assert health == {"enabled": True, "available": True, "entries": 2,
                          "stale": 1, "unindexed": 1}

    def test_migrate_reconciles_and_is_idempotent(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("kept", _record(1))
        cache.index.add("ghost", "ghost.json", 10, 1.0)
        RunCache(tmp_path, use_index=False).put("unseen", _record(2, engine="legacy"))
        first = cache.migrate()
        assert (first["added"], first["pruned"]) == (1, 1)
        assert first["entries"] == 2
        # the reconstructed row recovers the engine from the payload file
        assert cache.index.lookup("unseen")["engine"] == "legacy"
        second = cache.migrate()
        assert (second["added"], second["refreshed"], second["pruned"]) \
            == (0, 0, 0)
        health = cache.stats()["index"]
        assert health["stale"] == 0 and health["unindexed"] == 0

    def test_migrate_with_index_disabled_reports_disabled(self, tmp_path,
                                                          monkeypatch):
        monkeypatch.setenv(INDEX_ENV, "0")
        cache = RunCache(tmp_path)
        assert cache.index is None
        assert cache.migrate()["enabled"] is False
        assert cache.stats()["index"] == {"enabled": False, "available": False}

    def test_bounded_eviction_keeps_index_and_disk_consistent(self, tmp_path):
        cache = RunCache(tmp_path, max_mb=0.002)  # ~2 KB: forces eviction
        for i in range(12):
            cache.put(f"k{i:02d}", _record(i))
        on_disk = {path.stem for path in tmp_path.glob("*.json")}
        assert 0 < len(on_disk) < 12  # evictions happened, cache not empty
        assert set(cache.index.keys()) == on_disk
        entries, total = cache.index.totals()
        assert entries == len(on_disk)

    def test_clear_empties_the_index_too(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("k", _record())
        assert cache.clear() == 1
        assert cache.index.totals() == (0, 0)

    def test_quarantine_removes_the_index_row(self, tmp_path):
        cache = RunCache(tmp_path)
        cache.put("bad", _record())
        cache.path_for("bad").write_text("{not json", encoding="utf-8")
        # the stale index row still points at the file; the corrupt read
        # quarantines the payload and drops the row
        assert cache.get("bad") is None
        assert cache.quarantined == 1
        assert cache.index.lookup("bad") is None

    def test_migrate_is_safe_against_concurrent_writers(self, tmp_path):
        """'Live-server-safe': migrate loops while another handle writes."""
        cache = RunCache(tmp_path)
        writer = RunCache(tmp_path)
        stop = threading.Event()
        errors = []

        def hammer():
            i = 0
            try:
                while not stop.is_set():
                    writer.put(f"live{i % 40:02d}", _record(i))
                    i += 1
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            for _ in range(5):
                outcome = cache.migrate()
                assert outcome["available"] is True
        finally:
            stop.set()
            thread.join(30)
        assert not errors
        # once writes stop, one more migrate leaves index == disk
        final = cache.migrate()
        assert final["pruned"] == 0
        assert set(cache.index.keys()) == \
            {path.stem for path in tmp_path.glob("*.json")}


# --------------------------------------------------------------------- #
# 8-process fork+Barrier stress (same harness shape as test_faults.py)
# --------------------------------------------------------------------- #
def _index_stress_worker(root: str, worker_id: int, barrier) -> None:
    cache = RunCache(root)
    assert cache.index is not None
    barrier.wait(timeout=60)  # maximise overlap across the 8 processes
    for i in range(STRESS_SHARED_KEYS):
        cache.put(f"shared{i:04d}", _record(i, engine="stress"))
        cache.get(f"shared{(i * 7) % STRESS_SHARED_KEYS:04d}")
    for i in range(STRESS_PRIVATE_KEYS):
        cache.put(f"private{worker_id}_{i:04d}", _record(i, engine="stress"))
    assert cache.quarantined == 0, "reader saw a torn record"
    assert cache.index.available, "index degraded under contention"


class TestConcurrentIndexStress:
    def test_eight_processes_share_one_index_without_loss(self, tmp_path):
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        barrier = ctx.Barrier(STRESS_PROCESSES)
        processes = [
            ctx.Process(target=_index_stress_worker,
                        args=(str(tmp_path), worker_id, barrier))
            for worker_id in range(STRESS_PROCESSES)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(120)
        assert all(p.exitcode == 0 for p in processes), \
            [p.exitcode for p in processes]

        expected = ({f"shared{i:04d}" for i in range(STRESS_SHARED_KEYS)}
                    | {f"private{w}_{i:04d}"
                       for w in range(STRESS_PROCESSES)
                       for i in range(STRESS_PRIVATE_KEYS)})
        on_disk = {path.stem for path in tmp_path.glob("*.json")}
        assert on_disk == expected  # zero lost records

        cache = RunCache(tmp_path)
        # zero lost index rows: every record is indexed and hit-able, and
        # the database itself passes sqlite's own integrity check
        assert set(cache.index.keys()) == expected
        for key in sorted(expected):
            assert cache.index.lookup(key)["path"] == f"{key}.json"
            record = cache.get(key)
            assert record is not None and record.engine == "stress"
        conn = sqlite3.connect(str(tmp_path / INDEX_FILENAME))
        try:
            assert conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"
        finally:
            conn.close()
        # and the reconciler agrees there is nothing to reconcile
        outcome = cache.migrate()
        assert (outcome["added"], outcome["pruned"]) == (0, 0)
