"""Tests for the DRAM model, the memory hierarchy and the Table IV traffic model."""

from __future__ import annotations

import pytest

from repro.cnn.layer import ConvLayer
from repro.cnn.zoo import alexnet
from repro.core.config import ChainConfig
from repro.memory.dram import Dram, DramSpec
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.traffic import TrafficModel

#: Table IV as printed in the paper (MByte, batch 4)
PAPER_TABLE4 = {
    "conv1": {"DRAM": 9.0, "iMemory": 6.6, "kMemory": 15.4, "oMemory": 13.9},
    "conv2": {"DRAM": 5.5, "iMemory": 8.7, "kMemory": 17.8, "oMemory": 143.3},
    "conv3": {"DRAM": 4.3, "iMemory": 4.8, "kMemory": 37.2, "oMemory": 265.8},
    "conv4": {"DRAM": 3.4, "iMemory": 3.6, "kMemory": 27.9, "oMemory": 199.4},
    "conv5": {"DRAM": 2.3, "iMemory": 2.4, "kMemory": 18.6, "oMemory": 132.9},
}


class TestDram:
    def test_traffic_accounting(self):
        dram = Dram()
        dram.record_read(1000)
        dram.record_write(500)
        assert dram.total_bytes == 1500

    def test_transfer_time_uses_effective_bandwidth(self):
        spec = DramSpec(peak_bandwidth_bytes_per_s=10e9, efficiency=0.5)
        dram = Dram(spec)
        assert dram.transfer_time_s(5e9) == pytest.approx(1.0)

    def test_energy(self):
        dram = Dram(DramSpec(energy_per_byte_j=100e-12))
        assert dram.energy_j(1_000_000) == pytest.approx(100e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Dram().record_read(-1)

    def test_reset(self):
        dram = Dram()
        dram.record_read(10)
        dram.reset()
        assert dram.total_bytes == 0


class TestMemoryHierarchy:
    def test_paper_sizes(self, paper_config):
        hierarchy = MemoryHierarchy(paper_config)
        sizes = hierarchy.sizes
        assert sizes.imemory_bytes == 32 * 1024
        assert sizes.omemory_bytes == 25 * 1024
        assert sizes.kmemory_bytes == 576 * 512
        assert sizes.total_bytes == paper_config.onchip_memory_bytes

    def test_traffic_collection(self, paper_config):
        hierarchy = MemoryHierarchy(paper_config)
        hierarchy.imemory.record_stream_read(100)
        hierarchy.omemory.record_stream_write(50)
        hierarchy.dram.record_read(64)
        traffic = hierarchy.traffic_bytes()
        assert traffic["iMemory"] == 200
        assert traffic["oMemory"] == 100
        assert traffic["DRAM"] == 64

    def test_reset(self, paper_config):
        hierarchy = MemoryHierarchy(paper_config)
        hierarchy.kmemory.record_stream_read(10)
        hierarchy.reset()
        assert hierarchy.traffic_bytes()["kMemory"] == 0


class TestTrafficModelTable4:
    @pytest.fixture(scope="class")
    def table(self):
        return TrafficModel(ChainConfig()).network_traffic(alexnet(), batch=4).table()

    @pytest.mark.parametrize("layer", sorted(PAPER_TABLE4))
    def test_omemory_column_matches_exactly(self, table, layer):
        assert table[layer]["oMemory"] == pytest.approx(PAPER_TABLE4[layer]["oMemory"], rel=0.01)

    @pytest.mark.parametrize("layer", ["conv1", "conv3", "conv4", "conv5"])
    def test_kmemory_close_for_most_layers(self, table, layer):
        assert table[layer]["kMemory"] == pytest.approx(PAPER_TABLE4[layer]["kMemory"], rel=0.10)

    @pytest.mark.parametrize("layer", ["conv2", "conv3", "conv4", "conv5"])
    def test_imemory_close_for_stride1_layers(self, table, layer):
        assert table[layer]["iMemory"] == pytest.approx(PAPER_TABLE4[layer]["iMemory"], rel=0.15)

    def test_ordering_omemory_dominates(self, table):
        totals = table["Total"]
        assert totals["oMemory"] > totals["kMemory"] > totals["iMemory"] > 0

    def test_dram_is_smallest_onchip_filter_works(self, table):
        # the on-chip hierarchy filters most traffic away from DRAM
        totals = table["Total"]
        assert totals["DRAM"] < totals["kMemory"]
        assert totals["DRAM"] < totals["oMemory"] / 10

    def test_total_row_is_sum_of_layers(self, table):
        for store in ("DRAM", "iMemory", "kMemory", "oMemory"):
            assert table["Total"][store] == pytest.approx(
                sum(table[layer][store] for layer in PAPER_TABLE4), rel=1e-6)


class TestTrafficModelStructure:
    def test_omemory_formula(self):
        model = TrafficModel(ChainConfig())
        layer = ConvLayer("t", 8, 4, 10, 10, kernel_size=3, padding=1)
        assert model.omemory_words(layer) == 2 * 10 * 10 * 4 * 8

    def test_kmemory_stride_dependence(self):
        model = TrafficModel(ChainConfig())
        stride1 = ConvLayer("s1", 4, 4, 12, 12, kernel_size=3, padding=1)
        stride2 = ConvLayer("s2", 4, 4, 25, 25, kernel_size=3, stride=2)
        # strided layers re-read the weight every output row, not every stripe
        assert model.kmemory_words(stride2) > model.kmemory_words(stride1)

    def test_traffic_scales_linearly_with_batch(self):
        model = TrafficModel(ChainConfig())
        layer = alexnet().conv_layer("conv3")
        one = model.layer_traffic(layer, batch=1)
        four = model.layer_traffic(layer, batch=4)
        assert four.omemory_bytes == 4 * one.omemory_bytes
        assert four.imemory_bytes == 4 * one.imemory_bytes
        # weights are loaded once per batch so DRAM grows sub-linearly
        assert four.dram_bytes < 4 * one.dram_bytes

    def test_reuse_summary_positive(self):
        model = TrafficModel(ChainConfig())
        summary = model.reuse_summary(alexnet().conv_layer("conv3"))
        assert all(value > 0 for value in summary.values())
        # stationary weights are reused far more than streamed ifmaps
        assert summary["weight_macs_per_kmemory_read"] > summary["macs_per_omemory_access"]

    def test_layer_traffic_totals(self):
        model = TrafficModel(ChainConfig())
        traffic = model.layer_traffic(alexnet().conv_layer("conv5"), batch=2)
        assert traffic.total_bytes == traffic.onchip_bytes + traffic.dram_bytes
        assert traffic.as_megabytes()["oMemory"] == pytest.approx(
            traffic.omemory_bytes / 1e6)
