"""Tests for the NumPy golden-model convolutions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.cnn.reference import (
    conv2d_direct,
    conv2d_im2col,
    conv2d_single_channel,
    pad_input,
)
from repro.errors import WorkloadError


class TestPadding:
    def test_zero_padding_is_identity(self):
        data = np.arange(12.0).reshape(1, 3, 4)
        assert np.array_equal(pad_input(data, 0), data)

    def test_padding_adds_zero_border(self):
        data = np.ones((2, 3, 3))
        padded = pad_input(data, 1)
        assert padded.shape == (2, 5, 5)
        assert padded[:, 0, :].sum() == 0
        assert padded[:, :, -1].sum() == 0
        assert padded[:, 1:-1, 1:-1].sum() == pytest.approx(data.sum())


class TestSingleChannel:
    def test_identity_kernel(self):
        ifmap = np.arange(25.0).reshape(5, 5)
        kernel = np.zeros((3, 3))
        kernel[1, 1] = 1.0
        out = conv2d_single_channel(ifmap, kernel)
        assert np.array_equal(out, ifmap[1:4, 1:4])

    def test_box_filter_sum(self):
        ifmap = np.ones((4, 4))
        kernel = np.ones((3, 3))
        out = conv2d_single_channel(ifmap, kernel)
        assert np.all(out == 9.0)

    def test_stride(self):
        ifmap = np.arange(36.0).reshape(6, 6)
        kernel = np.ones((3, 3))
        out = conv2d_single_channel(ifmap, kernel, stride=2)
        assert out.shape == (2, 2)

    def test_padding(self):
        ifmap = np.ones((3, 3))
        kernel = np.ones((3, 3))
        out = conv2d_single_channel(ifmap, kernel, padding=1)
        assert out.shape == (3, 3)
        assert out[1, 1] == pytest.approx(9.0)
        assert out[0, 0] == pytest.approx(4.0)

    def test_rejects_non_square_kernel(self):
        with pytest.raises(WorkloadError):
            conv2d_single_channel(np.ones((4, 4)), np.ones((2, 3)))

    def test_rejects_oversized_kernel(self):
        with pytest.raises(WorkloadError):
            conv2d_single_channel(np.ones((2, 2)), np.ones((3, 3)))


class TestMultiChannel:
    def _layer_and_tensors(self, seed=0, **kwargs):
        defaults = dict(in_channels=3, out_channels=4, in_height=8, in_width=8, kernel_size=3)
        defaults.update(kwargs)
        layer = ConvLayer("ref", **defaults)
        gen = WorkloadGenerator(seed=seed)
        return layer, *gen.layer_pair(layer)

    def test_direct_matches_im2col(self):
        layer, ifmaps, weights = self._layer_and_tensors(padding=1)
        direct = conv2d_direct(layer, ifmaps, weights)
        im2col = conv2d_im2col(layer, ifmaps, weights)
        np.testing.assert_allclose(direct, im2col, rtol=1e-12, atol=1e-12)

    def test_direct_matches_im2col_with_stride_and_groups(self):
        layer, ifmaps, weights = self._layer_and_tensors(
            in_channels=4, out_channels=4, groups=2, stride=2, in_height=11, in_width=11)
        np.testing.assert_allclose(
            conv2d_direct(layer, ifmaps, weights),
            conv2d_im2col(layer, ifmaps, weights),
            rtol=1e-12, atol=1e-12)

    def test_output_shape(self):
        layer, ifmaps, weights = self._layer_and_tensors(padding=1)
        assert conv2d_direct(layer, ifmaps, weights).shape == layer.out_shape

    def test_bias_is_added_per_channel(self):
        layer, ifmaps, weights = self._layer_and_tensors()
        bias = np.arange(layer.out_channels, dtype=np.float64)
        with_bias = conv2d_direct(layer, ifmaps, weights, bias=bias)
        without = conv2d_direct(layer, ifmaps, weights)
        for m in range(layer.out_channels):
            np.testing.assert_allclose(with_bias[m] - without[m], bias[m])

    def test_grouped_convolution_ignores_other_group(self):
        # zeroing group 1's input must not change group 0's output
        layer, ifmaps, weights = self._layer_and_tensors(
            in_channels=4, out_channels=4, groups=2)
        full = conv2d_direct(layer, ifmaps, weights)
        modified = ifmaps.copy()
        modified[2:] = 0.0
        partial = conv2d_direct(layer, modified, weights)
        np.testing.assert_allclose(full[:2], partial[:2])

    def test_linearity_in_the_input(self):
        layer, ifmaps, weights = self._layer_and_tensors(padding=1)
        doubled = conv2d_direct(layer, 2.0 * ifmaps, weights)
        np.testing.assert_allclose(doubled, 2.0 * conv2d_direct(layer, ifmaps, weights))

    def test_shape_validation(self):
        layer, ifmaps, weights = self._layer_and_tensors()
        with pytest.raises(WorkloadError):
            conv2d_direct(layer, ifmaps[:, :-1, :], weights)
        with pytest.raises(WorkloadError):
            conv2d_direct(layer, ifmaps, weights[:, :, :-1, :])


class TestHypothesisProperties:
    @given(
        kernel=st.integers(min_value=1, max_value=5),
        extra=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_direct_equals_im2col_for_random_geometry(self, kernel, extra, seed):
        size = kernel + extra
        layer = ConvLayer("prop", in_channels=2, out_channels=2, in_height=size,
                          in_width=size, kernel_size=kernel)
        gen = WorkloadGenerator(seed=seed)
        ifmaps, weights = gen.layer_pair(layer)
        np.testing.assert_allclose(
            conv2d_direct(layer, ifmaps, weights),
            conv2d_im2col(layer, ifmaps, weights),
            rtol=1e-10, atol=1e-10)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_delta_kernel_extracts_input(self, seed):
        layer = ConvLayer("delta", in_channels=1, out_channels=1, in_height=7, in_width=7,
                          kernel_size=3)
        gen = WorkloadGenerator(seed=seed)
        ifmaps = gen.ifmaps(layer)
        weights = np.zeros((1, 1, 3, 3))
        weights[0, 0, 0, 0] = 1.0
        out = conv2d_direct(layer, ifmaps, weights)
        np.testing.assert_allclose(out[0], ifmaps[0, :5, :5])
