"""Tests for registers, MAC, mux, clock and the cycle-simulation engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.hwmodel.clock import ClockDomain
from repro.hwmodel.mac import MacUnit
from repro.hwmodel.mux import Mux
from repro.hwmodel.register import Pipeline, Register, ShiftRegister
from repro.hwmodel.simulator import ClockedComponent, CycleSimulator


class TestRegister:
    def test_value_changes_only_on_tick(self):
        reg = Register(reset_value=0)
        reg.set_next(5)
        assert reg.value == 0
        reg.tick()
        assert reg.value == 5

    def test_unstaged_tick_holds_value(self):
        reg = Register(reset_value=3)
        reg.tick()
        assert reg.value == 3

    def test_hold_keeps_value(self):
        reg = Register(reset_value=1)
        reg.set_next(9)
        reg.tick()
        reg.hold()
        reg.tick()
        assert reg.value == 9

    def test_reset(self):
        reg = Register(reset_value=7)
        reg.set_next(1)
        reg.tick()
        reg.reset()
        assert reg.value == 7

    def test_write_count_tracks_changes_only(self):
        reg = Register(reset_value=0)
        reg.set_next(1)
        reg.tick()
        reg.set_next(1)
        reg.tick()
        reg.set_next(2)
        reg.tick()
        assert reg.write_count == 2


class TestShiftRegister:
    def test_values_emerge_after_depth_ticks(self):
        shift = ShiftRegister(depth=3, reset_value=0)
        outputs = []
        for value in [1, 2, 3, 4, 5]:
            shift.shift_in(value)
            outputs.append(shift.tick())
        # first three outputs are the reset value, then the inputs in order
        assert outputs == [0, 0, 0, 1, 2]

    def test_head_and_tail(self):
        shift = ShiftRegister(depth=2, reset_value=None)
        shift.shift_in("a")
        shift.tick()
        assert shift.head == "a"
        shift.shift_in("b")
        shift.tick()
        assert shift.head == "b"
        assert shift.tail == "a"

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            ShiftRegister(depth=0)

    def test_reset_clears_stages(self):
        shift = ShiftRegister(depth=2, reset_value=0)
        shift.shift_in(9)
        shift.tick()
        shift.reset()
        assert shift.stages == [0, 0]

    def test_len_and_iter(self):
        shift = ShiftRegister(depth=4, reset_value=0)
        assert len(shift) == 4
        assert list(shift) == [0, 0, 0, 0]


class TestPipeline:
    def test_zero_depth_is_a_wire(self):
        pipe = Pipeline(depth=0)
        pipe.push(42)
        assert pipe.tick() == 42

    def test_latency_matches_depth(self):
        pipe = Pipeline(depth=3)
        results = []
        for value in range(6):
            pipe.push(value)
            results.append(pipe.tick())
        assert results == [None, None, None, 0, 1, 2]

    def test_occupancy(self):
        pipe = Pipeline(depth=3)
        pipe.push(1)
        pipe.tick()
        pipe.tick()
        assert pipe.occupancy == 1

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            Pipeline(depth=-1)


class TestMacUnit:
    def test_compute_is_psum_plus_product(self):
        mac = MacUnit()
        assert mac.compute(3, 4, 10) == 22

    def test_mac_counter(self):
        mac = MacUnit()
        for _ in range(5):
            mac.compute(1, 1, 0)
        assert mac.mac_count == 5

    def test_saturation_at_accumulator_width(self):
        from repro.hwmodel.fixed_point import FixedPointFormat

        mac = MacUnit(accumulator_format=FixedPointFormat(8, 0))
        assert mac.compute(100, 100, 0) == 127

    def test_pipelined_issue_matches_compute(self):
        mac = MacUnit(pipeline_stages=3)
        mac.issue(2, 5, 1)
        # the result enters stage 0 on the first tick and emerges three ticks later
        results = [mac.tick() for _ in range(4)]
        assert results == [None, None, None, 11]
        assert mac.latency == 3


class TestMux:
    def test_selects_input(self):
        mux = Mux(num_inputs=2)
        assert mux.select(("even", "odd"), 1) == "odd"

    def test_counts_selects_and_toggles(self):
        mux = Mux(num_inputs=2)
        mux.select((1, 2), 0)
        mux.select((1, 2), 0)
        mux.select((1, 2), 1)
        assert mux.select_count == 3
        assert mux.toggle_count == 1

    def test_rejects_bad_select(self):
        mux = Mux(num_inputs=2)
        with pytest.raises(ValueError):
            mux.select((1, 2), 2)

    def test_rejects_wrong_input_count(self):
        mux = Mux(num_inputs=2)
        with pytest.raises(ValueError):
            mux.select((1, 2, 3), 0)

    def test_needs_at_least_two_inputs(self):
        with pytest.raises(ValueError):
            Mux(num_inputs=1)


class TestClockDomain:
    def test_paper_frequency_period(self):
        clock = ClockDomain(700e6)
        assert clock.period_ns == pytest.approx(1.4286, rel=1e-3)

    def test_cycle_time_round_trip(self):
        clock = ClockDomain(700e6)
        cycles = 871_200
        assert clock.seconds_to_cycles(clock.cycles_to_seconds(cycles)) == pytest.approx(cycles)

    def test_scaled(self):
        clock = ClockDomain(350e6)
        assert clock.scaled(2.0).frequency_hz == pytest.approx(700e6)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            ClockDomain(700e6).cycles_to_seconds(-1)


class _Counter(ClockedComponent):
    def __init__(self):
        self.value = 0

    def tick(self):
        self.value += 1

    def reset(self):
        self.value = 0


class TestCycleSimulator:
    def test_step_advances_all_components(self):
        sim = CycleSimulator()
        a, b = _Counter(), _Counter()
        sim.add(a)
        sim.add(b)
        sim.step(10)
        assert a.value == 10 and b.value == 10 and sim.cycle == 10

    def test_run_until(self):
        sim = CycleSimulator()
        counter = sim.add(_Counter())
        cycles = sim.run_until(lambda: counter.value >= 7)
        assert cycles == 7

    def test_run_until_times_out(self):
        sim = CycleSimulator()
        sim.add(_Counter())
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, max_cycles=5)

    def test_max_cycles_guard(self):
        sim = CycleSimulator(max_cycles=3)
        sim.add(_Counter())
        with pytest.raises(SimulationError):
            sim.step(5)

    def test_watcher_called_each_cycle(self):
        sim = CycleSimulator()
        sim.add(_Counter())
        seen = []
        sim.add_watcher(seen.append)
        sim.step(4)
        assert seen == [1, 2, 3, 4]

    def test_reset(self):
        sim = CycleSimulator()
        counter = sim.add(_Counter())
        sim.step(5)
        sim.reset()
        assert sim.cycle == 0 and counter.value == 0
