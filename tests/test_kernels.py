"""Kernel-backend tests: registry selection, fallback, and the bit-identity
contract between the NumPy reference kernels and the compiled (numba)
kernels.

The identity tests parametrize over :func:`repro.kernels.available_backends`
— on a machine without numba they run the numpy leg only (never skip, so
they stay inside the CI fail-if-skipped equivalence gate); on the CI numba
leg they additionally hold numpy-vs-numba bit-identity over randomized
layers and mapping spaces.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.analysis.batch import MAPPING_RESULT_COLUMNS, MappingBatchEvaluator
from repro.cnn.layer import ConvLayer
from repro.cnn.reference import pad_input, strided_windows
from repro.core.config import ChainConfig
from repro.errors import ConfigurationError
from repro.kernels import (
    KERNEL_BACKEND_ENV,
    KNOWN_BACKENDS,
    available_backends,
    backend_fingerprint,
    get_backend,
    numba_version,
    resolve_backend_name,
    set_default_backend,
    warmup,
)
from repro.kernels import registry
from repro.kernels.numpy_backend import pairwise_sum_reference
from repro.mapping.mapspace import LayerMapSpace, candidate_arrays
from repro.sim.functional import FunctionalChainSimulator
from repro.sim.functional_vectorized import vectorized_layer_ofmaps


@pytest.fixture(autouse=True)
def isolated_registry(monkeypatch):
    """Snapshot/restore the registry's process-wide state around every test.

    Tests below force the ImportError probe, install overrides and trigger
    the once-per-process fallback warning; none of that may leak into other
    tests (or depend on their order).
    """
    monkeypatch.setattr(registry, "_default_override", None)
    monkeypatch.setattr(registry, "_warned_fallback", False)
    monkeypatch.setattr(registry, "_numba_probe", registry._numba_probe)
    monkeypatch.setattr(registry, "_backends", dict(registry._backends))
    monkeypatch.delenv(KERNEL_BACKEND_ENV, raising=False)


#: randomized layer geometries spanning the mapspace axes the ofmap kernel
#: must preserve: K 1..11 (and 13: the K^2 > 128 delegation guard), stride
#: 1/2/4, padding 0..2, grouped channels
OFMAP_LAYERS = (
    ConvLayer("k1", in_channels=3, out_channels=4, in_height=8, in_width=8,
              kernel_size=1),
    ConvLayer("k3s2p1", in_channels=2, out_channels=3, in_height=11,
              in_width=11, kernel_size=3, stride=2, padding=1),
    ConvLayer("k5p2", in_channels=2, out_channels=2, in_height=12, in_width=12,
              kernel_size=5, padding=2),
    ConvLayer("k7s4", in_channels=1, out_channels=2, in_height=19, in_width=19,
              kernel_size=7, stride=4),
    ConvLayer("k11p2", in_channels=1, out_channels=2, in_height=16,
              in_width=16, kernel_size=11, padding=2),
    ConvLayer("k13p1", in_channels=1, out_channels=1, in_height=15,
              in_width=15, kernel_size=13, padding=1),
    ConvLayer("grouped", in_channels=4, out_channels=4, in_height=9,
              in_width=9, kernel_size=3, padding=1, groups=2),
)


def _layer_tensors(layer: ConvLayer, rng: np.random.Generator):
    ifmaps = rng.standard_normal(layer.in_shape)
    weights = rng.standard_normal(
        (layer.out_channels, layer.in_channels_per_group,
         layer.kernel_size, layer.kernel_size))
    return ifmaps, weights


class TestPairwiseOrderSpec:
    def test_reference_matches_numpy_sum_bitwise(self, rng):
        """The codified pairwise order == np.sum on contiguous float64."""
        for n in list(range(1, 200)) + [256, 1000]:
            values = rng.standard_normal(n)
            assert pairwise_sum_reference(values) == np.sum(values), n

    def test_numpy_backend_follows_the_order_spec(self, rng):
        """The production numpy kernel reduces in the documented order."""
        layer = OFMAP_LAYERS[1]
        ifmaps, weights = _layer_tensors(layer, rng)
        padded = pad_input(ifmaps, layer.padding)
        got = vectorized_layer_ofmaps(layer, padded, weights,
                                      kernel_backend="numpy")
        kept = strided_windows(padded, layer.kernel_size, layer.stride,
                               layer.out_height, layer.out_width)
        expected = np.zeros(layer.out_shape)
        for m in range(layer.out_channels):
            for c in range(layer.in_channels):
                for y in range(layer.out_height):
                    for x in range(layer.out_width):
                        product = (kept[c, y, x] * weights[m, c]).ravel()
                        expected[m, y, x] += pairwise_sum_reference(product)
        assert np.array_equal(got, expected)


class TestOfmapBitIdentity:
    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("layer", OFMAP_LAYERS, ids=lambda l: l.name)
    def test_backends_are_bit_identical(self, backend, layer, rng):
        ifmaps, weights = _layer_tensors(layer, rng)
        padded = pad_input(ifmaps, layer.padding)
        reference = vectorized_layer_ofmaps(layer, padded, weights,
                                            kernel_backend="numpy")
        got = vectorized_layer_ofmaps(layer, padded, weights,
                                      kernel_backend=backend)
        assert np.array_equal(reference, got)

    @pytest.mark.parametrize("backend", available_backends())
    def test_simulator_results_are_identical(self, backend, generator,
                                             strided_layer, grouped_layer):
        """Ofmaps *and* dataflow stats agree through the full simulator."""
        reference = FunctionalChainSimulator(backend="vectorized",
                                             kernel_backend="numpy")
        other = FunctionalChainSimulator(backend="vectorized",
                                         kernel_backend=backend)
        assert other.kernel_backend == backend
        for layer in (strided_layer, grouped_layer):
            ifmaps, weights = generator.layer_pair(layer)
            want = reference.run_layer(layer, ifmaps, weights)
            got = other.run_layer(layer, ifmaps, weights)
            assert np.array_equal(want.ofmaps, got.ofmaps)
            assert want.stats == got.stats
            assert want.chain_cycles_estimate == got.chain_cycles_estimate


class TestScorerBitIdentity:
    SCORER_LAYERS = (
        ConvLayer("conv", in_channels=8, out_channels=8, in_height=12,
                  in_width=12, kernel_size=3, padding=1),
        ConvLayer("stride", in_channels=4, out_channels=6, in_height=13,
                  in_width=13, kernel_size=5, stride=2, padding=2),
    )

    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("layer", SCORER_LAYERS, ids=lambda l: l.name)
    def test_scores_and_argmins_are_identical(self, backend, layer):
        config = ChainConfig(num_pes=72, kmemory_words_per_pe=8)
        candidates = candidate_arrays(LayerMapSpace(layer, config).enumerate())
        reference = MappingBatchEvaluator(layer, config, batch=16,
                                          kernel_backend="numpy")
        other = MappingBatchEvaluator(layer, config, batch=16,
                                      kernel_backend=backend)
        assert other.kernel_backend == backend
        want = reference.evaluate(*candidates)
        got = other.evaluate(*candidates)
        for column in MAPPING_RESULT_COLUMNS:
            assert want[column].dtype == got[column].dtype, column
            assert np.array_equal(want[column], got[column]), column
        for column in ("time_per_batch_s", "first_image_latency_s",
                       "energy_per_batch_j", "edp_js"):
            assert int(np.argmin(want[column])) == int(np.argmin(got[column]))


class TestRegistry:
    def test_available_backends_always_include_numpy(self):
        assert "numpy" in available_backends()
        assert set(available_backends()) <= set(KNOWN_BACKENDS)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            get_backend("fortran")
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            set_default_backend("fortran")

    def test_warmup_returns_effective_backend(self):
        assert warmup() in available_backends()
        assert warmup("numpy") == "numpy"

    def test_numpy_fingerprint_has_no_version_churn(self):
        assert backend_fingerprint("numpy") == {"backend": "numpy"}

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numpy")
        assert resolve_backend_name() == "numpy"
        assert get_backend().fallback_from is None

    def test_override_outranks_env_and_argument_outranks_override(
            self, monkeypatch):
        monkeypatch.setattr(registry, "_numba_probe",
                            (False, None, "ImportError: no numba"))
        monkeypatch.setenv(KERNEL_BACKEND_ENV, "numba")
        set_default_backend("numpy")
        # override (numpy) beats the env's numba request: no fallback marker
        assert get_backend().fallback_from is None
        # an explicit argument beats the override: numba requested -> degraded
        with pytest.warns(RuntimeWarning, match="unavailable"):
            assert get_backend("numba").fallback_from == "numba"

    def test_matches_ci_expectation(self):
        """The CI legs pin what autodetection must resolve to."""
        expected = os.environ.get("REPRO_EXPECT_KERNEL_BACKEND")
        if expected:
            assert resolve_backend_name() == expected
        assert resolve_backend_name() in available_backends()


class TestNumbaFallback:
    @pytest.fixture
    def no_numba(self, monkeypatch):
        monkeypatch.setattr(
            registry, "_numba_probe",
            (False, None, "ImportError: No module named 'numba'"))
        monkeypatch.setattr(registry, "_backends", {})

    def test_requested_numba_degrades_to_numpy(self, no_numba):
        assert available_backends() == ("numpy",)
        assert numba_version() is None
        with pytest.warns(RuntimeWarning, match="pip install -e .\\[numba\\]"):
            backend = get_backend("numba")
        assert backend.name == "numpy"
        assert backend.fallback_from == "numba"
        assert resolve_backend_name("numba") == "numpy"
        assert backend_fingerprint("numba") == {"backend": "numpy"}

    def test_fallback_warns_once_per_process(self, no_numba):
        with pytest.warns(RuntimeWarning):
            get_backend("numba")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert get_backend("numba").name == "numpy"

    def test_degraded_backend_still_computes(self, no_numba, rng):
        """End to end: a forced-ImportError environment stays fully usable."""
        with pytest.warns(RuntimeWarning):
            simulator = FunctionalChainSimulator(backend="vectorized",
                                                 kernel_backend="numba")
        assert simulator.kernel_backend == "numpy"
        layer = OFMAP_LAYERS[1]
        ifmaps, weights = _layer_tensors(layer, rng)
        result = simulator.run_layer(layer, ifmaps, weights)
        want = FunctionalChainSimulator(backend="vectorized").run_layer(
            layer, ifmaps, weights)
        assert np.array_equal(result.ofmaps, want.ofmaps)


class TestCLISelection:
    def test_kernel_backend_flag_installs_the_override(self, capsys):
        from repro.cli import main

        assert main(["--kernel-backend", "numpy", "engines"]) == 0
        assert registry._default_override == "numpy"
        capsys.readouterr()

    def test_engine_fingerprints_carry_the_backend(self):
        from repro.engine import create_engine

        functional = create_engine("functional-vectorized")
        assert functional.fingerprint()["kernels"]["backend"] == \
            resolve_backend_name()
        mapped = create_engine("analytical-mapped",
                               kernel_backend="numpy")
        assert mapped.fingerprint()["kernels"] == {"backend": "numpy"}
