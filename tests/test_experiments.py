"""End-to-end tests of the experiment modules: every paper artifact regenerates
and lands within the documented tolerance of the published numbers."""

from __future__ import annotations

import pytest

from repro.experiments.fig5 import run_fig5
from repro.experiments.fig9 import (
    PAPER_CONV_TIME_MS,
    PAPER_FPS_BATCH128,
    PAPER_FPS_BATCH4,
    run_fig9,
)
from repro.experiments.fig10 import PAPER_EFFICIENCY_GOPS_W, PAPER_TOTAL_MW, run_fig10
from repro.experiments.table2 import PAPER_TABLE2, run_table2
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import PAPER_EFFICIENCY_RATIO_RANGE, run_table5


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2()

    def test_active_pes_match_paper_exactly(self, result):
        assert result.max_active_pe_mismatch() == 0

    def test_minimum_utilization_is_84_percent(self, result):
        assert result.minimum_efficiency_pct == pytest.approx(84.0, abs=0.1)

    def test_every_paper_row_reproduced(self, result):
        for kernel in PAPER_TABLE2:
            assert result.measured[kernel]["active_primitives"] == \
                PAPER_TABLE2[kernel]["active_primitives"]

    def test_report_renders(self, result):
        assert "Table II" in result.report()


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(kernel_sizes=(3, 5, 11))

    def test_single_channel_is_one_over_k(self, result):
        for kernel, row in result.analytical.items():
            assert row["speedup"] == pytest.approx(kernel)

    def test_dual_channel_approaches_full_utilization(self, result):
        for row in result.analytical.values():
            assert row["dual_channel"] > 0.9

    def test_cycle_sim_utilization_above_half(self, result):
        # includes fill/drain/edge losses of a small feature map
        assert result.cycle_sim_utilization > 0.5

    def test_report_renders(self, result):
        assert "dual" in result.report().lower()


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9()

    def test_conv_times_within_tolerance(self, result):
        ratios = result.conv_time_ratio()
        for name, ratio in ratios.items():
            tolerance = 0.20 if name == "conv2" else 0.01
            assert abs(ratio - 1.0) <= tolerance, name

    def test_fps_batch128(self, result):
        assert result.measured_fps_batch128 == pytest.approx(PAPER_FPS_BATCH128, rel=0.06)

    def test_fps_batch4(self, result):
        assert result.measured_fps_batch4 == pytest.approx(PAPER_FPS_BATCH4, rel=0.05)

    def test_peak_gops(self, result):
        assert result.measured_peak_gops == pytest.approx(806.4)

    def test_layer_ordering(self, result):
        times = result.measured_conv_time_ms
        ordered = sorted(PAPER_CONV_TIME_MS, key=PAPER_CONV_TIME_MS.get, reverse=True)
        measured_order = sorted(times, key=times.get, reverse=True)
        assert measured_order == ordered

    def test_report_renders(self, result):
        assert "Fig. 9" in result.report()


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table4()

    def test_omemory_reproduces_exactly(self, result):
        assert result.omemory_max_deviation() < 0.01

    def test_ordering_preserved(self, result):
        assert result.ordering_preserved()

    def test_kmemory_total_close(self, result):
        assert result.measured["Total"]["kMemory"] == pytest.approx(
            result.paper["Total"]["kMemory"], rel=0.15)

    def test_report_renders(self, result):
        assert "Table IV" in result.report()


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10()

    def test_calibrated_total_power(self, result):
        assert result.calibrated.total_w * 1e3 == pytest.approx(PAPER_TOTAL_MW, rel=0.01)

    def test_calibrated_efficiency(self, result):
        assert result.measured_efficiency() == pytest.approx(PAPER_EFFICIENCY_GOPS_W, rel=0.01)

    def test_representative_energies_land_in_regime(self, result):
        # without calibration the model should still be within ~2x per block
        measured = result.measured_breakdown_mw(calibrated=False)
        assert 200 < sum(measured.values()) < 1200

    def test_chain_dominates_breakdown(self, result):
        fractions = result.calibrated.fractions()
        assert fractions["chain"] > 0.7

    def test_core_only_vs_dadiannao_shape(self, result):
        numbers = result.chain_vs_dadiannao()
        # DaDianNao wins core-only, Chain-NN wins whole-chip — the Fig. 10 argument
        assert numbers["DaDianNao core-only GOPS/W (published)"] > \
            numbers["Chain-NN core-only GOPS/W"]
        assert numbers["Chain-NN total GOPS/W"] > \
            numbers["DaDianNao total GOPS/W (published)"]

    def test_report_renders(self, result):
        assert "Fig. 10" in result.report()


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table5()

    def test_chain_nn_wins(self, result):
        assert result.chain_nn_wins_energy()

    def test_published_ratio_range(self, result):
        low, high = result.published_ratio_range
        assert low == pytest.approx(PAPER_EFFICIENCY_RATIO_RANGE[0], abs=0.1)
        assert high > PAPER_EFFICIENCY_RATIO_RANGE[1]

    def test_modelled_ratio_range_brackets_paper_claim(self, result):
        low, high = result.modelled_ratio_range
        assert low == pytest.approx(2.5, abs=0.3)
        assert high == pytest.approx(4.1, abs=0.3)

    def test_area_ratio(self, result):
        assert result.modelled_area_ratio == pytest.approx(1.7, abs=0.1)

    def test_report_renders(self, result):
        assert "Table V" in result.report()
