"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.cnn.zoo import alexnet
from repro.core.config import ChainConfig


@pytest.fixture
def paper_config() -> ChainConfig:
    """The 576-PE, 700 MHz configuration evaluated in the paper."""
    return ChainConfig.paper_default()


@pytest.fixture
def small_config() -> ChainConfig:
    """A small chain used by cycle-level tests (fast to simulate)."""
    return ChainConfig(num_pes=36)


@pytest.fixture
def generator() -> WorkloadGenerator:
    """Deterministic synthetic-tensor generator."""
    return WorkloadGenerator(seed=2017)


@pytest.fixture
def tiny_layer() -> ConvLayer:
    """A small stride-1 layer usable by the cycle-accurate simulator."""
    return ConvLayer("tiny", in_channels=2, out_channels=3, in_height=9, in_width=9,
                     kernel_size=3, padding=1)


@pytest.fixture
def strided_layer() -> ConvLayer:
    """A small strided layer (conv1-like behaviour at toy scale)."""
    return ConvLayer("strided", in_channels=2, out_channels=2, in_height=13, in_width=13,
                     kernel_size=3, stride=2)


@pytest.fixture
def grouped_layer() -> ConvLayer:
    """A small grouped layer (conv2-like behaviour at toy scale)."""
    return ConvLayer("grouped", in_channels=4, out_channels=4, in_height=8, in_width=8,
                     kernel_size=3, padding=1, groups=2)


@pytest.fixture
def alexnet_network():
    """The AlexNet layer geometry used throughout the evaluation."""
    return alexnet()


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded NumPy RNG for ad-hoc randomisation inside tests."""
    return np.random.default_rng(20170327)
