"""Tests for the analytical performance model (Fig. 9 / Sec. V.B numbers)."""

from __future__ import annotations

import pytest

from repro.cnn.layer import ConvLayer
from repro.core.config import ChainConfig
from repro.core.performance import PerformanceModel
from repro.errors import ConfigurationError


@pytest.fixture
def model(paper_config):
    return PerformanceModel(paper_config)


#: Fig. 9 convolution times in milliseconds for a 128-image batch
PAPER_LAYER_TIMES_MS = {
    "conv1": 159.30,
    "conv2": 102.10,
    "conv3": 57.20,
    "conv4": 42.90,
    "conv5": 28.60,
}


class TestPairCycles:
    def test_stride1_formula(self, model):
        layer = ConvLayer("t", 1, 1, 13, 13, kernel_size=3, padding=1)
        # stripes = 13/3, per stripe = 3*13 + 8
        assert model.pair_cycles(layer) == pytest.approx((13 / 3) * (3 * 13 + 8))

    def test_strided_layer_is_input_bound(self, model, alexnet_network):
        conv1 = alexnet_network.conv_layer("conv1")
        # 5 stripes x K*E*S = 5 x 11*55*4
        assert model.pair_cycles(conv1) == pytest.approx(5 * 11 * 55 * 4)

    def test_single_channel_pays_factor_k(self, model):
        layer = ConvLayer("t", 1, 1, 13, 13, kernel_size=3, padding=1)
        assert model.single_channel_pair_cycles(layer) == pytest.approx(
            3 * model.pair_cycles(layer))

    def test_detailed_mode_is_more_conservative(self, paper_config):
        paper = PerformanceModel(paper_config, mode="paper")
        detailed = PerformanceModel(paper_config, mode="detailed")
        layer = ConvLayer("t", 1, 1, 13, 13, kernel_size=3, padding=1)
        assert detailed.pair_cycles(layer) > paper.pair_cycles(layer)

    def test_invalid_mode(self, paper_config):
        with pytest.raises(ConfigurationError):
            PerformanceModel(paper_config, mode="magic")


class TestAlexNetLayerTimes:
    @pytest.mark.parametrize("name,paper_ms", sorted(PAPER_LAYER_TIMES_MS.items()))
    def test_layer_times_match_fig9(self, model, alexnet_network, name, paper_ms):
        layer = alexnet_network.conv_layer(name)
        perf = model.layer_performance(layer, batch=128)
        measured_ms = perf.conv_time_per_batch_s * 1e3
        # conv2's published time includes stalls the paper does not explain;
        # all other layers reproduce to a fraction of a percent
        tolerance = 0.20 if name == "conv2" else 0.01
        assert measured_ms == pytest.approx(paper_ms, rel=tolerance)

    def test_kernel_load_is_one_weight_per_cycle(self, model, alexnet_network):
        conv3 = alexnet_network.conv_layer("conv3")
        perf = model.layer_performance(conv3, batch=128)
        assert perf.kernel_load_cycles == conv3.weight_count
        assert perf.kernel_load_time_s * 1e3 == pytest.approx(1.23, rel=0.05)

    def test_layer_ordering_matches_paper(self, model, alexnet_network):
        times = {
            layer.name: model.layer_performance(layer, 128).conv_time_per_batch_s
            for layer in alexnet_network.conv_layers
        }
        assert times["conv1"] > times["conv2"] > times["conv3"] > times["conv4"] > times["conv5"]


class TestNetworkPerformance:
    def test_fps_batch_128(self, model, alexnet_network):
        perf = model.network_performance(alexnet_network, batch=128)
        # paper: 326.2 fps; our conv2 is faster so we land a few percent above
        assert perf.frames_per_second == pytest.approx(326.2, rel=0.06)

    def test_fps_batch_4(self, model, alexnet_network):
        perf = model.network_performance(alexnet_network, batch=4)
        assert perf.frames_per_second == pytest.approx(275.6, rel=0.05)

    def test_larger_batches_amortise_kernel_loading(self, model, alexnet_network):
        fps = [model.network_performance(alexnet_network, batch=b).frames_per_second
               for b in (1, 4, 32, 128)]
        assert fps == sorted(fps)

    def test_achieved_gops_below_peak(self, model, alexnet_network, paper_config):
        perf = model.network_performance(alexnet_network, batch=128)
        assert perf.achieved_gops < paper_config.peak_gops
        assert perf.efficiency_vs_peak > 0.5

    def test_peak_gops(self, paper_config):
        assert paper_config.peak_gops == pytest.approx(806.4)

    def test_layer_times_dict_keys(self, model, alexnet_network):
        perf = model.network_performance(alexnet_network, batch=128)
        assert set(perf.layer_times_ms()) == set(PAPER_LAYER_TIMES_MS)

    def test_invalid_batch(self, model, alexnet_network):
        with pytest.raises(ConfigurationError):
            model.layer_performance(alexnet_network.conv_layer("conv1"), batch=0)


class TestUtilizationMetrics:
    def test_temporal_utilization_below_one(self, model, alexnet_network):
        for layer in alexnet_network.conv_layers:
            perf = model.layer_performance(layer)
            assert 0.0 < perf.temporal_utilization <= 1.0

    def test_conv1_effective_utilization_reflects_stride_waste(self, model, alexnet_network):
        conv1 = model.layer_performance(alexnet_network.conv_layer("conv1"))
        conv3 = model.layer_performance(alexnet_network.conv_layer("conv3"))
        assert conv1.effective_utilization < conv3.effective_utilization

    def test_single_channel_config_is_k_times_slower(self, alexnet_network):
        dual = PerformanceModel(ChainConfig())
        single = PerformanceModel(ChainConfig().single_channel())
        layer = alexnet_network.conv_layer("conv3")
        ratio = (single.layer_performance(layer).conv_cycles_per_image
                 / dual.layer_performance(layer).conv_cycles_per_image)
        assert ratio == pytest.approx(3.0)


class TestScalingBehaviour:
    def test_cycles_scale_inversely_with_primitives(self, alexnet_network):
        big = PerformanceModel(ChainConfig(num_pes=1152))
        small = PerformanceModel(ChainConfig(num_pes=576))
        layer = alexnet_network.conv_layer("conv3")
        ratio = (small.layer_performance(layer).conv_cycles_per_image
                 / big.layer_performance(layer).conv_cycles_per_image)
        assert ratio == pytest.approx(2.0)

    def test_time_scales_inversely_with_frequency(self, alexnet_network):
        fast = PerformanceModel(ChainConfig().with_frequency(1400e6))
        slow = PerformanceModel(ChainConfig())
        layer = alexnet_network.conv_layer("conv4")
        assert slow.layer_performance(layer).conv_time_per_image_s == pytest.approx(
            2 * fast.layer_performance(layer).conv_time_per_image_s)
