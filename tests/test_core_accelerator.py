"""Tests for the ChainNN facade (run_layer / run_network results)."""

from __future__ import annotations

import pytest

from repro.cnn.zoo import alexnet, lenet5
from repro.core.accelerator import ChainNN
from repro.core.config import ChainConfig


@pytest.fixture(scope="module")
def chip():
    return ChainNN.paper_configuration()


@pytest.fixture(scope="module")
def alexnet_result(chip):
    return chip.run_network(alexnet(), batch=4)


class TestFacadeBasics:
    def test_peak_gops(self, chip):
        assert chip.peak_gops == pytest.approx(806.4)

    def test_utilization_shortcut(self, chip):
        assert chip.utilization(11) == pytest.approx(484 / 576)

    def test_describe(self, chip):
        assert "576" in chip.describe()

    def test_custom_configuration(self):
        small = ChainNN(ChainConfig(num_pes=144, clock=ChainConfig().clock))
        assert small.peak_gops == pytest.approx(144 * 2 * 0.7)

    def test_power_calibration_constructor(self):
        calibrated = ChainNN.paper_configuration(calibrate_power_to=alexnet())
        report = calibrated.power_model.network_power(alexnet(), 4)
        assert report.total_w * 1e3 == pytest.approx(567.5, rel=0.01)


class TestLayerResult:
    def test_layer_result_contains_all_views(self, chip):
        layer = alexnet().conv_layer("conv3")
        result = chip.run_layer(layer, batch=4)
        assert result.mapping.active_primitives == 64
        assert result.performance.conv_cycles_per_image > 0
        assert result.traffic.omemory_bytes > result.traffic.imemory_bytes

    def test_batch_propagates(self, chip):
        layer = alexnet().conv_layer("conv5")
        result = chip.run_layer(layer, batch=8)
        assert result.performance.batch == 8
        assert result.traffic.batch == 8


class TestNetworkResult:
    def test_contains_one_entry_per_conv_layer(self, alexnet_result):
        assert len(alexnet_result.layers) == 5

    def test_fps_and_efficiency_available(self, alexnet_result):
        assert alexnet_result.frames_per_second > 200
        assert alexnet_result.gops_per_watt > 500

    def test_summary_keys(self, alexnet_result):
        summary = alexnet_result.summary()
        for key in ("fps", "achieved_gops", "total_power_w", "gops_per_watt"):
            assert key in summary

    def test_summary_consistency(self, alexnet_result):
        summary = alexnet_result.summary()
        assert summary["fps"] == pytest.approx(alexnet_result.performance.frames_per_second)
        assert summary["gops_per_watt"] == pytest.approx(alexnet_result.power.gops_per_watt)

    def test_other_networks_run(self, chip):
        result = chip.run_network(lenet5(), batch=1)
        assert result.frames_per_second > 0
        assert len(result.layers) == 2
