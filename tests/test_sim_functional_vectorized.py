"""Scalar-vs-vectorized functional-simulator equivalence and network runner.

The vectorized backend must be *bit-identical* to the scalar per-window walk
— ofmaps compared with ``np.array_equal`` (no tolerance) and every
``FunctionalRunStats`` counter equal — across strides, paddings, groups and
kernel sizes.  CI treats skips in this module as failures (the equivalence
guarantee is what makes the fast path trustworthy), so no test here may be
conditionally skipped.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer, PoolingLayer
from repro.cnn.network import Network
from repro.cnn.reference import conv2d_direct
from repro.cnn.zoo import lenet5, tiny_test_network
from repro.core.config import ChainConfig
from repro.errors import ConfigurationError, SimulationError, WorkloadError
from repro.sim.functional import FUNCTIONAL_BACKENDS, FunctionalChainSimulator
from repro.sim.functional_vectorized import (
    pair_window_stats,
    stride_keep_mask,
    vectorized_layer_ofmaps,
)
from repro.sim.network import FunctionalNetworkRunner, pool2d


def _tensors(layer, seed=0):
    return WorkloadGenerator(seed=seed).layer_pair(layer)


def _run_both(layer, seed=0):
    ifmaps, weights = _tensors(layer, seed=seed)
    scalar = FunctionalChainSimulator(backend="scalar").run_layer(layer, ifmaps, weights)
    fast = FunctionalChainSimulator(backend="vectorized").run_layer(layer, ifmaps, weights)
    return scalar, fast


class TestScalarVectorizedEquivalence:
    @given(
        kernel=st.sampled_from([1, 3, 5, 7, 11]),
        stride=st.sampled_from([1, 2, 4]),
        pad=st.sampled_from([0, 1, 2]),
        groups=st.sampled_from([1, 2]),
        channels=st.integers(1, 2),
        extra=st.integers(0, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_randomized_bit_identity_and_stats(self, kernel, stride, pad, groups,
                                               channels, extra, seed):
        size = kernel + extra + 1
        layer = ConvLayer(
            "rand", groups * channels, groups * 2, size, size,
            kernel_size=kernel, stride=stride, padding=pad, groups=groups,
        )
        scalar, fast = _run_both(layer, seed=seed)
        # bit-identical, not merely allclose: same float64 values exactly
        assert np.array_equal(scalar.ofmaps, fast.ofmaps)
        # every counter equal, not just the ofmaps
        assert scalar.stats == fast.stats
        assert scalar.chain_cycles_estimate == fast.chain_cycles_estimate

    @pytest.mark.parametrize("stride", [1, 2, 4])
    @pytest.mark.parametrize("kernel", [1, 3, 5])
    def test_stride_kernel_grid(self, stride, kernel):
        layer = ConvLayer("grid", 2, 3, kernel + 7, kernel + 7,
                          kernel_size=kernel, stride=stride, padding=1)
        scalar, fast = _run_both(layer, seed=stride * 10 + kernel)
        assert np.array_equal(scalar.ofmaps, fast.ofmaps)
        assert scalar.stats == fast.stats

    def test_grouped_strided_padded_layer(self):
        layer = ConvLayer("gsp", 6, 4, 13, 13, kernel_size=3,
                          stride=2, padding=2, groups=2)
        scalar, fast = _run_both(layer, seed=7)
        assert np.array_equal(scalar.ofmaps, fast.ofmaps)
        assert scalar.stats == fast.stats

    def test_alexnet_conv1_like_geometry(self):
        layer = ConvLayer("mini_conv1", 2, 3, 47, 47, kernel_size=11, stride=4)
        scalar, fast = _run_both(layer, seed=3)
        assert np.array_equal(scalar.ofmaps, fast.ofmaps)
        assert scalar.stats == fast.stats

    def test_vectorized_matches_direct_reference(self):
        layer = ConvLayer("ref", 3, 4, 12, 12, kernel_size=3, padding=1)
        ifmaps, weights = _tensors(layer, seed=5)
        fast = FunctionalChainSimulator(backend="vectorized").run_layer(
            layer, ifmaps, weights)
        np.testing.assert_allclose(
            fast.ofmaps, conv2d_direct(layer, ifmaps, weights),
            rtol=1e-10, atol=1e-10,
        )


class TestBackendSelection:
    def test_backends_tuple(self):
        assert FUNCTIONAL_BACKENDS == ("scalar", "vectorized")

    def test_default_backend_is_scalar(self):
        assert FunctionalChainSimulator().backend == "scalar"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="functional backend"):
            FunctionalChainSimulator(backend="cuda")

    def test_both_mode_cross_checks_and_returns(self):
        layer = ConvLayer("both", 2, 2, 9, 9, kernel_size=3, stride=2, padding=1)
        ifmaps, weights = _tensors(layer, seed=9)
        result = FunctionalChainSimulator(backend="both").run_layer(
            layer, ifmaps, weights)
        fast = FunctionalChainSimulator(backend="vectorized").run_layer(
            layer, ifmaps, weights)
        assert np.array_equal(result.ofmaps, fast.ofmaps)
        assert result.stats == fast.stats

    def test_zero_active_primitives_raises(self):
        layer = ConvLayer("zero", 1, 1, 5, 5, kernel_size=3)
        simulator = FunctionalChainSimulator(backend="vectorized")
        simulator.mapper = SimpleNamespace(map_layer=lambda _: SimpleNamespace(
            channel_pairs=layer.channel_pairs(), active_primitives=0))
        ifmaps, weights = _tensors(layer)
        with pytest.raises(SimulationError, match="active"):
            simulator.run_layer(layer, ifmaps, weights)


class TestClosedFormCounters:
    def test_stride_keep_mask_counts_output_volume(self):
        layer = ConvLayer("mask", 1, 1, 13, 13, kernel_size=3, stride=2, padding=1)
        mask = stride_keep_mask(layer)
        assert mask.shape == (layer.padded_height - layer.kernel_size + 1,
                              layer.padded_width - layer.kernel_size + 1)
        assert int(mask.sum()) == layer.out_height * layer.out_width

    def test_pair_stats_match_mask(self):
        layer = ConvLayer("pairs", 1, 1, 15, 15, kernel_size=5, stride=4, padding=2)
        per_pair = pair_window_stats(layer)
        assert per_pair.windows_kept == int(stride_keep_mask(layer).sum())
        assert per_pair.windows_evaluated >= per_pair.windows_kept

    def test_vectorized_ofmaps_helper_matches_reference(self):
        layer = ConvLayer("helper", 2, 4, 10, 10, kernel_size=3, padding=1, groups=2)
        ifmaps, weights = _tensors(layer, seed=11)
        from repro.cnn.reference import pad_input
        ofmaps = vectorized_layer_ofmaps(
            layer, pad_input(ifmaps.astype(np.float64), layer.padding), weights)
        np.testing.assert_allclose(ofmaps, conv2d_direct(layer, ifmaps, weights),
                                   rtol=1e-10, atol=1e-10)


class TestNetworkRunner:
    def test_lenet5_verification_passes(self):
        result = FunctionalNetworkRunner(backend="vectorized", seed=1).run(lenet5())
        assert result.passed
        assert [stage.kind for stage in result.stages] == \
            ["conv", "pool", "conv", "pool"]
        assert result.max_abs_error <= result.tolerance
        assert result.stats.windows_kept > 0
        assert result.chain_cycles_estimate > 0
        assert "PASSED" in result.describe()

    def test_tiny_network_both_backend(self):
        result = FunctionalNetworkRunner(backend="both", seed=2).run(
            tiny_test_network())
        assert result.passed
        assert len(result.conv_stages) == 2

    def test_activations_are_quantized_between_stages(self):
        runner = FunctionalNetworkRunner(backend="vectorized", seed=3, total_bits=8)
        plain = FunctionalNetworkRunner(backend="vectorized", seed=3,
                                        quantize_between_stages=False)
        coarse = runner.run(tiny_test_network())
        exact = plain.run(tiny_test_network())
        # 8-bit grids change the downstream numbers; both still verify
        # against the golden model because the reference sees the same inputs
        assert coarse.passed and exact.passed
        assert coarse.stats == exact.stats

    def test_shape_mismatch_raises(self):
        broken = Network(name="broken")
        broken.add(ConvLayer("c1", 1, 2, 8, 8, kernel_size=3))
        broken.add(ConvLayer("c2", 3, 2, 6, 6, kernel_size=3))  # wants 3 channels
        with pytest.raises(WorkloadError, match="c2"):
            FunctionalNetworkRunner(backend="vectorized").run(broken)

    def test_pooling_before_conv_raises(self):
        broken = Network(name="pool-first")
        broken.add(PoolingLayer("p0", channels=2, in_height=8, in_width=8,
                                kernel_size=2, stride=2))
        with pytest.raises(WorkloadError, match="pooling"):
            FunctionalNetworkRunner(backend="vectorized").run(broken)

    def test_pool2d_max_and_avg(self):
        act = np.arange(2 * 4 * 4, dtype=np.float64).reshape(2, 4, 4)
        spec = PoolingLayer("p", channels=2, in_height=4, in_width=4,
                            kernel_size=2, stride=2)
        pooled = pool2d(act, spec)
        assert pooled.shape == (2, 2, 2)
        assert pooled[0, 0, 0] == 5.0  # max of [[0,1],[4,5]]
        avg = pool2d(act, PoolingLayer("p", channels=2, in_height=4, in_width=4,
                                       kernel_size=2, stride=2, mode="avg"))
        assert avg[0, 0, 0] == pytest.approx(2.5)

    def test_pool2d_shape_validation(self):
        spec = PoolingLayer("p", channels=3, in_height=4, in_width=4,
                            kernel_size=2, stride=2)
        with pytest.raises(WorkloadError):
            pool2d(np.zeros((2, 4, 4)), spec)


class TestConfigSensitivity:
    def test_chain_cycles_scale_with_chain_length(self):
        layer = ConvLayer("cfg", 2, 2, 10, 10, kernel_size=3, padding=1)
        ifmaps, weights = _tensors(layer, seed=4)
        wide = FunctionalChainSimulator(ChainConfig(num_pes=576),
                                        backend="vectorized")
        narrow = FunctionalChainSimulator(ChainConfig(num_pes=36),
                                          backend="vectorized")
        cycles_wide = wide.run_layer(layer, ifmaps, weights).chain_cycles_estimate
        cycles_narrow = narrow.run_layer(layer, ifmaps, weights).chain_cycles_estimate
        assert cycles_narrow > cycles_wide


class TestOfmapBlockSizing:
    def test_vgg_scale_layer_peak_memory_stays_bounded(self):
        """The ofmap-block byte budget caps peak allocation.

        A VGG-scale out-channel count (512) over a 56x56 feature map would
        materialise a ~116 MB broadcast product in one piece; the block
        sizing must keep the peak close to ``_PRODUCT_BLOCK_BYTES`` instead,
        releasing each block's product before the next one allocates.
        """
        import tracemalloc

        from repro.cnn.reference import conv2d_im2col, pad_input
        from repro.sim.functional_vectorized import _PRODUCT_BLOCK_BYTES

        layer = ConvLayer("vgg-scale", in_channels=4, out_channels=512,
                          in_height=56, in_width=56, kernel_size=3, padding=1)
        window_bytes = (layer.out_height * layer.out_width
                        * layer.kernel_size * layer.kernel_size * 8)
        unblocked_product_bytes = layer.out_channels * window_bytes
        # the scenario must actually engage the blocking to test anything
        assert unblocked_product_bytes > _PRODUCT_BLOCK_BYTES

        ifmaps, weights = _tensors(layer, seed=3)
        padded = pad_input(ifmaps, layer.padding)
        tracemalloc.start()
        try:
            ofmaps = vectorized_layer_ofmaps(layer, padded, weights)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()

        ofmap_bytes = ofmaps.nbytes
        bound = int(1.25 * _PRODUCT_BLOCK_BYTES) + ofmap_bytes + 16 * 1024 * 1024
        assert peak <= bound, (
            f"peak {peak / 1e6:.1f} MB above the blocked bound "
            f"{bound / 1e6:.1f} MB"
        )
        assert peak < unblocked_product_bytes  # far from the unblocked cliff
        reference = conv2d_im2col(layer, ifmaps, weights)
        assert float(np.max(np.abs(ofmaps - reference))) < 1e-9
