"""Observability suite: span tracing, the metrics registry, exporters,
worker-side trace merging (including under seeded fault injection) and the
CLI ``--trace`` / ``--metrics`` / stats-footer surfaces.

Part of the CI equivalence gate: the trace-merge-under-faults test is the
structural guarantee that a crashing pool still yields a well-formed
merged trace (no unclosed spans, recovery visible as instants)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.cnn.zoo import tiny_test_network
from repro.core.config import ChainConfig
from repro.engine.executor import SweepExecutor
from repro.mapping import ScheduleOptimizer
from repro.obs import trace as obs_trace
from repro.obs.export import (
    export_trace,
    load_trace,
    summarize_trace,
    render_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry, render_metrics
from repro.obs.trace import TraceRecorder
from repro.runtime import FaultPlan, RetryPolicy, SupervisedRuntime
from repro.runtime import pool as pool_module
from repro.runtime.faults import FAULT_SPEC_ENV


@pytest.fixture(autouse=True)
def obs_clean(monkeypatch):
    """Every test starts untraced with a clean env and leaves no residue
    (a leaked $REPRO_TRACE would make *other* tests' pool workers record)."""
    monkeypatch.delenv(obs_trace.TRACE_ENV, raising=False)
    obs_trace.disable()
    yield
    obs_trace.disable()
    REGISTRY.reset()


class FakeClock:
    """Injectable monotonic clock for deterministic timestamps."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


# --------------------------------------------------------------------- #
# spans
# --------------------------------------------------------------------- #
class TestSpans:
    def test_nested_spans_record_exact_timestamps(self):
        clock = FakeClock()
        rec = TraceRecorder(label="test", clock=clock)
        with rec.span("outer", foo=1) as outer:
            clock.advance(0.001)
            with rec.span("inner"):
                clock.advance(0.002)
            outer.set(bar=2)
            clock.advance(0.001)
        inner, outer_event = rec.events  # inner closes (and records) first
        assert inner["name"] == "inner"
        assert inner["ts"] == 1_000 and inner["dur"] == 2_000
        assert outer_event["name"] == "outer"
        assert outer_event["ts"] == 0 and outer_event["dur"] == 4_000
        assert outer_event["args"] == {"foo": 1, "bar": 2}
        assert rec.depth == 0

    def test_exception_closes_span_and_tags_error(self):
        rec = TraceRecorder(clock=FakeClock())
        with pytest.raises(ValueError):
            with rec.span("boom"):
                raise ValueError("injected")
        event = rec.events[-1]
        assert event["args"]["error"] == "ValueError"
        assert "dur" in event  # closed despite the exception

    def test_module_level_span_uses_injected_clock(self):
        clock = FakeClock()
        rec = obs_trace.enable(clock=clock, env=False)
        with obs_trace.span("a"):
            clock.advance(0.5)
        obs_trace.instant("tick", n=3)
        assert rec.events[0]["dur"] == 500_000
        assert rec.events[1] == {
            "ph": "i", "name": "tick", "ts": 500_000,
            "pid": rec.pid, "tid": 0, "args": {"n": 3},
        }

    def test_disabled_path_is_a_shared_noop(self):
        assert not obs_trace.enabled()
        first = obs_trace.span("x", attr=1)
        second = obs_trace.span("y")
        assert first is second  # the one shared null span: no allocation
        with first as span:
            span.set(anything=True)
        obs_trace.instant("ignored")
        assert obs_trace.ship() is None
        assert obs_trace.get_recorder() is None

    def test_enable_is_idempotent_and_sets_env(self, monkeypatch):
        monkeypatch.delenv(obs_trace.TRACE_ENV, raising=False)
        import os
        rec = obs_trace.enable()
        assert obs_trace.enable() is rec
        assert os.environ[obs_trace.TRACE_ENV] == "1"
        obs_trace.disable()
        assert obs_trace.TRACE_ENV not in os.environ

    def test_traced_decorator(self):
        @obs_trace.traced("my.fn")
        def doubled(x):
            return 2 * x

        @obs_trace.traced()
        def named(x):
            return x

        assert doubled(3) == 6  # disabled: plain call, nothing recorded
        rec = obs_trace.enable(clock=FakeClock(), env=False)
        assert doubled(4) == 8
        assert named(5) == 5
        assert [e["name"] for e in rec.events] == \
            ["my.fn", "TestSpans.test_traced_decorator.<locals>.named"]


# --------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_instruments_memoise_and_snapshot(self):
        reg = MetricsRegistry()
        count = reg.counter("a")
        assert reg.counter("a") is count
        count.inc()
        count.inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        reg.histogram("h").observe(4.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"] == {
            "count": 2, "total": 6.0, "min": 2.0, "max": 4.0, "mean": 3.0}

    def test_delta_ship_merge_round_trip(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(5)
        worker.rebase()  # fork-inherited counts must not re-ship
        assert worker.collect_delta() is None
        worker.counter("c").inc(2)
        worker.histogram("h").observe(1.0)
        delta = worker.collect_delta()
        assert delta["counters"] == {"c": 2}
        assert delta["histograms"]["h"]["count"] == 1
        assert worker.collect_delta() is None  # delta consumed the baseline

        parent = MetricsRegistry()
        parent.counter("c").inc(10)
        parent.merge(delta)
        parent.merge(None)  # the untraced common case
        assert parent.counter("c").value == 12
        assert parent.histogram("h").count == 1
        assert parent.histogram("h").min == 1.0

    def test_reset_zeroes_in_place(self):
        reg = MetricsRegistry()
        count = reg.counter("x")
        hist = reg.histogram("h")
        count.inc(7)
        hist.observe(3.0)
        reg.reset()
        # import-time-bound instruments must stay live across reset
        assert reg.counter("x") is count and count.value == 0
        assert hist.count == 0 and hist.min == float("inf")
        count.inc()
        assert reg.flat() == {"x": 1}

    def test_flat_and_render(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits").inc(3)
        reg.histogram("cache.lock_wait_s").observe(0.5)
        flat = reg.flat()
        assert flat["cache.hits"] == 3
        assert flat["cache.lock_wait_s.count"] == 1
        text = render_metrics(flat)
        assert "cache.hits" in text and "3" in text
        assert render_metrics(flat, prefixes=("nope.",)) == ""


# --------------------------------------------------------------------- #
# exporters and trace files
# --------------------------------------------------------------------- #
def _sample_recorder() -> TraceRecorder:
    clock = FakeClock()
    rec = TraceRecorder(label="main", clock=clock)
    with rec.span("outer"):
        clock.advance(0.001)
        with rec.span("inner", k=3):
            clock.advance(0.001)
        clock.advance(0.001)
    rec.instant("tick", {"n": 1})
    return rec


class TestExport:
    def test_chrome_round_trip_and_validation(self, tmp_path):
        rec = _sample_recorder()
        path = tmp_path / "t.json"
        write_chrome_trace(str(path), rec.events, rec.process_labels(),
                           metrics={"counters": {"a": 1}})
        info = validate_chrome_trace(str(path))
        assert info == {"spans": 2, "instants": 1, "processes": 1, "tracks": 1}
        events, meta = load_trace(str(path))
        assert meta["labels"][rec.pid] == "main"
        assert meta["metrics"] == {"counters": {"a": 1}}
        assert sorted(e["name"] for e in events) == ["inner", "outer", "tick"]

    def test_jsonl_round_trip(self, tmp_path):
        rec = _sample_recorder()
        path = tmp_path / "t.jsonl"
        write_jsonl(str(path), rec.events, metrics={"counters": {"a": 1}})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["type"] for line in lines] == \
            ["span", "span", "instant", "metrics"]
        events, meta = load_trace(str(path))
        assert len(events) == 3
        assert meta["metrics"] == {"counters": {"a": 1}}

    def test_validation_rejects_overlap_and_empty(self, tmp_path):
        bad = tmp_path / "bad.json"
        write_chrome_trace(str(bad), [
            {"ph": "X", "name": "a", "ts": 0, "dur": 10, "pid": 1, "tid": 0},
            {"ph": "X", "name": "b", "ts": 5, "dur": 10, "pid": 1, "tid": 0},
        ])
        with pytest.raises(ValueError, match="overlaps"):
            validate_chrome_trace(str(bad))
        empty = tmp_path / "empty.json"
        empty.write_text('{"traceEvents": []}')
        with pytest.raises(ValueError, match="no traceEvents"):
            validate_chrome_trace(str(empty))

    def test_sibling_spans_pass_validation(self, tmp_path):
        path = tmp_path / "ok.json"
        write_chrome_trace(str(path), [
            {"ph": "X", "name": "p", "ts": 0, "dur": 30, "pid": 1, "tid": 0},
            {"ph": "X", "name": "a", "ts": 0, "dur": 10, "pid": 1, "tid": 0},
            {"ph": "X", "name": "b", "ts": 10, "dur": 10, "pid": 1, "tid": 0},
        ])
        assert validate_chrome_trace(str(path))["spans"] == 3

    def test_export_trace_requires_a_recorder(self, tmp_path):
        with pytest.raises(RuntimeError, match="not enabled"):
            export_trace(str(tmp_path / "x.json"))

    def test_summarize(self, tmp_path):
        rec = _sample_recorder()
        path = tmp_path / "t.json"
        write_chrome_trace(str(path), rec.events, rec.process_labels())
        summary = summarize_trace(str(path))
        assert summary["spans"] == 2 and summary["instants"] == 1
        assert summary["by_name"]["inner"]["count"] == 1
        text = render_summary(summary)
        assert "inner" in text and "main" in text


# --------------------------------------------------------------------- #
# worker-side collection: one merged trace across the pool
# --------------------------------------------------------------------- #
@pytest.fixture
def force_parallel(monkeypatch):
    monkeypatch.setenv(pool_module.FORCE_PARALLEL_ENV, "1")


def _pool(fault_plan, **policy):
    pool = SupervisedRuntime.create(2, fault_plan=fault_plan)
    if pool is None:
        pytest.skip("platform cannot provide process pools")
    if policy:
        pool.policy = RetryPolicy(**policy)
    return pool


class TestWorkerMerge:
    def test_worker_spans_merge_into_parent_recorder(self, force_parallel):
        obs_trace.enable()
        pool = _pool(FaultPlan.none())
        try:
            pool.broadcast("runtime.selftest", {"action": "count"})
            results = pool.map(
                "runtime.selftest",
                [{"action": "echo", "value": i} for i in range(6)])
            assert [r["value"] for r in results] == list(range(6))
        finally:
            pool.close()
        rec = obs_trace.get_recorder()
        events = rec.events
        # the broadcast reached every worker: both lanes are on the timeline
        procs = {e.get("proc") for e in events if "proc" in e}
        assert {"worker-0", "worker-1"} <= procs
        assert len({e["pid"] for e in events}) >= 2
        task_spans = [e for e in events if e["name"] == "task:runtime.selftest"]
        assert len(task_spans) == 8  # 2 broadcast legs + 6 mapped tasks
        assert all("dur" in e for e in task_spans)

    def test_worker_metrics_unshipped_when_untraced(self, force_parallel):
        # tracing off: workers ship None; the parent registry sees only
        # parent-side increments (which is what the stats footer reads)
        pool = _pool(FaultPlan.none())
        try:
            results = pool.map("runtime.selftest",
                               [{"action": "echo", "value": 1}])
            assert results[0]["value"] == 1
        finally:
            pool.close()
        assert obs_trace.ship() is None

    def test_fault_injected_merge_is_well_formed(self, force_parallel,
                                                 monkeypatch, tmp_path):
        """Satellite: every first attempt crashes its worker, yet the merged
        trace validates — no orphan/unclosed spans, respawns visible."""
        monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
        obs_trace.enable()
        pool = _pool("crash:p=1,seed=11,attempts=1", backoff=0.01)
        try:
            payloads = [{"action": "echo", "value": i} for i in range(6)]
            results = pool.map("runtime.selftest", payloads)
            assert [r["value"] for r in results] == list(range(6))
            assert pool.stats.worker_deaths > 0
            assert pool.stats.respawns > 0
        finally:
            pool.close()
        path = tmp_path / "faulty.json"
        exported = export_trace(str(path))
        assert exported > 0
        info = validate_chrome_trace(str(path))  # raises on malformed nesting
        assert info["spans"] >= 6  # every task retried to completion
        events, _ = load_trace(str(path))
        spans = [e for e in events if e["ph"] == "X"]
        assert all("dur" in e and e["dur"] >= 0 for e in spans)
        # recovery is visible on the parent lane as instants
        instant_names = {e["name"] for e in events if e["ph"] == "i"}
        assert "runtime.worker_deaths" in instant_names
        assert "runtime.respawns" in instant_names
        # and the supervisor's stats were absorbed into the registry
        flat = REGISTRY.flat()
        assert flat["runtime.worker_deaths"] == pool.stats.worker_deaths
        assert flat["runtime.respawns"] == pool.stats.respawns


# --------------------------------------------------------------------- #
# bit-identity: tracing must observe, never perturb
# --------------------------------------------------------------------- #
class TestBitIdentity:
    def test_sweep_identical_with_tracing_on(self):
        network = tiny_test_network()
        configs = [ChainConfig(num_pes=pes) for pes in (96, 192, 288)]
        with SweepExecutor(engine="analytical", network=network) as executor:
            baseline = executor.run(configs, parallel=False)
        obs_trace.enable(env=False)
        with SweepExecutor(engine="analytical", network=network) as executor:
            traced = executor.run(configs, parallel=False)
        assert [r.metrics for r in traced] == [r.metrics for r in baseline]
        assert obs_trace.get_recorder().events  # it did record

    def test_mapping_search_identical_with_tracing_on(self):
        network = tiny_test_network()
        baseline = ScheduleOptimizer(objective="latency", strategy="exhaustive",
                                     batch=4).optimize(network)
        obs_trace.enable(env=False)
        traced = ScheduleOptimizer(objective="latency", strategy="exhaustive",
                                   batch=4).optimize(network)
        assert traced.to_json_dict() == baseline.to_json_dict()


# --------------------------------------------------------------------- #
# CLI surfaces: --trace / --metrics / stats footer / trace summarize
# --------------------------------------------------------------------- #
class TestCli:
    def test_sweep_trace_metrics_and_footer(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        status = cli_main(["--trace", str(path), "--metrics",
                           "sweep", "pes", "--network", "alexnet"])
        assert status == 0
        err = capsys.readouterr().err
        assert "[obs] sweep:" in err and "points" in err  # the footer
        assert "Perfetto" in err
        assert "sweep.points" in err  # the --metrics dump
        info = validate_chrome_trace(str(path))
        assert info["spans"] >= 2  # cli.sweep + sweep.run_points at least

        status = cli_main(["trace", "summarize", str(path)])
        assert status == 0
        out = capsys.readouterr().out
        assert "cli.sweep" in out

    def test_footer_without_trace_flag(self, capsys):
        status = cli_main(["map", "--network", "alexnet",
                           "--strategy", "greedy"])
        assert status == 0
        err = capsys.readouterr().err
        assert "[obs] map:" in err and "candidates" in err
        assert "cache off" in err

    def test_jsonl_trace_export(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        status = cli_main(["--trace", str(path),
                           "map", "--network", "alexnet", "--strategy",
                           "greedy"])
        assert status == 0
        capsys.readouterr()
        events, meta = load_trace(str(path))
        assert any(e["name"] == "cli.map" for e in events)
        assert any(e["name"] == "map.optimize" for e in events)
        assert meta["metrics"]["counters"]["mapping.candidates_searched"] > 0

    def test_summarize_missing_file_is_an_error(self, tmp_path, capsys):
        status = cli_main(["trace", "summarize", str(tmp_path / "nope.json")])
        assert status == 2
        assert "error" in capsys.readouterr().err
