"""Tests for the reporting, comparison, sweep and roofline tooling."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import StateOfTheArtComparison
from repro.analysis.report import (
    format_cell,
    render_bar_chart,
    render_comparison,
    render_dict_table,
    render_table,
)
from repro.analysis.roofline import RooflineModel
from repro.analysis.sweep import DesignSpaceExplorer
from repro.cnn.zoo import alexnet
from repro.core.config import ChainConfig


class TestReportRendering:
    def test_format_cell_variants(self):
        assert format_cell(None) == "-"
        assert format_cell(0.0) == "0"
        assert format_cell(1234.5) == "1,234"
        assert format_cell(12.34) == "12.3"
        assert format_cell(0.125) == "0.125"
        assert format_cell("text") == "text"

    def test_render_table_alignment_and_content(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": None}]
        text = render_table(rows, title="demo", row_names=["r1", "r2"], row_label="row")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "r1" in text and "r2" in text and "-" in text
        # header separator present
        assert any(set(line) <= {"-", "+", " "} and "-" in line for line in lines)

    def test_render_table_empty(self):
        assert render_table([], title="empty") == "empty"

    def test_render_dict_table(self):
        text = render_dict_table({"row": {"col": 3.0}}, title="t")
        assert "row" in text and "col" in text

    def test_render_bar_chart(self):
        chart = render_bar_chart({"conv1": 159.3, "conv5": 28.6}, title="times", unit=" ms")
        assert "conv1" in chart and "#" in chart and "ms" in chart

    def test_render_bar_chart_empty(self):
        assert render_bar_chart({}, title="none") == "none"

    def test_render_comparison_ratio(self):
        text = render_comparison({"x": 2.0}, {"x": 1.0}, title="cmp")
        assert "0.500" in text


class TestComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return StateOfTheArtComparison(batch=4).run()

    def test_published_rows_present(self, comparison):
        assert any("DaDianNao" in name for name in comparison.published_rows)
        assert any("Eyeriss" in name for name in comparison.published_rows)
        assert any("Chain-NN" in name for name in comparison.published_rows)

    def test_modelled_rows_present(self, comparison):
        assert len(comparison.modelled_rows) == 3

    def test_chain_nn_wins_modelled_comparison(self, comparison):
        assert comparison.chain_nn_wins

    def test_modelled_ratio_range_matches_paper_claim(self, comparison):
        modelled = [v for k, v in comparison.efficiency_ratios.items() if k.startswith("modelled")]
        assert min(modelled) == pytest.approx(2.5, abs=0.3)
        assert max(modelled) == pytest.approx(4.1, abs=0.3)

    def test_published_ratio_range(self, comparison):
        published = [v for k, v in comparison.efficiency_ratios.items()
                     if not k.startswith("modelled")]
        assert min(published) == pytest.approx(2.49, abs=0.05)
        assert max(published) > 4.0

    def test_area_efficiency_ratio(self, comparison):
        assert comparison.area_efficiency["ratio"] == pytest.approx(1.7, abs=0.1)


class TestSweep:
    @pytest.fixture(scope="class")
    def explorer(self):
        return DesignSpaceExplorer(alexnet(), batch=16)

    def test_chain_length_sweep_monotone_throughput(self, explorer):
        points = explorer.sweep_chain_length(pe_counts=(288, 576, 1152))
        fps = [point.fps for point in points]
        assert fps == sorted(fps)
        assert points[1].peak_gops == pytest.approx(806.4)

    def test_frequency_sweep(self, explorer):
        points = explorer.sweep_frequency(frequencies_mhz=(350, 700))
        assert points[1].fps > points[0].fps
        assert points[1].peak_gops == pytest.approx(2 * points[0].peak_gops)

    def test_batch_sweep_monotone(self, explorer):
        fps_by_batch = explorer.sweep_batch_size(batches=(1, 4, 32, 128))
        values = list(fps_by_batch.values())
        assert values == sorted(values)

    def test_utilization_sweep_covers_range_and_stays_bounded(self, explorer):
        utilization = explorer.utilization_by_chain_length(low=512, high=640, step=32)
        assert set(utilization) == {512, 544, 576, 608, 640}
        assert all(0.0 < value <= 1.0 for value in utilization.values())
        # the paper's 576-PE choice guarantees at least 84 % for every kernel size
        assert utilization[576] == pytest.approx(484 / 576)

    def test_sweep_point_row(self, explorer):
        point = explorer.evaluate(ChainConfig())
        row = point.as_row()
        assert row["PEs"] == 576
        assert row["GOPS/W"] > 0


class TestRoofline:
    def test_alexnet_layers_are_compute_bound_with_dual_channel(self):
        model = RooflineModel(ChainConfig())
        summary = model.summary(alexnet())
        assert all(bound == "compute" for bound in summary.values())

    def test_single_channel_pushes_layers_to_bandwidth_bound(self):
        model = RooflineModel(ChainConfig().single_channel())
        points = model.network_points(alexnet())
        assert any(point.bound == "bandwidth" for point in points)

    def test_roof_fraction_bounded(self):
        model = RooflineModel(ChainConfig())
        for point in model.network_points(alexnet()):
            assert 0 < point.roof_fraction <= 1.0

    def test_operational_intensity_grows_with_kernel(self):
        model = RooflineModel(ChainConfig())
        conv1 = model.layer_point(alexnet().conv_layer("conv1"))
        conv3 = model.layer_point(alexnet().conv_layer("conv3"))
        assert conv1.operational_intensity > conv3.operational_intensity
