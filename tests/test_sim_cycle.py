"""Tests for the cycle-accurate chain simulator (the ModelSim-check reproduction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.cnn.reference import conv2d_direct
from repro.cnn.zoo import tiny_test_network
from repro.core.config import ChainConfig
from repro.core.performance import PerformanceModel
from repro.errors import WorkloadError
from repro.sim.cycle import CycleAccurateChainSimulator
from repro.sim.trace import TraceEvent, TraceLog


@pytest.fixture(scope="module")
def simulator():
    return CycleAccurateChainSimulator(ChainConfig())


def _tensors(layer, seed=0):
    return WorkloadGenerator(seed=seed).layer_pair(layer)


class TestCycleAccurateCorrectness:
    def test_stride1_layer(self, simulator, tiny_layer):
        ifmaps, weights = _tensors(tiny_layer)
        result = simulator.run_layer(tiny_layer, ifmaps, weights)
        assert result.reference_max_abs_error == pytest.approx(0.0, abs=1e-9)

    def test_strided_layer(self, simulator, strided_layer):
        ifmaps, weights = _tensors(strided_layer, seed=1)
        result = simulator.run_layer(strided_layer, ifmaps, weights)
        assert result.reference_max_abs_error == pytest.approx(0.0, abs=1e-9)
        assert result.stats.outputs_discarded_by_stride > 0

    def test_grouped_layer(self, simulator, grouped_layer):
        ifmaps, weights = _tensors(grouped_layer, seed=2)
        result = simulator.run_layer(grouped_layer, ifmaps, weights)
        assert result.reference_max_abs_error == pytest.approx(0.0, abs=1e-9)

    def test_k5_layer(self, simulator):
        layer = ConvLayer("k5", 1, 2, 11, 11, kernel_size=5)
        ifmaps, weights = _tensors(layer, seed=3)
        result = simulator.run_layer(layer, ifmaps, weights)
        assert result.reference_max_abs_error == pytest.approx(0.0, abs=1e-9)

    def test_quantisation_error_vs_float_reference_is_small(self, simulator, tiny_layer):
        ifmaps, weights = _tensors(tiny_layer)
        result = simulator.run_layer(tiny_layer, ifmaps, weights)
        float_reference = conv2d_direct(tiny_layer, ifmaps, weights)
        error = float(np.max(np.abs(float_reference - result.ofmaps)))
        rms = float(np.sqrt(np.mean(float_reference ** 2)))
        assert error / rms < 0.02  # 16-bit quantisation noise only

    def test_tiny_network_both_layers(self, simulator):
        network = tiny_test_network()
        gen = WorkloadGenerator(seed=5)
        for layer in network.conv_layers:
            ifmaps, weights = gen.layer_pair(layer)
            result = simulator.run_layer(layer, ifmaps, weights)
            assert result.reference_max_abs_error == pytest.approx(0.0, abs=1e-9)

    def test_shape_validation(self, simulator, tiny_layer):
        ifmaps, weights = _tensors(tiny_layer)
        with pytest.raises(WorkloadError):
            simulator.run_layer(tiny_layer, ifmaps[:1], weights)


class TestCycleAccounting:
    def test_macs_match_workload_plus_edge_work(self, simulator, tiny_layer):
        ifmaps, weights = _tensors(tiny_layer)
        result = simulator.run_layer(tiny_layer, ifmaps, weights)
        # the chain also computes windows it later discards (padding edges),
        # so the MAC count is at least the layer's useful MACs
        assert result.stats.macs >= tiny_layer.macs

    def test_kernel_load_cycles(self, simulator, tiny_layer):
        ifmaps, weights = _tensors(tiny_layer)
        result = simulator.run_layer(tiny_layer, ifmaps, weights)
        assert result.stats.kernel_load_cycles == tiny_layer.weight_count

    def test_outputs_collected_matches_output_volume(self, simulator, tiny_layer):
        ifmaps, weights = _tensors(tiny_layer)
        result = simulator.run_layer(tiny_layer, ifmaps, weights)
        expected = (tiny_layer.out_height * tiny_layer.out_width * tiny_layer.out_channels
                    * tiny_layer.in_channels_per_group)
        assert result.stats.outputs_collected == expected

    def test_detailed_analytical_model_brackets_simulated_cycles(self, tiny_layer):
        """The detailed analytical cycle count stays within ~15 % of simulation."""
        config = ChainConfig()
        simulator = CycleAccurateChainSimulator(config)
        ifmaps, weights = _tensors(tiny_layer)
        sim_result = simulator.run_layer(tiny_layer, ifmaps, weights)
        detailed = PerformanceModel(config, mode="detailed")
        mapping = detailed.mapper.map_layer(tiny_layer)
        predicted_primitive_cycles = detailed.pair_cycles(tiny_layer) * mapping.channel_pairs
        assert sim_result.stats.primitive_cycles == pytest.approx(
            predicted_primitive_cycles, rel=0.15)

    def test_stats_expose_formats(self, simulator, tiny_layer):
        ifmaps, weights = _tensors(tiny_layer)
        result = simulator.run_layer(tiny_layer, ifmaps, weights)
        assert result.ifmap_format.total_bits == 16
        assert result.weight_format.total_bits == 16
        assert result.total_cycles_with_kernel_load > result.chain_cycles_estimate


class TestTraceLog:
    def test_record_and_query(self):
        log = TraceLog()
        log.record(1, "pe0", "mac", 5)
        log.record(2, "pe1", "mac", 6)
        log.record(3, "pe0", "stall")
        assert len(log) == 3
        assert len(log.by_source("pe0")) == 2
        assert len(log.by_event("mac")) == 2
        assert len(log.between(2, 3)) == 2

    def test_disabled_log_records_nothing(self):
        log = TraceLog(enabled=False)
        log.record(1, "x", "y")
        assert len(log) == 0

    def test_limit(self):
        log = TraceLog(limit=2)
        for cycle in range(5):
            log.record(cycle, "x", "event")
        assert len(log) == 2

    def test_dump_format(self):
        event = TraceEvent(cycle=7, source="pe3", event="mac", value=42)
        text = TraceLog(events=[event]).dump()
        assert "pe3" in text and "42" in text

    def test_clear(self):
        log = TraceLog()
        log.record(1, "x", "y")
        log.clear()
        assert len(log) == 0
