"""Tests for the functional (dataflow-level) chain simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.cnn.reference import conv2d_direct
from repro.core.config import ChainConfig
from repro.errors import WorkloadError
from repro.sim.functional import FunctionalChainSimulator


@pytest.fixture(scope="module", params=["scalar", "vectorized"])
def simulator(request):
    """Both backends share one result contract; every test runs on each."""
    return FunctionalChainSimulator(ChainConfig(), backend=request.param)


def _tensors(layer, seed=0):
    gen = WorkloadGenerator(seed=seed)
    return gen.layer_pair(layer)


class TestFunctionalCorrectness:
    def test_stride1_layer_matches_reference(self, simulator):
        layer = ConvLayer("f1", 3, 4, 10, 10, kernel_size=3, padding=1)
        ifmaps, weights = _tensors(layer)
        result = simulator.run_layer(layer, ifmaps, weights)
        np.testing.assert_allclose(result.ofmaps, conv2d_direct(layer, ifmaps, weights),
                                   rtol=1e-10, atol=1e-10)

    def test_strided_layer_matches_reference(self, simulator):
        layer = ConvLayer("f2", 2, 3, 15, 15, kernel_size=3, stride=2)
        ifmaps, weights = _tensors(layer, seed=1)
        assert simulator.run_and_check(layer, ifmaps, weights)["max_abs_error"] < 1e-9

    def test_grouped_layer_matches_reference(self, simulator):
        layer = ConvLayer("f3", 4, 6, 9, 9, kernel_size=3, padding=1, groups=2)
        ifmaps, weights = _tensors(layer, seed=2)
        assert simulator.run_and_check(layer, ifmaps, weights)["max_abs_error"] < 1e-9

    def test_k5_layer_matches_reference(self, simulator):
        layer = ConvLayer("f4", 2, 2, 14, 14, kernel_size=5, padding=2)
        ifmaps, weights = _tensors(layer, seed=3)
        assert simulator.run_and_check(layer, ifmaps, weights)["max_abs_error"] < 1e-9

    def test_alexnet_conv1_like_geometry(self, simulator):
        # a shrunken conv1: stride 4, kernel 11 on a 47x47 image
        layer = ConvLayer("mini_conv1", 1, 2, 47, 47, kernel_size=11, stride=4)
        ifmaps, weights = _tensors(layer, seed=4)
        assert simulator.run_and_check(layer, ifmaps, weights)["max_abs_error"] < 1e-9

    def test_golden_check_agrees_with_both_references(self, simulator):
        """The im2col-based golden check never diverges from the direct one.

        ``max_abs_error_vs_reference`` compares against the im2col/GEMM
        reference (fast on large layers); this pins the simulator output to
        the direct reference too, so the two golden paths stay interchangeable.
        """
        layer = ConvLayer("fx", 4, 6, 13, 13, kernel_size=3, stride=2,
                          padding=1, groups=2)
        ifmaps, weights = _tensors(layer, seed=5)
        result = simulator.run_layer(layer, ifmaps, weights)
        assert result.max_abs_error_vs_reference(ifmaps, weights) < 1e-9
        direct = conv2d_direct(layer, ifmaps, weights)
        assert float(np.max(np.abs(direct - result.ofmaps))) < 1e-9

    def test_shape_validation(self, simulator):
        layer = ConvLayer("f5", 2, 2, 8, 8, kernel_size=3)
        ifmaps, weights = _tensors(layer)
        with pytest.raises(WorkloadError):
            simulator.run_layer(layer, ifmaps[:1], weights)
        with pytest.raises(WorkloadError):
            simulator.run_layer(layer, ifmaps, weights[:, :, :2, :])


class TestFunctionalStatistics:
    def test_pair_count_matches_mapping(self, simulator):
        layer = ConvLayer("f6", 4, 6, 9, 9, kernel_size=3, padding=1, groups=2)
        ifmaps, weights = _tensors(layer)
        result = simulator.run_layer(layer, ifmaps, weights)
        assert result.stats.pairs_processed == layer.channel_pairs()

    def test_stride_discard_fraction(self, simulator):
        dense = ConvLayer("d", 1, 1, 13, 13, kernel_size=3)
        strided = ConvLayer("s", 1, 1, 13, 13, kernel_size=3, stride=2)
        dense_result = simulator.run_layer(dense, *_tensors(dense))
        strided_result = simulator.run_layer(strided, *_tensors(strided))
        assert dense_result.stats.stride_discard_fraction == pytest.approx(0.0)
        assert strided_result.stats.stride_discard_fraction > 0.5

    def test_windows_kept_equals_output_volume_times_channels(self, simulator):
        layer = ConvLayer("f7", 3, 2, 10, 10, kernel_size=3, padding=1)
        result = simulator.run_layer(layer, *_tensors(layer))
        expected = layer.out_height * layer.out_width * layer.out_channels \
            * layer.in_channels_per_group
        assert result.stats.windows_kept == expected

    def test_chain_cycle_estimate_positive_and_reasonable(self, simulator):
        layer = ConvLayer("f8", 3, 2, 10, 10, kernel_size=3, padding=1)
        result = simulator.run_layer(layer, *_tensors(layer))
        # at least the MAC-bound lower bound
        assert result.chain_cycles_estimate * 576 >= layer.macs

    def test_pixels_streamed_counts_stripe_overlap(self, simulator):
        layer = ConvLayer("f9", 1, 1, 12, 12, kernel_size=3)
        result = simulator.run_layer(layer, *_tensors(layer))
        # stripes overlap by K-1 rows, so more pixels are streamed than exist
        assert result.stats.pixels_streamed > layer.input_pixels


class TestFunctionalProperties:
    @given(
        kernel=st.sampled_from([2, 3, 5]),
        pad=st.integers(0, 2),
        extra=st.integers(0, 4),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_geometry_matches_reference(self, kernel, pad, extra, seed):
        size = kernel + extra + 2
        layer = ConvLayer("prop", 2, 2, size, size, kernel_size=kernel, padding=pad)
        simulator = FunctionalChainSimulator(ChainConfig())
        ifmaps, weights = _tensors(layer, seed=seed)
        reference = conv2d_direct(layer, ifmaps, weights)
        result = simulator.run_layer(layer, ifmaps, weights)
        np.testing.assert_allclose(result.ofmaps, reference, rtol=1e-9, atol=1e-9)
