"""Tests for the baseline architecture models and published specs (Table V inputs)."""

from __future__ import annotations

import pytest

from repro.baselines.base import AcceleratorSummary
from repro.baselines.chain_nn_model import ChainNNModel
from repro.baselines.memory_centric import MemoryCentricAccelerator, MemoryCentricParams
from repro.baselines.single_channel import SingleChannelChain
from repro.baselines.spatial_2d import Spatial2DAccelerator, Spatial2DParams
from repro.baselines.specs import (
    ALL_PUBLISHED_SPECS,
    CHAIN_NN_SPEC,
    DADIANNAO_SPEC,
    EYERISS_SPEC,
    PAPER_EFFICIENCY_RATIOS,
)
from repro.cnn.zoo import alexnet
from repro.energy.technology import TSMC_28NM


@pytest.fixture(scope="module")
def network():
    return alexnet()


class TestPublishedSpecs:
    def test_table5_columns(self):
        assert DADIANNAO_SPEC.peak_gops == pytest.approx(5584.9)
        assert DADIANNAO_SPEC.power_w == pytest.approx(15.97)
        assert EYERISS_SPEC.parallelism == 168
        assert CHAIN_NN_SPEC.peak_gops == pytest.approx(806.4)
        assert CHAIN_NN_SPEC.onchip_memory_bytes == 352 * 1024

    def test_dadiannao_efficiency_is_349_7(self):
        assert DADIANNAO_SPEC.energy_efficiency_gops_w == pytest.approx(349.7, rel=0.01)

    def test_eyeriss_uses_published_efficiency(self):
        assert EYERISS_SPEC.energy_efficiency_gops_w == pytest.approx(245.6)

    def test_eyeriss_paper_style_scaling_gives_570(self):
        scaled = EYERISS_SPEC.efficiency_scaled_paper_style(TSMC_28NM)
        assert scaled == pytest.approx(570.1, rel=0.01)

    def test_chain_nn_efficiency_is_1421(self):
        assert CHAIN_NN_SPEC.energy_efficiency_gops_w == pytest.approx(1421.0, rel=0.01)

    def test_paper_ratio_range_is_2_5_to_4_1(self):
        ratios = [PAPER_EFFICIENCY_RATIOS["vs DaDianNao"],
                  PAPER_EFFICIENCY_RATIOS["vs Eyeriss (scaled to 28nm)"]]
        assert min(ratios) == pytest.approx(2.5, abs=0.05)
        assert max(ratios) == pytest.approx(4.1, abs=0.05)

    def test_gates_per_pe(self):
        assert EYERISS_SPEC.gates_per_pe == pytest.approx(11024, rel=0.01)
        assert CHAIN_NN_SPEC.gates_per_pe == pytest.approx(6512, rel=0.01)

    def test_as_row_keys(self):
        for spec in ALL_PUBLISHED_SPECS:
            row = spec.as_row()
            assert "Energy Eff. (GOPS/W)" in row and "Parallelism" in row


class TestMemoryCentricModel:
    def test_peak_matches_dadiannao(self):
        model = MemoryCentricAccelerator()
        assert model.peak_gops == pytest.approx(5584.9, rel=0.01)

    def test_efficiency_lands_near_published(self, network):
        model = MemoryCentricAccelerator()
        summary = model.summarise(network, batch=4)
        assert summary.energy_efficiency_gops_w == pytest.approx(349.7, rel=0.10)

    def test_power_is_orders_of_magnitude_above_chain_nn(self, network):
        model = MemoryCentricAccelerator()
        assert model.workload_power_w(network, 4) > 5.0

    def test_energy_per_mac_includes_memory_movement(self):
        params = MemoryCentricParams()
        assert params.energy_per_mac_j > 3 * params.mac_op_j

    def test_workload_time_scales_with_batch(self, network):
        model = MemoryCentricAccelerator()
        assert model.workload_time_s(network, 8) == pytest.approx(
            2 * model.workload_time_s(network, 4))


class TestSpatial2DModel:
    def test_published_geometry(self):
        model = Spatial2DAccelerator()
        assert model.parallelism == 168
        assert model.gate_count() == pytest.approx(1852e3)
        assert model.gates_per_pe == pytest.approx(11024, rel=0.01)

    def test_65nm_efficiency_near_published(self, network):
        model = Spatial2DAccelerator()
        summary = model.summarise(network, batch=4)
        assert summary.energy_efficiency_gops_w == pytest.approx(245.6, rel=0.10)

    def test_scaled_to_28nm_lands_near_570(self, network):
        model = Spatial2DAccelerator.scaled_to_28nm()
        summary = model.summarise(network, batch=4)
        assert summary.energy_efficiency_gops_w == pytest.approx(570.1, rel=0.10)

    def test_scaling_preserves_parallelism_and_area(self):
        scaled = Spatial2DAccelerator.scaled_to_28nm()
        assert scaled.parallelism == 168
        assert scaled.gate_count() == pytest.approx(1852e3)
        assert scaled.frequency_hz > 250e6

    def test_energy_per_mac_is_above_raw_mac(self):
        params = Spatial2DParams()
        assert params.energy_per_mac_j > params.mac_op_j


class TestSingleChannelChain:
    def test_throughput_fraction_is_one_over_k(self):
        model = SingleChannelChain()
        assert model.throughput_fraction(3) == pytest.approx(1 / 3)
        assert model.utilization_by_kernel()[11] == pytest.approx(1 / 11)

    def test_runtime_is_k_times_dual_channel(self, network):
        from repro.core.config import ChainConfig
        from repro.core.performance import PerformanceModel

        single = SingleChannelChain()
        dual = PerformanceModel(ChainConfig())
        conv3 = network.conv_layer("conv3")
        ratio = (single.layer_utilization(conv3),
                 dual.layer_performance(conv3).temporal_utilization)
        assert ratio[0] == pytest.approx(ratio[1] / 3, rel=0.01)

    def test_summary_interface(self, network):
        summary = SingleChannelChain().summarise(network, batch=1)
        assert isinstance(summary, AcceleratorSummary)
        assert summary.peak_gops == pytest.approx(806.4)


class TestChainNNModelAdapter:
    def test_matches_facade_numbers(self, network):
        model = ChainNNModel()
        assert model.peak_gops == pytest.approx(806.4)
        assert model.gate_count() == pytest.approx(3751e3, rel=0.02)

    def test_calibrated_power(self, network):
        model = ChainNNModel(calibrate_power_to=network)
        assert model.workload_power_w(network, 4) == pytest.approx(0.5675, rel=0.01)

    def test_summary_row(self, network):
        summary = ChainNNModel(calibrate_power_to=network).summarise(network, batch=4)
        assert summary.energy_efficiency_gops_w == pytest.approx(1421.0, rel=0.02)
        assert summary.gates_per_pe == pytest.approx(6580, rel=0.05)
