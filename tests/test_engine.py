"""Tests for the unified execution-engine layer (registry, cache, executor)."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cnn.zoo import lenet5, tiny_test_network
from repro.core.config import ChainConfig
from repro.core.performance import PerformanceModel
from repro.engine import (
    AnalyticalEngine,
    Engine,
    RunCache,
    RunRecord,
    SweepExecutor,
    available_engines,
    create_engine,
    engine_registered,
    register_engine,
    run_key,
    summary_from_record,
    unregister_engine,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def network():
    return lenet5()


@pytest.fixture(scope="module")
def tiny_network():
    return tiny_test_network()


class TestRegistry:
    def test_default_engines_registered(self):
        names = available_engines()
        for expected in ("analytical", "analytical-detailed", "cycle", "cycle-scalar",
                         "functional", "functional-vectorized", "baseline-chain-nn",
                         "baseline-eyeriss", "baseline-dadiannao"):
            assert expected in names

    def test_create_engine_returns_engine(self):
        engine = create_engine("analytical")
        assert isinstance(engine, Engine)
        assert engine.name == "analytical"

    def test_unknown_engine_raises_with_suggestions(self):
        with pytest.raises(ConfigurationError, match="analytical"):
            create_engine("does-not-exist")

    def test_register_and_unregister(self):
        register_engine("test-temp", lambda **kw: AnalyticalEngine(**kw))
        try:
            assert engine_registered("test-temp")
            assert isinstance(create_engine("test-temp"), AnalyticalEngine)
            with pytest.raises(ConfigurationError, match="already registered"):
                register_engine("test-temp", lambda **kw: AnalyticalEngine(**kw))
        finally:
            unregister_engine("test-temp")
        assert not engine_registered("test-temp")

    def test_engine_kwargs_forwarded(self):
        engine = create_engine("analytical", mode="detailed")
        assert engine.name == "analytical-detailed"


class TestAdapters:
    def test_analytical_matches_performance_model(self, network):
        config = ChainConfig()
        record = create_engine("analytical").evaluate(network, config, batch=8)
        expected = PerformanceModel(config).network_performance(network, 8)
        assert record.metric("fps") == pytest.approx(expected.frames_per_second)
        assert record.metric("peak_gops") == pytest.approx(config.peak_gops)
        assert set(record.extra["layer_times_ms"]) == {"conv1", "conv2"}

    def test_injected_chip_defines_mode_and_fingerprint(self):
        from repro.core.accelerator import ChainNN

        engine = AnalyticalEngine(chip=ChainNN(performance_mode="detailed"))
        assert engine.name == "analytical-detailed"
        assert engine.fingerprint()["mode"] == "detailed"

    def test_analytical_detailed_is_slower_than_paper(self, network):
        paper = create_engine("analytical").evaluate(network, None, 8)
        detailed = create_engine("analytical-detailed").evaluate(network, None, 8)
        assert detailed.metric("fps") < paper.metric("fps")

    def test_cycle_engine_verifies_reference(self, tiny_network):
        record = create_engine("cycle").evaluate(tiny_network, None, batch=2)
        assert record.metric("max_abs_error") == pytest.approx(0.0, abs=1e-9)
        assert record.metric("simulated_macs") > 0
        assert set(record.extra["layers"]) == {"convA", "convB"}

    def test_cycle_backends_agree(self, tiny_network):
        fast = create_engine("cycle").evaluate(tiny_network, None, 1)
        slow = create_engine("cycle-scalar").evaluate(tiny_network, None, 1)
        assert fast.metrics == slow.metrics

    def test_functional_engine(self, tiny_network):
        record = create_engine("functional").evaluate(tiny_network, None, 1)
        assert record.metric("max_abs_error") == pytest.approx(0.0, abs=1e-9)
        assert record.metric("windows_kept") > 0

    def test_functional_backends_agree(self, tiny_network):
        scalar = create_engine("functional").evaluate(tiny_network, None, 1)
        fast = create_engine("functional-vectorized").evaluate(tiny_network, None, 1)
        assert fast.engine == "functional-vectorized"
        assert fast.metrics == scalar.metrics

    def test_functional_backend_enters_fingerprint(self):
        scalar = create_engine("functional")
        fast = create_engine("functional-vectorized")
        assert scalar.fingerprint()["backend"] == "scalar"
        assert fast.fingerprint()["backend"] == "vectorized"
        assert scalar.fingerprint() != fast.fingerprint()

    def test_baseline_round_trips_summary(self, network):
        record = create_engine("baseline-eyeriss").evaluate(network, None, 4)
        summary = summary_from_record(record)
        assert summary.name == "2D spatial (Eyeriss-like)"
        assert summary.energy_efficiency_gops_w == pytest.approx(
            record.metric("gops_per_watt"))

    def test_record_json_round_trip(self, network):
        record = create_engine("analytical").evaluate(network, None, 4)
        clone = RunRecord.from_json_dict(
            json.loads(json.dumps(record.to_json_dict())))
        assert clone.metrics == record.metrics
        assert clone.engine == record.engine


class TestCache:
    def test_key_is_deterministic_and_discriminating(self, network, tiny_network):
        engine = create_engine("analytical")
        config = ChainConfig()
        key = run_key(engine, network, config, 4)
        assert key == run_key(engine, network, ChainConfig(), 4)
        assert key != run_key(engine, network, config.with_pes(288), 4)
        assert key != run_key(engine, network, config, 8)
        assert key != run_key(engine, tiny_network, config, 4)
        assert key != run_key(create_engine("analytical-detailed"), network, config, 4)

    def test_put_get_round_trip(self, network, tmp_path):
        cache = RunCache(tmp_path)
        engine = create_engine("analytical")
        record = engine.evaluate(network, None, 4)
        key = run_key(engine, network, None, 4)
        assert cache.get(key) is None
        cache.put(key, record)
        stored = cache.get(key)
        assert stored is not None
        assert stored.cached and stored.cache_key == key
        assert stored.metrics == record.metrics
        assert len(cache) == 1
        assert cache.clear() == 1

    def test_corrupt_entry_is_quarantined(self, network, tmp_path, monkeypatch):
        """Corrupt records are misses, moved aside, and warned about once."""
        import warnings

        import repro.engine.cache as cache_module

        monkeypatch.setattr(cache_module, "_warned_corrupt", False)
        cache = RunCache(tmp_path)
        engine = create_engine("analytical")
        key = run_key(engine, network, None, 4)
        cache.root.mkdir(parents=True, exist_ok=True)
        cache.path_for(key).write_text("not json")
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            assert cache.get(key) is None
        # the slot is free again and the bytes survive for inspection
        assert not cache.path_for(key).exists()
        quarantined = cache.path_for(key).with_name(f"{key}.json.corrupt")
        assert quarantined.read_text() == "not json"
        # structurally-wrong JSON is quarantined too, silently this time
        other = run_key(engine, network, None, 8)
        cache.path_for(other).write_text(
            '{"engine": "analytical", "network": "x", "batch": 4,'
            ' "metrics": {"fps": null}}')
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.get(other) is None
        assert cache.misses == 2 and cache.quarantined == 2
        assert cache.stats()["corrupt"] == 2

    def test_missing_entry_is_a_plain_miss(self, network, tmp_path):
        """Absent files miss without quarantine machinery kicking in."""
        cache = RunCache(tmp_path)
        key = run_key(create_engine("analytical"), network, None, 4)
        assert cache.get(key) is None
        assert cache.misses == 1 and cache.quarantined == 0

    def test_stats_and_clear_cover_crash_debris(self, network, tmp_path):
        """Orphaned *.tmp spool files are counted, and clear() reaps them."""
        cache = RunCache(tmp_path)
        engine = create_engine("analytical")
        record = engine.evaluate(network, None, 4)
        cache.put(run_key(engine, network, None, 4), record)
        (tmp_path / "spoolXYZ.tmp").write_text("torn write")
        (tmp_path / "deadbeef.json.corrupt").write_text("quarantined")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["tmp_orphans"] == 1
        assert stats["corrupt"] == 1
        # clear() reaps everything but reports only live records
        assert cache.clear() == 1
        assert list(tmp_path.glob("*.tmp")) == []
        assert list(tmp_path.glob("*.corrupt")) == []
        assert cache.stats()["tmp_orphans"] == 0

    def test_lru_eviction_bounds_size(self, network, tmp_path):
        """A bounded cache evicts least-recently-USED records (hits protect)."""
        cache = RunCache(tmp_path)
        engine = create_engine("analytical")
        record = engine.evaluate(network, None, 4)
        keys = [run_key(engine, network, None, batch) for batch in (1, 2, 3)]
        cache.put(keys[0], record)
        size = cache.path_for(keys[0]).stat().st_size
        cache.put(keys[1], record)
        # age both records, then touch key 0 through a hit: key 1 becomes LRU
        old = time.time() - 3600
        for key in keys[:2]:
            os.utime(cache.path_for(key), (old, old))
        assert cache.get(keys[0]) is not None
        cache.max_bytes = int(2.5 * size)  # room for two records, not three
        cache.put(keys[2], record)
        assert cache.evictions == 1
        assert not cache.path_for(keys[1]).exists()
        assert cache.path_for(keys[0]).exists()
        assert cache.path_for(keys[2]).exists()

    def test_eviction_reaps_stale_tmp_orphans(self, network, tmp_path):
        """Bounded puts sweep crash orphans older than the in-flight window."""
        cache = RunCache(tmp_path, max_mb=100.0)
        stale = tmp_path / "stale.tmp"
        stale.write_text("orphan")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        fresh = tmp_path / "fresh.tmp"
        fresh.write_text("live writer")
        engine = create_engine("analytical")
        cache.put(run_key(engine, network, None, 4),
                  engine.evaluate(network, None, 4))
        assert not stale.exists()  # reaped: far older than any live spool
        assert fresh.exists()  # plausibly a concurrent writer mid-spool

    def test_max_mb_from_environment(self, tmp_path, monkeypatch):
        from repro.engine.cache import CACHE_MAX_MB_ENV

        monkeypatch.setenv(CACHE_MAX_MB_ENV, "2")
        assert RunCache(tmp_path).max_bytes == 2 * 1024 * 1024
        monkeypatch.setenv(CACHE_MAX_MB_ENV, "not-a-number")
        assert RunCache(tmp_path).max_bytes is None
        monkeypatch.delenv(CACHE_MAX_MB_ENV)
        assert RunCache(tmp_path).max_bytes is None
        assert RunCache(tmp_path, max_mb=1.0).max_bytes == 1024 * 1024
        with pytest.raises(ValueError):
            RunCache(tmp_path, max_mb=-1.0)


class TestCacheInvalidation:
    """Stale results must never be served: every input enters the key."""

    def test_key_changes_with_engine_mode_and_version(self, network, monkeypatch):
        config = ChainConfig()
        paper_key = run_key(create_engine("analytical"), network, config, 4)
        detailed_key = run_key(create_engine("analytical-detailed"), network, config, 4)
        assert paper_key != detailed_key
        monkeypatch.setattr("repro.__version__", "0.0.0-test")
        assert run_key(create_engine("analytical"), network, config, 4) != paper_key

    def test_key_changes_with_engine_parameters(self, network):
        config = ChainConfig()
        default_seed = run_key(create_engine("cycle"), network, config, 1)
        other_seed = run_key(create_engine("cycle", seed=1), network, config, 1)
        assert default_seed != other_seed

    def test_key_changes_with_network_definition(self, network):
        from repro.cnn.network import Network

        engine = create_engine("analytical")
        config = ChainConfig()
        key = run_key(engine, network, config, 4)
        # same name, one layer geometry tweaked: the key must still change
        layers = list(network.conv_layers)
        layers[0] = layers[0].scaled(out_channels=layers[0].out_channels * 2)
        widened = Network(name=network.name, layers=layers)
        assert run_key(engine, widened, config, 4) != key

    def test_stale_schema_entry_is_ignored(self, network, tmp_path, monkeypatch):
        """A record cached under an older key schema must not be returned."""
        import repro.engine.cache as cache_module

        cache = RunCache(tmp_path)
        engine = create_engine("analytical")
        record = engine.evaluate(network, None, 4)
        stale_key = run_key(engine, network, None, 4)
        cache.put(stale_key, record)
        monkeypatch.setattr(cache_module, "CACHE_SCHEMA", cache_module.CACHE_SCHEMA + 1)
        fresh_key = run_key(engine, network, None, 4)
        assert fresh_key != stale_key
        assert cache.get(fresh_key) is None  # stale entry ignored, not returned
        # and the executor re-evaluates rather than serving the stale record
        executor = SweepExecutor(engine="analytical", network=network, batch=4,
                                 cache=cache)
        fresh = executor.run([None])[0]
        assert not fresh.cached


class _CountingEngine(Engine):
    """Deterministic stub that counts how often it actually evaluates."""

    calls = 0
    name = "test-counting"

    def evaluate(self, network, config=None, batch=1):
        type(self).calls += 1
        pes = config.num_pes if config is not None else 0
        return RunRecord(
            engine=self.name, network=network.name, batch=batch,
            config_summary="stub", metrics={"fps": float(pes + batch)},
        )


class TestSweepExecutor:
    @pytest.fixture()
    def counting_engine(self):
        _CountingEngine.calls = 0
        register_engine("test-counting", lambda **kw: _CountingEngine())
        yield "test-counting"
        unregister_engine("test-counting")

    def test_cache_hit_skips_evaluation(self, network, tmp_path, counting_engine):
        executor = SweepExecutor(engine=counting_engine, network=network, batch=4,
                                 cache=RunCache(tmp_path))
        configs = [ChainConfig().with_pes(p) for p in (144, 288)]
        first = executor.run(configs)
        assert _CountingEngine.calls == 2
        second = executor.run(configs)
        assert _CountingEngine.calls == 2  # served entirely from disk
        assert [r.metrics for r in first] == [r.metrics for r in second]
        assert all(r.cached for r in second) and not any(r.cached for r in first)

    def test_cache_is_shared_across_executors(self, network, tmp_path, counting_engine):
        configs = [ChainConfig().with_pes(p) for p in (144, 288)]
        SweepExecutor(engine=counting_engine, network=network, batch=4,
                      cache=RunCache(tmp_path)).run(configs)
        fresh = SweepExecutor(engine=counting_engine, network=network, batch=4,
                              cache=RunCache(tmp_path))
        fresh.run(configs)
        assert _CountingEngine.calls == 2

    def test_cache_distinguishes_engine_default_config(self, network, tmp_path):
        """config=None evaluations must not collide across engine defaults."""
        default = SweepExecutor(engine="analytical", network=network, batch=4,
                                cache=RunCache(tmp_path))
        first = default.run([None])[0]
        smaller = SweepExecutor(engine="analytical", network=network, batch=4,
                                cache=RunCache(tmp_path),
                                engine_kwargs={"config": ChainConfig().with_pes(288)})
        second = smaller.run([None])[0]
        assert not second.cached
        assert second.metric("fps") != first.metric("fps")

    def test_run_batches_parallel_equals_serial(self, network):
        executor = SweepExecutor(engine="analytical", network=network)
        batches = (1, 2, 4, 8)
        serial = executor.run_batches(ChainConfig(), batches, parallel=False)
        parallel = executor.run_batches(ChainConfig(), batches, parallel=True)
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]
        assert [r.batch for r in serial] == list(batches)

    def test_parallel_equals_serial(self, network):
        executor = SweepExecutor(engine="analytical", network=network, batch=8)
        configs = [ChainConfig().with_pes(p) for p in (144, 288, 576, 1152)]
        serial = executor.run(configs, parallel=False)
        parallel = executor.run(configs, parallel=True)
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]
        assert [r.config_summary for r in serial] == [r.config_summary for r in parallel]

    def test_results_aligned_with_input_order(self, network):
        executor = SweepExecutor(engine="analytical", network=network, batch=4)
        pe_counts = (1152, 144, 576)
        records = executor.run([ChainConfig().with_pes(p) for p in pe_counts],
                               parallel=True)
        assert [f"{p} PEs" in r.config_summary for p, r in zip(pe_counts, records)] \
            == [True, True, True]

    def test_prebuilt_engine_instance_supported(self, network):
        engine = create_engine("analytical")
        executor = SweepExecutor(engine=engine, network=network, batch=4)
        record = executor.evaluate(ChainConfig())
        assert record.metric("fps") > 0

    def test_missing_network_raises(self):
        executor = SweepExecutor(engine="analytical")
        with pytest.raises(ValueError, match="network"):
            executor.run([ChainConfig()])

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            SweepExecutor(engine="analytical", max_workers=0)
