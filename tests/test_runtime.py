"""Parallel-runtime tests: pool mechanics, degradation, and the
parallel-vs-serial bit-identity guarantees the CI equivalence gate enforces
for ``sweep``, ``map`` and ``verify``."""

from __future__ import annotations

import pickle
import warnings

import numpy as np
import pytest

from repro.cnn.zoo import alexnet, tiny_test_network
from repro.core.config import ChainConfig
from repro.engine.executor import SweepExecutor
from repro.mapping import ScheduleOptimizer
from repro.runtime import (
    FaultPlan,
    LazyRuntime,
    ParallelRuntime,
    SharedTensor,
    WorkerError,
    resolve_workers,
)
from repro.runtime import pool as pool_module
from repro.runtime import shm as shm_module
from repro.sim.functional import FunctionalChainSimulator
from repro.sim.network import FunctionalNetworkRunner


@pytest.fixture(autouse=True)
def force_parallel(monkeypatch):
    """Pool tests must create real pools even on single-core CI hosts
    (the single-core degradation tests below remove the override again)."""
    monkeypatch.setenv(pool_module.FORCE_PARALLEL_ENV, "1")


@pytest.fixture(scope="module")
def runtime():
    """One two-worker pool shared by the mechanics tests (persistent!).

    The explicit empty fault plan overrides ``$REPRO_FAULT_SPEC``: the
    unsupervised base pool treats injected crashes as fatal, so these
    mechanics tests must stay deterministic even under the CI chaos leg
    (supervised recovery is covered by tests/test_faults.py).
    """
    pool = ParallelRuntime.create(2, fault_plan=FaultPlan.none())
    if pool is None:
        pytest.skip("platform cannot provide process pools")
    yield pool
    pool.close()


class TestPoolMechanics:
    def test_map_returns_ordered_results(self, runtime):
        payloads = [{"action": "echo", "value": index} for index in range(7)]
        results = runtime.map("runtime.selftest", payloads)
        assert [entry["value"] for entry in results] == list(range(7))
        # round-robin assignment alternates the two workers deterministically
        assert [entry["worker_id"] for entry in results] == [0, 1, 0, 1, 0, 1, 0]

    def test_worker_context_persists_across_calls(self, runtime):
        first = runtime.map("runtime.selftest", [{"action": "count"}] * 2)
        second = runtime.map("runtime.selftest", [{"action": "count"}] * 2)
        for before, after in zip(first, second):
            assert after["count"] == before["count"] + 1

    def test_broadcast_reaches_every_worker(self, runtime):
        results = runtime.broadcast("runtime.selftest", {"action": "echo"})
        assert sorted(entry["worker_id"] for entry in results) == [0, 1]

    def test_task_error_propagates_with_message(self, runtime):
        with pytest.raises(WorkerError, match="injected boom"):
            runtime.map("runtime.selftest",
                        [{"action": "echo"},
                         {"action": "raise", "value": "injected boom"}])
        # the pool survives task errors (only dead workers close it)
        assert runtime.map("runtime.selftest", [{"action": "echo"}])

    def test_unknown_task_rejected(self, runtime):
        with pytest.raises(WorkerError, match="unknown runtime task"):
            runtime.map("no.such.task", [None])

    def test_worker_death_is_detected(self):
        pool = ParallelRuntime.create(2, fault_plan=FaultPlan.none())
        if pool is None:
            pytest.skip("platform cannot provide process pools")
        with pytest.raises(WorkerError, match="died"):
            pool.map("runtime.selftest", [{"action": "exit"}])
        with pytest.raises(WorkerError, match="closed"):
            pool.map("runtime.selftest", [{"action": "echo"}])

    def test_resolve_workers_validation(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)

    def test_submission_failure_does_not_leak_stale_results(self, runtime):
        """A payload failing to pickle must not poison the next call's ids."""
        class Unpicklable:
            def __reduce__(self):
                raise TypeError("not today")

        with pytest.raises(TypeError):
            runtime.map("runtime.selftest",
                        [{"action": "echo", "value": "stale"},
                         {"action": "echo", "value": Unpicklable()}])
        results = runtime.map("runtime.selftest",
                              [{"action": "echo", "value": "fresh"}] * 2)
        assert [entry["value"] for entry in results] == ["fresh", "fresh"]


class TestLazyRuntime:
    def test_hands_out_supervised_pools(self):
        """Consumers get the fault-tolerant runtime, not the bare pool
        (worker-death recovery itself is covered by tests/test_faults.py)."""
        from repro.runtime import SupervisedRuntime

        owner = LazyRuntime(2)
        pool = owner.get()
        if pool is None:
            pytest.skip("platform cannot provide process pools")
        try:
            assert isinstance(pool, SupervisedRuntime)
        finally:
            owner.close()

    def test_pool_is_replaced_after_loss(self):
        owner = LazyRuntime(2)
        pool = owner.get()
        if pool is None:
            pytest.skip("platform cannot provide process pools")
        try:
            pool.close()  # what a fatal pool loss leaves behind
            # one lost pool must not poison the owner: the next get()
            # replaces it and tasks run again
            fresh = owner.get()
            assert fresh is not pool and not fresh.closed
            result = fresh.map("runtime.selftest",
                               [{"action": "echo", "value": 5}])
            assert result[0]["value"] == 5
        finally:
            owner.close()

    def test_get_prewarms_kernel_backend_in_workers(self):
        from repro.kernels import resolve_backend_name

        owner = LazyRuntime(2)
        pool = owner.get()  # broadcasts kernels.configure on creation
        if pool is None:
            pytest.skip("platform cannot provide process pools")
        try:
            results = pool.broadcast("kernels.configure", {"backend": None})
            assert [entry["kernel_backend"] for entry in results] == \
                [resolve_backend_name()] * 2
        finally:
            owner.close()

    def test_task_hint_caps_creation_then_grows(self):
        owner = LazyRuntime(3)
        pool = owner.get(task_hint=2)
        if pool is None:
            pytest.skip("platform cannot provide process pools")
        try:
            assert pool.workers == 2  # sized to the work, not the request
            # more work than workers: the pool grows (replaced, larger) …
            grown = owner.get(task_hint=64)
            assert grown is not pool and grown.workers == 3
            # … and a later small call reuses the big pool (no shrink)
            assert owner.get(task_hint=1) is grown
        finally:
            owner.close()


class TestSharedTensor:
    def test_round_trip_and_writeback(self):
        data = np.arange(24.0).reshape(2, 3, 4)
        handle = SharedTensor.create(data)
        try:
            view = handle.open()
            assert np.array_equal(view, data)
            view[0, 0, 0] = -1.0
            assert handle.open()[0, 0, 0] == -1.0
            assert handle.nbytes == data.nbytes
        finally:
            handle.unlink()

    def test_pickled_handle_is_small(self):
        data = np.zeros((256, 256))
        handle = SharedTensor.create(data)
        try:
            if handle.name is None:
                pytest.skip("platform fell back to inline transfer")
            assert len(pickle.dumps(handle)) < 1024  # handle, not payload
        finally:
            handle.unlink()

    def test_inline_fallback_without_shared_memory(self, monkeypatch):
        monkeypatch.setattr(shm_module, "_shared_memory", None)
        data = np.arange(6.0)
        handle = SharedTensor.create(data)
        assert handle.name is None
        clone = pickle.loads(pickle.dumps(handle))
        assert np.array_equal(clone.open(), data)
        handle.unlink()


class TestSerialDegradation:
    """No pool -> every consumer silently runs its serial path."""

    @pytest.fixture
    def no_pools(self, monkeypatch):
        monkeypatch.setattr(ParallelRuntime, "create",
                            classmethod(lambda cls, workers=None: None))

    def test_sweep_degrades(self, no_pools):
        network = tiny_test_network()
        configs = [ChainConfig(num_pes=pes) for pes in (144, 288, 576)]
        with SweepExecutor(engine="analytical", network=network,
                           max_workers=4) as executor:
            parallel = executor.run(configs, parallel=True)
            serial = executor.run(configs, parallel=False)
        assert [r.metrics for r in parallel] == [r.metrics for r in serial]

    def test_map_degrades(self, no_pools):
        network = tiny_test_network()
        schedule = ScheduleOptimizer(strategy="exhaustive", batch=4,
                                     workers=4).optimize(network)
        baseline = ScheduleOptimizer(strategy="exhaustive",
                                     batch=4).optimize(network)
        assert schedule.to_json_dict() == baseline.to_json_dict()

    def test_verify_degrades(self, no_pools):
        network = tiny_test_network()
        with FunctionalNetworkRunner(seed=7, workers=4) as runner:
            parallel = runner.run(network)
        serial = FunctionalNetworkRunner(seed=7).run(network)
        assert parallel.stats == serial.stats
        assert parallel.max_abs_error == serial.max_abs_error

    def test_verify_degrades_without_shared_memory(self, monkeypatch):
        """Live pool but no shm: the inline fallback cannot assemble ofmaps
        across processes, so the layer must run serially — and identically."""
        monkeypatch.setattr(shm_module, "_shared_memory", None)
        network = tiny_test_network()
        serial = FunctionalNetworkRunner(seed=7).run(network)
        with FunctionalNetworkRunner(seed=7, workers=2) as runner:
            parallel = runner.run(network)
        assert parallel.stats == serial.stats
        assert parallel.max_abs_error == serial.max_abs_error
        assert parallel.passed


class TestSingleCoreDegradation:
    """``--workers`` on a single-core host degrades to the serial path."""

    @pytest.fixture
    def single_core(self, monkeypatch):
        monkeypatch.delenv(pool_module.FORCE_PARALLEL_ENV, raising=False)
        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 1)
        monkeypatch.setattr(pool_module, "_warned_single_core", False)

    def test_degrades_with_one_warning_per_process(self, single_core):
        owner = LazyRuntime(4)
        with pytest.warns(RuntimeWarning, match="single-core"):
            assert owner.get() is None
        # remembered per owner (no re-probe) and warned once per process
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert owner.get() is None
            assert LazyRuntime(2).get() is None

    def test_force_env_overrides_degradation(self, single_core, monkeypatch):
        requested = []
        monkeypatch.setenv(pool_module.FORCE_PARALLEL_ENV, "1")
        monkeypatch.setattr(
            ParallelRuntime, "create",
            classmethod(lambda cls, workers=None:
                        requested.append(workers) or None))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert LazyRuntime(2).get() is None
        assert requested == [2]

    def test_consumers_run_serially(self, single_core):
        """End to end: workers>1 on one core still verifies, bit-identically."""
        network = tiny_test_network()
        serial = FunctionalNetworkRunner(seed=3).run(network)
        with pytest.warns(RuntimeWarning, match="single-core"):
            with FunctionalNetworkRunner(seed=3, workers=4) as runner:
                parallel = runner.run(network)
        assert parallel.stats == serial.stats
        assert parallel.max_abs_error == serial.max_abs_error


class TestParallelSerialEquivalence:
    """The bit-identity contract of the runtime consumers."""

    def test_ofmap_block_partition_is_bit_identical(self, generator,
                                                    strided_layer,
                                                    grouped_layer):
        from repro.cnn.reference import pad_input
        from repro.sim.functional_vectorized import (
            ofmap_block_ranges,
            vectorized_layer_ofmaps,
            vectorized_ofmap_block,
        )

        for layer in (strided_layer, grouped_layer):
            ifmaps, weights = generator.layer_pair(layer)
            padded = pad_input(ifmaps, layer.padding)
            whole = vectorized_layer_ofmaps(layer, padded, weights)
            for blocks in (2, 3, layer.out_channels):
                assembled = np.zeros(layer.out_shape)
                for m_start, m_stop in ofmap_block_ranges(layer, blocks):
                    vectorized_ofmap_block(layer, padded, weights,
                                           m_start, m_stop, out=assembled)
                assert np.array_equal(whole, assembled)

    def test_run_layer_parallel_matches_serial(self, runtime, generator,
                                               tiny_layer, strided_layer,
                                               grouped_layer):
        simulator = FunctionalChainSimulator(backend="vectorized")
        for layer in (tiny_layer, strided_layer, grouped_layer):
            ifmaps, weights = generator.layer_pair(layer)
            for stripe_height in (None, 1):
                serial = simulator.run_layer(layer, ifmaps, weights,
                                             stripe_height=stripe_height)
                parallel = simulator.run_layer_parallel(
                    layer, ifmaps, weights, runtime,
                    stripe_height=stripe_height)
                assert np.array_equal(serial.ofmaps, parallel.ofmaps)
                assert serial.stats == parallel.stats
                assert serial.chain_cycles_estimate == parallel.chain_cycles_estimate

    def test_network_verify_parallel_matches_serial(self):
        network = tiny_test_network()
        serial = FunctionalNetworkRunner(seed=11).run(network)
        with FunctionalNetworkRunner(seed=11, workers=2) as runner:
            parallel = runner.run(network)
        assert serial.stats == parallel.stats
        assert serial.max_abs_error == parallel.max_abs_error
        assert [s.max_abs_error for s in serial.stages] == \
            [s.max_abs_error for s in parallel.stages]
        assert [s.chain_cycles for s in serial.stages] == \
            [s.chain_cycles for s in parallel.stages]

    @pytest.mark.parametrize("strategy", ["exhaustive", "anneal"])
    def test_mapping_search_parallel_matches_serial(self, strategy):
        network = alexnet()
        serial = ScheduleOptimizer(objective="latency", strategy=strategy,
                                   batch=16).optimize(network)
        parallel = ScheduleOptimizer(objective="latency", strategy=strategy,
                                     batch=16, workers=2).optimize(network)
        assert serial.to_json_dict() == parallel.to_json_dict()

    def test_sweep_parallel_matches_serial_and_reuses_pool(self):
        network = tiny_test_network()
        configs = [ChainConfig(num_pes=pes) for pes in (144, 288, 432, 576)]
        with SweepExecutor(engine="analytical", network=network,
                           max_workers=2) as executor:
            serial = executor.run(configs, parallel=False)
            first = executor.run(configs, parallel=True)
            pool = executor._pool.runtime
            second = executor.run_batches(ChainConfig(), [1, 2, 4],
                                          parallel=True)
            if pool is not None:
                assert executor._pool.runtime is pool  # persistent, not per-call
            assert len(second) == 3
        assert [r.metrics for r in serial] == [r.metrics for r in first]
        assert [r.config_summary for r in serial] == \
            [r.config_summary for r in first]

    def test_sweep_recovers_after_pool_loss(self):
        """A closed (worker-death) pool is replaced, with the network
        re-broadcast to the fresh workers."""
        network = tiny_test_network()
        configs = [ChainConfig(num_pes=pes) for pes in (144, 288, 432)]
        with SweepExecutor(engine="analytical", network=network,
                           max_workers=2) as executor:
            first = executor.run(configs, parallel=True)
            pool = executor._pool.runtime
            if pool is None:
                pytest.skip("platform cannot provide process pools")
            pool.close()  # what a mid-task worker death leaves behind
            second = executor.run(configs, parallel=True)
            assert executor._pool.runtime is not pool
        assert [r.metrics for r in first] == [r.metrics for r in second]
