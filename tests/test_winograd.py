"""Winograd F(2x2,3x3) execution mode: transforms, cost model, algorithm axis.

Covers the three tentpole pieces end to end:

* the functional transform-domain backend (`repro.sim.winograd`) against the
  im2col golden within the documented tolerance, including bit-identity of
  ofmap-block partitions and kernel backends;
* the analytical transform-domain cost model (`repro.analysis.winograd` +
  the ``winograd`` column of :class:`MappingBatchEvaluator`);
* the per-layer algorithm axis in the mapping search (never-worse vs
  direct-only, forced-Winograd verification, cache-key continuity).

This file runs in CI's fail-if-skipped equivalence gate: no test here may
ever skip.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.batch import MAPPING_RESULT_COLUMNS, MappingBatchEvaluator
from repro.analysis.winograd import (
    WINOGRAD_MAC_REDUCTION,
    network_winograd_coverage,
    winograd_cost_fields,
    winograd_eligible,
    winograd_kmemory_capacity,
    winograd_layer_summary,
    winograd_tile_grid,
    winograd_weight_count,
)
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.cnn.reference import conv2d_im2col, pad_input
from repro.cnn.zoo import get_network
from repro.core.config import ChainConfig
from repro.errors import ConfigurationError, MappingError
from repro.mapping import ScheduleOptimizer, make_strategy
from repro.mapping.mapspace import (
    ALGORITHM_MODES,
    ALGORITHMS,
    LayerMapSpace,
    MappingCandidate,
    candidate_arrays,
)
from repro.sim.functional import FunctionalChainSimulator
from repro.sim.network import FunctionalNetworkRunner
from repro.sim.winograd import (
    conv2d_winograd,
    transform_filters,
    winograd_ofmap_block,
    winograd_tolerance,
)


@pytest.fixture(scope="module")
def generator():
    return WorkloadGenerator(seed=2017)


def _eligible_layer(name="wino", in_channels=5, out_channels=7,
                    in_height=13, in_width=13, padding=1, groups=1):
    return ConvLayer(name, in_channels=in_channels, out_channels=out_channels,
                     in_height=in_height, in_width=in_width, kernel_size=3,
                     stride=1, padding=padding, groups=groups)


def _zoo_eligible_geometries(max_spatial=56):
    """Distinct Winograd-eligible conv geometries of AlexNet + VGG-16.

    Every distinct (channels, padding, groups) structure of the zoo's
    3x3-stride-1 layers is kept; spatial extents above ``max_spatial`` are
    shrunk so the im2col golden stays test-budget fast (full-size layers are
    exercised by ``repro verify --sim functional --algorithm winograd`` and
    the winograd benchmark).
    """
    layers = []
    seen = set()
    for net in ("alexnet", "vgg16"):
        for layer in get_network(net).conv_layers:
            if not winograd_eligible(layer):
                continue
            height = min(layer.in_height, max_spatial)
            width = min(layer.in_width, max_spatial)
            key = (layer.in_channels, layer.out_channels, height, width,
                   layer.padding, layer.groups)
            if key in seen:
                continue
            seen.add(key)
            layers.append(ConvLayer(
                f"{net}-{layer.name}", in_channels=layer.in_channels,
                out_channels=layer.out_channels, in_height=height,
                in_width=width, kernel_size=3, stride=1,
                padding=layer.padding, groups=layer.groups,
            ))
    return layers


# --------------------------------------------------------------------- #
# analytical transform-domain model
# --------------------------------------------------------------------- #
class TestAnalysisModel:
    def test_eligibility(self):
        assert winograd_eligible(_eligible_layer())
        assert winograd_eligible(_eligible_layer(padding=0))
        assert winograd_eligible(_eligible_layer(groups=1, in_channels=4,
                                                 out_channels=4))
        five = ConvLayer("k5", in_channels=3, out_channels=4, in_height=13,
                         in_width=13, kernel_size=5, padding=2)
        strided = ConvLayer("s2", in_channels=3, out_channels=4, in_height=13,
                            in_width=13, kernel_size=3, stride=2, padding=1)
        assert not winograd_eligible(five)
        assert not winograd_eligible(strided)

    def test_tile_grid_covers_ragged_edges(self):
        # 13x13 output -> 7x7 tiles of 2x2 (last row/column half-used)
        layer = _eligible_layer()
        assert layer.out_height == 13
        assert winograd_tile_grid(layer) == (7, 7)
        even = _eligible_layer(in_height=14, in_width=14)
        assert even.out_height == 14
        assert winograd_tile_grid(even) == (7, 7)

    def test_transformed_filters_grow_the_weight_footprint(self):
        layer = _eligible_layer()
        assert winograd_weight_count(layer) == 16 * layer.channel_pairs()
        # and the per-PE kMemory capacity shrinks by the same 16/9 ratio
        assert winograd_kmemory_capacity(144) == 144 * 9 // 16

    def test_cost_fields_feed_the_batch_evaluator(self):
        fields = winograd_cost_fields(_eligible_layer())
        assert set(fields) == {"wino_tiles_h", "wino_tiles_w",
                               "wino_weight_count", "wino_ext_width",
                               "wino_pe_energy_factor"}

    def test_vgg16_layers_model_at_least_1_8x_mac_reduction(self):
        network = get_network("vgg16")
        for layer in network.conv_layers:
            summary = winograd_layer_summary(layer)
            assert summary["eligible"]
            assert summary["mac_reduction"] >= 1.8
            assert summary["mac_reduction"] <= WINOGRAD_MAC_REDUCTION + 1e-9
            assert 0.0 < summary["transform_overhead_fraction"] < 1.0

    def test_network_coverage_fractions(self):
        assert network_winograd_coverage(get_network("vgg16"))["mac_coverage"] \
            == pytest.approx(1.0)
        assert network_winograd_coverage(get_network("lenet5"))["mac_coverage"] \
            == 0.0
        alexnet = network_winograd_coverage(get_network("alexnet"))
        assert alexnet["eligible_layers"] == ["conv3", "conv4", "conv5"]
        assert 0.0 < alexnet["mac_coverage"] < 1.0


# --------------------------------------------------------------------- #
# functional transform-domain backend
# --------------------------------------------------------------------- #
class TestFunctionalBackend:
    def test_filter_transform_matches_direct_matmul(self, generator):
        g_matrix = np.array([[1.0, 0.0, 0.0],
                             [0.5, 0.5, 0.5],
                             [0.5, -0.5, 0.5],
                             [0.0, 0.0, 1.0]])
        weights = generator.weights(_eligible_layer())
        transformed = transform_filters(weights)
        expected = np.einsum("ij,mcjk,lk->mcil", g_matrix, weights, g_matrix)
        assert transformed.shape == weights.shape[:-2] + (4, 4)
        # association order differs from the einsum oracle, so the match is
        # up to float64 round-off (the library's own cross-backend identity
        # only requires the one transform_filters result to be shared)
        np.testing.assert_allclose(transformed, expected, rtol=0, atol=1e-15)

    def test_matches_im2col_on_zoo_geometries(self, generator):
        for layer in _zoo_eligible_geometries():
            ifmaps, weights = generator.layer_pair(layer)
            reference = conv2d_im2col(layer, ifmaps, weights)
            result = conv2d_winograd(layer, ifmaps, weights)
            error = float(np.max(np.abs(reference - result)))
            assert error <= winograd_tolerance(reference), \
                f"{layer.name}: {error} vs {winograd_tolerance(reference)}"

    def test_matches_im2col_on_randomized_geometries(self):
        rng = np.random.default_rng(88)
        for case in range(10):
            groups = int(rng.choice((1, 2))) if case % 3 == 0 else 1
            in_channels = int(rng.integers(1, 9)) * groups
            out_channels = int(rng.integers(1, 9)) * groups
            layer = ConvLayer(
                f"rand{case}",
                in_channels=in_channels, out_channels=out_channels,
                in_height=int(rng.integers(4, 24)),
                in_width=int(rng.integers(4, 24)),
                kernel_size=3, stride=1,
                padding=int(rng.integers(0, 3)), groups=groups,
            )
            weight_shape = (layer.out_channels, layer.in_channels_per_group,
                            3, 3)
            for image in range(int(rng.integers(1, 3))):
                ifmaps = rng.normal(size=layer.in_shape)
                weights = rng.normal(size=weight_shape)
                reference = conv2d_im2col(layer, ifmaps, weights)
                result = conv2d_winograd(layer, ifmaps, weights)
                error = float(np.max(np.abs(reference - result)))
                assert error <= winograd_tolerance(reference), layer.name

    def test_bias_is_applied(self, generator):
        layer = _eligible_layer()
        ifmaps, weights = generator.layer_pair(layer)
        bias = np.linspace(-1.0, 1.0, layer.out_channels)
        plain = conv2d_winograd(layer, ifmaps, weights)
        biased = conv2d_winograd(layer, ifmaps, weights, bias=bias)
        assert np.array_equal(biased, plain + bias[:, None, None])

    def test_block_partition_is_bit_identical(self, generator):
        for layer in (_eligible_layer(),
                      _eligible_layer(in_channels=4, out_channels=6,
                                      groups=2, in_height=10, in_width=12)):
            ifmaps, weights = generator.layer_pair(layer)
            whole = conv2d_winograd(layer, ifmaps, weights)
            padded = pad_input(np.asarray(ifmaps, dtype=np.float64),
                               layer.padding)
            for blocks in (2, 3, layer.out_channels):
                bounds = np.linspace(0, layer.out_channels, blocks + 1,
                                     dtype=int)
                assembled = np.zeros(layer.out_shape)
                for m_start, m_stop in zip(bounds[:-1], bounds[1:]):
                    winograd_ofmap_block(layer, padded, weights,
                                         int(m_start), int(m_stop),
                                         out=assembled)
                assert np.array_equal(whole, assembled)

    def test_kernel_backends_are_bit_identical(self, generator):
        from repro.kernels import resolve_backend_name

        layer = _eligible_layer(in_channels=6, out_channels=8, in_height=17,
                                in_width=15)
        ifmaps, weights = generator.layer_pair(layer)
        reference = conv2d_winograd(layer, ifmaps, weights,
                                    kernel_backend="numpy")
        default = conv2d_winograd(layer, ifmaps, weights,
                                  kernel_backend=resolve_backend_name(None))
        assert np.array_equal(reference, default)

    def test_ineligible_layer_is_rejected(self, generator):
        strided = ConvLayer("s2", in_channels=3, out_channels=4, in_height=13,
                            in_width=13, kernel_size=3, stride=2, padding=1)
        ifmaps, weights = generator.layer_pair(strided)
        with pytest.raises(ConfigurationError):
            conv2d_winograd(strided, ifmaps, weights)


# --------------------------------------------------------------------- #
# functional simulator integration
# --------------------------------------------------------------------- #
class TestSimulator:
    def test_run_layer_winograd_matches_golden(self, generator):
        simulator = FunctionalChainSimulator(backend="vectorized")
        layer = _eligible_layer(in_channels=6, out_channels=8)
        ifmaps, weights = generator.layer_pair(layer)
        result = simulator.run_layer(layer, ifmaps, weights,
                                     algorithm="winograd")
        reference = conv2d_im2col(layer, ifmaps, weights)
        error = float(np.max(np.abs(reference - result.ofmaps)))
        assert error <= winograd_tolerance(reference)
        tiles_h, tiles_w = winograd_tile_grid(layer)
        assert result.stats.windows_kept == \
            tiles_h * tiles_w * layer.channel_pairs()

    def test_run_and_check_passes_with_documented_tolerance(self, generator):
        simulator = FunctionalChainSimulator(backend="vectorized")
        layer = _eligible_layer()
        ifmaps, weights = generator.layer_pair(layer)
        reference = conv2d_im2col(layer, ifmaps, weights)
        tolerance = winograd_tolerance(reference)
        # run_and_check raises on deviation; returning at all is the pass
        report = simulator.run_and_check(layer, ifmaps, weights,
                                         tolerance=tolerance,
                                         algorithm="winograd")
        assert report["max_abs_error"] <= tolerance

    def test_unknown_algorithm_is_rejected(self, generator):
        simulator = FunctionalChainSimulator(backend="vectorized")
        layer = _eligible_layer()
        ifmaps, weights = generator.layer_pair(layer)
        with pytest.raises(ConfigurationError):
            simulator.run_layer(layer, ifmaps, weights, algorithm="strassen")

    def test_network_runner_winograd_passes(self):
        runner = FunctionalNetworkRunner(algorithm="winograd")
        result = runner.run(get_network("alexnet"))
        assert result.passed
        by_name = {stage.name: stage for stage in result.stages
                   if stage.kind == "conv"}
        assert by_name["conv1"].algorithm == "direct"   # 11x11 stays direct
        for name in ("conv3", "conv4", "conv5"):
            assert by_name[name].algorithm == "winograd"
            assert by_name[name].tolerance is not None
            assert by_name[name].max_abs_error <= by_name[name].tolerance

    def test_network_runner_parallel_matches_serial(self, monkeypatch):
        from repro.runtime import pool as pool_module

        monkeypatch.setenv(pool_module.FORCE_PARALLEL_ENV, "1")
        network = get_network("alexnet")
        serial = FunctionalNetworkRunner(algorithm="winograd").run(network)
        with FunctionalNetworkRunner(algorithm="winograd",
                                     workers=2) as runner:
            parallel = runner.run(network)
        assert serial.passed and parallel.passed
        assert [s.max_abs_error for s in serial.stages] == \
            [s.max_abs_error for s in parallel.stages]
        assert [s.algorithm for s in serial.conv_stages] == \
            [s.algorithm for s in parallel.conv_stages]


# --------------------------------------------------------------------- #
# mapspace algorithm axis
# --------------------------------------------------------------------- #
class TestMapSpaceAxis:
    def test_auto_enumerates_both_algorithms(self):
        layer = _eligible_layer(in_channels=16, out_channels=16)
        auto = LayerMapSpace(layer, algorithm="auto")
        direct = LayerMapSpace(layer, algorithm="direct")
        assert auto.algorithms == ALGORITHMS
        assert direct.algorithms == ("direct",)
        candidates = auto.enumerate()
        assert len(candidates) == auto.pruned_size()
        algorithms = {c.algorithm for c in candidates}
        assert algorithms == {"direct", "winograd"}
        assert auto.pruned_size() > direct.pruned_size()
        for candidate in candidates:
            auto.validate(candidate)

    def test_ineligible_layer_degrades_every_mode_to_direct(self):
        strided = ConvLayer("s2", in_channels=8, out_channels=8, in_height=13,
                            in_width=13, kernel_size=3, stride=2, padding=1)
        for mode in ALGORITHM_MODES:
            space = LayerMapSpace(strided, algorithm=mode)
            assert space.algorithms == ("direct",)
            assert not space.winograd_axis

    def test_winograd_candidates_pin_stripe_height_and_shrink_chunks(self):
        layer = _eligible_layer(in_channels=16, out_channels=16)
        space = LayerMapSpace(layer, algorithm="winograd")
        baseline = space.baseline()
        assert baseline.is_winograd
        space.validate(baseline)
        for candidate in space.enumerate():
            assert candidate.is_winograd
            assert candidate.stripe_height == layer.kernel_size
            assert candidate.chunk <= space.winograd_capacity
        bad_height = dataclasses.replace(baseline, stripe_height=1)
        with pytest.raises(MappingError):
            space.validate(bad_height)

    def test_winograd_candidate_on_ineligible_layer_is_rejected(self):
        strided = ConvLayer("s2", in_channels=8, out_channels=8, in_height=13,
                            in_width=13, kernel_size=3, stride=2, padding=1)
        space = LayerMapSpace(strided)
        candidate = MappingCandidate(primitives=1, stripe_height=3, chunk=1,
                                     algorithm="winograd")
        with pytest.raises(MappingError):
            space.validate(candidate)

    def test_candidate_json_round_trip_keeps_the_algorithm(self):
        candidate = MappingCandidate(primitives=4, stripe_height=3, chunk=2,
                                     algorithm="winograd")
        rebuilt = MappingCandidate.from_json_dict(candidate.to_json_dict())
        assert rebuilt == candidate
        assert "wino" in candidate.describe()

    def test_direct_sampling_stream_is_unchanged_by_the_axis(self):
        # the direct-only RNG stream predates the algorithm axis; auto mode
        # must not perturb it (cache keys and seeded searches must reproduce)
        layer = _eligible_layer(in_channels=16, out_channels=16)
        direct = LayerMapSpace(layer, algorithm="direct")
        samples = direct.sample(np.random.default_rng(3), 8)
        replay = direct.sample(np.random.default_rng(3), 8)
        assert samples == replay
        assert all(not c.is_winograd for c in samples)


# --------------------------------------------------------------------- #
# columnar candidate scoring with the algorithm column
# --------------------------------------------------------------------- #
class TestEvaluatorDispatch:
    def test_mixed_batches_merge_per_algorithm_scores(self):
        layer = _eligible_layer(in_channels=32, out_channels=32,
                                in_height=28, in_width=28)
        space = LayerMapSpace(layer, algorithm="auto")
        candidates = space.enumerate()
        evaluator = MappingBatchEvaluator(layer, batch=4)
        mixed = evaluator.evaluate(*candidate_arrays(candidates))
        mask = np.array([c.is_winograd for c in candidates])
        assert mask.any() and (~mask).any()
        direct_only = [c for c, wino in zip(candidates, mask) if not wino]
        wino_only = [c for c, wino in zip(candidates, mask) if wino]
        direct = evaluator.evaluate(*candidate_arrays(direct_only))
        wino = evaluator.evaluate(*candidate_arrays(wino_only))
        for name in MAPPING_RESULT_COLUMNS:
            assert np.array_equal(mixed[name][~mask], direct[name])
            assert np.array_equal(mixed[name][mask], wino[name])

    def test_winograd_column_on_ineligible_layer_raises(self):
        strided = ConvLayer("s2", in_channels=8, out_channels=8, in_height=13,
                            in_width=13, kernel_size=3, stride=2, padding=1)
        evaluator = MappingBatchEvaluator(strided, batch=1)
        candidate = MappingCandidate(primitives=1, stripe_height=3, chunk=1)
        columns = candidate_arrays([candidate])
        with pytest.raises(ConfigurationError):
            evaluator.evaluate(*columns[:4],
                               winograd=np.array([True]))

    def test_winograd_mac_advantage_shows_in_the_cycle_columns(self):
        # on an even-dimensioned VGG-style layer the transform-domain
        # candidate needs fewer conv cycles than the direct candidate at the
        # same primitive partition
        layer = ConvLayer("vggish", in_channels=64, out_channels=64,
                          in_height=56, in_width=56, kernel_size=3,
                          stride=1, padding=1)
        evaluator = MappingBatchEvaluator(layer, batch=1)
        space = LayerMapSpace(layer, algorithm="auto")
        base = space.baseline()
        pair = [base, space._as_winograd(base)]
        columns = evaluator.evaluate(*candidate_arrays(pair))
        assert columns["conv_cycles_per_image"][1] < \
            columns["conv_cycles_per_image"][0]


# --------------------------------------------------------------------- #
# joint algorithm + schedule search
# --------------------------------------------------------------------- #
class TestSearchNeverWorse:
    @pytest.mark.parametrize("objective", ("latency", "throughput",
                                           "energy", "edp"))
    @pytest.mark.parametrize("network_name", ("alexnet", "lenet5"))
    def test_auto_never_worse_than_direct(self, network_name, objective):
        network = get_network(network_name)
        config = ChainConfig()
        results = {}
        for mode in ("direct", "auto"):
            optimizer = ScheduleOptimizer(
                config=config, objective=objective,
                strategy=make_strategy("exhaustive"), batch=8,
                algorithm=mode,
            )
            results[mode] = optimizer.optimize(network).objective_value()
        assert results["auto"] <= results["direct"] * (1 + 1e-12)

    def test_vgg16_throughput_prefers_winograd_everywhere(self):
        network = get_network("vgg16")
        optimizer = ScheduleOptimizer(
            config=ChainConfig(), objective="throughput",
            strategy=make_strategy("exhaustive"), batch=16, algorithm="auto",
        )
        schedule = optimizer.optimize(network)
        algorithms = schedule.algorithms()
        assert set(algorithms.values()) == {"winograd"}
        direct = ScheduleOptimizer(
            config=ChainConfig(), objective="throughput",
            strategy=make_strategy("exhaustive"), batch=16,
        ).optimize(network)
        assert schedule.objective_value() < direct.objective_value()

    def test_fingerprint_only_changes_for_non_direct_modes(self):
        common = dict(config=ChainConfig(), objective="latency",
                      strategy=make_strategy("exhaustive"), batch=4)
        direct = ScheduleOptimizer(**common)
        explicit = ScheduleOptimizer(algorithm="direct", **common)
        auto = ScheduleOptimizer(algorithm="auto", **common)
        assert direct.fingerprint() == explicit.fingerprint()
        assert "algorithm" not in direct.fingerprint()
        assert auto.fingerprint()["algorithm"] == "auto"

    def test_bad_algorithm_mode_is_rejected(self):
        with pytest.raises(ConfigurationError):
            ScheduleOptimizer(config=ChainConfig(), algorithm="fft")

    def test_verify_winograd_schedule_against_golden(self):
        network = get_network("alexnet")
        optimizer = ScheduleOptimizer(
            config=ChainConfig(), objective="throughput",
            strategy=make_strategy("exhaustive"), batch=4,
            algorithm="winograd",
        )
        schedule = optimizer.optimize(network)
        verification = optimizer.verify(network, schedule, seed=5)
        assert verification.passed
        entries = {entry.layer_name: entry for entry in verification.layers}
        covered = set(entries)
        for entry in entries.values():
            covered.update(entry.covers)
        assert covered == {layer.name for layer in network.conv_layers}
        wino_entries = [entry for entry in entries.values()
                        if entry.candidate.is_winograd]
        assert wino_entries
        for entry in wino_entries:
            assert entry.tolerance is not None
            assert entry.max_abs_error <= entry.tolerance
            assert entry.bit_identical
