"""Tests for the float-to-fixed simulator and the synthetic workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn.generator import TensorStats, WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.cnn.quantize import (
    bit_width_sweep,
    choose_format,
    evaluate_layer_quantization,
    quantize_layer_tensors,
)
from repro.cnn.tensor import FeatureMap
from repro.errors import QuantizationError, WorkloadError
from repro.hwmodel.fixed_point import FixedPointFormat


@pytest.fixture
def layer():
    return ConvLayer("q", in_channels=3, out_channels=4, in_height=10, in_width=10,
                     kernel_size=3, padding=1)


class TestChooseFormat:
    def test_small_values_get_many_fraction_bits(self):
        fmt = choose_format(np.array([0.1, -0.2, 0.05]), total_bits=16)
        assert fmt.frac_bits >= 14

    def test_large_values_get_integer_bits(self):
        fmt = choose_format(np.array([100.0, -50.0]), total_bits=16)
        assert fmt.max_value >= 100.0

    def test_zero_tensor(self):
        fmt = choose_format(np.zeros(5), total_bits=16)
        assert fmt.frac_bits == 15

    def test_unrepresentable_range_raises(self):
        with pytest.raises(QuantizationError):
            choose_format(np.array([1e9]), total_bits=8)

    def test_empty_tensor_raises(self):
        with pytest.raises(QuantizationError):
            choose_format(np.array([]))


class TestLayerQuantization:
    def test_no_saturation_for_chosen_format(self, layer, generator):
        ifmaps, weights = generator.layer_pair(layer)
        q_ifmaps, q_weights, ifmap_fmt, weight_fmt = quantize_layer_tensors(ifmaps, weights)
        assert np.max(np.abs(q_ifmaps)) <= ifmap_fmt.max_value
        assert np.max(np.abs(q_weights)) <= weight_fmt.max_value

    def test_16_bit_error_is_small(self, layer, generator):
        ifmaps, weights = generator.layer_pair(layer)
        result = evaluate_layer_quantization(layer, ifmaps, weights, total_bits=16)
        assert result.relative_rmse < 1e-2
        assert result.sqnr_db > 40.0

    def test_wider_words_reduce_error(self, layer, generator):
        ifmaps, weights = generator.layer_pair(layer)
        sweep = bit_width_sweep(layer, ifmaps, weights, bit_widths=(8, 12, 16))
        assert sweep[8].rmse >= sweep[12].rmse >= sweep[16].rmse

    def test_result_records_layer_name(self, layer, generator):
        ifmaps, weights = generator.layer_pair(layer)
        result = evaluate_layer_quantization(layer, ifmaps, weights)
        assert result.layer_name == "q"


class TestRequantizationEdgeCases:
    """Requantization corners the between-stage path must get right.

    The functional network runner requantizes activations between stages
    (including the Winograd post-transform outputs), so saturation at the
    int16 bounds, rounding-tie behaviour and the zero-tensor guard are
    contract, not incidental detail.
    """

    def test_saturation_clamps_to_int16_raw_bounds(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=0)
        assert (fmt.raw_min, fmt.raw_max) == (-(1 << 15), (1 << 15) - 1)
        raw = fmt.quantize_raw(np.array([-1e9, fmt.min_value - 1.0,
                                         fmt.max_value + 1.0, 1e9]))
        assert raw.tolist() == [fmt.raw_min, fmt.raw_min,
                                fmt.raw_max, fmt.raw_max]
        # the scalar path saturates identically
        assert fmt.to_raw(1e9) == fmt.raw_max
        assert fmt.to_raw(-1e9) == fmt.raw_min
        assert fmt.saturate(fmt.raw_max + 5) == fmt.raw_max
        assert fmt.saturate(fmt.raw_min - 5) == fmt.raw_min

    def test_saturated_bounds_are_asymmetric_twos_complement(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=8)
        quantized = fmt.quantize(np.array([fmt.min_value, fmt.max_value]))
        assert quantized[0] == fmt.min_value
        assert quantized[1] == fmt.max_value
        # |min| exceeds max by exactly one LSB: quantizing -max_value must
        # not fold onto the (representable) raw_min
        assert fmt.quantize_raw(np.array([-fmt.max_value]))[0] == -fmt.raw_max

    def test_rounding_ties_go_to_even_raw_values(self):
        # np.round implements round-half-to-even; exact .5-LSB ties must
        # land on even raw codes in both the array and scalar paths
        fmt = FixedPointFormat(total_bits=16, frac_bits=0)
        ties = np.array([0.5, 1.5, 2.5, -0.5, -1.5, -2.5])
        assert fmt.quantize_raw(ties).tolist() == [0, 2, 2, 0, -2, -2]
        assert [fmt.to_raw(v) for v in ties] == [0, 2, 2, 0, -2, -2]
        # the tie rule is scale-invariant (here ties sit at odd multiples
        # of scale/2 = 2^-9)
        frac = FixedPointFormat(total_bits=16, frac_bits=8)
        half_lsb = frac.scale / 2.0
        assert frac.quantize_raw(np.array([half_lsb, 3 * half_lsb])).tolist() \
            == [0, 2]

    def test_zero_tensor_gets_the_finest_format_and_round_trips(self):
        # max|x| == 0 must not divide by zero or log(0): the guard gives
        # zero integer bits, i.e. all-fraction resolution
        fmt = choose_format(np.zeros((3, 4)), total_bits=16)
        assert fmt.frac_bits == 15
        assert np.array_equal(fmt.quantize(np.zeros((3, 4))), np.zeros((3, 4)))

    def test_requantization_is_idempotent(self):
        # the between-stage path may requantize already-quantized
        # activations (e.g. a direct stage feeding a Winograd stage);
        # quantizing a second time must be a no-op
        rng = np.random.default_rng(5)
        values = rng.normal(scale=3.0, size=(4, 9))
        fmt = choose_format(values, total_bits=16)
        once = fmt.quantize(values)
        assert np.array_equal(fmt.quantize(once), once)
        # and re-choosing a format on the quantized grid keeps it exact
        refmt = choose_format(once, total_bits=16)
        assert np.array_equal(refmt.quantize(once), once)

    def test_format_validation_guards(self):
        with pytest.raises(QuantizationError):
            FixedPointFormat(total_bits=1, frac_bits=0)
        with pytest.raises(QuantizationError):
            FixedPointFormat(total_bits=16, frac_bits=16)
        with pytest.raises(QuantizationError):
            FixedPointFormat(total_bits=16, frac_bits=-1)


class TestWorkloadGenerator:
    def test_weight_shape(self, layer):
        gen = WorkloadGenerator(seed=1)
        assert gen.weights(layer).shape == (4, 3, 3, 3)

    def test_grouped_weight_shape(self):
        layer = ConvLayer("g", 4, 6, 8, 8, kernel_size=3, groups=2)
        gen = WorkloadGenerator(seed=1)
        assert gen.weights(layer).shape == (6, 2, 3, 3)

    def test_ifmaps_shape_and_nonnegativity(self, layer):
        gen = WorkloadGenerator(seed=1)
        ifmaps = gen.ifmaps(layer)
        assert ifmaps.shape == layer.in_shape
        assert np.all(ifmaps >= 0.0)

    def test_sparsity_fraction(self, layer):
        gen = WorkloadGenerator(seed=1)
        ifmaps = gen.ifmaps(layer, sparsity=0.5)
        zero_fraction = float(np.mean(ifmaps == 0.0))
        assert 0.35 < zero_fraction < 0.65

    def test_invalid_sparsity(self, layer):
        gen = WorkloadGenerator(seed=1)
        with pytest.raises(WorkloadError):
            gen.ifmaps(layer, sparsity=1.5)

    def test_determinism_with_same_seed(self, layer):
        a = WorkloadGenerator(seed=42).weights(layer)
        b = WorkloadGenerator(seed=42).weights(layer)
        np.testing.assert_array_equal(a, b)

    def test_reseed_restores_sequence(self, layer):
        gen = WorkloadGenerator(seed=9)
        first = gen.weights(layer)
        gen.reseed(9)
        np.testing.assert_array_equal(first, gen.weights(layer))

    def test_bias_shape(self, layer):
        assert WorkloadGenerator(1).bias(layer).shape == (4,)

    def test_stats(self):
        stats = TensorStats.of(np.array([0.0, 1.0, -1.0, 0.0]))
        assert stats.zero_fraction == pytest.approx(0.5)
        assert stats.max == 1.0 and stats.min == -1.0

    def test_stats_rejects_empty(self):
        with pytest.raises(WorkloadError):
            TensorStats.of(np.array([]))


class TestFeatureMap:
    def test_shape_accessors(self):
        fmap = FeatureMap("x", np.zeros((3, 4, 5)))
        assert (fmap.channels, fmap.height, fmap.width) == (3, 4, 5)

    def test_channel_access_and_iteration(self):
        data = np.arange(2 * 2 * 2).reshape(2, 2, 2).astype(float)
        fmap = FeatureMap("x", data)
        np.testing.assert_array_equal(fmap.channel(1), data[1])
        assert [idx for idx, _ in fmap.iter_channels()] == [0, 1]

    def test_channel_out_of_range(self):
        fmap = FeatureMap("x", np.zeros((2, 2, 2)))
        with pytest.raises(WorkloadError):
            fmap.channel(2)

    def test_padding(self):
        fmap = FeatureMap("x", np.ones((1, 2, 2))).padded(1)
        assert fmap.shape == (1, 4, 4)
        assert fmap.data.sum() == pytest.approx(4.0)

    def test_hwc_round_trip(self):
        data = np.random.default_rng(0).random((3, 4, 5))
        fmap = FeatureMap("x", data)
        round_trip = FeatureMap.from_hwc("y", fmap.to_hwc())
        np.testing.assert_allclose(round_trip.data, data)

    def test_rejects_non_3d(self):
        with pytest.raises(WorkloadError):
            FeatureMap("x", np.zeros((2, 2)))

    def test_bytes(self):
        assert FeatureMap("x", np.zeros((2, 3, 4))).bytes() == 48
