"""Tests for the float-to-fixed simulator and the synthetic workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn.generator import TensorStats, WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.cnn.quantize import (
    bit_width_sweep,
    choose_format,
    evaluate_layer_quantization,
    quantize_layer_tensors,
)
from repro.cnn.tensor import FeatureMap
from repro.errors import QuantizationError, WorkloadError


@pytest.fixture
def layer():
    return ConvLayer("q", in_channels=3, out_channels=4, in_height=10, in_width=10,
                     kernel_size=3, padding=1)


class TestChooseFormat:
    def test_small_values_get_many_fraction_bits(self):
        fmt = choose_format(np.array([0.1, -0.2, 0.05]), total_bits=16)
        assert fmt.frac_bits >= 14

    def test_large_values_get_integer_bits(self):
        fmt = choose_format(np.array([100.0, -50.0]), total_bits=16)
        assert fmt.max_value >= 100.0

    def test_zero_tensor(self):
        fmt = choose_format(np.zeros(5), total_bits=16)
        assert fmt.frac_bits == 15

    def test_unrepresentable_range_raises(self):
        with pytest.raises(QuantizationError):
            choose_format(np.array([1e9]), total_bits=8)

    def test_empty_tensor_raises(self):
        with pytest.raises(QuantizationError):
            choose_format(np.array([]))


class TestLayerQuantization:
    def test_no_saturation_for_chosen_format(self, layer, generator):
        ifmaps, weights = generator.layer_pair(layer)
        q_ifmaps, q_weights, ifmap_fmt, weight_fmt = quantize_layer_tensors(ifmaps, weights)
        assert np.max(np.abs(q_ifmaps)) <= ifmap_fmt.max_value
        assert np.max(np.abs(q_weights)) <= weight_fmt.max_value

    def test_16_bit_error_is_small(self, layer, generator):
        ifmaps, weights = generator.layer_pair(layer)
        result = evaluate_layer_quantization(layer, ifmaps, weights, total_bits=16)
        assert result.relative_rmse < 1e-2
        assert result.sqnr_db > 40.0

    def test_wider_words_reduce_error(self, layer, generator):
        ifmaps, weights = generator.layer_pair(layer)
        sweep = bit_width_sweep(layer, ifmaps, weights, bit_widths=(8, 12, 16))
        assert sweep[8].rmse >= sweep[12].rmse >= sweep[16].rmse

    def test_result_records_layer_name(self, layer, generator):
        ifmaps, weights = generator.layer_pair(layer)
        result = evaluate_layer_quantization(layer, ifmaps, weights)
        assert result.layer_name == "q"


class TestWorkloadGenerator:
    def test_weight_shape(self, layer):
        gen = WorkloadGenerator(seed=1)
        assert gen.weights(layer).shape == (4, 3, 3, 3)

    def test_grouped_weight_shape(self):
        layer = ConvLayer("g", 4, 6, 8, 8, kernel_size=3, groups=2)
        gen = WorkloadGenerator(seed=1)
        assert gen.weights(layer).shape == (6, 2, 3, 3)

    def test_ifmaps_shape_and_nonnegativity(self, layer):
        gen = WorkloadGenerator(seed=1)
        ifmaps = gen.ifmaps(layer)
        assert ifmaps.shape == layer.in_shape
        assert np.all(ifmaps >= 0.0)

    def test_sparsity_fraction(self, layer):
        gen = WorkloadGenerator(seed=1)
        ifmaps = gen.ifmaps(layer, sparsity=0.5)
        zero_fraction = float(np.mean(ifmaps == 0.0))
        assert 0.35 < zero_fraction < 0.65

    def test_invalid_sparsity(self, layer):
        gen = WorkloadGenerator(seed=1)
        with pytest.raises(WorkloadError):
            gen.ifmaps(layer, sparsity=1.5)

    def test_determinism_with_same_seed(self, layer):
        a = WorkloadGenerator(seed=42).weights(layer)
        b = WorkloadGenerator(seed=42).weights(layer)
        np.testing.assert_array_equal(a, b)

    def test_reseed_restores_sequence(self, layer):
        gen = WorkloadGenerator(seed=9)
        first = gen.weights(layer)
        gen.reseed(9)
        np.testing.assert_array_equal(first, gen.weights(layer))

    def test_bias_shape(self, layer):
        assert WorkloadGenerator(1).bias(layer).shape == (4,)

    def test_stats(self):
        stats = TensorStats.of(np.array([0.0, 1.0, -1.0, 0.0]))
        assert stats.zero_fraction == pytest.approx(0.5)
        assert stats.max == 1.0 and stats.min == -1.0

    def test_stats_rejects_empty(self):
        with pytest.raises(WorkloadError):
            TensorStats.of(np.array([]))


class TestFeatureMap:
    def test_shape_accessors(self):
        fmap = FeatureMap("x", np.zeros((3, 4, 5)))
        assert (fmap.channels, fmap.height, fmap.width) == (3, 4, 5)

    def test_channel_access_and_iteration(self):
        data = np.arange(2 * 2 * 2).reshape(2, 2, 2).astype(float)
        fmap = FeatureMap("x", data)
        np.testing.assert_array_equal(fmap.channel(1), data[1])
        assert [idx for idx, _ in fmap.iter_channels()] == [0, 1]

    def test_channel_out_of_range(self):
        fmap = FeatureMap("x", np.zeros((2, 2, 2)))
        with pytest.raises(WorkloadError):
            fmap.channel(2)

    def test_padding(self):
        fmap = FeatureMap("x", np.ones((1, 2, 2))).padded(1)
        assert fmap.shape == (1, 4, 4)
        assert fmap.data.sum() == pytest.approx(4.0)

    def test_hwc_round_trip(self):
        data = np.random.default_rng(0).random((3, 4, 5))
        fmap = FeatureMap("x", data)
        round_trip = FeatureMap.from_hwc("y", fmap.to_hwc())
        np.testing.assert_allclose(round_trip.data, data)

    def test_rejects_non_3d(self):
        with pytest.raises(WorkloadError):
            FeatureMap("x", np.zeros((2, 2)))

    def test_bytes(self):
        assert FeatureMap("x", np.zeros((2, 3, 4))).bytes() == 48
