"""Evaluation service: coalescing, bit-identity, streaming, protocol.

The service's core promise is that turning the stack into a server
changes *where* evaluation happens but not *what* comes back: every
response must be byte-identical to the matching ``repro <cmd> --json``
invocation, including when many clients overlap inside one coalescing
window and when a seeded fault plan is killing pool workers mid-run.
Part of the CI equivalence gate (fail-if-skipped).
"""

from __future__ import annotations

import asyncio
import io
import json
import threading
from contextlib import redirect_stdout

import numpy as np
import pytest

import repro.cli as cli
from repro.analysis.batch import RESULT_COLUMNS, DesignGrid
from repro.cnn.zoo import tiny_test_network
from repro.core.config import ChainConfig
from repro.engine import create_engine
from repro.obs.metrics import REGISTRY
from repro.runtime import pool as pool_module
from repro.runtime.faults import FAULT_SPEC_ENV
from repro.serve.client import ServeClient, ServeError, request_json
from repro.serve.coalesce import Coalescer, merge_grids, scatter_result
from repro.serve.protocol import (
    ProtocolError,
    RunParams,
    SweepParams,
    coalesce_key,
    parse_params,
)
from repro.serve.server import EvalServer

CHAOS_SPEC = "crash:p=0.2,seed=7,attempts=1"
BASE = ChainConfig()


def _grid(spec: str, batch: int = 16) -> DesignGrid:
    return DesignGrid.parse(spec, base=BASE, default_batch=batch)


def _cli_out(argv) -> str:
    """Stdout of one in-process CLI invocation (must exit 0)."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        status = cli.main(argv)
    assert status == 0, f"cli {argv} exited {status}"
    return buffer.getvalue()


# --------------------------------------------------------------------- #
# merge / scatter: the bit-identity core
# --------------------------------------------------------------------- #
class TestMergeScatter:
    def test_spans_partition_the_merged_grid(self):
        grids = [_grid("pe=128:512:64,freq=700:700:1"),
                 _grid("pe=576:576:1,freq=200:400:100"),
                 _grid("pe=64:64:1,freq=700:700:1")]
        merged, spans = merge_grids(grids)
        assert merged.n_points == sum(grid.n_points for grid in grids)
        assert spans[0] == (0, grids[0].n_points)
        assert all(start == prev_stop for (_, prev_stop), (start, _)
                   in zip(spans, spans[1:]))
        for grid, (start, stop) in zip(grids, spans):
            assert np.array_equal(merged.num_pes[start:stop], grid.num_pes)
            assert np.array_equal(merged.batch[start:stop], grid.batch)

    def test_merged_evaluation_is_bit_identical_per_request(self):
        """concatenate → evaluate → slice == evaluate each grid alone."""
        engine = create_engine("analytical-batch")
        network = tiny_test_network()
        grids = [_grid("pe=96:576:96,freq=300:700:200"),
                 _grid("pe=576:576:1,freq=700:700:1", batch=4),
                 _grid("pe=128:256:64,freq=500:500:1,bits=8:16:8")]
        merged, spans = merge_grids(grids)
        pieces = scatter_result(
            engine.evaluate_batch(network, merged, base=BASE), spans)
        for grid, piece in zip(grids, pieces):
            alone = engine.evaluate_batch(network, grid, base=BASE)
            for column in RESULT_COLUMNS:
                assert np.array_equal(getattr(piece, column),
                                      getattr(alone, column)), column

    def test_single_grid_merge_is_passthrough(self):
        grid = _grid("pe=128:256:64,freq=700:700:1")
        merged, spans = merge_grids([grid])
        assert merged is grid and spans == [(0, grid.n_points)]


# --------------------------------------------------------------------- #
# coalescer: window flush, partitioning, scatter order, failure fan-out
# --------------------------------------------------------------------- #
class TestCoalescer:
    def _coalescer(self, calls, **kwargs):
        async def evaluate(key, merged):
            calls.append((key, merged.n_points))
            engine = create_engine("analytical-batch")
            return engine.evaluate_batch(tiny_test_network(), merged, base=BASE)
        return Coalescer(evaluate, **kwargs)

    def test_window_flush_merges_compatible_requests(self):
        calls = []

        async def main():
            coalescer = self._coalescer(calls, window_s=0.05)
            results = await asyncio.gather(
                coalescer.submit("k", _grid("pe=96:96:1,freq=700:700:1")),
                coalescer.submit("k", _grid("pe=192:192:1,freq=700:700:1")),
                coalescer.submit("k", _grid("pe=288:480:96,freq=700:700:1")),
            )
            return results

        results = asyncio.run(main())
        assert calls == [("k", 5)]  # one batch scored all three requests
        assert [r.n_points for r in results] == [1, 1, 3]

    def test_incompatible_keys_never_share_a_batch(self):
        calls = []

        async def main():
            coalescer = self._coalescer(calls, window_s=0.02)
            await asyncio.gather(
                coalescer.submit("a", _grid("pe=96:96:1,freq=700:700:1")),
                coalescer.submit("b", _grid("pe=96:96:1,freq=700:700:1")),
                coalescer.submit("a", _grid("pe=192:192:1,freq=700:700:1")),
            )

        asyncio.run(main())
        assert sorted(calls) == [("a", 2), ("b", 1)]

    def test_scatter_order_matches_submission_order(self):
        """Interleaved submissions each get their own grid's scores back."""
        pes = [96, 576, 192, 384, 288]

        async def main():
            coalescer = self._coalescer([], window_s=0.05)
            results = await asyncio.gather(*[
                coalescer.submit("k", _grid(f"pe={p}:{p}:1,freq=700:700:1"))
                for p in pes
            ])
            return results

        engine = create_engine("analytical-batch")
        for p, result in zip(pes, asyncio.run(main())):
            alone = engine.evaluate_batch(
                tiny_test_network(),
                _grid(f"pe={p}:{p}:1,freq=700:700:1"), base=BASE)
            assert np.array_equal(result.fps, alone.fps)

    def test_size_bound_flushes_before_the_window(self):
        calls = []

        async def main():
            # a 10 s window would time the test out if the request bound
            # (2) did not flush immediately
            coalescer = self._coalescer(calls, window_s=10.0, max_requests=2)
            await asyncio.wait_for(asyncio.gather(
                coalescer.submit("k", _grid("pe=96:96:1,freq=700:700:1")),
                coalescer.submit("k", _grid("pe=192:192:1,freq=700:700:1")),
            ), timeout=5.0)

        asyncio.run(main())
        assert calls == [("k", 2)]

    def test_evaluation_failure_fans_out_to_every_waiter(self):
        async def evaluate(key, merged):
            raise ValueError("boom")

        async def main():
            coalescer = Coalescer(evaluate, window_s=0.01)
            futures = await asyncio.gather(
                coalescer.submit("k", _grid("pe=96:96:1,freq=700:700:1")),
                coalescer.submit("k", _grid("pe=192:192:1,freq=700:700:1")),
                return_exceptions=True,
            )
            return futures

        outcomes = asyncio.run(main())
        assert all(isinstance(outcome, ValueError) for outcome in outcomes)


# --------------------------------------------------------------------- #
# protocol
# --------------------------------------------------------------------- #
class TestProtocol:
    def test_defaults_mirror_the_cli(self):
        params = parse_params(RunParams, {"network": "alexnet"})
        assert (params.batch, params.engine, params.pes,
                params.frequency_mhz) == (4, "analytical", 576, 700.0)
        sweep = parse_params(SweepParams, {})
        assert (sweep.batch, sweep.metric) == (16, "gops_per_watt")

    def test_unknown_parameter_is_rejected(self):
        with pytest.raises(ProtocolError, match="grdi"):
            parse_params(SweepParams, {"grdi": "pe=1:1:1"})

    def test_coalesce_key_separates_engines_networks_and_bases(self):
        network = tiny_test_network()
        key = coalesce_key("analytical-batch", network, BASE)
        assert key == coalesce_key("analytical-batch", network, ChainConfig())
        assert key != coalesce_key("analytical-batch-detailed", network, BASE)
        assert key != coalesce_key("analytical-batch", network,
                                   ChainConfig(num_pes=64))


# --------------------------------------------------------------------- #
# server round-trips (event-loop clients)
# --------------------------------------------------------------------- #
def _serve(coro_factory, **server_kwargs):
    """Start a fresh server, run ``coro_factory(server)``, stop it."""
    async def main():
        server = await EvalServer(port=0, **server_kwargs).start()
        try:
            return await coro_factory(server)
        finally:
            await server.stop()

    return asyncio.run(main())


class TestServerBitIdentity:
    def test_concurrent_clients_match_serial_cli(self, monkeypatch):
        """Overlapping sweep/run requests == their standalone CLI bytes."""
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        requests = [
            ("/v1/sweep", {"grid": "pe=128:512:64,freq=300:700:100"},
             ["sweep", "--grid", "pe=128:512:64,freq=300:700:100", "--json"]),
            ("/v1/sweep", {"grid": "pe=128:512:64,freq=300:700:100",
                           "pareto": True},
             ["sweep", "--grid", "pe=128:512:64,freq=300:700:100", "--json",
              "--pareto"]),
            ("/v1/sweep", {"grid": "pe=576:576:1,freq=700:700:1", "top": 1},
             ["sweep", "--grid", "pe=576:576:1,freq=700:700:1", "--json",
              "--top", "1"]),
            ("/v1/sweep", {"grid": "pe=256:512:128,freq=700:700:1", "batch": 4,
                           "metric": "fps"},
             ["sweep", "--grid", "pe=256:512:128,freq=700:700:1", "--json",
              "--batch", "4", "--metric", "fps"]),
            ("/v1/sweep", {"grid": "pe=128:512:64,freq=300:700:100",
                           "engine": "analytical-detailed"},
             ["sweep", "--grid", "pe=128:512:64,freq=300:700:100", "--json",
              "--engine", "analytical-detailed"]),
            ("/v1/run", {"network": "alexnet"}, ["run", "alexnet", "--json"]),
            ("/v1/run", {"network": "vgg16", "batch": 8, "mode": "detailed"},
             ["run", "vgg16", "--json", "--batch", "8", "--mode", "detailed"]),
            ("/v1/run", {"network": "alexnet", "traffic": True},
             ["run", "alexnet", "--json", "--traffic"]),
        ]
        before = REGISTRY.flat().get("serve.coalesced_batches", 0)

        async def clients(server):
            return await asyncio.gather(*[
                request_json(server.host, server.port, path, body)
                for path, body, _ in requests
            ])

        responses = _serve(clients, window_ms=20.0)
        for (path, body, argv), (status, raw) in zip(requests, responses):
            assert status == 200, (path, raw)
            assert raw.decode() + "\n" == _cli_out(argv), (path, body)
        # the three compatible alexnet/batch-16/default-base sweeps above
        # must have shared at least one coalesced batch
        assert REGISTRY.flat()["serve.coalesced_batches"] > before

    def test_chaos_leg_is_bit_identical_to_faultfree_serial(self, monkeypatch):
        """A seeded crash plan killing pool workers must not change bytes."""
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
        map_argv = ["map", "--network", "alexnet", "--strategy", "greedy",
                    "--json"]
        serial_map = _cli_out(map_argv)
        serial_sweep = _cli_out(
            ["sweep", "--grid", "pe=128:512:128,freq=700:700:1", "--json"])
        monkeypatch.setenv(pool_module.FORCE_PARALLEL_ENV, "1")
        monkeypatch.setenv(FAULT_SPEC_ENV, CHAOS_SPEC)

        async def clients(server):
            return await asyncio.gather(
                request_json(server.host, server.port, "/v1/map",
                             {"network": "alexnet", "strategy": "greedy",
                              "workers": 2}),
                request_json(server.host, server.port, "/v1/sweep",
                             {"grid": "pe=128:512:128,freq=700:700:1"}),
            )

        (map_status, map_raw), (sweep_status, sweep_raw) = _serve(clients)
        assert map_status == 200 and sweep_status == 200
        result = json.loads(map_raw.decode().splitlines()[-1])
        assert result["event"] == "result" and result["status"] == 0
        assert json.dumps(result["payload"], indent=2, sort_keys=True) + "\n" \
            == serial_map
        assert sweep_raw.decode() + "\n" == serial_sweep

    def test_verify_streams_stage_progress_then_result(self):
        async def client(server):
            return await request_json(server.host, server.port, "/v1/verify",
                                      {"network": "tiny", "seed": 11})

        status, raw = _serve(client)
        assert status == 200
        events = [json.loads(line) for line in raw.decode().splitlines()]
        kinds = [event["event"] for event in events]
        assert kinds[-1] == "result" and "stage" in kinds[:-1]
        stage_names = [event["stage"] for event in events
                       if event["event"] == "stage"]
        payload = events[-1]["payload"]
        assert payload["passed"] is True and events[-1]["status"] == 0
        assert [s["stage"] for s in payload["stages"]] == stage_names

    def test_protocol_and_validation_errors(self):
        async def clients(server):
            return await asyncio.gather(
                request_json(server.host, server.port, "/v1/sweep",
                             {"grdi": "pe=1:1:1"}),
                request_json(server.host, server.port, "/v1/missing", {}),
                request_json(server.host, server.port, "/v1/run",
                             {"network": "not-a-network"}),
                request_json(server.host, server.port, "/v1/run",
                             {"network": "alexnet", "workers": 2}),
                request_json(server.host, server.port, "/v1/map",
                             {"samples": 5}),
            )

        responses = _serve(clients)
        assert [status for status, _ in responses] == [400, 404, 400, 400, 400]
        assert b"workers" in responses[3][1]

    def test_health_and_metrics_endpoints(self):
        async def clients(server):
            health = await request_json(server.host, server.port,
                                        "/v1/health", None, method="GET")
            await request_json(server.host, server.port, "/v1/sweep",
                               {"grid": "pe=576:576:1,freq=700:700:1"})
            metrics = await request_json(server.host, server.port,
                                         "/v1/metrics", None, method="GET")
            return health, metrics

        (h_status, h_raw), (m_status, m_raw) = _serve(clients)
        assert h_status == 200 and m_status == 200
        health = json.loads(h_raw)
        assert health["status"] == "ok" and "version" in health
        metrics = json.loads(m_raw)["metrics"]
        assert metrics["serve.coalesced_batches"] >= 1


# --------------------------------------------------------------------- #
# blocking client + `repro request` (server on a background thread)
# --------------------------------------------------------------------- #
class _ServerThread:
    """A live server on its own event-loop thread, for blocking clients."""

    def __init__(self, **kwargs):
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._task = None
        self._loop = None
        self.server = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main():
            self._task = asyncio.current_task()
            self._loop = asyncio.get_running_loop()
            self.server = await EvalServer(port=0, **self._kwargs).start()
            self._ready.set()
            try:
                await self.server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await self.server.stop()

        asyncio.run(main())

    def __enter__(self) -> EvalServer:
        self._thread.start()
        assert self._ready.wait(30), "server failed to start"
        return self.server

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(30)


class TestBlockingClientAndRequestCLI:
    def test_serve_client_round_trips(self):
        with _ServerThread(window_ms=2.0) as server:
            with ServeClient(server.host, server.port) as client:
                assert client.health()["status"] == "ok"
                payload = client.sweep(grid="pe=256:512:256,freq=700:700:1")
                assert payload["n_points"] == 2
                events = []
                result, status = client.verify(on_event=events.append,
                                               network="tiny")
                assert status == 0 and result["passed"] is True
                with pytest.raises(ServeError):
                    client.run(network="not-a-network")
                assert client.metrics()["serve.requests"] >= 3

    def test_repro_request_bytes_match_repro_sweep(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        expected = _cli_out(
            ["sweep", "--grid", "pe=128:384:128,freq=500:700:100", "--json"])
        with _ServerThread() as server:
            got = _cli_out(
                ["request", "sweep",
                 '{"grid": "pe=128:384:128,freq=500:700:100"}',
                 "--port", str(server.port)])
            health = _cli_out(["request", "health", "--port", str(server.port)])
        assert got == expected
        assert json.loads(health)["status"] == "ok"

    def test_repro_request_against_no_server_fails_cleanly(self, capsys):
        # a port from the dynamic range with nothing bound on it
        status = cli.main(["request", "health", "--port", "1"])
        assert status == 1
        assert "cannot reach" in capsys.readouterr().err
