"""Tests for the Network container and the network zoo."""

from __future__ import annotations

import pytest

from repro.cnn.layer import ConvLayer
from repro.cnn.network import Network, validate_chaining
from repro.cnn.zoo import (
    NETWORKS,
    alexnet,
    cifar10_quick,
    get_network,
    lenet5,
    tiny_test_network,
    vgg16,
)
from repro.errors import WorkloadError


class TestNetworkContainer:
    def test_add_and_iterate(self):
        net = Network("test")
        layer = ConvLayer("c1", 1, 2, 8, 8, kernel_size=3)
        net.add(layer)
        assert len(net) == 1
        assert list(net) == [layer]

    def test_conv_layer_lookup(self):
        net = tiny_test_network()
        assert net.conv_layer("convA").name == "convA"
        with pytest.raises(WorkloadError):
            net.conv_layer("missing")

    def test_empty_name_rejected(self):
        with pytest.raises(WorkloadError):
            Network("")

    def test_summary_lists_all_conv_layers(self):
        net = alexnet()
        text = net.summary()
        for layer in net.conv_layers:
            assert layer.name in text

    def test_validate_chaining_accepts_vgg_block(self):
        net = vgg16()
        block = [net.conv_layer("conv3_1"), net.conv_layer("conv3_2"), net.conv_layer("conv3_3")]
        validate_chaining(block)

    def test_validate_chaining_rejects_mismatch(self):
        a = ConvLayer("a", 3, 8, 16, 16, kernel_size=3, padding=1)
        b = ConvLayer("b", 16, 8, 16, 16, kernel_size=3, padding=1)
        with pytest.raises(WorkloadError):
            validate_chaining([a, b])


class TestAlexNet:
    def test_five_conv_layers(self):
        assert len(alexnet().conv_layers) == 5

    def test_layer_geometry_matches_the_paper(self):
        net = alexnet()
        conv1 = net.conv_layer("conv1")
        assert (conv1.kernel_size, conv1.stride, conv1.out_height) == (11, 4, 55)
        conv3 = net.conv_layer("conv3")
        assert (conv3.kernel_size, conv3.out_height, conv3.in_channels) == (3, 13, 256)

    def test_macs_per_image_is_666_million(self):
        assert alexnet().total_conv_macs == pytest.approx(666e6, rel=0.01)

    def test_total_weights(self):
        # conv1..conv5 = 34848 + 307200 + 884736 + 663552 + 442368
        assert alexnet().total_conv_weights == 2_332_704

    def test_grouped_layers(self):
        net = alexnet()
        assert net.conv_layer("conv2").groups == 2
        assert net.conv_layer("conv3").groups == 1
        assert net.conv_layer("conv4").groups == 2
        assert net.conv_layer("conv5").groups == 2


class TestVgg16:
    def test_thirteen_conv_layers(self):
        assert len(vgg16().conv_layers) == 13

    def test_all_kernels_are_3x3(self):
        assert all(layer.kernel_size == 3 for layer in vgg16().conv_layers)

    def test_feature_map_sizes_halve_per_block(self):
        net = vgg16()
        assert net.conv_layer("conv1_1").in_height == 224
        assert net.conv_layer("conv2_1").in_height == 112
        assert net.conv_layer("conv5_3").in_height == 14

    def test_vgg_macs_are_an_order_of_magnitude_above_alexnet(self):
        assert vgg16().total_conv_macs > 10 * alexnet().total_conv_macs


class TestSmallNetworks:
    def test_lenet_layers(self):
        net = lenet5()
        assert len(net.conv_layers) == 2
        assert net.conv_layer("conv1").in_height == 28

    def test_cifar_layers(self):
        net = cifar10_quick()
        assert len(net.conv_layers) == 3
        assert all(layer.kernel_size == 5 for layer in net.conv_layers)

    def test_tiny_network_is_chainable(self):
        net = tiny_test_network()
        conv_a, conv_b = net.conv_layers
        assert conv_a.out_channels == conv_b.in_channels


class TestRegistry:
    def test_get_network_by_name(self):
        assert get_network("AlexNet").name == "AlexNet"
        assert get_network("vgg16").name == "VGG-16"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_network("resnet50")

    def test_registry_contents(self):
        assert set(NETWORKS) == {"alexnet", "vgg16", "lenet5", "cifar10"}
