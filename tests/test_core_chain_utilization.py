"""Tests for chain partitioning, Table II utilization math and ChainConfig."""

from __future__ import annotations

import pytest

from repro.core.chain import PEChain
from repro.core.config import MAINSTREAM_KERNEL_SIZES, ChainConfig
from repro.core.utilization import (
    active_primitives,
    best_chain_lengths,
    minimum_utilization,
    primitive_size,
    utilization_entry,
    utilization_table,
)
from repro.errors import ConfigurationError, MappingError


class TestChainConfig:
    def test_paper_defaults(self):
        config = ChainConfig.paper_default()
        assert config.num_pes == 576
        assert config.frequency_hz == pytest.approx(700e6)
        assert config.peak_gops == pytest.approx(806.4)
        assert config.kmemory_words_per_pe == 256

    def test_onchip_memory_is_352_kb(self):
        config = ChainConfig.paper_default()
        # 32 KB iMemory + 25 KB oMemory + 576 * 512 B kMemory = 345 KiB (the
        # paper rounds the same total to 352 KB decimal-ish; we check bytes)
        assert config.kmemory_total_bytes == 576 * 512
        assert config.onchip_memory_bytes == 32 * 1024 + 25 * 1024 + 576 * 512

    def test_word_bytes(self):
        assert ChainConfig().word_bytes == 2

    def test_with_pes_and_frequency(self):
        config = ChainConfig().with_pes(288).with_frequency(350e6)
        assert config.num_pes == 288
        assert config.peak_gops == pytest.approx(288 * 2 * 0.35)

    def test_single_channel_copy(self):
        config = ChainConfig().single_channel()
        assert not config.dual_channel
        assert config.ifmap_channels_per_cycle == 1

    def test_invalid_configurations(self):
        with pytest.raises(ConfigurationError):
            ChainConfig(num_pes=0)
        with pytest.raises(ConfigurationError):
            ChainConfig(word_bits=12)
        with pytest.raises(ConfigurationError):
            ChainConfig(pe_pipeline_stages=-1)

    def test_describe(self):
        assert "576" in ChainConfig().describe()


class TestTable2Utilization:
    #: the exact Table II rows (active primitives / active PEs)
    PAPER_ROWS = {
        3: (64, 576),
        5: (23, 575),
        7: (11, 539),
        9: (7, 567),
        11: (4, 484),
    }

    @pytest.mark.parametrize("kernel,expected", sorted(PAPER_ROWS.items()))
    def test_active_counts_match_the_paper(self, kernel, expected):
        entry = utilization_entry(576, kernel)
        assert (entry.active_primitives, entry.active_pes) == expected

    def test_worst_case_is_84_percent(self):
        assert minimum_utilization(576, MAINSTREAM_KERNEL_SIZES) == pytest.approx(484 / 576)

    def test_k9_utilization_is_98_4_percent_not_100(self):
        # the paper's table prints 100% for 9x9, but 567/576 = 98.4 %
        assert utilization_entry(576, 9).utilization == pytest.approx(0.984375)

    def test_idle_pes(self):
        assert utilization_entry(576, 11).idle_pes == 92

    def test_primitive_size(self):
        assert primitive_size(11) == 121

    def test_kernel_too_large(self):
        with pytest.raises(MappingError):
            active_primitives(100, 11)

    def test_table_covers_requested_sizes(self):
        table = utilization_table(576, (3, 5))
        assert set(table) == {3, 5}

    def test_best_chain_lengths_sweep(self):
        sweep = best_chain_lengths(kernel_sizes=(3, 5), low=128, high=256, step=64)
        assert all(0 < value <= 1.0 for value in sweep.values())


class TestPEChainPartition:
    def test_partition_geometry(self):
        chain = PEChain(ChainConfig(num_pes=576))
        partition = chain.partition(3)
        assert partition.num_primitives == 64
        assert partition.slots[0].first_pe == 0
        assert partition.slots[0].last_pe == 8
        assert partition.slots[-1].last_pe == 575

    def test_partition_leaves_tail_idle(self):
        partition = PEChain(ChainConfig(num_pes=576)).partition(11)
        assert partition.active_pes == 484
        assert partition.idle_pes == 92
        assert partition.slot_of(575) is None
        assert partition.slot_of(483).index == 3

    def test_slot_lookup(self):
        partition = PEChain(ChainConfig(num_pes=36)).partition(3)
        assert partition.slot_of(10).index == 1
        with pytest.raises(MappingError):
            partition.slot_of(36)

    def test_utilization_shortcut_matches_table(self):
        chain = PEChain(ChainConfig(num_pes=576))
        assert chain.utilization(7).active_pes == 539

    def test_kernel_too_large_for_chain(self):
        with pytest.raises(MappingError):
            PEChain(ChainConfig(num_pes=36)).partition(7)

    def test_describe(self):
        text = PEChain(ChainConfig(num_pes=576)).describe(5)
        assert "23 primitives" in text

    def test_primitive_port_count(self):
        chain = PEChain(ChainConfig(num_pes=576))
        assert chain.primitive_port_count(3) == 64
