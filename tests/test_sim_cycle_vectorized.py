"""Vectorized cycle-engine fast path: bit-identical to the scalar reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.cnn.zoo import alexnet
from repro.core.config import ChainConfig
from repro.errors import ConfigurationError
from repro.sim.cycle import (
    CycleAccurateChainSimulator,
    pair_geometry,
    stripe_mac_count,
)


def _tensors(layer, seed=0):
    return WorkloadGenerator(seed=seed).layer_pair(layer)


def _both(layer, seed=0, config=None):
    config = config or ChainConfig()
    ifmaps, weights = _tensors(layer, seed)
    scalar = CycleAccurateChainSimulator(config, backend="scalar").run_layer(
        layer, ifmaps, weights)
    fast = CycleAccurateChainSimulator(config, backend="vectorized").run_layer(
        layer, ifmaps, weights)
    return scalar, fast


class TestBackendEquivalence:
    """Acceptance: bit-identical ofmaps and identical stats on the unit layers."""

    def test_stride1_layer(self, tiny_layer):
        scalar, fast = _both(tiny_layer)
        assert np.array_equal(scalar.ofmaps, fast.ofmaps)
        assert scalar.stats == fast.stats

    def test_strided_layer(self, strided_layer):
        scalar, fast = _both(strided_layer, seed=1)
        assert np.array_equal(scalar.ofmaps, fast.ofmaps)
        assert scalar.stats == fast.stats
        assert fast.stats.outputs_discarded_by_stride > 0

    def test_grouped_layer(self, grouped_layer):
        scalar, fast = _both(grouped_layer, seed=2)
        assert np.array_equal(scalar.ofmaps, fast.ofmaps)
        assert scalar.stats == fast.stats

    def test_k5_layer(self):
        layer = ConvLayer("k5", 1, 2, 11, 11, kernel_size=5)
        scalar, fast = _both(layer, seed=3)
        assert np.array_equal(scalar.ofmaps, fast.ofmaps)
        assert scalar.stats == fast.stats

    def test_conv1_like_strided_k11(self):
        layer = ConvLayer("k11s4", 1, 1, 23, 23, kernel_size=11, stride=4)
        scalar, fast = _both(layer, seed=4)
        assert np.array_equal(scalar.ofmaps, fast.ofmaps)
        assert scalar.stats == fast.stats

    def test_asymmetric_padded_strided(self):
        layer = ConvLayer("oddgeom", 2, 2, 10, 12, kernel_size=3, stride=3, padding=2)
        scalar, fast = _both(layer, seed=5)
        assert np.array_equal(scalar.ofmaps, fast.ofmaps)
        assert scalar.stats == fast.stats

    def test_chain_cycles_and_formats_agree(self, tiny_layer):
        scalar, fast = _both(tiny_layer)
        assert fast.chain_cycles_estimate == scalar.chain_cycles_estimate
        assert fast.ifmap_format == scalar.ifmap_format
        assert fast.weight_format == scalar.weight_format
        assert fast.reference_max_abs_error == pytest.approx(0.0, abs=1e-9)


class TestAlexNetScale:
    """The fast path makes full AlexNet layers cycle-verifiable."""

    def test_conv5_full_size_verifies_against_reference(self):
        layer = alexnet().conv_layer("conv5")
        ifmaps, weights = _tensors(layer, seed=6)
        result = CycleAccurateChainSimulator().run_layer(layer, ifmaps, weights)
        assert result.reference_max_abs_error == pytest.approx(0.0, abs=1e-9)
        assert result.stats.pairs_processed == layer.channel_pairs()
        assert result.stats.macs >= layer.macs


class TestGeometryHelpers:
    def test_stripe_mac_count_matches_bruteforce(self):
        for k, width, rows in ((3, 7, 5), (3, 9, 3), (5, 11, 9), (5, 8, 6), (11, 23, 21)):
            total = k * (width - 1) + rows
            expected = 0
            for s in range(1, total + 1):
                oc, r0 = (s - 1) // k, (s - 1) % k
                expected += max(0, min(k, width - oc)) * max(0, min(k, rows - r0))
            assert stripe_mac_count(k, width, rows) == expected

    def test_pair_geometry_covers_all_stride1_windows(self, tiny_layer):
        geometry = pair_geometry(tiny_layer)
        stride1_windows = ((tiny_layer.padded_height - tiny_layer.kernel_size + 1)
                           * (tiny_layer.padded_width - tiny_layer.kernel_size + 1))
        assert geometry.valid_windows == stride1_windows
        assert geometry.outputs_kept == tiny_layer.out_height * tiny_layer.out_width
        assert geometry.outputs_discarded == stride1_windows - geometry.outputs_kept

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            CycleAccurateChainSimulator(backend="quantum")
