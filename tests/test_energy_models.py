"""Tests for technology scaling, unit energies, the area model and the power model."""

from __future__ import annotations

import pytest

from repro.cnn.zoo import alexnet
from repro.core.config import ChainConfig
from repro.energy.area import AreaModel
from repro.energy.components import (
    PAPER_POWER_BREAKDOWN_W,
    PAPER_TOTAL_POWER_W,
    EnergyParams,
    GateCountParams,
)
from repro.energy.power import PowerModel
from repro.energy.technology import (
    TSMC_28NM,
    TSMC_65NM,
    TechNode,
    scale_efficiency,
    scale_frequency,
)


class TestTechnologyScaling:
    def test_energy_scale_smaller_node_cheaper(self):
        assert TSMC_65NM.energy_scale_to(TSMC_28NM) < 1.0

    def test_efficiency_scaling_improves_at_smaller_node(self):
        scaled = scale_efficiency(245.6, TSMC_65NM, TSMC_28NM)
        assert scaled > 245.6

    def test_frequency_scaling(self):
        assert scale_frequency(250e6, TSMC_65NM, TSMC_28NM) == pytest.approx(250e6 * 65 / 28)

    def test_area_scaling_is_quadratic(self):
        assert TSMC_65NM.area_scale_to(TSMC_28NM) == pytest.approx((28 / 65) ** 2)

    def test_same_node_is_identity(self):
        assert TSMC_28NM.energy_scale_to(TSMC_28NM) == pytest.approx(1.0)
        assert TSMC_28NM.efficiency_scale_to(TSMC_28NM) == pytest.approx(1.0)

    def test_invalid_node(self):
        with pytest.raises(Exception):
            TechNode(name="bad", feature_nm=-1, nominal_voltage_v=1.0)


class TestEnergyParams:
    def test_pe_cycle_energy_is_sum_of_parts(self):
        params = EnergyParams()
        assert params.pe_cycle_j == pytest.approx(
            params.mac_op_j + params.pe_register_j + params.pe_control_j)

    def test_uniform_scaling(self):
        params = EnergyParams()
        scaled = params.scaled(0.5)
        assert scaled.mac_op_j == pytest.approx(params.mac_op_j * 0.5)
        assert scaled.dram_byte_j == params.dram_byte_j  # off-chip untouched

    def test_overrides(self):
        params = EnergyParams().with_overrides(kmemory_access_j=9e-12)
        assert params.kmemory_access_j == pytest.approx(9e-12)

    def test_rejects_non_positive(self):
        with pytest.raises(Exception):
            EnergyParams(mac_op_j=0.0)

    def test_paper_breakdown_sums_to_total(self):
        assert sum(PAPER_POWER_BREAKDOWN_W.values()) == pytest.approx(
            PAPER_TOTAL_POWER_W, rel=1e-3)


class TestAreaModel:
    def test_gates_per_pe_matches_paper(self):
        assert GateCountParams().per_pe_gates == pytest.approx(6510, rel=0.02)

    def test_total_gates_matches_paper(self):
        report = AreaModel(ChainConfig()).report()
        assert report.total_gates == pytest.approx(3751e3, rel=0.02)

    def test_logic_gates_per_pe_near_6_5k(self):
        report = AreaModel(ChainConfig()).report()
        assert report.logic_gates_per_pe == pytest.approx(6510, rel=0.05)

    def test_onchip_memory_reported(self):
        report = AreaModel(ChainConfig()).report()
        assert report.onchip_memory_bytes == ChainConfig().onchip_memory_bytes

    def test_chain_gates_scale_with_pe_count(self):
        small = AreaModel(ChainConfig(num_pes=288)).report()
        large = AreaModel(ChainConfig(num_pes=576)).report()
        assert large.chain_gates == pytest.approx(2 * small.chain_gates)

    def test_breakdowns(self):
        model = AreaModel(ChainConfig())
        assert sum(model.pe_breakdown().values()) == GateCountParams().per_pe_gates
        report = model.report()
        assert sum(report.breakdown().values()) == pytest.approx(report.total_gates)


class TestPowerModel:
    @pytest.fixture(scope="class")
    def network(self):
        return alexnet()

    @pytest.fixture(scope="class")
    def model(self):
        return PowerModel(ChainConfig())

    def test_component_breakdown_present(self, model, network):
        report = model.network_power(network, batch=4)
        assert set(report.components_w) == {"chain", "kMemory", "iMemory", "oMemory"}
        assert report.total_w > 0

    def test_chain_dominates_power(self, model, network):
        # the paper attributes ~80 % of the power to the chain
        report = model.network_power(network, batch=4)
        assert report.fractions()["chain"] > 0.6

    def test_representative_total_in_right_regime(self, model, network):
        report = model.network_power(network, batch=4)
        assert 0.2 < report.total_w < 1.2  # hundreds of milliwatts

    def test_calibration_reproduces_fig10(self, model, network):
        calibrated = model.calibrated_to_paper(network, batch=4)
        report = calibrated.network_power(network, batch=4)
        for name, target in PAPER_POWER_BREAKDOWN_W.items():
            assert report.components_w[name] == pytest.approx(target, rel=0.01)
        assert report.total_w == pytest.approx(PAPER_TOTAL_POWER_W, rel=0.01)

    def test_calibrated_efficiency_is_1421_gops_per_watt(self, model, network):
        calibrated = model.calibrated_to_paper(network, batch=4)
        report = calibrated.network_power(network, batch=4)
        assert ChainConfig().peak_gops / report.total_w == pytest.approx(1421.0, rel=0.01)

    def test_core_only_split(self, model, network):
        report = model.network_power(network, batch=4)
        assert report.core_only_w + report.memory_hierarchy_w == pytest.approx(report.total_w)
        assert report.core_only_gops_per_watt > report.gops_per_watt

    def test_peak_power_exceeds_workload_power(self, model, network):
        peak = model.peak_power(kernel_size=3)
        workload = model.network_power(network, batch=4)
        assert peak.components_w["chain"] >= workload.components_w["chain"]

    def test_power_scales_with_pe_count(self, network):
        small = PowerModel(ChainConfig(num_pes=288)).network_power(network, 4)
        large = PowerModel(ChainConfig(num_pes=576)).network_power(network, 4)
        # chain energy is work-proportional and the runtime roughly halves with
        # twice the PEs, so the average chain power roughly doubles
        assert large.components_w["chain"] > 1.5 * small.components_w["chain"]
