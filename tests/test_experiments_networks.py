"""Tests for the zoo-network extension experiment."""

from __future__ import annotations

import pytest

from repro.experiments.networks import run_network_study


@pytest.fixture(scope="module")
def study():
    return run_network_study(batch=8)


class TestNetworkStudy:
    def test_covers_every_zoo_network(self, study):
        assert set(study.rows) == {"alexnet", "vgg16", "lenet5", "cifar10"}

    def test_vgg_uses_the_chain_better_than_alexnet(self, study):
        assert study.vgg_sustains_higher_fraction_of_peak_than_alexnet()
        assert study.rows["vgg16"].worst_spatial_utilization == pytest.approx(1.0)

    def test_alexnet_row_consistent_with_fig9_machinery(self, study):
        row = study.rows["alexnet"]
        assert row.conv_layers == 5
        assert row.macs_per_image == pytest.approx(666e6, rel=0.01)
        assert 250 < row.fps < 400

    def test_small_networks_pay_for_kernel_loading(self, study):
        # LeNet/CIFAR have tiny conv workloads, so kernel loading dominates more
        assert study.rows["lenet5"].kernel_load_fraction > \
            study.rows["alexnet"].kernel_load_fraction
        assert study.rows["cifar10"].kernel_load_fraction > \
            study.rows["vgg16"].kernel_load_fraction

    def test_vgg_needs_more_kmemory_than_capacity(self, study):
        assert study.rows["vgg16"].max_weights_per_pe > 256

    def test_achieved_gops_below_peak_everywhere(self, study):
        for row in study.rows.values():
            assert 0 < row.achieved_gops < 806.4
            assert 0 < row.efficiency_vs_peak < 1.0

    def test_report_renders(self, study):
        text = study.report()
        assert "vgg16" in text and "fps" in text
