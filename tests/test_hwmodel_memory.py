"""Tests for the storage models (RegisterFile / Sram / access counters)."""

from __future__ import annotations

import pytest

from repro.errors import CapacityError
from repro.hwmodel.memory import AccessCounters, RegisterFile, Sram


class TestAccessCounters:
    def test_read_write_accumulation(self):
        counters = AccessCounters()
        counters.record_read(4, count=2)
        counters.record_write(2)
        assert counters.reads == 2
        assert counters.writes == 1
        assert counters.bytes_read == 4
        assert counters.bytes_written == 2
        assert counters.total_accesses == 3
        assert counters.total_bytes == 6

    def test_reset(self):
        counters = AccessCounters()
        counters.record_read(8)
        counters.reset()
        assert counters.total_bytes == 0 and counters.total_accesses == 0


class TestRegisterFile:
    def test_paper_kmemory_capacity(self):
        kmem = RegisterFile(depth=256, word_bytes=2)
        assert kmem.capacity_bytes == 512  # 256 x 16-bit = 512 B per PE

    def test_write_then_read(self):
        kmem = RegisterFile(depth=8)
        kmem.write(3, 42)
        assert kmem.read(3) == 42
        assert kmem.counters.reads == 1
        assert kmem.counters.writes == 1

    def test_peek_does_not_count(self):
        kmem = RegisterFile(depth=8)
        kmem.write(0, 7)
        reads_before = kmem.counters.reads
        assert kmem.peek(0) == 7
        assert kmem.counters.reads == reads_before

    def test_bulk_load(self):
        kmem = RegisterFile(depth=8)
        kmem.load([1, 2, 3], base=2)
        assert [kmem.peek(i) for i in range(2, 5)] == [1, 2, 3]
        assert kmem.counters.writes == 3

    def test_load_overflow_rejected(self):
        kmem = RegisterFile(depth=4)
        with pytest.raises(CapacityError):
            kmem.load([1, 2, 3], base=2)

    def test_out_of_range_address(self):
        kmem = RegisterFile(depth=4)
        with pytest.raises(CapacityError):
            kmem.read(4)
        with pytest.raises(CapacityError):
            kmem.write(-1, 0)

    def test_invalid_geometry(self):
        with pytest.raises(CapacityError):
            RegisterFile(depth=0)
        with pytest.raises(CapacityError):
            RegisterFile(depth=8, word_bytes=0)

    def test_reset_clears_data_and_counters(self):
        kmem = RegisterFile(depth=4)
        kmem.write(1, 5)
        kmem.reset()
        assert kmem.peek(1) == 0
        assert kmem.counters.total_accesses == 0


class TestSram:
    def test_paper_imemory_depth(self):
        imem = Sram(32 * 1024, word_bytes=2, name="iMemory")
        assert imem.depth == 16 * 1024

    def test_stream_accounting(self):
        sram = Sram(1024, word_bytes=2)
        sram.record_stream_read(100)
        sram.record_stream_write(50)
        assert sram.counters.reads == 100
        assert sram.counters.bytes_read == 200
        assert sram.counters.writes == 50
        assert sram.counters.bytes_written == 100

    def test_stream_rejects_negative(self):
        sram = Sram(1024)
        with pytest.raises(ValueError):
            sram.record_stream_read(-1)

    def test_addressed_access_with_contents(self):
        sram = Sram(64, word_bytes=2, store_contents=True)
        sram.write(0, [11, 22, 33])
        assert sram.read(0, 3) == [11, 22, 33]

    def test_addressed_access_without_contents_returns_zeros(self):
        sram = Sram(64, word_bytes=2)
        sram.write(0, [11, 22])
        assert sram.read(0, 2) == [0, 0]

    def test_out_of_range_access(self):
        sram = Sram(8, word_bytes=2)
        with pytest.raises(CapacityError):
            sram.read(3, 2)

    def test_fits_and_utilization(self):
        sram = Sram(25 * 1024)
        assert sram.fits(20 * 1024)
        assert not sram.fits(26 * 1024)
        assert sram.utilization_of(12_800) == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(CapacityError):
            Sram(0)

    def test_reset(self):
        sram = Sram(64, store_contents=True)
        sram.write(0, [5])
        sram.reset()
        assert sram.counters.total_accesses == 0
        assert sram.read(0, 1) == [0]
