"""Tests for the batch scheduler and the kernel-loading planner."""

from __future__ import annotations

import pytest

from repro.cnn.layer import ConvLayer
from repro.cnn.zoo import alexnet, lenet5
from repro.core.config import ChainConfig
from repro.core.kernel_loader import KernelLoader
from repro.core.scheduler import BatchScheduler
from repro.errors import CapacityError, ConfigurationError


@pytest.fixture(scope="module")
def scheduler():
    return BatchScheduler(ChainConfig())


@pytest.fixture(scope="module")
def loader():
    return KernelLoader(ChainConfig())


class TestBatchScheduler:
    def test_segments_alternate_load_and_convolution(self, scheduler, alexnet_network):
        schedule = scheduler.schedule(alexnet_network, batch=4)
        kinds = [segment.kind for segment in schedule.segments]
        assert kinds == ["kernel_load", "convolution"] * 5

    def test_segments_are_contiguous_and_ordered(self, scheduler, alexnet_network):
        schedule = scheduler.schedule(alexnet_network, batch=4)
        cursor = 0.0
        for segment in schedule.segments:
            assert segment.start_cycle == pytest.approx(cursor)
            assert segment.end_cycle >= segment.start_cycle
            cursor = segment.end_cycle
        assert schedule.total_cycles == pytest.approx(cursor)

    def test_schedule_matches_performance_model(self, scheduler, alexnet_network):
        schedule = scheduler.schedule(alexnet_network, batch=128)
        perf = scheduler.performance.network_performance(alexnet_network, batch=128)
        assert schedule.total_time_s == pytest.approx(perf.total_time_per_batch_s)
        assert schedule.frames_per_second == pytest.approx(perf.frames_per_second)

    def test_kernel_load_fraction_shrinks_with_batch(self, scheduler, alexnet_network):
        small = scheduler.schedule(alexnet_network, batch=1)
        large = scheduler.schedule(alexnet_network, batch=128)
        assert large.kernel_load_fraction < small.kernel_load_fraction
        assert large.kernel_load_fraction < 0.02

    def test_first_image_latency_exceeds_average_latency(self, scheduler, alexnet_network):
        schedule = scheduler.schedule(alexnet_network, batch=128)
        average_latency = 1.0 / schedule.frames_per_second
        # batch-blocked scheduling trades first-image latency for throughput
        assert schedule.first_image_latency_s() > 10 * average_latency

    def test_single_image_latency_close_to_makespan(self, scheduler, alexnet_network):
        schedule = scheduler.schedule(alexnet_network, batch=1)
        assert schedule.first_image_latency_s() == pytest.approx(schedule.total_time_s)

    def test_per_layer_breakdown(self, scheduler, alexnet_network):
        schedule = scheduler.schedule(alexnet_network, batch=128)
        breakdown = schedule.per_layer_breakdown_ms()
        assert set(breakdown) == {"conv1", "conv2", "conv3", "conv4", "conv5"}
        assert breakdown["conv1"]["convolution_ms"] == pytest.approx(159.3, rel=0.01)
        assert breakdown["conv3"]["kernel_load_ms"] == pytest.approx(1.26, rel=0.05)

    def test_batch_sensitivity_sweep(self, scheduler, alexnet_network):
        table = scheduler.batch_sensitivity(alexnet_network, batches=(1, 4, 128))
        assert table[128]["fps"] > table[4]["fps"] > table[1]["fps"]
        assert table[1]["kernel_load_fraction"] > table[128]["kernel_load_fraction"]

    def test_invalid_batch(self, scheduler, alexnet_network):
        with pytest.raises(ConfigurationError):
            scheduler.schedule(alexnet_network, batch=0)

    def test_lenet_schedules_too(self, scheduler):
        schedule = scheduler.schedule(lenet5(), batch=16)
        assert len(schedule.segments) == 4
        assert schedule.frames_per_second > 1000


class TestKernelLoader:
    def test_load_cycles_equal_weight_count(self, loader, alexnet_network):
        for layer in alexnet_network.conv_layers:
            plan = loader.plan_layer(layer)
            assert plan.load_cycles == layer.weight_count
            assert plan.kmemory_write_words == layer.weight_count

    def test_alexnet_refills(self, loader, alexnet_network):
        refills = loader.validate_against_capacity(alexnet_network)
        assert refills == {"conv1": 1, "conv2": 3, "conv3": 6, "conv4": 5, "conv5": 3}

    def test_strict_validation_raises_for_alexnet(self, loader, alexnet_network):
        with pytest.raises(CapacityError):
            loader.validate_against_capacity(alexnet_network, strict=True)

    def test_small_layer_fits(self, loader):
        layer = ConvLayer("small", 8, 8, 16, 16, kernel_size=3, padding=1)
        plan = loader.plan_layer(layer)
        assert plan.fits_in_kmemory
        assert plan.kmemory_occupancy < 1.0

    def test_placement_round_robin_over_primitives(self, loader):
        # 16 x 8 = 128 channel pairs over 64 primitives -> two full passes
        layer = ConvLayer("p", 16, 8, 10, 10, kernel_size=3, padding=1)
        plan = loader.plan_layer(layer)
        first_pass = [p for p in plan.placements if p.pass_index == 0]
        assert len(first_pass) == 64  # one pair per primitive before wrapping
        assert {p.primitive_index for p in first_pass} == set(range(64))

    def test_placements_for_primitive(self, loader):
        layer = ConvLayer("p", 4, 4, 10, 10, kernel_size=3, padding=1)
        plan = loader.plan_layer(layer)
        zero = plan.placements_for_primitive(0)
        assert all(p.primitive_index == 0 for p in zero)
        assert [p.pass_index for p in zero] == sorted(p.pass_index for p in zero)

    def test_kmemory_slots_stay_in_range(self, loader, alexnet_network):
        plan = loader.plan_layer(alexnet_network.conv_layer("conv3"), max_placements=5000)
        assert all(0 <= p.kmemory_slot < 256 for p in plan.placements)

    def test_max_placements_caps_list_not_counts(self, loader, alexnet_network):
        conv3 = alexnet_network.conv_layer("conv3")
        plan = loader.plan_layer(conv3, max_placements=100)
        assert len(plan.placements) == 100
        assert plan.weights_per_pe == 1536

    def test_network_requirement_is_max_over_layers(self, loader, alexnet_network):
        assert loader.network_kmemory_requirement(alexnet_network) == 1536

    def test_grouped_layer_placement_channels(self, loader):
        layer = ConvLayer("g", 4, 4, 10, 10, kernel_size=3, padding=1, groups=2)
        plan = loader.plan_layer(layer)
        # group 0 output channels only ever pair with group 0 input channels
        for placement in plan.placements:
            group_of_m = placement.ofmap_channel // 2
            group_of_c = placement.ifmap_channel // 2
            assert group_of_m == group_of_c
