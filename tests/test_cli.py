"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.pes == 576
        assert args.frequency_mhz == 700.0

    def test_run_arguments(self):
        args = build_parser().parse_args(["run", "alexnet", "--batch", "8", "--traffic"])
        assert args.network == "alexnet"
        assert args.batch == 8
        assert args.traffic

    def test_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "resnet50"])

    def test_sweep_axes(self):
        args = build_parser().parse_args(["sweep", "frequency"])
        assert args.axis == "frequency"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "voltage"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "806.4" in out and "K=11" in out

    def test_info_with_custom_chain(self, capsys):
        assert main(["--pes", "288", "--frequency-mhz", "350", "info"]) == 0
        out = capsys.readouterr().out
        assert "288 PEs" in out

    def test_run_lenet(self, capsys):
        assert main(["run", "lenet5", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "LeNet-5" in out and "fps" in out

    def test_run_with_traffic(self, capsys):
        assert main(["run", "cifar10", "--batch", "2", "--traffic"]) == 0
        out = capsys.readouterr().out
        assert "Memory traffic" in out

    def test_sweep_batch(self, capsys):
        assert main(["sweep", "batch", "--network", "lenet5"]) == 0
        assert "fps vs batch size" in capsys.readouterr().out

    def test_sweep_pes(self, capsys):
        assert main(["sweep", "pes", "--network", "lenet5", "--batch", "4"]) == 0
        assert "pes sweep" in capsys.readouterr().out

    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        assert "PASSED" in capsys.readouterr().out

    def test_verify_functional_tiny_cross_checks_backends(self, capsys):
        assert main(["verify", "--sim", "functional"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out and "[both]" in out

    def test_verify_functional_network(self, capsys):
        assert main(["verify", "--sim", "functional", "--network", "lenet5"]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out and "[vectorized]" in out and "pool1" in out

    def test_verify_cycle_rejects_network_flag(self, capsys):
        assert main(["verify", "--network", "lenet5"]) == 2
        assert "--sim functional" in capsys.readouterr().err


class TestEngineCommands:
    def test_engines_lists_registry(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "analytical" in out and "cycle" in out and "baseline-eyeriss" in out

    def test_run_detailed_mode(self, capsys):
        assert main(["run", "lenet5", "--batch", "2", "--mode", "detailed"]) == 0
        assert "analytical-detailed" in capsys.readouterr().out

    def test_run_through_cycle_engine(self, capsys):
        assert main(["run", "lenet5", "--batch", "1", "--engine", "cycle"]) == 0
        assert "cycle" in capsys.readouterr().out

    def test_run_rejects_conflicting_mode_and_engine(self, capsys):
        assert main(["run", "lenet5", "--engine", "cycle", "--mode", "detailed"]) == 2
        assert "conflicts" in capsys.readouterr().err
        assert main(["run", "lenet5", "--engine", "analytical-detailed",
                     "--mode", "paper"]) == 2
        assert "conflicts" in capsys.readouterr().err
        assert main(["run", "lenet5", "--engine", "analytical-detailed",
                     "--mode", "detailed", "--batch", "1"]) == 0
        capsys.readouterr()

    def test_run_json_record(self, capsys):
        assert main(["run", "lenet5", "--batch", "2", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["engine"] == "analytical"
        assert record["metrics"]["fps"] > 0

    def test_sweep_parallel_json_matches_serial(self, capsys, tmp_path):
        # distinct cache dirs so the parallel invocation really evaluates
        # in workers instead of replaying the serial run's cache entries
        args = ["sweep", "pes", "--network", "lenet5", "--batch", "4", "--json"]
        assert main(args + ["--cache-dir", str(tmp_path / "serial")]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(args + ["--cache-dir", str(tmp_path / "par"), "--parallel"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial["points"] == parallel["points"]

    def test_sweep_batch_honors_global_config(self, capsys):
        assert main(["sweep", "batch", "--network", "lenet5", "--json"]) == 0
        default = json.loads(capsys.readouterr().out)["fps_by_batch"]
        assert main(["--pes", "288", "sweep", "batch", "--network", "lenet5",
                     "--json"]) == 0
        small = json.loads(capsys.readouterr().out)["fps_by_batch"]
        assert small["128"] < default["128"]

    def test_cache_env_var_enables_default_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["sweep", "pes", "--network", "lenet5", "--batch", "4",
                     "--json"]) == 0
        capsys.readouterr()
        assert len(list(tmp_path.glob("*.json"))) > 0
        # --no-cache must suppress it again
        for stale in tmp_path.glob("*.json"):
            stale.unlink()
        assert main(["sweep", "pes", "--network", "lenet5", "--batch", "4",
                     "--json", "--no-cache"]) == 0
        capsys.readouterr()
        assert len(list(tmp_path.glob("*.json"))) == 0

    def test_sweep_through_cycle_engine(self, capsys):
        assert main(["sweep", "batch", "--network", "lenet5", "--engine",
                     "cycle", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "cycle"
        assert len(payload["fps_by_batch"]) > 0

    def test_experiments_json_headline(self, capsys):
        assert main(["experiments", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-headline/1"
        assert payload["headline"]["peak_gops"] == pytest.approx(806.4)

    def test_verify_scalar_backend(self, capsys):
        assert main(["verify", "--backend", "scalar"]) == 0
        assert "PASSED" in capsys.readouterr().out


class TestGridCommands:
    def test_sweep_grid_pareto_alexnet(self, capsys):
        assert main(["sweep", "--grid", "pe=128:1152:32,freq=200:1000:50",
                     "--pareto"]) == 0
        out = capsys.readouterr().out
        assert "561 design points" in out
        assert "Pareto frontier" in out
        assert "analytical-batch" in out

    def test_sweep_grid_json_has_nonempty_pareto(self, capsys):
        assert main(["sweep", "--grid", "pe=128:1152:64,freq=200:1000:200",
                     "--pareto", "--network", "alexnet", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "analytical-batch"
        assert payload["n_points"] > 0
        assert len(payload["pareto"]["points"]) > 0

    def test_sweep_grid_top_k(self, capsys):
        assert main(["sweep", "--grid", "pe=128:576:64", "--top", "3",
                     "--network", "lenet5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["top"]["metric"] == "gops_per_watt"
        assert len(payload["top"]["points"]) == 3

    def test_sweep_rejects_axis_and_grid_together(self, capsys):
        assert main(["sweep", "pes", "--grid", "pe=128:256:64"]) == 2
        assert "not both" in capsys.readouterr().err
        assert main(["sweep"]) == 2
        assert "need a sweep axis" in capsys.readouterr().err

    def test_sweep_grid_rejects_parallel(self, capsys):
        assert main(["sweep", "--grid", "pe=128:256:64", "--parallel"]) == 2
        assert "axis sweeps only" in capsys.readouterr().err

    def test_sweep_grid_upgrades_detailed_engine(self, capsys):
        assert main(["sweep", "--grid", "pe=128:256:64", "--network", "lenet5",
                     "--engine", "analytical-detailed", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "analytical-batch-detailed"

    def test_top_ranks_lower_is_better_metrics_ascending(self, capsys):
        assert main(["sweep", "--grid", "pe=128:576:64", "--network", "lenet5",
                     "--top", "3", "--metric", "power_w", "--json"]) == 0
        points = json.loads(capsys.readouterr().out)["top"]["points"]
        powers = [p["Power (W)"] for p in points]
        assert powers == sorted(powers)  # best = lowest power first

    def test_pareto_respects_metric_direction_in_objectives(self, capsys):
        # fps is higher-is-better: with a single maximised objective the
        # frontier collapses to the fastest point(s), not the slowest
        assert main(["sweep", "--grid", "pe=128:576:64", "--network", "lenet5",
                     "--pareto", "--objectives", "fps", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        frontier_fps = {p["fps"] for p in payload["pareto"]["points"]}
        assert len(frontier_fps) == 1
        assert main(["sweep", "--grid", "pe=128:576:64", "--network", "lenet5",
                     "--top", "1", "--metric", "fps", "--json"]) == 0
        best = json.loads(capsys.readouterr().out)["top"]["points"][0]["fps"]
        assert frontier_fps == {best}

    def test_pareto_command_defaults(self, capsys):
        assert main(["pareto", "--network", "lenet5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["pareto"]["points"]) > 0

    def test_grid_sweep_uses_cache(self, capsys, tmp_path):
        args = ["sweep", "--grid", "pe=128:576:64", "--network", "lenet5",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0 hits" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "1 hits" in second


class TestNetworksCommand:
    def test_lists_the_zoo(self, capsys):
        assert main(["networks"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out and "vgg16" in out and "MACs/image" in out

    def test_json_statistics(self, capsys):
        assert main(["networks", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["alexnet"]["conv_layers"] == 5
        assert payload["alexnet"]["conv_macs_per_image"] == 665_784_864
        assert payload["vgg16"]["conv_layers"] == 13
        assert payload["lenet5"]["total_weights"] > payload["lenet5"]["conv_weights"]


class TestMapCommand:
    def test_map_lenet_exhaustive(self, capsys):
        assert main(["map", "--network", "lenet5", "--objective", "latency",
                     "--strategy", "exhaustive", "--batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "objective=latency" in out and "baseline" in out

    def test_map_json_with_verification(self, capsys):
        assert main(["map", "--network", "lenet5", "--objective", "throughput",
                     "--strategy", "exhaustive", "--batch", "4", "--verify",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["objective_value"] <= payload["baseline_objective_value"]
        assert payload["verification"]["passed"]
        assert len(payload["layers"]) == 2

    def test_map_anneal_is_seed_deterministic(self, capsys):
        args = ["map", "--network", "lenet5", "--objective", "energy",
                "--strategy", "anneal", "--batch", "4", "--seed", "3",
                "--iterations", "32", "--json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_map_rejects_inapplicable_strategy_knobs(self, capsys):
        assert main(["map", "--network", "lenet5", "--strategy", "exhaustive",
                     "--iterations", "500"]) == 2
        assert "--iterations" in capsys.readouterr().err
        assert main(["map", "--network", "lenet5", "--strategy", "greedy",
                     "--samples", "9"]) == 2
        assert "--samples" in capsys.readouterr().err

    def test_map_uses_the_search_cache(self, capsys, tmp_path):
        args = ["map", "--network", "lenet5", "--objective", "latency",
                "--strategy", "exhaustive", "--batch", "4",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "cached" in capsys.readouterr().out


class TestCacheCommands:
    def test_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(["sweep", "pes", "--network", "lenet5", "--batch", "4",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "entries    : 7" in out and cache_dir in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed 7 cached records" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "entries    : 0" in capsys.readouterr().out

    def test_cache_env_var_location(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "stats"]) == 0
        assert str(tmp_path) in capsys.readouterr().out

    def test_stats_on_empty_cache_dir_keeps_that_dir(self, capsys, tmp_path):
        # RunCache defines __len__, so an *empty* cache is falsy; the command
        # must not let truthiness chaining swap a --cache-dir selection for
        # the default root
        cache_dir = str(tmp_path / "empty-cache")
        assert main(["cache", "stats", "--cache-dir", cache_dir,
                     "--cache-max-mb", "16"]) == 0
        out = capsys.readouterr().out
        assert cache_dir in out
        assert "entries    : 0" in out
        assert "16.0 MiB" in out
