"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.pes == 576
        assert args.frequency_mhz == 700.0

    def test_run_arguments(self):
        args = build_parser().parse_args(["run", "alexnet", "--batch", "8", "--traffic"])
        assert args.network == "alexnet"
        assert args.batch == 8
        assert args.traffic

    def test_rejects_unknown_network(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "resnet50"])

    def test_sweep_axes(self):
        args = build_parser().parse_args(["sweep", "frequency"])
        assert args.axis == "frequency"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "voltage"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "806.4" in out and "K=11" in out

    def test_info_with_custom_chain(self, capsys):
        assert main(["--pes", "288", "--frequency-mhz", "350", "info"]) == 0
        out = capsys.readouterr().out
        assert "288 PEs" in out

    def test_run_lenet(self, capsys):
        assert main(["run", "lenet5", "--batch", "2"]) == 0
        out = capsys.readouterr().out
        assert "LeNet-5" in out and "fps" in out

    def test_run_with_traffic(self, capsys):
        assert main(["run", "cifar10", "--batch", "2", "--traffic"]) == 0
        out = capsys.readouterr().out
        assert "Memory traffic" in out

    def test_sweep_batch(self, capsys):
        assert main(["sweep", "batch", "--network", "lenet5"]) == 0
        assert "fps vs batch size" in capsys.readouterr().out

    def test_sweep_pes(self, capsys):
        assert main(["sweep", "pes", "--network", "lenet5", "--batch", "4"]) == 0
        assert "pes sweep" in capsys.readouterr().out

    def test_verify(self, capsys):
        assert main(["verify"]) == 0
        assert "PASSED" in capsys.readouterr().out
