"""Tests for the bandwidth-requirement analysis."""

from __future__ import annotations

import pytest

from repro.cnn.zoo import alexnet
from repro.core.config import ChainConfig
from repro.memory.bandwidth import BandwidthAnalyzer
from repro.memory.dram import DramSpec


@pytest.fixture(scope="module")
def analyzer():
    return BandwidthAnalyzer(ChainConfig())


@pytest.fixture(scope="module")
def network():
    return alexnet()


class TestInputBandwidthInvariance:
    def test_per_primitive_input_bandwidth_is_constant_in_k(self, analyzer):
        by_kernel = analyzer.input_bandwidth_by_kernel()
        assert set(by_kernel.values()) == {2.0}

    def test_single_channel_configuration_halves_it(self):
        single = BandwidthAnalyzer(ChainConfig().single_channel())
        assert set(single.input_bandwidth_by_kernel().values()) == {1.0}

    def test_chain_input_scales_with_active_primitives(self, analyzer, network):
        conv1 = analyzer.layer_bandwidth(network.conv_layer("conv1"))
        conv3 = analyzer.layer_bandwidth(network.conv_layer("conv3"))
        assert conv1.chain_input_words_per_cycle == 2 * 4
        assert conv3.chain_input_words_per_cycle == 2 * 64


class TestDramRequirements:
    def test_no_alexnet_layer_is_dram_bound(self, analyzer, network):
        for entry in analyzer.network_bandwidth(network, batch=4):
            assert not entry.dram_bound
            assert entry.dram_utilisation < 0.5

    def test_reduction_vs_memory_centric_is_large(self, analyzer, network):
        for entry in analyzer.network_bandwidth(network, batch=4):
            assert entry.bandwidth_reduction_vs_memory_centric > 100

    def test_weak_dram_interface_becomes_the_bottleneck(self, network):
        weak = BandwidthAnalyzer(ChainConfig(),
                                 dram_spec=DramSpec(peak_bandwidth_bytes_per_s=1e8,
                                                    efficiency=0.5))
        utilisations = [entry.dram_utilisation
                        for entry in weak.network_bandwidth(network, batch=4)]
        assert max(utilisations) > 1.0

    def test_memory_centric_need_tracks_mac_rate(self, analyzer, network):
        conv3 = analyzer.layer_bandwidth(network.conv_layer("conv3"))
        # 3 operands x 2 bytes per MAC at the sustained MAC rate
        assert conv3.memory_centric_bytes_per_second > 1e12


class TestSummaryTable:
    def test_rows_per_layer(self, analyzer, network):
        table = analyzer.summary_table(network, batch=4)
        assert set(table) == {"conv1", "conv2", "conv3", "conv4", "conv5"}
        for row in table.values():
            assert row["DRAM util. (%)"] < 100.0
            assert row["chain input (words/cycle)"] <= 2 * 64

    def test_gbytes_helper(self, analyzer, network):
        entry = analyzer.layer_bandwidth(network.conv_layer("conv3"))
        assert entry.chain_input_gbytes_per_second == pytest.approx(
            entry.chain_input_words_per_cycle * 2 / 1e9)
