"""Cross-module integration tests.

These tie the independent models together: the cycle-accurate simulator, the
functional simulator, the analytical performance model and the traffic model
must tell one consistent story about the same layer.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import ChainNN, ChainConfig, alexnet, tiny_test_network
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer
from repro.core.performance import PerformanceModel
from repro.sim.cycle import CycleAccurateChainSimulator
from repro.sim.functional import FunctionalChainSimulator


class TestPackageApi:
    def test_version(self):
        assert repro.__version__ == "1.6.0"

    def test_public_symbols_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_snippet(self):
        chip = ChainNN.paper_configuration()
        assert chip.peak_gops == pytest.approx(806.4)


class TestSimulatorAgreement:
    """Cycle-accurate, functional and reference results agree on the same layer."""

    @pytest.fixture(scope="class")
    def layer(self):
        return ConvLayer("agree", in_channels=2, out_channels=3, in_height=10, in_width=10,
                         kernel_size=3, padding=1)

    @pytest.fixture(scope="class")
    def tensors(self, layer):
        return WorkloadGenerator(seed=11).layer_pair(layer)

    def test_functional_equals_cycle_accurate_on_quantised_operands(self, layer, tensors):
        ifmaps, weights = tensors
        cycle_sim = CycleAccurateChainSimulator(ChainConfig())
        cycle_result = cycle_sim.run_layer(layer, ifmaps, weights)
        functional = FunctionalChainSimulator(ChainConfig())
        quant_ifmaps = cycle_result.ifmap_format.quantize(ifmaps)
        quant_weights = cycle_result.weight_format.quantize(weights)
        functional_result = functional.run_layer(layer, quant_ifmaps, quant_weights)
        np.testing.assert_allclose(cycle_result.ofmaps, functional_result.ofmaps,
                                   rtol=1e-9, atol=1e-9)

    def test_functional_and_analytical_window_counts_agree(self, layer, tensors):
        ifmaps, weights = tensors
        functional = FunctionalChainSimulator(ChainConfig())
        result = functional.run_layer(layer, ifmaps, weights)
        # one kept window per output pixel per channel pair
        assert result.stats.windows_kept == layer.out_height * layer.out_width \
            * layer.channel_pairs()

    def test_paper_mode_is_faster_than_detailed_mode(self, layer):
        paper = PerformanceModel(ChainConfig(), mode="paper")
        detailed = PerformanceModel(ChainConfig(), mode="detailed")
        assert paper.layer_performance(layer).conv_cycles_per_image < \
            detailed.layer_performance(layer).conv_cycles_per_image


class TestEndToEndAlexNet:
    @pytest.fixture(scope="class")
    def result(self):
        chip = ChainNN.paper_configuration(calibrate_power_to=alexnet())
        return chip.run_network(alexnet(), batch=128)

    def test_headline_numbers(self, result):
        assert result.frames_per_second == pytest.approx(326.2, rel=0.06)
        assert result.performance.peak_gops == pytest.approx(806.4)

    def test_energy_efficiency_above_1_tops_per_watt(self, result):
        # the paper's 1421 GOPS/W figure divides the peak throughput by the
        # measured power; batch-128 power sits slightly above the batch-4
        # calibration point but the TOPS/W-class headline must survive
        peak_based_efficiency = result.performance.peak_gops / result.power.total_w
        assert peak_based_efficiency > 1000.0
        assert 0.4 < result.power.total_w < 0.9

    def test_per_layer_results_consistent_with_network_totals(self, result):
        total_cycles = sum(l.performance.conv_cycles_per_batch for l in result.layers)
        network_time = result.performance.conv_time_per_batch_s
        assert total_cycles / 700e6 == pytest.approx(network_time, rel=1e-9)

    def test_traffic_and_power_present(self, result):
        assert result.traffic.totals()["oMemory"] > 0
        assert 0.3 < result.power.total_w < 1.0


class TestTinyNetworkFullStack:
    def test_every_model_runs_on_the_tiny_network(self):
        network = tiny_test_network()
        chip = ChainNN()
        generator = WorkloadGenerator(seed=3)
        cycle_sim = CycleAccurateChainSimulator(chip.config)
        for layer in network.conv_layers:
            analytical = chip.run_layer(layer, batch=2)
            assert analytical.performance.conv_cycles_per_image > 0
            ifmaps, weights = generator.layer_pair(layer)
            sim = cycle_sim.run_layer(layer, ifmaps, weights)
            assert sim.reference_max_abs_error == pytest.approx(0.0, abs=1e-9)
