"""Fault-tolerance suite: deterministic fault injection, supervised
recovery, chaos equivalence (sweep/map/verify bit-identical to serial under
a seeded crash plan) and the 8-process concurrent cache stress test.

Part of the CI equivalence gate; the chaos CI leg additionally runs the
whole tier-1 suite with ``$REPRO_FAULT_SPEC`` exported, which these tests
must (and do) survive."""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.cnn.zoo import tiny_test_network
from repro.core.config import ChainConfig
from repro.engine import RunCache, RunRecord
from repro.engine.executor import SweepExecutor
from repro.mapping import ScheduleOptimizer
from repro.runtime import (
    FaultPlan,
    FaultRule,
    FaultSpecError,
    RetryPolicy,
    SupervisedRuntime,
    TaskFailure,
    WorkerError,
)
from repro.runtime import pool as pool_module
from repro.runtime.faults import FAULT_SPEC_ENV, resolve_fault_plan
from repro.runtime.supervisor import DEADLINE_ENV, RETRIES_ENV
from repro.sim.network import FunctionalNetworkRunner

#: the ISSUE's acceptance plan: a seeded 20% crash probability, capped to
#: first attempts so the retry budget provably bounds recovery
CHAOS_SPEC = "crash:p=0.2,seed=7,attempts=1"


# --------------------------------------------------------------------- #
# fault spec parsing and determinism (no pools involved)
# --------------------------------------------------------------------- #
class TestFaultSpec:
    def test_parse_and_describe_round_trip(self):
        plan = FaultPlan.parse("crash:p=0.2,seed=7;hang:p=0.05;delay:ms=20,p=0.3")
        assert [rule.kind for rule in plan.rules] == ["crash", "hang", "delay"]
        assert plan.rules[0].probability == 0.2 and plan.rules[0].seed == 7
        assert plan.rules[2].delay_ms == 20.0
        assert FaultPlan.parse(plan.describe()) == plan

    def test_parse_rejects_garbage(self):
        for spec in ("meteor:p=1", "crash:p=1.5", "crash:p=x",
                     "crash:frequency=2", "crash:p", "delay:ms=-1",
                     "crash:attempts=0"):
            with pytest.raises(FaultSpecError):
                FaultPlan.parse(spec)

    def test_decisions_are_deterministic(self):
        rule = FaultRule(kind="crash", probability=0.2, seed=7)
        decisions = [rule.triggers(task_id, 0) for task_id in range(512)]
        # same rule, fresh instance, same machine-independent decisions
        again = FaultRule(kind="crash", probability=0.2, seed=7)
        assert decisions == [again.triggers(task_id, 0) for task_id in range(512)]
        rate = sum(decisions) / len(decisions)
        assert 0.1 < rate < 0.3  # the hash draw tracks the probability
        reseeded = FaultRule(kind="crash", probability=0.2, seed=8)
        assert decisions != [reseeded.triggers(t, 0) for t in range(512)]

    def test_probability_extremes(self):
        always = FaultRule(kind="crash", probability=1.0)
        never = FaultRule(kind="crash", probability=0.0)
        assert all(always.triggers(t, a) for t in range(8) for a in range(3))
        assert not any(never.triggers(t, a) for t in range(8) for a in range(3))

    def test_attempts_cap_gates_retries(self):
        rule = FaultRule(kind="crash", probability=1.0, max_attempts=1)
        assert rule.triggers(5, 0) and not rule.triggers(5, 1)

    def test_first_triggering_rule_wins(self):
        plan = FaultPlan.parse("delay:p=1,ms=1;crash:p=1")
        assert plan.decide(0, 0).kind == "delay"

    def test_empty_plan_and_env_resolution(self, monkeypatch):
        assert FaultPlan.none().empty
        assert FaultPlan.none().inject(0, 0) is None
        monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
        assert resolve_fault_plan(None).empty
        monkeypatch.setenv(FAULT_SPEC_ENV, "crash:p=0.2,seed=7")
        assert resolve_fault_plan(None) == FaultPlan.parse("crash:p=0.2,seed=7")
        # an explicit plan (or spec string) outranks the environment
        assert resolve_fault_plan(FaultPlan.none()).empty
        assert resolve_fault_plan("hang:p=1").rules[0].kind == "hang"

    def test_delay_injection_returns_kind_and_sleeps(self):
        plan = FaultPlan.parse("delay:p=1,ms=5")
        started = time.perf_counter()
        assert plan.inject(3, 0) == "delay"
        assert time.perf_counter() - started >= 0.004

    def test_retry_policy_from_env(self, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV, "2.5")
        monkeypatch.setenv(RETRIES_ENV, "5")
        policy = RetryPolicy.from_env()
        assert policy.deadline == 2.5 and policy.max_attempts == 5
        assert RetryPolicy.from_env(max_attempts=2).max_attempts == 2
        with pytest.raises(ValueError):
            RetryPolicy(deadline=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(quarantine="explode")


# --------------------------------------------------------------------- #
# supervised recovery (real pools; forced on single-core CI hosts)
# --------------------------------------------------------------------- #
@pytest.fixture(autouse=True)
def force_parallel(monkeypatch):
    monkeypatch.setenv(pool_module.FORCE_PARALLEL_ENV, "1")


def _supervised(workers=2, fault_plan=None, **policy):
    pool = SupervisedRuntime.create(workers, fault_plan=fault_plan)
    if pool is None:
        pytest.skip("platform cannot provide process pools")
    pool.policy = RetryPolicy(**policy)
    return pool


class TestSupervisedRecovery:
    def test_clean_path_has_no_recovery_activity(self):
        pool = _supervised(fault_plan=FaultPlan.none())
        try:
            payloads = [{"action": "echo", "value": i} for i in range(6)]
            results = pool.map("runtime.selftest", payloads)
            assert [r["value"] for r in results] == list(range(6))
            stats = pool.stats.as_dict()
            assert stats["worker_deaths"] == 0 and stats["retries"] == 0
        finally:
            pool.close()

    def test_recovers_from_first_attempt_crashes(self):
        """Every task crashes its worker once; retries must complete them all."""
        pool = _supervised(fault_plan="crash:p=1,attempts=1")
        try:
            payloads = [{"action": "echo", "value": i} for i in range(6)]
            results = pool.map("runtime.selftest", payloads)
            assert [r["value"] for r in results] == list(range(6))
            assert pool.stats.worker_deaths > 0
            assert pool.stats.respawns > 0
            # bounded: deaths can never exceed tasks x attempt budget
            assert pool.stats.worker_deaths <= 6 * pool.policy.max_attempts
        finally:
            pool.close()

    def test_poison_task_quarantines_to_serial_parent(self):
        """A task that always crashes ends up re-executed in the parent."""
        pool = _supervised(fault_plan="crash:p=1", max_attempts=2,
                           backoff=0.01, quarantine="serial")
        try:
            results = pool.map("runtime.selftest",
                               [{"action": "echo", "value": 42}])
            assert results[0]["value"] == 42
            assert results[0]["worker_id"] == -1  # the parent's context
            assert pool.stats.quarantined == 1
            assert pool.stats.serial_tasks >= 1
        finally:
            pool.close()

    def test_poison_task_surfaces_as_task_failure(self):
        pool = _supervised(fault_plan="crash:p=1", max_attempts=2,
                           backoff=0.01, quarantine="failure")
        try:
            results = pool.map("runtime.selftest", [{"action": "echo"}])
            failure = results[0]
            assert isinstance(failure, TaskFailure)
            assert failure.task == "runtime.selftest"
            assert failure.attempts == pool.policy.max_attempts
            assert "quarantined" in failure.reason
            assert pool.stats.task_failures == 1
        finally:
            pool.close()

    def test_deadline_recovers_hung_workers(self):
        pool = _supervised(fault_plan="hang:p=1,attempts=1", deadline=0.5,
                           backoff=0.01)
        try:
            results = pool.map("runtime.selftest",
                               [{"action": "echo", "value": i} for i in range(2)])
            assert [r["value"] for r in results] == [0, 1]
            assert pool.stats.deadline_kills >= 1
        finally:
            pool.close()

    def test_broadcast_context_replayed_into_respawned_workers(self):
        """Respawned workers regain broadcast state before taking tasks."""
        import signal

        pool = _supervised(fault_plan=FaultPlan.none(), backoff=0.01)
        try:
            first = pool.broadcast("runtime.selftest", {"action": "count"})
            assert [r["count"] for r in first] == [1, 1]
            # simulate an OOM kill between calls; the supervisor must
            # respawn the slot and replay the count broadcast into it
            os.kill(pool._processes[0].pid, signal.SIGKILL)
            pool._processes[0].join(5)
            results = pool.map("runtime.selftest", [{"action": "echo"}] * 4)
            assert len(results) == 4
            assert pool.stats.respawns > 0
            second = pool.broadcast("runtime.selftest", {"action": "count"})
            assert [r["count"] for r in second] == [2, 2]
        finally:
            pool.close()

    def test_task_exceptions_still_propagate(self):
        """Supervision recovers dead workers, not buggy tasks."""
        pool = _supervised(fault_plan=FaultPlan.none())
        try:
            with pytest.raises(WorkerError, match="injected boom"):
                pool.map("runtime.selftest",
                         [{"action": "raise", "value": "injected boom"}])
        finally:
            pool.close()

    def test_exhausted_respawn_budget_drains_serially(self):
        """With no respawns allowed, chaos degrades clean to the parent."""
        pool = _supervised(fault_plan="crash:p=1", max_respawns=0,
                           max_attempts=2, backoff=0.01)
        try:
            payloads = [{"action": "echo", "value": i} for i in range(4)]
            results = pool.map("runtime.selftest", payloads)
            assert [r["value"] for r in results] == list(range(4))
            assert pool.stats.serial_tasks >= 1
        finally:
            pool.close()


# --------------------------------------------------------------------- #
# chaos equivalence: the acceptance criterion — sweep / map / verify with
# workers complete bit-identical to serial under the seeded crash plan
# --------------------------------------------------------------------- #
@pytest.fixture
def chaos(monkeypatch):
    """Serial baselines run fault-free; the parallel runs inherit chaos."""
    monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
    yield
    # (monkeypatch restores the previous spec automatically)


def _set_chaos(monkeypatch):
    monkeypatch.setenv(FAULT_SPEC_ENV, CHAOS_SPEC)


class TestChaosEquivalence:
    def test_sweep_is_bit_identical_under_crashes(self, chaos, monkeypatch):
        network = tiny_test_network()
        configs = [ChainConfig(num_pes=pes) for pes in range(96, 577, 48)]
        with SweepExecutor(engine="analytical", network=network,
                           max_workers=2) as executor:
            serial = executor.run(configs, parallel=False)
        _set_chaos(monkeypatch)
        with SweepExecutor(engine="analytical", network=network,
                           max_workers=2) as executor:
            chaotic = executor.run(configs, parallel=True)
            pool = executor._pool.runtime
            stats = pool.stats.as_dict() if pool is not None else {}
        assert [r.metrics for r in chaotic] == [r.metrics for r in serial]
        if stats:
            assert stats["worker_deaths"] <= len(configs) + len(configs)

    def test_mapping_search_is_bit_identical_under_crashes(self, chaos,
                                                           monkeypatch):
        network = tiny_test_network()
        serial = ScheduleOptimizer(objective="latency", strategy="exhaustive",
                                   batch=4).optimize(network)
        _set_chaos(monkeypatch)
        chaotic = ScheduleOptimizer(objective="latency", strategy="exhaustive",
                                    batch=4, workers=2).optimize(network)
        assert chaotic.to_json_dict() == serial.to_json_dict()

    def test_functional_verify_is_bit_identical_under_crashes(self, chaos,
                                                              monkeypatch):
        network = tiny_test_network()
        serial = FunctionalNetworkRunner(backend="vectorized", seed=13).run(network)
        _set_chaos(monkeypatch)
        with FunctionalNetworkRunner(backend="vectorized", seed=13,
                                     workers=2) as runner:
            chaotic = runner.run(network)
        assert chaotic.stats == serial.stats
        assert chaotic.max_abs_error == serial.max_abs_error
        for left, right in zip(serial.stages, chaotic.stages):
            assert (left.name, left.windows_kept, left.chain_cycles) == \
                (right.name, right.windows_kept, right.chain_cycles)
            assert left.max_abs_error == right.max_abs_error
        assert chaotic.passed


# --------------------------------------------------------------------- #
# 8-process concurrent cache stress
# --------------------------------------------------------------------- #
STRESS_PROCESSES = 8
STRESS_SHARED_KEYS = 24
STRESS_PRIVATE_KEYS = 8


def _stress_record(worker_id: int, i: int) -> RunRecord:
    return RunRecord(engine="stress", network="tiny", batch=1,
                     config_summary=f"worker {worker_id}",
                     metrics={"fps": float(i), "worker": float(worker_id)},
                     extra={"payload": "x" * 64})


def _cache_stress_worker(root: str, worker_id: int, max_mb, barrier) -> None:
    """Hammer one shared cache root: contended writes, reads, re-writes."""
    cache = RunCache(root, max_mb=max_mb)
    barrier.wait(timeout=60)  # maximise overlap across the 8 processes
    for i in range(STRESS_SHARED_KEYS):
        cache.put(f"shared{i:04d}", _stress_record(worker_id, i))
        cache.get(f"shared{(i * 7) % STRESS_SHARED_KEYS:04d}")
    for i in range(STRESS_PRIVATE_KEYS):
        cache.put(f"private{worker_id}_{i:04d}", _stress_record(worker_id, i))
    # a record must never come back corrupt (a quarantine here would mean a
    # torn write escaped into a reader)
    assert cache.quarantined == 0, "reader saw a torn record"


def _run_stress(tmp_path, max_mb):
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    barrier = ctx.Barrier(STRESS_PROCESSES)
    processes = [
        ctx.Process(target=_cache_stress_worker,
                    args=(str(tmp_path), worker_id, max_mb, barrier))
        for worker_id in range(STRESS_PROCESSES)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(120)
    assert all(p.exitcode == 0 for p in processes), \
        [p.exitcode for p in processes]


class TestConcurrentCacheStress:
    def test_eight_processes_share_one_root_without_loss(self, tmp_path):
        """Unbounded: every record lands whole; nothing lost, torn or orphaned."""
        _run_stress(tmp_path, max_mb=None)
        cache = RunCache(tmp_path)
        expected = ({f"shared{i:04d}" for i in range(STRESS_SHARED_KEYS)}
                    | {f"private{w}_{i:04d}"
                       for w in range(STRESS_PROCESSES)
                       for i in range(STRESS_PRIVATE_KEYS)})
        on_disk = {path.stem for path in tmp_path.glob("*.json")}
        assert on_disk == expected  # zero lost records
        for key in expected:  # zero corrupt/partially-written records
            record = cache.get(key)
            assert record is not None, f"{key} failed to decode"
            assert record.engine == "stress"
        assert cache.quarantined == 0
        assert cache.stats()["corrupt"] == 0
        stats = cache.stats()
        assert stats["entries"] == len(expected)

    def test_eight_processes_with_concurrent_lru_eviction(self, tmp_path):
        """Bounded: all 8 processes evict concurrently; survivors stay whole."""
        record_bytes = len(json.dumps(
            _stress_record(0, 0).to_json_dict(), sort_keys=True, indent=1))
        # room for roughly a third of the records: eviction runs constantly
        bound_mb = (record_bytes * STRESS_SHARED_KEYS * 3) / (1024.0 * 1024.0)
        _run_stress(tmp_path, max_mb=bound_mb)
        cache = RunCache(tmp_path)
        survivors = sorted(path.stem for path in tmp_path.glob("*.json"))
        assert survivors, "eviction must not empty the cache"
        for key in survivors:  # every survivor parses whole
            assert cache.get(key) is not None, f"{key} failed to decode"
        assert cache.quarantined == 0
        assert cache.stats()["corrupt"] == 0
        assert cache.stats()["bytes"] <= int(bound_mb * 1024 * 1024) * 2

    def test_orphaned_tmp_from_killed_writer_is_reported_and_reaped(
            self, tmp_path):
        """A writer dying mid-spool leaves debris that stats/clear handle."""
        cache = RunCache(tmp_path)
        cache.put("live0", _stress_record(0, 0))
        (tmp_path / "crashed-writer.tmp").write_text("{ torn")
        assert cache.stats()["tmp_orphans"] == 1
        assert cache.clear() == 1  # one live record; debris reaped silently
        assert list(tmp_path.glob("*.tmp")) == []


# --------------------------------------------------------------------- #
# atexit hygiene: leaked runtimes are tracked for cleanup
# --------------------------------------------------------------------- #
class TestExitHygiene:
    def test_runtimes_register_for_atexit_cleanup(self):
        pool = _supervised(fault_plan=FaultPlan.none())
        try:
            assert pool in pool_module._LIVE_RUNTIMES
            assert pool._owner_pid == os.getpid()
        finally:
            pool.close()

    def test_close_leaked_runtimes_reaps_open_pools(self):
        pool = _supervised(fault_plan=FaultPlan.none())
        pool_module._close_leaked_runtimes()
        assert all(p is None or not p.is_alive() for p in pool._processes)
