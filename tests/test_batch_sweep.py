"""Columnar batch evaluator: equivalence, grids, Pareto reduction, executor.

The headline property: the struct-of-arrays path of
:class:`repro.analysis.batch.BatchDesignEvaluator` is numerically identical
to the scalar per-point path (``DesignSpaceExplorer`` over the analytical
engine) on randomized design grids.  CI refuses skips in this module — the
equivalence guarantee is what licenses dispatching sweeps to the fast path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.batch import (
    DEFAULT_OBJECTIVES,
    BatchDesignEvaluator,
    BatchSweepResult,
    DesignGrid,
    worst_case_utilization_array,
)
from repro.analysis.pareto import (
    objective_matrix,
    pareto_mask,
    top_k_indices,
)
from repro.analysis.sweep import DesignSpaceExplorer
from repro.cnn.zoo import alexnet, lenet5
from repro.core.config import ChainConfig
from repro.engine import RunCache, SweepExecutor, create_engine
from repro.engine.adapters import worst_case_utilization
from repro.errors import ConfigurationError

RESULT_FIELDS = (
    "peak_gops",
    "fps",
    "total_time_per_batch_s",
    "achieved_gops",
    "power_w",
    "gops_per_watt",
    "worst_case_utilization",
    "total_gates",
)


def random_grid(rng: np.random.Generator, n: int, min_pes: int = 121) -> DesignGrid:
    """An arbitrary (non-product) set of design points."""
    return DesignGrid(
        num_pes=rng.integers(min_pes, 1300, size=n),
        frequency_hz=rng.integers(100, 1300, size=n).astype(np.float64) * 1e6,
        batch=rng.integers(1, 256, size=n),
        word_bits=rng.choice([8, 16, 32], size=n).astype(np.int64),
    )


def assert_matches_scalar_engine(result: BatchSweepResult, network, engine) -> None:
    """Every column equals the per-point scalar evaluation (<= 1e-9 rel)."""
    grid = result.grid
    for index in range(grid.n_points):
        record = engine.evaluate(network, grid.config_at(index),
                                 batch=int(grid.batch[index]))
        for field in RESULT_FIELDS:
            scalar = record.metric(field)
            assert float(getattr(result, field)[index]) == pytest.approx(
                scalar, rel=1e-9
            ), f"{field} diverges at point {index}: {grid.config_at(index).describe()}"


class TestGridParsing:
    def test_product_and_inclusive_ranges(self):
        grid = DesignGrid.parse("pe=128:1152:32,freq=200:1000:50", base=ChainConfig())
        assert grid.n_points == 33 * 17
        assert grid.num_pes.min() == 128 and grid.num_pes.max() == 1152
        assert grid.frequency_hz.min() == 200e6 and grid.frequency_hz.max() == 1000e6

    def test_defaults_come_from_base_config(self):
        base = ChainConfig().with_pes(288)
        grid = DesignGrid.parse("freq=500", base=base, default_batch=32)
        assert grid.n_points == 1
        assert int(grid.num_pes[0]) == 288
        assert int(grid.batch[0]) == 32
        assert int(grid.word_bits[0]) == base.word_bits

    def test_scalar_and_two_part_ranges(self):
        grid = DesignGrid.parse("batch=2:5,pe=576", base=ChainConfig())
        assert sorted(grid.batch.tolist()) == [2, 3, 4, 5]

    def test_ranges_never_overshoot_the_stop(self):
        grid = DesignGrid.parse("pe=128:1150:32,freq=200:999:50", base=ChainConfig())
        assert grid.num_pes.max() == 1120  # not 1152 > 1150
        assert grid.frequency_hz.max() == 950e6  # not 1000 > 999

    @pytest.mark.parametrize("spec", [
        "", "volt=1:2", "pe=", "pe=1:2:0", "pe=10:5", "pe=1:2:3:4", "pe=abc",
        "pe=100.5",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            DesignGrid.parse(spec, base=ChainConfig())

    def test_invalid_point_values_rejected(self):
        with pytest.raises(ConfigurationError, match="word_bits"):
            DesignGrid.parse("bits=12", base=ChainConfig())
        with pytest.raises(ConfigurationError, match="batch"):
            DesignGrid(
                num_pes=np.array([576]), frequency_hz=np.array([7e8]),
                batch=np.array([0]), word_bits=np.array([16]),
            )

    def test_round_trips_through_json(self):
        rng = np.random.default_rng(7)
        grid = random_grid(rng, 17)
        clone = DesignGrid.from_json_dict(grid.to_json_dict())
        assert np.array_equal(clone.num_pes, grid.num_pes)
        assert np.array_equal(clone.frequency_hz, grid.frequency_hz)


class TestScalarEquivalence:
    """The acceptance property: columnar == scalar on randomized grids."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_grid_matches_scalar_engine_lenet(self, seed):
        rng = np.random.default_rng(2017 + seed)
        network = lenet5()
        grid = random_grid(rng, 24, min_pes=25)
        result = BatchDesignEvaluator(network, base=ChainConfig()).evaluate_grid(grid)
        assert_matches_scalar_engine(result, network, create_engine("analytical"))

    def test_randomized_grid_matches_scalar_engine_alexnet(self):
        rng = np.random.default_rng(42)
        network = alexnet()
        grid = random_grid(rng, 16, min_pes=121)
        result = BatchDesignEvaluator(network, base=ChainConfig()).evaluate_grid(grid)
        assert_matches_scalar_engine(result, network, create_engine("analytical"))

    def test_detailed_mode_matches_scalar_engine(self):
        rng = np.random.default_rng(3)
        network = lenet5()
        grid = random_grid(rng, 8, min_pes=25)
        result = BatchDesignEvaluator(network, base=ChainConfig(),
                                      mode="detailed").evaluate_grid(grid)
        assert_matches_scalar_engine(result, network,
                                     create_engine("analytical-detailed"))

    def test_matches_design_space_explorer_sweep_points(self):
        """Same numbers as the SweepPoint rows of the per-point explorer."""
        network = alexnet()
        explorer = DesignSpaceExplorer(network, batch=16, engine="analytical")
        pe_counts = (144, 288, 576, 1152)
        points = explorer.sweep_chain_length(pe_counts)
        grid = DesignGrid.from_axes(pe_counts=pe_counts, batches=(16,))
        result = BatchDesignEvaluator(network, base=ChainConfig()).evaluate_grid(grid)
        for index, point in enumerate(points):
            assert result.fps[index] == pytest.approx(point.fps, rel=1e-9)
            assert result.power_w[index] == pytest.approx(point.power_w, rel=1e-9)
            assert result.gops_per_watt[index] == pytest.approx(
                point.gops_per_watt, rel=1e-9)
            assert result.peak_gops[index] == pytest.approx(point.peak_gops, rel=1e-9)
            assert result.worst_case_utilization[index] == pytest.approx(
                point.worst_case_utilization, rel=1e-9)
            assert result.total_gates[index] == pytest.approx(
                point.total_gates, rel=1e-9)

    def test_dual_channel_strawman_supported(self):
        network = lenet5()
        base = ChainConfig().single_channel()
        grid = DesignGrid.from_axes(pe_counts=(144, 576), batches=(4,))
        result = BatchDesignEvaluator(network, base=base).evaluate_grid(grid)
        engine = create_engine("analytical", config=base)
        for index in range(grid.n_points):
            record = engine.evaluate(network, grid.config_at(index, base=base),
                                     batch=4)
            assert result.fps[index] == pytest.approx(record.metric("fps"), rel=1e-9)

    def test_grid_too_small_for_kernels_rejected(self):
        grid = DesignGrid.from_axes(pe_counts=(100,))  # AlexNet conv1 needs 121
        with pytest.raises(ConfigurationError, match="at least 121"):
            BatchDesignEvaluator(alexnet()).evaluate_grid(grid)

    def test_worst_case_utilization_array_matches_scalar(self):
        pes = np.arange(1, 1300, 7)
        vector = worst_case_utilization_array(pes)
        for index, num_pes in enumerate(pes):
            assert vector[index] == pytest.approx(
                worst_case_utilization(ChainConfig(num_pes=int(num_pes))), abs=0.0)


class TestPareto:
    @staticmethod
    def brute_force_mask(costs: np.ndarray) -> np.ndarray:
        n = costs.shape[0]
        mask = np.ones(n, dtype=bool)
        for i in range(n):
            for j in range(n):
                if (np.all(costs[j] <= costs[i]) and np.any(costs[j] < costs[i])):
                    mask[i] = False
                    break
        return mask

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mask_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        costs = rng.integers(0, 6, size=(60, 3)).astype(float)  # many ties
        assert np.array_equal(pareto_mask(costs), self.brute_force_mask(costs))

    def test_duplicates_of_efficient_points_all_survive(self):
        costs = np.array([[1.0, 2.0], [1.0, 2.0], [2.0, 1.0], [3.0, 3.0]])
        assert pareto_mask(costs).tolist() == [True, True, True, False]

    def test_single_objective_is_argmin(self):
        costs = np.array([[3.0], [1.0], [2.0], [1.0]])
        assert pareto_mask(costs).tolist() == [False, True, False, True]

    def test_non_finite_costs_rejected(self):
        with pytest.raises(ConfigurationError, match="finite"):
            pareto_mask(np.array([[1.0, np.nan]]))

    def test_top_k_stable_and_bounded(self):
        values = np.array([5.0, 7.0, 7.0, 1.0])
        assert top_k_indices(values, 2).tolist() == [1, 2]
        assert top_k_indices(values, 10, maximize=False).tolist() == [3, 0, 1, 2]

    def test_objective_matrix_negates_maximised_columns(self):
        columns = {"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])}
        matrix = objective_matrix(columns, ("a", "b"), maximize=("b",))
        assert matrix.tolist() == [[1.0, -3.0], [2.0, -4.0]]
        with pytest.raises(ConfigurationError, match="unknown objective"):
            objective_matrix(columns, ("missing",))

    def test_alexnet_grid_has_nonempty_frontier(self):
        result = BatchDesignEvaluator(alexnet()).evaluate_grid(
            DesignGrid.parse("pe=128:1152:64,freq=200:1000:100", base=ChainConfig()))
        frontier = result.pareto(DEFAULT_OBJECTIVES)
        assert 0 < frontier.n_points <= result.n_points
        # the frontier contains the cheapest-area and the fastest points
        assert frontier.total_gates.min() == result.total_gates.min()
        assert frontier.total_time_per_batch_s.min() == \
            result.total_time_per_batch_s.min()

    def test_result_top_k_and_rows(self):
        result = BatchDesignEvaluator(lenet5()).evaluate_grid(
            DesignGrid.from_axes(pe_counts=(144, 288, 576)))
        best = result.top_k("fps", 2)
        assert best.n_points == 2
        assert best.fps[0] >= best.fps[1]
        row = best.row(0)
        assert set(row) >= {"PEs", "Freq (MHz)", "fps", "Power (W)", "GOPS/W",
                            "Achieved GOPS", "Time/batch (ms)"}
        assert row["Time/batch (ms)"] == pytest.approx(
            float(best.total_time_per_batch_s[0]) * 1e3)
        with pytest.raises(ConfigurationError, match="unknown metric"):
            result.top_k("nope", 1)


class TestEngineIntegration:
    def test_analytical_batch_engine_registered(self):
        engine = create_engine("analytical-batch")
        assert engine.supports_batch
        assert engine.name == "analytical-batch"
        assert not create_engine("analytical").supports_batch
        detailed = create_engine("analytical-batch-detailed")
        assert detailed.supports_batch
        assert detailed.name == "analytical-batch-detailed"
        assert detailed.mode == "detailed"

    def test_point_evaluation_matches_analytical(self):
        network = lenet5()
        batch_record = create_engine("analytical-batch").evaluate(network, None, 4)
        scalar_record = create_engine("analytical").evaluate(network, None, 4)
        assert batch_record.engine == "analytical-batch"
        assert batch_record.metrics == scalar_record.metrics

    def test_fallback_evaluate_batch_matches_fast_path(self):
        network = lenet5()
        grid = DesignGrid.from_axes(pe_counts=(144, 576), batches=(2, 8))
        fallback = create_engine("analytical").evaluate_batch(network, grid)
        fast = create_engine("analytical-batch").evaluate_batch(network, grid)
        for field in RESULT_FIELDS:
            assert np.allclose(getattr(fallback, field), getattr(fast, field),
                               rtol=1e-9, atol=0.0)

    def test_run_grid_chunking_invariant(self):
        network = lenet5()
        executor = SweepExecutor(engine="analytical-batch", network=network)
        grid = DesignGrid.parse("pe=128:1152:64,freq=300:900:300", base=ChainConfig())
        whole = executor.run_grid(grid)
        chunked = executor.run_grid(grid, chunk_size=7)
        for field in RESULT_FIELDS:
            assert np.array_equal(getattr(whole, field), getattr(chunked, field))
        assert np.array_equal(whole.grid.num_pes, chunked.grid.num_pes)

    def test_run_grid_chunks_served_from_cache(self, tmp_path):
        network = lenet5()
        grid = DesignGrid.parse("pe=128:1152:32", base=ChainConfig())
        first_executor = SweepExecutor(engine="analytical-batch", network=network,
                                       cache=RunCache(tmp_path))
        first = first_executor.run_grid(grid, chunk_size=10)
        assert first_executor.cache.hits == 0
        assert first_executor.cache.misses == 4  # 33 points in chunks of 10
        second_executor = SweepExecutor(engine="analytical-batch", network=network,
                                        cache=RunCache(tmp_path))
        second = second_executor.run_grid(grid, chunk_size=10)
        assert second_executor.cache.hits == 4
        assert second_executor.cache.misses == 0
        for field in RESULT_FIELDS:
            assert np.array_equal(getattr(first, field), getattr(second, field))

    def test_run_grid_cache_distinguishes_grids(self, tmp_path):
        network = lenet5()
        executor = SweepExecutor(engine="analytical-batch", network=network,
                                 cache=RunCache(tmp_path))
        executor.run_grid(DesignGrid.from_axes(pe_counts=(144,)))
        executor.run_grid(DesignGrid.from_axes(pe_counts=(288,)))
        assert executor.cache.misses == 2 and executor.cache.hits == 0

    def test_explorer_sweep_grid_end_to_end(self):
        explorer = DesignSpaceExplorer(lenet5(), batch=8, engine="analytical-batch")
        result = explorer.sweep_grid("pe=128:576:64,freq=350:700:350")
        assert result.n_points == 8 * 2
        assert (result.grid.batch == 8).all()
        assert (result.fps > 0).all()

    def test_batch_result_json_round_trip(self):
        result = BatchDesignEvaluator(lenet5()).evaluate_grid(
            DesignGrid.from_axes(pe_counts=(144, 576)))
        clone = BatchSweepResult.from_json_dict(result.to_json_dict())
        for field in RESULT_FIELDS:
            assert np.array_equal(getattr(clone, field), getattr(result, field))
