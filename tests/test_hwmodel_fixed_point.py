"""Tests for the fixed-point number system (repro.hwmodel.fixed_point)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.hwmodel.fixed_point import (
    DEFAULT_FORMAT,
    FixedPointFormat,
    fixed_point_mac,
    quantize_array,
    quantize_value,
)


class TestFormatProperties:
    def test_default_is_16_bit_q8_8(self):
        assert DEFAULT_FORMAT.total_bits == 16
        assert DEFAULT_FORMAT.frac_bits == 8
        assert DEFAULT_FORMAT.int_bits == 7

    def test_scale(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.scale == pytest.approx(1 / 256)

    def test_raw_range_is_twos_complement(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.raw_min == -32768
        assert fmt.raw_max == 32767

    def test_value_range(self):
        fmt = FixedPointFormat(8, 4)
        assert fmt.min_value == pytest.approx(-8.0)
        assert fmt.max_value == pytest.approx(8.0 - 1 / 16)

    def test_rejects_illegal_formats(self):
        with pytest.raises(QuantizationError):
            FixedPointFormat(total_bits=1, frac_bits=0)
        with pytest.raises(QuantizationError):
            FixedPointFormat(total_bits=16, frac_bits=16)
        with pytest.raises(QuantizationError):
            FixedPointFormat(total_bits=16, frac_bits=-1)


class TestConversions:
    def test_round_trip_of_representable_value(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.to_real(fmt.to_raw(1.5)) == pytest.approx(1.5)

    def test_rounding_to_nearest(self):
        fmt = FixedPointFormat(16, 8)
        assert fmt.to_real(fmt.to_raw(0.001)) == pytest.approx(0.0, abs=fmt.scale)

    def test_saturation_on_overflow(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.to_raw(1000.0) == 127
        assert fmt.to_raw(-1000.0) == -128

    def test_saturate_and_wrap(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.saturate(300) == 127
        assert fmt.saturate(-300) == -128
        assert fmt.wrap(128) == -128
        assert fmt.wrap(-129) == 127

    def test_quantize_array_matches_scalar(self):
        fmt = FixedPointFormat(16, 8)
        values = np.array([0.1, -0.7, 3.14159])
        grid = fmt.quantize(values)
        for value, quantised in zip(values, grid):
            assert quantised == pytest.approx(quantize_value(float(value), fmt))

    def test_quantize_raw_clamps(self):
        fmt = FixedPointFormat(8, 0)
        raw = fmt.quantize_raw(np.array([500.0, -500.0]))
        assert raw.tolist() == [127, -128]

    def test_quantization_error_statistics(self):
        fmt = FixedPointFormat(16, 8)
        values = np.linspace(-1, 1, 1001)
        stats = fmt.quantization_error(values)
        assert stats["max_abs"] <= fmt.scale / 2 + 1e-12
        assert stats["rmse"] <= stats["max_abs"]
        assert stats["mean_abs"] <= stats["max_abs"]


class TestDerivedFormats:
    def test_product_format_width(self):
        fmt = FixedPointFormat(16, 8)
        product = fmt.product_format(fmt)
        assert product.total_bits == 32
        assert product.frac_bits == 16

    def test_accumulator_format_has_guard_bits(self):
        fmt = FixedPointFormat(16, 8)
        acc = fmt.accumulator_format(fmt, terms=121)
        assert acc.total_bits >= 32 + 7  # ceil(log2(121)) == 7
        assert acc.frac_bits == 16

    def test_accumulator_rejects_zero_terms(self):
        fmt = FixedPointFormat(16, 8)
        with pytest.raises(QuantizationError):
            fmt.accumulator_format(fmt, terms=0)


class TestMacHelper:
    def test_mac_accumulates(self):
        acc_fmt = FixedPointFormat(40, 16)
        result = fixed_point_mac(10, 3, 4, acc_fmt)
        assert result == 22

    def test_mac_saturates(self):
        acc_fmt = FixedPointFormat(8, 0)
        assert fixed_point_mac(120, 10, 10, acc_fmt) == 127

    def test_mac_wraps_when_requested(self):
        acc_fmt = FixedPointFormat(8, 0)
        assert fixed_point_mac(120, 10, 10, acc_fmt, saturating=False) == acc_fmt.wrap(220)


class TestHypothesisProperties:
    @given(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_quantisation_error_bounded_by_half_lsb(self, value):
        fmt = FixedPointFormat(16, 8)
        quantised = quantize_value(value, fmt)
        if fmt.min_value < value < fmt.max_value:
            assert abs(quantised - value) <= fmt.scale / 2 + 1e-12

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_quantised_value_always_representable(self, value):
        fmt = FixedPointFormat(16, 8)
        quantised = quantize_value(value, fmt)
        assert fmt.min_value <= quantised <= fmt.max_value

    @given(st.integers(min_value=-(2 ** 20), max_value=2 ** 20))
    @settings(max_examples=200, deadline=None)
    def test_wrap_is_idempotent_and_in_range(self, raw):
        fmt = FixedPointFormat(12, 4)
        wrapped = fmt.wrap(raw)
        assert fmt.raw_min <= wrapped <= fmt.raw_max
        assert fmt.wrap(wrapped) == wrapped

    @given(
        st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=1, max_size=64)
    )
    @settings(max_examples=100, deadline=None)
    def test_array_quantisation_is_elementwise(self, values):
        fmt = FixedPointFormat(16, 8)
        arr = np.array(values)
        grid = quantize_array(arr, fmt)
        assert grid.shape == arr.shape
        assert np.all(grid <= fmt.max_value) and np.all(grid >= fmt.min_value)
