"""Tests for repro.utils (units and validation helpers)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.utils import units, validation


class TestGops:
    def test_peak_chain_nn_throughput(self):
        # 576 PEs x 2 ops x 700 MHz over one second
        assert units.gops(576 * 2 * 700e6, 1.0) == pytest.approx(806.4)

    def test_scaling_with_time(self):
        assert units.gops(1e9, 0.5) == pytest.approx(2.0)

    def test_rejects_non_positive_time(self):
        with pytest.raises(ValueError):
            units.gops(1.0, 0.0)

    def test_gops_per_watt(self):
        assert units.gops_per_watt(806.4, 0.5675) == pytest.approx(1421.0, rel=1e-3)

    def test_gops_per_watt_rejects_zero_power(self):
        with pytest.raises(ValueError):
            units.gops_per_watt(100.0, 0.0)


class TestConversions:
    def test_seconds_to_ms(self):
        assert units.seconds_to_ms(0.35) == pytest.approx(350.0)

    def test_bytes_to_mib_round_trip(self):
        assert units.bytes_to_mib(352 * 1024) == pytest.approx(0.34375)

    def test_bytes_to_kib(self):
        assert units.bytes_to_kib(2048) == pytest.approx(2.0)

    def test_bytes_to_mb_is_decimal(self):
        assert units.bytes_to_mb(1_000_000) == pytest.approx(1.0)


class TestFormatting:
    def test_format_bytes_picks_suffix(self):
        assert units.format_bytes(512) == "512 B"
        assert "KiB" in units.format_bytes(4096)
        assert "MiB" in units.format_bytes(5 * 1024 * 1024)
        assert "GiB" in units.format_bytes(3 * 1024 ** 3)

    def test_format_time_granularity(self):
        assert units.format_time(2.0).endswith(" s")
        assert units.format_time(0.0025).endswith(" ms")
        assert units.format_time(2.5e-6).endswith(" us")
        assert units.format_time(1.4e-9).endswith(" ns")

    def test_format_frequency(self):
        assert units.format_frequency(700e6) == "700.0 MHz"
        assert units.format_frequency(1.4e9) == "1.40 GHz"

    def test_format_power(self):
        assert units.format_power(0.5675) == "567.5 mW"
        assert units.format_power(15.97) == "15.97 W"

    def test_format_energy(self):
        assert units.format_energy(1.2e-12).endswith("pJ")
        assert units.format_energy(3.4e-9).endswith("nJ")

    def test_format_gops_switches_to_tops(self):
        assert units.format_gops(806.4).endswith("GOPS")
        assert units.format_gops(1421.0).endswith("TOPS")


class TestValidation:
    def test_check_positive_accepts_positive(self):
        validation.check_positive("x", 3.5)

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_check_positive_rejects_non_positive(self, value):
        with pytest.raises(ConfigurationError):
            validation.check_positive("x", value)

    def test_check_positive_rejects_bool_and_strings(self):
        with pytest.raises(ConfigurationError):
            validation.check_positive("x", True)
        with pytest.raises(ConfigurationError):
            validation.check_positive("x", "3")

    def test_check_non_negative(self):
        validation.check_non_negative("x", 0)
        with pytest.raises(ConfigurationError):
            validation.check_non_negative("x", -1e-9)

    def test_check_positive_int(self):
        validation.check_positive_int("n", 576)
        with pytest.raises(ConfigurationError):
            validation.check_positive_int("n", 0)
        with pytest.raises(ConfigurationError):
            validation.check_positive_int("n", 2.5)
        with pytest.raises(ConfigurationError):
            validation.check_positive_int("n", True)

    def test_check_in_range(self):
        validation.check_in_range("x", 0.5, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            validation.check_in_range("x", 1.5, 0.0, 1.0)

    def test_check_probability(self):
        validation.check_probability("p", 1.0)
        with pytest.raises(ConfigurationError):
            validation.check_probability("p", -0.1)
