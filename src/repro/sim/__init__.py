"""Simulators: functional (dataflow-level) and cycle-accurate (register-level)."""

from repro.sim.cycle import CycleAccurateChainSimulator, CycleSimResult, CycleSimStats
from repro.sim.functional import (
    FunctionalChainSimulator,
    FunctionalRunResult,
    FunctionalRunStats,
)
from repro.sim.trace import TraceEvent, TraceLog

__all__ = [
    "CycleAccurateChainSimulator",
    "CycleSimResult",
    "CycleSimStats",
    "FunctionalChainSimulator",
    "FunctionalRunResult",
    "FunctionalRunStats",
    "TraceEvent",
    "TraceLog",
]
