"""Simulators: functional (dataflow-level) and cycle-accurate (register-level)."""

from repro.sim.cycle import CycleAccurateChainSimulator, CycleSimResult, CycleSimStats
from repro.sim.functional import (
    FUNCTIONAL_BACKENDS,
    FunctionalChainSimulator,
    FunctionalRunResult,
    FunctionalRunStats,
)
from repro.sim.functional_vectorized import (
    PairWindowStats,
    pair_window_stats,
    stride_keep_mask,
    vectorized_layer_ofmaps,
)
from repro.sim.network import (
    FunctionalNetworkRunner,
    NetworkRunResult,
    StageReport,
    pool2d,
)
from repro.sim.trace import TraceEvent, TraceLog

__all__ = [
    "CycleAccurateChainSimulator",
    "CycleSimResult",
    "CycleSimStats",
    "FUNCTIONAL_BACKENDS",
    "FunctionalChainSimulator",
    "FunctionalNetworkRunner",
    "FunctionalRunResult",
    "FunctionalRunStats",
    "NetworkRunResult",
    "PairWindowStats",
    "StageReport",
    "TraceEvent",
    "TraceLog",
    "pair_window_stats",
    "pool2d",
    "stride_keep_mask",
    "vectorized_layer_ofmaps",
]
