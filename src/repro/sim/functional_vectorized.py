"""Vectorized NumPy backend of the functional (dataflow-level) simulator.

The scalar path of :class:`~repro.sim.functional.FunctionalChainSimulator`
walks every scan window of every (ofmap, ifmap) channel pair in Python —
faithful, but tens of millions of iterations on AlexNet-scale layers.  This
module evaluates the same stripe/column-scan decomposition as whole-array
operations:

* **Windows.**  ``sliding_window_view`` over the padded plane enumerates the
  full stride-1 window grid — the union of every stripe's valid windows —
  and a stride-grid selection (the regular-grid form of
  :func:`stride_keep_mask`) keeps exactly the windows the per-window discard
  test keeps.
* **Dot products.**  One broadcasted multiply per (ifmap channel, ofmap
  block) followed by a sum over the merged kernel axis reproduces the scalar
  ``np.sum(window * kernel)`` *bit-exactly*: the product array is contiguous
  and the reduction runs over the same ``K^2`` contiguous elements with the
  same pairwise-summation order NumPy uses for the per-window sum.  (Summing
  over ``axis=(-2, -1)`` without the merge is **not** bit-identical — NumPy
  reduces the axes separately, reassociating the additions.)
* **Accumulation.**  Channel contributions are added into the ofmaps one
  ifmap channel at a time, in ascending channel order — the same float64
  addition order as the scalar pair loop — so the result is bit-identical,
  not merely allclose.
* **Counters.**  Whether a window exists and whether it survives the stride
  filter depends only on the layer geometry, never on pixel values, so every
  :class:`~repro.sim.functional.FunctionalRunStats` counter is a per-pair
  constant (closed form over the stripe plan) multiplied by the number of
  channel pairs.
* **Kernels.**  The per-block multiply/reduce/accumulate itself dispatches
  through :mod:`repro.kernels`, so the same decomposition runs on the NumPy
  reference backend or the compiled (numba) backend — bit-identically, the
  compiled kernel reproducing the pairwise reduction order in its fused
  loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cnn.layer import ConvLayer
from repro.cnn.reference import strided_windows
from repro.kernels import get_backend

#: byte budget for one broadcasted (ofmap block, windows, K, K) product; keeps
#: the materialised array small on wide layers (e.g. VGG 224x224 inputs).
_PRODUCT_BLOCK_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class PairWindowStats:
    """Per-channel-pair dataflow counters implied by the stripe geometry.

    Every (ofmap, ifmap) channel pair of a layer shares the same stripe plan,
    so the layer totals of :class:`~repro.sim.functional.FunctionalRunStats`
    are these values multiplied by ``layer.channel_pairs()``.
    """

    stripes: int
    pixels_streamed: int
    primitive_cycles: int
    windows_evaluated: int
    windows_kept: int


def pair_window_stats(layer: ConvLayer,
                      stripe_height: int | None = None) -> PairWindowStats:
    """Closed-form counters for one channel pair of ``layer``.

    Mirrors the scalar pair loop: stripe bases step ``stripe_height``
    (default ``K``, the paper's full stripe) over the stride-1 output rows; a
    stripe of ``rows`` input rows streams ``rows * width`` pixels over
    ``K * (width - 1) + rows`` timestamps and completes
    ``(rows - K + 1) * (width - K + 1)`` valid windows; the stride filter
    keeps the windows on the stride grid that map inside the ofmap.
    """
    k = layer.kernel_size
    height = k if stripe_height is None else stripe_height
    padded_h = layer.padded_height
    padded_w = layer.padded_width

    stripes = 0
    pixels = 0
    cycles = 0
    evaluated = 0
    for base in range(0, padded_h - k + 1, height):
        rows = min(height + k - 1, padded_h - base)
        stripes += 1
        pixels += rows * padded_w
        cycles += k * (padded_w - 1) + rows
        evaluated += (rows - k + 1) * (padded_w - k + 1)

    kept_rows = min(layer.out_height, (padded_h - k) // layer.stride + 1)
    kept_cols = min(layer.out_width, (padded_w - k) // layer.stride + 1)
    return PairWindowStats(
        stripes=stripes,
        pixels_streamed=pixels,
        primitive_cycles=cycles,
        windows_evaluated=evaluated,
        windows_kept=kept_rows * kept_cols,
    )


def stride_keep_mask(layer: ConvLayer) -> np.ndarray:
    """Boolean mask over the stride-1 window grid selecting the kept windows.

    Entry ``[r, c]`` is True iff the window whose top-left input pixel is
    ``(r, c)`` passes the scalar discard test: both coordinates on the stride
    grid and the resulting output position inside the ofmap.  The True
    entries form a regular grid, which is why the compute path can use the
    equivalent zero-copy ``[::stride, ::stride]`` slicing instead of fancy
    indexing with this mask.
    """
    rows = np.arange(layer.padded_height - layer.kernel_size + 1)
    cols = np.arange(layer.padded_width - layer.kernel_size + 1)
    row_ok = (rows % layer.stride == 0) & (rows // layer.stride < layer.out_height)
    col_ok = (cols % layer.stride == 0) & (cols // layer.stride < layer.out_width)
    return row_ok[:, None] & col_ok[None, :]


def vectorized_layer_ofmaps(layer: ConvLayer, padded: np.ndarray,
                            weights: np.ndarray,
                            kernel_backend: Optional[str] = None) -> np.ndarray:
    """Float64 ofmaps of the whole layer, bit-identical to the scalar path.

    ``padded`` is the zero-padded ``(C, Hp, Wp)`` float64 input, ``weights``
    the ``(M, C/groups, K, K)`` float64 kernels.  Ofmap blocks are sized so
    the broadcasted product stays within :data:`_PRODUCT_BLOCK_BYTES`.
    ``kernel_backend`` selects the :mod:`repro.kernels` backend (``None`` =
    the process default).
    """
    ofmaps = np.zeros(layer.out_shape, dtype=np.float64)
    vectorized_ofmap_block(layer, padded, weights, 0, layer.out_channels,
                           out=ofmaps, kernel_backend=kernel_backend)
    return ofmaps


def vectorized_ofmap_block(layer: ConvLayer, padded: np.ndarray,
                           weights: np.ndarray, m_start: int, m_stop: int,
                           out: np.ndarray,
                           kernel_backend: Optional[str] = None) -> None:
    """Compute ofmap channels ``[m_start, m_stop)`` into ``out``.

    Every ofmap channel is an independent broadcast-multiply / merged-axis
    reduction accumulated over ascending ifmap channels, so any partition of
    the channel range — including the parallel runtime's per-worker blocks —
    produces values bit-identical to the whole-layer computation.  ``out``
    must be the full ``layer.out_shape`` float64 tensor (a shared-memory
    assembly buffer in the parallel path); only ``[m_start, m_stop)`` planes
    are written.  The inner multiply/reduce/accumulate runs on the
    ``kernel_backend`` :mod:`repro.kernels` backend — every backend is
    bit-identical, so the choice never changes the result.
    """
    backend = get_backend(kernel_backend)
    k = layer.kernel_size
    stride = layer.stride
    out_h = layer.out_height
    out_w = layer.out_width
    in_per_group = layer.in_channels_per_group
    out_per_group = layer.out_channels_per_group
    if not (0 <= m_start <= m_stop <= layer.out_channels):
        raise ValueError(
            f"{layer.name}: ofmap block [{m_start}, {m_stop}) outside "
            f"[0, {layer.out_channels})"
        )

    # (C, out_h, out_w, K, K) zero-copy view of the kept windows: the
    # stride-grid subset (regular-grid form of stride_keep_mask) of the
    # stride-1 window grid every stripe's valid windows union to
    kept = strided_windows(padded, k, stride, out_h, out_w)

    m_block = max(1, _PRODUCT_BLOCK_BYTES // max(1, out_h * out_w * k * k * 8))
    for group in range(layer.groups):
        # this group's slice of the requested block, in group-local indices
        lo = max(m_start, group * out_per_group) - group * out_per_group
        hi = min(m_stop, (group + 1) * out_per_group) - group * out_per_group
        if lo >= hi:
            continue
        c0 = group * in_per_group
        m0 = group * out_per_group
        out_group = out[m0:m0 + out_per_group]
        # ifmap channels accumulate outermost, in ascending order — the same
        # float64 addition order as the scalar (pair-at-a-time) loop
        for c_local in range(in_per_group):
            # one contiguous copy of the channel's kept windows: the strided
            # view has K*K-strided inner axes that slow every broadcasted
            # multiply over the ofmap block
            plane_windows = np.ascontiguousarray(kept[c0 + c_local])
            for m_base in range(lo, hi, m_block):
                m_top = min(hi, m_base + m_block)
                kernels = weights[m0 + m_base:m0 + m_top, c_local]
                backend.ofmap_block_product(plane_windows, kernels,
                                            out_group[m_base:m_top])


def ofmap_block_ranges(layer: ConvLayer, blocks: int) -> list:
    """Split the ofmap channel axis into at most ``blocks`` contiguous ranges.

    Used by the parallel verification path to fan one layer's simulation out
    over workers; any partition yields bit-identical values (see
    :func:`vectorized_ofmap_block`), so the block count is free to track the
    worker count.
    """
    channels = layer.out_channels
    blocks = max(1, min(blocks, channels))
    size = -(-channels // blocks)
    return [(start, min(channels, start + size))
            for start in range(0, channels, size)]
