"""Functional Winograd F(2x2,3x3) convolution for the dataflow simulator.

The transform-domain counterpart of :mod:`repro.cnn.reference`: each 4x4
input tile ``d`` becomes ``V = B^T d B``, each 3x3 filter plane ``g``
becomes the 4x4 plane ``U = G g G^T``, the per-tile product is the
element-wise ``U (*) V`` accumulated over input channels, and the 2x2
output tile is recovered as ``Y = A^T M A``.  The hot per-group kernel
dispatches through :mod:`repro.kernels` (``winograd_group_conv``) so the
numpy reference and the compiled numba backend share this decomposition.

**Tolerance contract.**  The Winograd transforms reassociate the 3x3
reduction, so results are *not* bit-identical to the im2col golden (or to
the direct dataflow); they agree to float64 round-off of the accumulator
scale.  :func:`winograd_tolerance` is the documented bound —
``1e-6 * max(1, max|reference|)`` — used by every cross-check in tests,
``repro verify --algorithm winograd`` and searched-schedule verification.
Within the Winograd path itself determinism is strict: the numpy and numba
kernels are bit-identical to each other, and any partition of the ofmap
channels (serial, ``--workers N``) produces the same bits, so the parallel
runtime's bit-identity ladder still holds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.winograd import (
    WINOGRAD_RELATIVE_TOLERANCE,
    WINOGRAD_TILE_OUT,
    winograd_eligible,
    winograd_tile_grid,
)
from repro.cnn.layer import ConvLayer
from repro.cnn.reference import _check_shapes, pad_input
from repro.errors import ConfigurationError
from repro.kernels import get_backend

__all__ = [
    "conv2d_winograd",
    "transform_filters",
    "winograd_ofmap_block",
    "winograd_tolerance",
    "winograd_eligible",
]


def winograd_tolerance(reference: np.ndarray) -> float:
    """The documented absolute tolerance vs the im2col golden.

    Relative to the accumulator scale: ``1e-6 * max(1, max|reference|)``.
    Float64 round-off of the reassociated reduction sits orders of
    magnitude below this for every layer in the zoo; a real defect (wrong
    transform, mis-scattered tile) lands orders of magnitude above it.
    """
    scale = float(np.max(np.abs(reference))) if reference.size else 0.0
    return WINOGRAD_RELATIVE_TOLERANCE * max(1.0, scale)


def transform_filters(weights: np.ndarray) -> np.ndarray:
    """``G g G^T`` for every 3x3 plane of ``weights`` (..., 3, 3) -> (..., 4, 4).

    Computed once per layer in float64 and shared by every backend —
    multiplications by G's 0.5 entries are exact (power-of-two scaling),
    so the transformed planes are identical however they are consumed.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.shape[-2:] != (3, 3):
        raise ConfigurationError(
            f"winograd filter transform needs 3x3 planes, got {w.shape[-2:]}")
    g0 = w[..., 0, :]
    g1 = w[..., 1, :]
    g2 = w[..., 2, :]
    a = np.empty(w.shape[:-2] + (4, 3), dtype=np.float64)
    a[..., 0, :] = g0
    a[..., 1, :] = ((g0 + g1) + g2) * 0.5
    a[..., 2, :] = ((g0 - g1) + g2) * 0.5
    a[..., 3, :] = g2
    u = np.empty(w.shape[:-2] + (4, 4), dtype=np.float64)
    u[..., 0] = a[..., 0]
    u[..., 1] = ((a[..., 0] + a[..., 1]) + a[..., 2]) * 0.5
    u[..., 2] = ((a[..., 0] - a[..., 1]) + a[..., 2]) * 0.5
    u[..., 3] = a[..., 2]
    return u


def _require_eligible(layer: ConvLayer) -> None:
    if not winograd_eligible(layer):
        raise ConfigurationError(
            f"{layer.name}: Winograd F(2x2,3x3) needs kernel_size=3 and "
            f"stride=1, got K={layer.kernel_size} S={layer.stride}")


def _extend_group(padded_group: np.ndarray, rows_ext: int,
                  cols_ext: int) -> np.ndarray:
    """Zero-extend one group's padded planes to the 4x4 tile grid extent."""
    cg, rows, cols = padded_group.shape
    ext = np.zeros((cg, rows_ext, cols_ext), dtype=np.float64)
    ext[:, :rows, :cols] = padded_group
    return ext


def winograd_ofmap_block(layer: ConvLayer, padded: np.ndarray,
                         weights: np.ndarray, m_start: int, m_stop: int,
                         out: np.ndarray,
                         kernel_backend: Optional[str] = None) -> None:
    """Compute ofmap channels ``[m_start, m_stop)`` via Winograd tiles.

    The Winograd counterpart of
    :func:`repro.sim.functional_vectorized.vectorized_ofmap_block`:
    ``padded`` is the zero-padded ``(C, H+2P, W+2P)`` float64 input, ``out``
    the full ``(M, out_h, out_w)`` ofmap tensor (only the requested block
    is written).  Because every output channel's transform-domain
    accumulation is independent and walks input channels in ascending
    order, any block partition is bit-identical to the serial whole.
    """
    _require_eligible(layer)
    tiles_h, tiles_w = winograd_tile_grid(layer)
    rows_ext = WINOGRAD_TILE_OUT * tiles_h + 2
    cols_ext = WINOGRAD_TILE_OUT * tiles_w + 2
    backend = get_backend(kernel_backend)
    in_per_group = layer.in_channels_per_group
    out_per_group = layer.out_channels_per_group
    for group in range(layer.groups):
        lo = max(m_start, group * out_per_group)
        hi = min(m_stop, (group + 1) * out_per_group)
        if lo >= hi:
            continue
        in_lo = group * in_per_group
        ext = _extend_group(padded[in_lo:in_lo + in_per_group],
                            rows_ext, cols_ext)
        u = transform_filters(weights[lo:hi])
        backend.winograd_group_conv(ext, u, out[lo:hi])


def conv2d_winograd(layer: ConvLayer, ifmaps: np.ndarray,
                    weights: np.ndarray, bias: Optional[np.ndarray] = None,
                    kernel_backend: Optional[str] = None) -> np.ndarray:
    """Winograd F(2x2,3x3) formulation of the layer's convolution.

    Same signature and shapes as :func:`repro.cnn.reference.conv2d_im2col`
    (single-image CHW in, ``(M, out_h, out_w)`` float64 out); grouped
    convolutions are transformed per group.  Matches the im2col golden
    within :func:`winograd_tolerance`.
    """
    _require_eligible(layer)
    _check_shapes(layer, ifmaps, weights)
    padded = pad_input(np.asarray(ifmaps, dtype=np.float64), layer.padding)
    out = np.zeros((layer.out_channels, layer.out_height, layer.out_width),
                   dtype=np.float64)
    winograd_ofmap_block(layer, padded, weights, 0, layer.out_channels, out,
                         kernel_backend=kernel_backend)
    if bias is not None:
        out += np.asarray(bias, dtype=np.float64)[:, None, None]
    return out
