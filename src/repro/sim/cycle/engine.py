"""Cycle-accurate simulation of a convolutional layer on the chain.

This is the reproduction of the paper's ModelSim functional verification: the
layer is decomposed exactly as the hardware would execute it (channel pairs →
stripes → column-wise scan), every stripe is streamed through a
register-accurate :class:`~repro.core.primitive.SystolicPrimitive`, the
finished window sums are accumulated across ifmap channels, and the result is
compared on-the-fly against the software reference.

The simulator works on 16-bit fixed-point raw values, so it also demonstrates
the numeric path (quantise → integer MACs → wide accumulator → dequantise).

Two backends share the same decomposition and produce bit-identical results:

``vectorized`` (default)
    Batches each stripe's MAC schedule into NumPy array operations (one
    integer GEMM per channel group, closed-form cycle/MAC counters — see
    :mod:`repro.sim.cycle.vectorized`).  Fast enough to cycle-verify full
    AlexNet-scale layers.

``scalar``
    The original register-accurate path: every stripe is streamed through a
    :class:`~repro.core.primitive.SystolicPrimitive` one clock cycle at a
    time.  Each simulated cycle costs Python-level work per PE, so this
    backend is meant for small layers; it serves as the ground-truth
    cross-check of the vectorized fast path (``repro verify --backend both``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cnn.layer import ConvLayer
from repro.cnn.quantize import choose_format
from repro.cnn.reference import conv2d_direct, pad_input
from repro.core.config import ChainConfig
from repro.core.controller import ChainController
from repro.core.mapper import LayerMapper
from repro.core.primitive import SystolicPrimitive
from repro.errors import ConfigurationError, SimulationError, WorkloadError
from repro.hwmodel.fixed_point import FixedPointFormat
from repro.sim.cycle.vectorized import (
    MAX_EXACT_KERNEL_PES,
    correlate_layer_raw,
    pair_geometry,
)

#: backends accepted by :class:`CycleAccurateChainSimulator`
CYCLE_BACKENDS = ("vectorized", "scalar")


@dataclass
class CycleSimStats:
    """Counters collected during a cycle-accurate layer simulation."""

    primitive_cycles: int = 0
    kernel_load_cycles: int = 0
    macs: int = 0
    pairs_processed: int = 0
    stripes_processed: int = 0
    outputs_collected: int = 0
    outputs_discarded_by_stride: int = 0
    kmemory_reads: int = 0


@dataclass
class CycleSimResult:
    """Result of one cycle-accurate layer simulation."""

    layer: ConvLayer
    ofmaps: np.ndarray
    stats: CycleSimStats
    chain_cycles_estimate: float
    ifmap_format: FixedPointFormat
    weight_format: FixedPointFormat
    reference_max_abs_error: Optional[float] = None

    @property
    def total_cycles_with_kernel_load(self) -> float:
        """Chain cycles plus the kernel-load cycles."""
        return self.chain_cycles_estimate + self.stats.kernel_load_cycles


class CycleAccurateChainSimulator:
    """Runs conv layers through register-accurate systolic primitives.

    ``backend`` selects how stripes are executed: ``"vectorized"`` (default)
    batches the MAC schedule into NumPy array operations, ``"scalar"`` ticks
    every PE register.  Both produce bit-identical ofmaps and identical
    :class:`CycleSimStats`; kernels larger than 11x11 would exceed the range
    the hardware accumulator is sized for and automatically use the scalar
    path, which models the saturation.
    """

    def __init__(self, config: Optional[ChainConfig] = None,
                 total_bits: int = 16, backend: str = "vectorized") -> None:
        if backend not in CYCLE_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {CYCLE_BACKENDS}, got {backend!r}"
            )
        self.config = config or ChainConfig()
        self.total_bits = total_bits
        self.backend = backend
        self.mapper = LayerMapper(self.config)
        self.controller = ChainController()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _stripe_bases(padded_height: int, kernel_size: int) -> List[int]:
        out_rows_stride1 = padded_height - kernel_size + 1
        return list(range(0, out_rows_stride1, kernel_size))

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run_layer(
        self,
        layer: ConvLayer,
        ifmaps: np.ndarray,
        weights: np.ndarray,
        check_against_reference: bool = True,
    ) -> CycleSimResult:
        """Simulate one layer cycle by cycle.

        ``ifmaps`` is ``(C, H, W)`` float, ``weights`` is ``(M, C/g, K, K)``
        float; both are quantised to the configured fixed-point width before
        simulation.  When ``check_against_reference`` is set the dequantised
        ofmaps are compared against the NumPy reference computed on the same
        quantised operands (they must agree exactly up to accumulator
        rounding, i.e. to ~1e-9).
        """
        ifmaps = np.asarray(ifmaps, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if ifmaps.shape != layer.in_shape:
            raise WorkloadError(
                f"{layer.name}: ifmaps shape {ifmaps.shape} does not match {layer.in_shape}"
            )

        ifmap_fmt = choose_format(ifmaps, self.total_bits)
        weight_fmt = choose_format(weights, self.total_bits)
        raw_ifmaps = ifmap_fmt.quantize_raw(pad_input(ifmaps, layer.padding))
        raw_weights = weight_fmt.quantize_raw(weights)
        output_scale = ifmap_fmt.scale * weight_fmt.scale

        mapping = self.mapper.map_layer(layer)
        self.controller.reset()
        self.controller.configure(mapping)

        if self.backend == "vectorized" and layer.kernel_size ** 2 <= MAX_EXACT_KERNEL_PES:
            raw_ofmaps, stats = self._run_layer_vectorized(layer, raw_ifmaps, raw_weights)
        else:
            operand_format = FixedPointFormat(self.total_bits, ifmap_fmt.frac_bits)
            raw_ofmaps, stats = self._run_layer_scalar(
                layer, raw_ifmaps, raw_weights, operand_format
            )

        # hardware loads each weight once per batch regardless of how the
        # simulator re-uses its single primitive object
        stats.kernel_load_cycles = layer.weight_count
        self.controller.load_kernels(stats.kernel_load_cycles)
        self.controller.stream(stats.primitive_cycles)
        self.controller.finish_layer()

        ofmaps = raw_ofmaps.astype(np.float64) * output_scale
        chain_cycles = stats.primitive_cycles / mapping.active_primitives

        reference_error: Optional[float] = None
        if check_against_reference:
            quant_ifmaps = ifmap_fmt.dequantize_raw(ifmap_fmt.quantize_raw(ifmaps))
            quant_weights = weight_fmt.dequantize_raw(raw_weights)
            reference = conv2d_direct(layer, quant_ifmaps, quant_weights)
            reference_error = float(np.max(np.abs(reference - ofmaps))) if reference.size else 0.0
            if reference_error > 1e-6:
                raise SimulationError(
                    f"{layer.name}: cycle-accurate result deviates from reference "
                    f"(max abs error {reference_error:.3e})"
                )

        return CycleSimResult(
            layer=layer,
            ofmaps=ofmaps,
            stats=stats,
            chain_cycles_estimate=chain_cycles,
            ifmap_format=ifmap_fmt,
            weight_format=weight_fmt,
            reference_max_abs_error=reference_error,
        )

    # ------------------------------------------------------------------ #
    # backends
    # ------------------------------------------------------------------ #
    def _run_layer_vectorized(
        self,
        layer: ConvLayer,
        raw_ifmaps: np.ndarray,
        raw_weights: np.ndarray,
    ) -> tuple[np.ndarray, CycleSimStats]:
        """NumPy fast path: identical outputs and counters, no per-cycle work."""
        k = layer.kernel_size
        geometry = pair_geometry(layer)
        pairs = layer.channel_pairs()
        stats = CycleSimStats(
            primitive_cycles=geometry.primitive_cycles * pairs,
            macs=geometry.macs * pairs,
            pairs_processed=pairs,
            stripes_processed=geometry.stripes * pairs,
            outputs_collected=geometry.outputs_kept * pairs,
            outputs_discarded_by_stride=geometry.outputs_discarded * pairs,
            kmemory_reads=k * k * pairs,
        )
        raw_ofmaps = correlate_layer_raw(
            layer, raw_ifmaps, raw_weights, geometry.kept_rows, geometry.kept_cols
        )
        return raw_ofmaps, stats

    def _run_layer_scalar(
        self,
        layer: ConvLayer,
        raw_ifmaps: np.ndarray,
        raw_weights: np.ndarray,
        operand_format: FixedPointFormat,
    ) -> tuple[np.ndarray, CycleSimStats]:
        """Register-accurate path: tick every PE of a systolic primitive."""
        k = layer.kernel_size
        stride = layer.stride
        stats = CycleSimStats()
        raw_ofmaps = np.zeros(layer.out_shape, dtype=np.int64)

        primitive = SystolicPrimitive(
            kernel_size=k,
            kmemory_depth=self.config.kmemory_words_per_pe,
            operand_format=operand_format,
            name=f"{layer.name}.primitive",
        )

        in_per_group = layer.in_channels_per_group
        out_per_group = layer.out_channels_per_group
        padded_height = layer.padded_height
        bases = self._stripe_bases(padded_height, k)

        for group in range(layer.groups):
            for m_local in range(out_per_group):
                m = group * out_per_group + m_local
                for c_local in range(in_per_group):
                    c = group * in_per_group + c_local
                    primitive.load_kernel(raw_weights[m, c_local], slot=0)
                    primitive.select_kernel(slot=0)
                    stats.kmemory_reads += primitive.num_pes

                    for base in bases:
                        rows = min(2 * k - 1, padded_height - base)
                        if rows < k:
                            continue
                        stripe = raw_ifmaps[c, base:base + rows, :]
                        run = primitive.run_stripe(stripe)
                        stats.primitive_cycles += run.cycles
                        stats.stripes_processed += 1
                        stats.macs += run.macs
                        for output in run.outputs:
                            in_row = base + output.out_row_in_stripe
                            in_col = output.out_col
                            if in_row % stride or in_col % stride:
                                stats.outputs_discarded_by_stride += 1
                                continue
                            out_row = in_row // stride
                            out_col = in_col // stride
                            if out_row >= layer.out_height or out_col >= layer.out_width:
                                stats.outputs_discarded_by_stride += 1
                                continue
                            raw_ofmaps[m, out_row, out_col] += output.raw_value
                            stats.outputs_collected += 1
                    stats.pairs_processed += 1

        return raw_ofmaps, stats
