"""Cycle-accurate chain simulation."""

from repro.sim.cycle.engine import (
    CycleAccurateChainSimulator,
    CycleSimResult,
    CycleSimStats,
)

__all__ = [
    "CycleAccurateChainSimulator",
    "CycleSimResult",
    "CycleSimStats",
]
