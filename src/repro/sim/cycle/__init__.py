"""Cycle-accurate chain simulation."""

from repro.sim.cycle.engine import (
    CYCLE_BACKENDS,
    CycleAccurateChainSimulator,
    CycleSimResult,
    CycleSimStats,
)
from repro.sim.cycle.vectorized import PairGeometryStats, pair_geometry, stripe_mac_count

__all__ = [
    "CYCLE_BACKENDS",
    "CycleAccurateChainSimulator",
    "CycleSimResult",
    "CycleSimStats",
    "PairGeometryStats",
    "pair_geometry",
    "stripe_mac_count",
]
