"""Vectorized NumPy fast path of the cycle-accurate chain simulator.

The register-accurate scalar engine (:mod:`repro.sim.cycle.engine`) ticks
every PE of a :class:`~repro.core.primitive.SystolicPrimitive` in Python,
which limits it to tiny layers.  This module replays the *same* execution —
channel pairs, stripes, column-wise scan, stride filtering — with whole-array
integer operations, producing bit-identical raw ofmaps and identical
:class:`~repro.sim.cycle.engine.CycleSimStats` counters at a fraction of the
cost, so full AlexNet-scale layers become cycle-verifiable.

Two observations make this possible:

* **Outputs.**  Every *valid* window of a stripe (starting row among the
  stripe's output rows, starting column leaving room for ``K`` columns) sees
  all of its ``K^2`` pixels, so its raw value is the exact integer dot
  product of the window with the kernel.  The stripes partition the stride-1
  output rows exactly, hence the union of all valid windows of a pair is the
  full stride-1 correlation of the padded plane — one integer GEMM per
  channel group reproduces every collected output.  The 39-bit saturating
  accumulator of the scalar MAC never saturates for ``K <= 11`` (at most
  121 products of 16-bit operands), so plain ``int64`` arithmetic is
  bit-identical.

* **Counters.**  Whether a PE performs a MAC in a given cycle depends only
  on the stripe geometry, never on pixel values: the window injected at
  streaming cycle ``s`` reaches PE ``q`` at cycle ``s + 2q`` together with
  the pixel streamed at timestamp ``s + q``, and that pixel exists iff its
  stripe coordinates ``(r0 + q % K, oc + q // K)`` fall inside the stripe
  (``oc = (s-1) // K``, ``r0 = (s-1) % K``).  Summing the indicator over
  ``s`` and ``q`` factorises into a product of two clamped ranges, giving a
  closed form for the MAC count per stripe; cycles, windows and stride
  discards follow from the same geometry.  All counters are therefore
  per-pair constants multiplied by the number of channel pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.cnn.layer import ConvLayer

#: kernel area above which the scalar MAC's saturating accumulator (sized for
#: 121 products) could saturate mid-window; beyond it the fast path would no
#: longer be bit-exact, so callers must fall back to the scalar engine.
MAX_EXACT_KERNEL_PES = 121

#: channel-block budget for the im2col GEMM (bytes); keeps the materialised
#: window matrix small on wide layers (e.g. VGG 224x224 inputs).
_GEMM_BLOCK_BYTES = 48 * 1024 * 1024


@dataclass(frozen=True)
class PairGeometryStats:
    """Per-channel-pair counters implied by the stripe geometry of a layer.

    These are exactly what the scalar engine counts while streaming one pair;
    every pair of a layer shares the same geometry, so layer totals are these
    values multiplied by ``layer.channel_pairs()``.
    """

    primitive_cycles: int
    macs: int
    stripes: int
    valid_windows: int
    outputs_kept: int
    outputs_discarded: int
    kept_rows: int
    kept_cols: int


def stripe_mac_count(kernel_size: int, width: int, rows: int) -> int:
    """MACs the scalar engine performs streaming one stripe of one pair.

    A window injected at streaming cycle ``s`` (``1 <= s <= T`` with
    ``T = K * (width - 1) + rows``) triggers a MAC at PE ``q`` iff the
    scheduled pixel ``(r0 + q % K, oc + q // K)`` lies inside the stripe.
    The indicator factorises per ``s`` into ``clip(width - oc, 0, K) *
    clip(rows - r0, 0, K)``.
    """
    k = kernel_size
    total = k * (width - 1) + rows
    s = np.arange(total, dtype=np.int64)
    cols = np.clip(width - s // k, 0, k)
    row_counts = np.clip(rows - s % k, 0, k)
    return int(np.sum(cols * row_counts))


def pair_geometry(layer: ConvLayer) -> PairGeometryStats:
    """Counters for one channel pair of ``layer`` (shared by all its pairs)."""
    k = layer.kernel_size
    stride = layer.stride
    padded_h = layer.padded_height
    padded_w = layer.padded_width
    drain = 2 * k * k + 2

    primitive_cycles = 0
    macs = 0
    stripes = 0
    valid_windows = 0
    for base in range(0, padded_h - k + 1, k):
        rows = min(2 * k - 1, padded_h - base)
        primitive_cycles += k * (padded_w - 1) + rows + drain
        macs += stripe_mac_count(k, padded_w, rows)
        valid_windows += (rows - k + 1) * (padded_w - k + 1)
        stripes += 1

    kept_rows = min(layer.out_height, (padded_h - k) // stride + 1)
    kept_cols = min(layer.out_width, (padded_w - k) // stride + 1)
    kept = kept_rows * kept_cols
    return PairGeometryStats(
        primitive_cycles=primitive_cycles,
        macs=macs,
        stripes=stripes,
        valid_windows=valid_windows,
        outputs_kept=kept,
        outputs_discarded=valid_windows - kept,
        kept_rows=kept_rows,
        kept_cols=kept_cols,
    )


def correlate_layer_raw(
    layer: ConvLayer,
    raw_ifmaps: np.ndarray,
    raw_weights: np.ndarray,
    kept_rows: int,
    kept_cols: int,
) -> np.ndarray:
    """Raw integer ofmaps of the whole layer via blocked im2col GEMMs.

    ``raw_ifmaps`` is the padded ``(C, Hp, Wp)`` int64 plane stack,
    ``raw_weights`` the ``(M, C/groups, K, K)`` int64 kernels.  Only the
    stride-grid windows the scalar engine keeps are computed; the result is
    bit-identical to its accumulation because integer addition is exact and
    the hardware accumulator never saturates for ``K <= 11``.
    """
    k = layer.kernel_size
    stride = layer.stride
    in_per_group = layer.in_channels_per_group
    out_per_group = layer.out_channels_per_group
    raw_ofmaps = np.zeros(layer.out_shape, dtype=np.int64)

    # (C, Hp-K+1, Wp-K+1, K, K) strided view, then the stride-grid subset
    windows = sliding_window_view(raw_ifmaps, (k, k), axis=(1, 2))
    windows = windows[:, ::stride, ::stride][:, :kept_rows, :kept_cols]

    positions = kept_rows * kept_cols
    block = max(1, _GEMM_BLOCK_BYTES // max(1, positions * k * k * 8))
    for group in range(layer.groups):
        c0 = group * in_per_group
        m0 = group * out_per_group
        acc = np.zeros((positions, out_per_group), dtype=np.int64)
        for c_base in range(0, in_per_group, block):
            c_stop = min(in_per_group, c_base + block)
            chunk = windows[c0 + c_base:c0 + c_stop]
            # (positions, chunk_channels * K * K) im2col matrix
            x = np.ascontiguousarray(chunk.transpose(1, 2, 0, 3, 4))
            x = x.reshape(positions, -1)
            w = raw_weights[m0:m0 + out_per_group, c_base:c_stop]
            acc += x @ w.reshape(out_per_group, -1).T
        raw_ofmaps[m0:m0 + out_per_group, :kept_rows, :kept_cols] = (
            acc.T.reshape(out_per_group, kept_rows, kept_cols)
        )
    return raw_ofmaps
