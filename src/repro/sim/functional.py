"""Functional (dataflow-level) simulation of a layer on the chain.

This simulator walks the exact same decomposition the hardware uses — channel
pairs, stripes, column-wise scan windows — but evaluates each window with
NumPy instead of ticking PE registers.  It answers the question *"does the
Chain-NN dataflow enumerate exactly the right windows and accumulate them
into the right output pixels?"* for layers of any size in reasonable time,
and provides the golden intermediate results the cycle-accurate simulator is
checked against.

Two backends share one result contract (mirroring the cycle simulator):

* ``scalar`` — the per-window Python walk over every channel pair;
* ``vectorized`` — :mod:`repro.sim.functional_vectorized`, the same
  decomposition as whole-array NumPy operations with closed-form counters,
  bit-identical ofmaps and identical :class:`FunctionalRunStats`;
* ``both`` — run both and raise :class:`~repro.errors.SimulationError` on
  any divergence (the cross-check mode ``repro verify`` uses).

Strided layers use the stream-everything-discard policy discussed in
DESIGN.md: the scan runs at stride-1 cadence over the padded input and
windows that do not fall on the stride grid are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.cnn.layer import ConvLayer
from repro.cnn.reference import conv2d_im2col, pad_input
from repro.core.config import ChainConfig
from repro.core.mapper import LayerMapper, LayerMapping
from repro.core.scan import ColumnScanSchedule
from repro.errors import ConfigurationError, SimulationError, WorkloadError
from repro.kernels import resolve_backend_name
from repro.sim.functional_vectorized import pair_window_stats, vectorized_layer_ofmaps

# NOTE: repro.analysis.winograd / repro.sim.winograd are imported lazily
# inside the Winograd code paths — repro.sim is itself imported while
# repro.engine.adapters is only partially initialised, and the
# repro.analysis package __init__ closes a cycle back into it.

#: selectable simulation backends (``"both"`` additionally cross-checks them)
FUNCTIONAL_BACKENDS = ("scalar", "vectorized")

#: execution algorithms the simulator can run a layer with
SIM_ALGORITHMS = ("direct", "winograd")


@dataclass
class FunctionalRunStats:
    """Counters collected while functionally simulating one layer."""

    windows_evaluated: int = 0
    windows_kept: int = 0
    stripes_processed: int = 0
    pairs_processed: int = 0
    pixels_streamed: int = 0
    primitive_cycles: int = 0

    @property
    def stride_discard_fraction(self) -> float:
        """Fraction of evaluated windows discarded by the stride filter."""
        if self.windows_evaluated == 0:
            return 0.0
        return 1.0 - self.windows_kept / self.windows_evaluated


@dataclass
class FunctionalRunResult:
    """Output of a functional layer simulation."""

    layer: ConvLayer
    ofmaps: np.ndarray
    stats: FunctionalRunStats
    chain_cycles_estimate: float

    def max_abs_error_vs_reference(self, ifmaps: np.ndarray, weights: np.ndarray) -> float:
        """Largest absolute difference against the NumPy reference convolution.

        The golden output comes from the im2col/GEMM reference — much faster
        than the per-pixel direct loop on large layers, and cross-checked
        against it in the reference test suite — while the simulation itself
        still enumerates windows the way the hardware does.
        """
        reference = conv2d_im2col(self.layer, ifmaps, weights)
        return float(np.max(np.abs(reference - self.ofmaps))) if reference.size else 0.0


class FunctionalChainSimulator:
    """Dataflow-level simulator of the Chain-NN execution of a conv layer."""

    def __init__(self, config: Optional[ChainConfig] = None,
                 backend: str = "scalar",
                 kernel_backend: Optional[str] = None) -> None:
        if backend not in FUNCTIONAL_BACKENDS + ("both",):
            raise ConfigurationError(
                f"unknown functional backend {backend!r}; "
                f"available: {', '.join(FUNCTIONAL_BACKENDS + ('both',))}"
            )
        self.config = config or ChainConfig()
        self.backend = backend
        #: effective :mod:`repro.kernels` backend of the vectorized path
        #: (resolved once at construction so parallel workers inherit the
        #: same choice; every backend is bit-identical)
        self.kernel_backend = resolve_backend_name(kernel_backend)
        self.mapper = LayerMapper(self.config)

    # ------------------------------------------------------------------ #
    # stripe helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _stripe_bases(padded_height: int, kernel_size: int,
                      stripe_height: int) -> List[int]:
        """Starting input rows of the stride-1 stripes covering the feature map.

        ``stripe_height`` is the number of stride-1 output rows each stripe
        produces (the paper's full stripe uses ``K``; the mapping-search
        subsystem explores ``1..K``).
        """
        out_rows_stride1 = padded_height - kernel_size + 1
        bases = list(range(0, out_rows_stride1, stripe_height))
        return bases

    def _process_pair(
        self,
        layer: ConvLayer,
        plane: np.ndarray,
        kernel: np.ndarray,
        out_plane: np.ndarray,
        stats: FunctionalRunStats,
        stripe_height: int,
    ) -> None:
        """Convolve one ifmap plane with one kernel plane, accumulating into out_plane."""
        k = layer.kernel_size
        stride = layer.stride
        padded_height, padded_width = plane.shape
        kernel_col_major = kernel  # indexed [i, j] directly below
        for base in self._stripe_bases(padded_height, k, stripe_height):
            rows = min(stripe_height + k - 1, padded_height - base)
            if rows < k:
                continue
            schedule = ColumnScanSchedule(k, padded_width, stripe_rows=rows)
            stripe = plane[base:base + rows]
            stats.stripes_processed += 1
            stats.pixels_streamed += schedule.pixels_streamed()
            stats.primitive_cycles += schedule.total_timestamps
            for tag in schedule.valid_windows():
                stats.windows_evaluated += 1
                in_row = base + tag.out_row_in_stripe
                in_col = tag.out_col
                if in_row % stride or in_col % stride:
                    continue
                out_row = in_row // stride
                out_col = in_col // stride
                if out_row >= out_plane.shape[0] or out_col >= out_plane.shape[1]:
                    continue
                window = stripe[
                    tag.out_row_in_stripe:tag.out_row_in_stripe + k,
                    tag.out_col:tag.out_col + k,
                ]
                out_plane[out_row, out_col] += float(np.sum(window * kernel_col_major))
                stats.windows_kept += 1
        stats.pairs_processed += 1

    # ------------------------------------------------------------------ #
    # shared plumbing (serial and parallel paths must stay identical)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validate_tensors(layer: ConvLayer, ifmaps: np.ndarray,
                          weights: np.ndarray,
                          stripe_height: Optional[int]):
        """Common input validation; returns float64 tensors + stripe height."""
        ifmaps = np.asarray(ifmaps, dtype=np.float64)
        weights = np.asarray(weights, dtype=np.float64)
        if stripe_height is None:
            stripe_height = layer.kernel_size
        if not (1 <= stripe_height <= layer.kernel_size):
            raise ConfigurationError(
                f"{layer.name}: stripe_height must be in [1, {layer.kernel_size}], "
                f"got {stripe_height}"
            )
        if ifmaps.shape != layer.in_shape:
            raise WorkloadError(
                f"{layer.name}: ifmaps shape {ifmaps.shape} does not match {layer.in_shape}"
            )
        expected_w = (layer.out_channels, layer.in_channels_per_group,
                      layer.kernel_size, layer.kernel_size)
        if weights.shape != expected_w:
            raise WorkloadError(
                f"{layer.name}: weights shape {weights.shape} does not match {expected_w}"
            )
        return ifmaps, weights, stripe_height

    @staticmethod
    def _closed_form_stats(layer: ConvLayer,
                           stripe_height: int) -> FunctionalRunStats:
        """Layer counters from the per-pair closed forms (vectorized path)."""
        per_pair = pair_window_stats(layer, stripe_height)
        pairs = layer.channel_pairs()
        return FunctionalRunStats(
            windows_evaluated=per_pair.windows_evaluated * pairs,
            windows_kept=per_pair.windows_kept * pairs,
            stripes_processed=per_pair.stripes * pairs,
            pairs_processed=pairs,
            pixels_streamed=per_pair.pixels_streamed * pairs,
            primitive_cycles=per_pair.primitive_cycles * pairs,
        )

    @staticmethod
    def _winograd_stats(layer: ConvLayer) -> FunctionalRunStats:
        """Layer counters of the transform-domain execution, closed form.

        A "window" is one 4x4 input tile (each produces a 2x2 output tile),
        a "stripe" one tile row; streamed pixels and primitive cycles follow
        the :mod:`repro.analysis.winograd` cost model (3 cycles per tile on
        a 9-PE primitive plus the ``K^2 - 1`` fill per stripe), so the
        simulator's counters and the analytical scorer agree.
        """
        from repro.analysis.winograd import (
            WINOGRAD_CYCLES_PER_TILE,
            winograd_ext_width,
            winograd_tile_grid,
        )

        tiles_h, tiles_w = winograd_tile_grid(layer)
        pairs = layer.channel_pairs()
        fill = layer.kernel_size * layer.kernel_size - 1
        per_stripe = WINOGRAD_CYCLES_PER_TILE * tiles_w + fill
        return FunctionalRunStats(
            windows_evaluated=tiles_h * tiles_w * pairs,
            windows_kept=tiles_h * tiles_w * pairs,
            stripes_processed=tiles_h * pairs,
            pairs_processed=pairs,
            pixels_streamed=tiles_h * 4 * winograd_ext_width(layer) * pairs,
            primitive_cycles=per_stripe * tiles_h * pairs,
        )

    def _run_winograd(self, layer: ConvLayer,
                      padded: np.ndarray, weights: np.ndarray,
                      mapping: LayerMapping) -> FunctionalRunResult:
        """Whole-layer Winograd execution of already-validated tensors.

        One transform-domain implementation serves every backend selection
        (the hot per-group kernel still dispatches through
        :mod:`repro.kernels`); the cross-checking ``both`` backend
        additionally recomputes the layer on the numpy reference kernel and
        requires bit-identity — the Winograd kernels are bit-identical to
        each other even though they are only tolerance-close to the im2col
        golden.
        """
        from repro.sim.winograd import winograd_ofmap_block

        ofmaps = np.zeros(layer.out_shape, dtype=np.float64)
        winograd_ofmap_block(layer, padded, weights, 0, layer.out_channels,
                             ofmaps, kernel_backend=self.kernel_backend)
        if self.backend == "both" and self.kernel_backend != "numpy":
            reference = np.zeros(layer.out_shape, dtype=np.float64)
            winograd_ofmap_block(layer, padded, weights, 0,
                                 layer.out_channels, reference,
                                 kernel_backend="numpy")
            if not np.array_equal(ofmaps, reference):
                raise SimulationError(
                    f"{layer.name}: {self.kernel_backend} winograd kernel "
                    f"diverges from the numpy reference (max abs difference "
                    f"{float(np.max(np.abs(ofmaps - reference))):.3e})"
                )
        return self._finalize(layer, ofmaps, self._winograd_stats(layer),
                              mapping)

    @staticmethod
    def _finalize(layer: ConvLayer, ofmaps: np.ndarray,
                  stats: FunctionalRunStats,
                  mapping: LayerMapping) -> FunctionalRunResult:
        """Shared sanity checks + result assembly for every execution path."""
        if stats.pairs_processed != mapping.channel_pairs:
            raise SimulationError(
                f"{layer.name}: processed {stats.pairs_processed} pairs, "
                f"expected {mapping.channel_pairs}"
            )
        if mapping.active_primitives <= 0:
            raise SimulationError(
                f"{layer.name}: mapping reports {mapping.active_primitives} active "
                "primitives; cannot derive a per-primitive chain-cycle estimate"
            )
        return FunctionalRunResult(
            layer=layer,
            ofmaps=ofmaps,
            stats=stats,
            chain_cycles_estimate=stats.primitive_cycles / mapping.active_primitives,
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run_layer(self, layer: ConvLayer, ifmaps: np.ndarray,
                  weights: np.ndarray,
                  stripe_height: Optional[int] = None,
                  algorithm: str = "direct") -> FunctionalRunResult:
        """Simulate one layer; returns the ofmaps and the dataflow statistics.

        ``stripe_height`` overrides the ofmap rows computed per stripe (the
        default is the paper's full ``K``-row stripe).  Any legal height
        partitions the same window set differently, so the ofmaps are
        bit-identical across heights — the property the mapping-search
        verification relies on — while the dataflow counters (stripes,
        streamed pixels, primitive cycles) honestly reflect the choice.

        ``algorithm="winograd"`` executes the F(2x2,3x3) transform-domain
        mode instead (3x3 stride-1 layers only): results match the im2col
        golden within :func:`repro.sim.winograd.winograd_tolerance` rather
        than bit-identically, and the stripe-height knob does not apply (the
        4x4 tile grid fixes the stripe plan).
        """
        if algorithm not in SIM_ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}; "
                f"available: {', '.join(SIM_ALGORITHMS)}"
            )
        ifmaps, weights, stripe_height = self._validate_tensors(
            layer, ifmaps, weights, stripe_height)
        mapping = self.mapper.map_layer(layer)
        padded = pad_input(ifmaps, layer.padding)

        if algorithm == "winograd":
            return self._run_winograd(layer, padded, weights, mapping)
        if self.backend == "both":
            scalar = self._run_backend("scalar", layer, padded, weights, mapping,
                                       stripe_height)
            result = self._run_backend("vectorized", layer, padded, weights, mapping,
                                       stripe_height)
            if not np.array_equal(scalar.ofmaps, result.ofmaps):
                raise SimulationError(
                    f"{layer.name}: vectorized functional backend diverges from "
                    f"the scalar path (max abs difference "
                    f"{float(np.max(np.abs(scalar.ofmaps - result.ofmaps))):.3e})"
                )
            if scalar.stats != result.stats:
                raise SimulationError(
                    f"{layer.name}: vectorized functional counters diverge from "
                    f"the scalar path ({result.stats} != {scalar.stats})"
                )
            return result
        return self._run_backend(self.backend, layer, padded, weights, mapping,
                                 stripe_height)

    def run_layer_parallel(self, layer: ConvLayer, ifmaps: np.ndarray,
                           weights: np.ndarray, runtime,
                           stripe_height: Optional[int] = None,
                           algorithm: str = "direct") -> FunctionalRunResult:
        """Simulate one layer with ofmap blocks fanned over ``runtime``.

        Requires the vectorized backend: every ofmap channel is an
        independent broadcast-multiply/merged-axis reduction, so the padded
        ifmaps and weights ship to the persistent workers once through
        shared memory, each worker writes its channel block into a shared
        assembly buffer, and the dataflow counters come from the same closed
        forms the vectorized backend uses — ofmaps *and* stats are
        bit-identical to :meth:`run_layer`.  The Winograd algorithm keeps
        the same decomposition (its transform-domain accumulation is also
        per-ofmap-channel independent), so the partition invariant holds for
        both algorithms.
        """
        from repro.runtime import SharedTensor
        from repro.sim.functional_vectorized import ofmap_block_ranges

        if self.backend != "vectorized":
            raise ConfigurationError(
                f"run_layer_parallel requires the vectorized backend, "
                f"not {self.backend!r}"
            )
        if algorithm not in SIM_ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}; "
                f"available: {', '.join(SIM_ALGORITHMS)}"
            )
        ifmaps, weights, stripe_height = self._validate_tensors(
            layer, ifmaps, weights, stripe_height)
        mapping = self.mapper.map_layer(layer)
        padded = pad_input(ifmaps, layer.padding)

        handles = []
        try:
            shared_out = SharedTensor.zeros(layer.out_shape)
            handles.append(shared_out)
            if shared_out.name is None:
                # inline fallback: workers would write their blocks into
                # private pickled copies and the parent would read back
                # zeros — run the (bit-identical) serial path instead
                return self.run_layer(layer, ifmaps, weights,
                                      stripe_height=stripe_height,
                                      algorithm=algorithm)
            shared_padded = SharedTensor.create(padded)
            handles.append(shared_padded)
            shared_weights = SharedTensor.create(weights)
            handles.append(shared_weights)
            runtime.map("verify.sim_block", [
                {
                    "layer": layer,
                    "padded": shared_padded,
                    "weights": shared_weights,
                    "out": shared_out,
                    "m_start": m_start,
                    "m_stop": m_stop,
                    "kernel_backend": self.kernel_backend,
                    "algorithm": algorithm,
                }
                for m_start, m_stop in ofmap_block_ranges(layer, runtime.workers)
            ])
            ofmaps = np.array(shared_out.open(), copy=True)
        finally:
            for handle in handles:
                handle.unlink()

        if algorithm == "winograd":
            stats = self._winograd_stats(layer)
        else:
            stats = self._closed_form_stats(layer, stripe_height)
        return self._finalize(layer, ofmaps, stats, mapping)

    def _run_backend(self, backend: str, layer: ConvLayer, padded: np.ndarray,
                     weights: np.ndarray, mapping: LayerMapping,
                     stripe_height: int) -> FunctionalRunResult:
        """One backend's simulation of an already-validated layer."""
        if backend == "vectorized":
            ofmaps = vectorized_layer_ofmaps(layer, padded, weights,
                                             kernel_backend=self.kernel_backend)
            stats = self._closed_form_stats(layer, stripe_height)
        else:
            ofmaps = np.zeros(layer.out_shape, dtype=np.float64)
            stats = FunctionalRunStats()
            in_per_group = layer.in_channels_per_group
            out_per_group = layer.out_channels_per_group
            for group in range(layer.groups):
                for m_local in range(out_per_group):
                    m = group * out_per_group + m_local
                    for c_local in range(in_per_group):
                        c = group * in_per_group + c_local
                        self._process_pair(
                            layer,
                            padded[c],
                            weights[m, c_local],
                            ofmaps[m],
                            stats,
                            stripe_height,
                        )

        return self._finalize(layer, ofmaps, stats, mapping)

    def run_and_check(self, layer: ConvLayer, ifmaps: np.ndarray, weights: np.ndarray,
                      tolerance: float = 1e-9,
                      algorithm: str = "direct") -> Dict[str, float]:
        """Run the simulation and compare against the reference convolution.

        Winograd runs should pass the documented
        :func:`repro.sim.winograd.winograd_tolerance` bound as ``tolerance``
        (the transforms reassociate the reduction, so the direct float
        round-off default is not the right contract).
        """
        result = self.run_layer(layer, ifmaps, weights, algorithm=algorithm)
        error = result.max_abs_error_vs_reference(ifmaps, weights)
        if error > tolerance:
            raise SimulationError(
                f"{layer.name}: functional simulation deviates from reference "
                f"(max abs error {error:.3e} > {tolerance:.3e})"
            )
        return {
            "max_abs_error": error,
            "windows_kept": float(result.stats.windows_kept),
            "chain_cycles": result.chain_cycles_estimate,
        }
