"""Whole-network functional verification of the Chain-NN dataflow.

The paper checks the hardware against a software golden model layer by
layer; this module chains that check across a full network the way the
fixed-point toolchain would run it: synthetic quantised tensors enter the
first convolution, every convolutional layer is executed by the
:class:`~repro.sim.functional.FunctionalChainSimulator` (scalar, vectorized
or cross-checked ``both`` backend) and verified against the im2col/GEMM
golden reference on the *same* inputs, and activations are re-quantised
through :mod:`repro.cnn.quantize` between stages — the "float-point-to-
fix-point simulator" loop of the paper at network scale.  Pooling layers are
applied in NumPy so inter-layer feature-map shapes stay faithful; fully
connected layers end the chain (the paper's accelerator only executes
convolutions).

With the vectorized backend this turns whole-network functional
verification of AlexNet/VGG from an overnight job into a seconds-scale step
(``repro verify --sim functional --network alexnet``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import ConvLayer, FullyConnectedLayer, PoolingLayer
from repro.cnn.network import Network
from repro.cnn.quantize import choose_format
from repro.cnn.reference import conv2d_im2col, strided_windows
from repro.core.config import ChainConfig
from repro.errors import WorkloadError
from repro.obs import trace as obs_trace
from repro.runtime import ParallelRuntime, WorkerError, shared_runtime
from repro.sim.functional import (
    FunctionalChainSimulator,
    FunctionalRunResult,
    FunctionalRunStats,
)

# NOTE: repro.analysis.winograd / repro.sim.winograd are imported lazily
# inside the Winograd code paths — repro.sim is itself imported while
# repro.engine.adapters is only partially initialised, and the
# repro.analysis package __init__ closes a cycle back into it.

#: network-level algorithm modes (``auto`` and ``winograd`` both run the
#: transform domain on every eligible layer; ineligible layers stay direct)
NETWORK_ALGORITHMS = ("direct", "winograd", "auto")


def pool2d(activations: np.ndarray, layer: PoolingLayer) -> np.ndarray:
    """Apply one pooling layer to a ``(C, H, W)`` activation tensor."""
    expected = (layer.channels, layer.in_height, layer.in_width)
    if activations.shape != expected:
        raise WorkloadError(
            f"{layer.name}: activations shape {activations.shape} does not "
            f"match {expected}"
        )
    windows = strided_windows(activations, layer.kernel_size, layer.stride,
                              layer.out_height, layer.out_width)
    if layer.mode == "max":
        return windows.max(axis=(3, 4))
    return windows.mean(axis=(3, 4))


@dataclass(frozen=True)
class StageReport:
    """Outcome of one network stage (conv, pooling, or terminating FC)."""

    name: str
    kind: str
    out_shape: tuple
    seconds: float
    #: golden-reference deviation (conv stages only, else 0.0)
    max_abs_error: float = 0.0
    windows_kept: int = 0
    chain_cycles: float = 0.0
    #: execution algorithm of a conv stage
    algorithm: str = "direct"
    #: per-stage golden bound override (Winograd stages carry the documented
    #: :func:`repro.sim.winograd.winograd_tolerance`; ``None`` falls back to
    #: the network-wide tolerance)
    tolerance: Optional[float] = None

    def describe(self) -> str:
        """One verification line, mirroring the cycle CLI output."""
        shape = "x".join(str(dim) for dim in self.out_shape)
        if self.kind != "conv":
            return f"{self.name:<10} {self.kind:<5} -> {shape}"
        suffix = " wino" if self.algorithm == "winograd" else ""
        return (f"{self.name:<10} conv  -> {shape:<12} "
                f"max|err|={self.max_abs_error:.2e} "
                f"windows={self.windows_kept:<10} "
                f"cycles={self.chain_cycles:<12.0f}{suffix}")


@dataclass
class NetworkRunResult:
    """Whole-network functional verification outcome."""

    network: str
    backend: str
    seed: int
    total_bits: int
    tolerance: float
    stages: List[StageReport] = field(default_factory=list)
    stats: FunctionalRunStats = field(default_factory=FunctionalRunStats)
    chain_cycles_estimate: float = 0.0
    seconds: float = 0.0

    @property
    def conv_stages(self) -> List[StageReport]:
        """The verified convolutional stages."""
        return [stage for stage in self.stages if stage.kind == "conv"]

    @property
    def max_abs_error(self) -> float:
        """Worst golden-reference deviation over all conv stages."""
        return max((stage.max_abs_error for stage in self.conv_stages), default=0.0)

    @property
    def passed(self) -> bool:
        """True when every conv stage stayed within its tolerance.

        Each stage checks against its own bound when set (Winograd stages),
        the network-wide tolerance otherwise.
        """
        return all(
            stage.max_abs_error
            <= (stage.tolerance if stage.tolerance is not None else self.tolerance)
            for stage in self.conv_stages
        )

    def describe(self) -> str:
        """Multi-line human-readable verification report."""
        lines = [stage.describe() for stage in self.stages]
        verdict = "PASSED" if self.passed else "FAILED"
        lines.append(
            f"functional verification {verdict}: {len(self.conv_stages)} conv "
            f"layers, max|err|={self.max_abs_error:.2e} "
            f"(tolerance {self.tolerance:.0e}), "
            f"{self.stats.windows_kept} windows kept, "
            f"{self.seconds:.2f}s [{self.backend}]"
        )
        return "\n".join(lines)


class FunctionalNetworkRunner:
    """Chains the functional simulator across every stage of a network."""

    def __init__(self, config: Optional[ChainConfig] = None,
                 backend: str = "vectorized", seed: int = 2017,
                 total_bits: int = 16, tolerance: float = 1e-6,
                 quantize_between_stages: bool = True,
                 workers: Optional[int] = None,
                 kernel_backend: Optional[str] = None,
                 algorithm: str = "direct") -> None:
        if workers is not None and workers < 1:
            raise WorkloadError(f"workers must be >= 1, got {workers}")
        if algorithm not in NETWORK_ALGORITHMS:
            raise WorkloadError(
                f"unknown algorithm {algorithm!r}; available: "
                f"{', '.join(NETWORK_ALGORITHMS)}"
            )
        self.simulator = FunctionalChainSimulator(config, backend=backend,
                                                  kernel_backend=kernel_backend)
        self.backend = backend
        self.kernel_backend = self.simulator.kernel_backend
        self.seed = seed
        self.total_bits = total_bits
        self.tolerance = tolerance
        self.quantize_between_stages = quantize_between_stages
        #: execution-algorithm mode: ``winograd``/``auto`` run the
        #: F(2x2,3x3) transform domain on every eligible (3x3 stride-1)
        #: conv layer, with the documented per-stage tolerance; ineligible
        #: layers always run direct
        self.algorithm = algorithm
        #: fan each conv layer's ofmap blocks over this many persistent
        #: workers (vectorized backend only; ``None``/1 = serial); the
        #: chained forward pass stays serial — layer N+1 needs layer N's
        #: ofmaps — but within a layer every ofmap channel is independent
        self.workers = workers
        self._pool = shared_runtime()

    # ------------------------------------------------------------------ #
    # parallel runtime lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_runtime(self) -> Optional[ParallelRuntime]:
        """The runner's persistent pool (``None`` = run serially).

        Only the vectorized backend decomposes into independent ofmap
        blocks; the scalar and cross-checking backends always run serially.
        A platform without process pools degrades to serial as well — the
        results are bit-identical either way.
        """
        if self.workers is None or self.workers <= 1:
            return None
        if self.backend != "vectorized":
            return None
        return self._pool.get(workers=self.workers)

    def close(self) -> None:
        """Detach from the shared pool (idempotent; serial use needs none)."""
        self._pool.release()

    def __enter__(self) -> "FunctionalNetworkRunner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _quantize(self, activations: np.ndarray) -> np.ndarray:
        """Snap activations onto the fixed-point grid the datapath carries."""
        if not self.quantize_between_stages:
            return activations
        return choose_format(activations, self.total_bits).quantize(activations)

    def _algorithm_for(self, layer: ConvLayer) -> str:
        """The execution algorithm this run uses for ``layer``."""
        from repro.analysis.winograd import winograd_eligible

        if self.algorithm != "direct" and winograd_eligible(layer):
            return "winograd"
        return "direct"

    def _run_conv(self, layer: ConvLayer, activations: np.ndarray,
                  weights: np.ndarray,
                  stripe_height: Optional[int],
                  algorithm: str = "direct") -> FunctionalRunResult:
        """One conv layer's simulation, parallel over ofmap blocks when on.

        The parallel path ships the padded ifmaps and weights to the workers
        once through shared memory, lets every worker write its ofmap
        channel block into a shared assembly buffer, and derives the
        dataflow counters from the same closed forms the vectorized backend
        uses — so ofmaps *and* stats are bit-identical to the serial path
        (`tests/test_runtime.py` holds this in the equivalence gate; the
        Winograd block kernel preserves the same partition invariant).
        """
        runtime = self._ensure_runtime()
        if runtime is not None:
            try:
                return self.simulator.run_layer_parallel(
                    layer, activations, weights, runtime,
                    stripe_height=stripe_height, algorithm=algorithm)
            except WorkerError:
                pass  # degradation ladder's last rung: the serial layer walk
        return self.simulator.run_layer(layer, activations, weights,
                                        stripe_height=stripe_height,
                                        algorithm=algorithm)

    def run(self, network: Network,
            stripe_heights: Optional[Dict[str, int]] = None,
            algorithms: Optional[Dict[str, str]] = None,
            progress: Optional[Callable[[StageReport], None]] = None,
            ) -> NetworkRunResult:
        """Propagate quantised activations through ``network`` and verify.

        Every conv layer's simulated ofmaps are compared against the im2col
        golden reference on the same (quantised) inputs; deviations are
        recorded per stage rather than raised, so one report covers the whole
        network.  Layers after the first fully connected layer are not
        simulated (the chain only accelerates convolutions).

        ``stripe_heights`` optionally maps layer names to searched stripe
        heights (:meth:`repro.mapping.OptimizedSchedule.stripe_heights`), so
        whole-network verification exercises the exact stripe plans an
        optimised schedule would execute; unlisted layers use the paper's
        full ``K``-row stripes.  ``algorithms`` likewise maps layer names to
        execution algorithms (:meth:`~repro.mapping.OptimizedSchedule.
        algorithms`); unlisted layers follow the runner's algorithm mode.
        Winograd stages record the documented per-stage tolerance instead of
        the network-wide one.

        ``progress`` is called with each :class:`StageReport` as it lands
        (the evaluation service streams these to clients as chunked
        progress events); it must not mutate the report.
        """
        result = NetworkRunResult(
            network=network.name,
            backend=self.backend,
            seed=self.seed,
            total_bits=self.total_bits,
            tolerance=self.tolerance,
        )
        generator = WorkloadGenerator(seed=self.seed)
        activations: Optional[np.ndarray] = None
        started = time.perf_counter()
        for layer in network.layers:
            stage_start = time.perf_counter()
            if isinstance(layer, FullyConnectedLayer):
                break
            if isinstance(layer, PoolingLayer):
                if activations is None:
                    raise WorkloadError(
                        f"{network.name}: pooling layer {layer.name} before any "
                        "convolution"
                    )
                activations = pool2d(activations, layer)
                result.stages.append(StageReport(
                    name=layer.name,
                    kind="pool",
                    out_shape=activations.shape,
                    seconds=time.perf_counter() - stage_start,
                ))
                if progress is not None:
                    progress(result.stages[-1])
                continue
            if activations is None:
                activations = self._quantize(generator.ifmaps(layer))
            if activations.shape != layer.in_shape:
                raise WorkloadError(
                    f"{network.name}: {layer.name} expects ifmaps {layer.in_shape} "
                    f"but the previous stage produced {activations.shape}"
                )
            weights = self._quantize(generator.weights(layer))
            algorithm = ((algorithms or {}).get(layer.name)
                         or self._algorithm_for(layer))
            with obs_trace.span("verify.layer", layer=layer.name,
                                network=network.name, algorithm=algorithm):
                run = self._run_conv(
                    layer, activations, weights,
                    stripe_height=(stripe_heights or {}).get(layer.name),
                    algorithm=algorithm,
                )
            if algorithm == "winograd":
                from repro.sim.winograd import winograd_tolerance

                reference = conv2d_im2col(layer, activations, weights)
                error = float(np.max(np.abs(reference - run.ofmaps)))
                stage_tolerance: Optional[float] = winograd_tolerance(reference)
            else:
                error = run.max_abs_error_vs_reference(activations, weights)
                stage_tolerance = None
            result.stages.append(StageReport(
                name=layer.name,
                kind="conv",
                out_shape=run.ofmaps.shape,
                seconds=time.perf_counter() - stage_start,
                max_abs_error=error,
                windows_kept=run.stats.windows_kept,
                chain_cycles=run.chain_cycles_estimate,
                algorithm=algorithm,
                tolerance=stage_tolerance,
            ))
            if progress is not None:
                progress(result.stages[-1])
            _accumulate(result.stats, run.stats)
            result.chain_cycles_estimate += run.chain_cycles_estimate
            # ReLU then re-quantise: the activation path every fixed-point
            # CNN stage applies between convolutions
            activations = self._quantize(np.maximum(run.ofmaps, 0.0))
        result.seconds = time.perf_counter() - started
        return result


def _accumulate(total: FunctionalRunStats, stage: FunctionalRunStats) -> None:
    """Add one layer's counters into the network totals."""
    total.windows_evaluated += stage.windows_evaluated
    total.windows_kept += stage.windows_kept
    total.stripes_processed += stage.stripes_processed
    total.pairs_processed += stage.pairs_processed
    total.pixels_streamed += stage.pixels_streamed
    total.primitive_cycles += stage.primitive_cycles
