"""Lightweight *cycle-domain* trace records for the cycle-level simulators.

The traces are intentionally simple — a list of (cycle, source, event, value)
tuples with filtering helpers — enough to debug a schedule or to dump a
text waveform, without pulling in a VCD dependency.

Two trace layers exist in this codebase and they are deliberately separate:

* **this module** records events in *simulated PE-chain cycles* — the
  ``cycle`` field is a position in the modelled hardware's time, produced
  by the cycle-accurate simulator, and has nothing to do with how long the
  simulation took to run;
* :mod:`repro.obs.trace` records *wall-clock host execution* — spans and
  instants timed with ``time.monotonic`` across the CLI, engines, cache,
  mapping search and pool workers, exported via ``--trace`` to
  Perfetto/chrome://tracing.

Rule of thumb: debugging the modelled hardware's schedule → this module;
profiling where the *software* spends time → ``repro.obs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One observed event."""

    cycle: int
    source: str
    event: str
    value: Any = None

    def format(self) -> str:
        """Render the event as a single text line."""
        value = "" if self.value is None else f" = {self.value!r}"
        return f"[{self.cycle:>8}] {self.source:<24} {self.event}{value}"


@dataclass
class TraceLog:
    """An append-only list of :class:`TraceEvent` with simple queries."""

    events: List[TraceEvent] = field(default_factory=list)
    enabled: bool = True
    limit: Optional[int] = None

    def record(self, cycle: int, source: str, event: str, value: Any = None) -> None:
        """Append one event (ignored when disabled or over the limit)."""
        if not self.enabled:
            return
        if self.limit is not None and len(self.events) >= self.limit:
            return
        self.events.append(TraceEvent(cycle=cycle, source=source, event=event, value=value))

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> List[TraceEvent]:
        """Events satisfying ``predicate``."""
        return [event for event in self.events if predicate(event)]

    def by_source(self, source: str) -> List[TraceEvent]:
        """Events emitted by one source."""
        return self.filter(lambda event: event.source == source)

    def by_event(self, name: str) -> List[TraceEvent]:
        """Events with a given event name."""
        return self.filter(lambda event: event.event == name)

    def between(self, first_cycle: int, last_cycle: int) -> List[TraceEvent]:
        """Events within a cycle window (inclusive)."""
        return self.filter(lambda event: first_cycle <= event.cycle <= last_cycle)

    def dump(self, events: Optional[Iterable[TraceEvent]] = None) -> str:
        """Render events (default: all) as a text waveform."""
        selected = list(events) if events is not None else self.events
        return "\n".join(event.format() for event in selected)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
