"""Numba JIT implementations of the hot kernels — bit-identical by design.

The compiled kernels reproduce the NumPy reference results *bit-for-bit*:

* :func:`ofmap_block_product` re-implements NumPy's pairwise float64
  summation order (the specification transcribed by
  :func:`repro.kernels.numpy_backend.pairwise_sum_reference`) inside the
  fused multiply/reduce loop, so the ofmaps match the reference — and
  therefore the scalar walk and the im2col golden — exactly.  Only the
  unrolled base case (``K^2 <= 128``, i.e. every kernel up to 11x11) is
  compiled; larger kernels delegate to the reference implementation rather
  than re-implement the recursive-halving branch.
* :func:`score_mappings` evaluates the integral-pass cost model as a scalar
  loop whose per-candidate arithmetic performs the same float64 operations
  in the same order as the reference's whole-array expressions (int64
  arithmetic is exact in both, and every int→float conversion point
  matches), so scores *and* argmins are identical.

``fastmath`` stays off everywhere: it licenses reassociation, which is
exactly what bit-identity forbids.  The module imports cleanly without
numba (``NUMBA_AVAILABLE`` False, kernels left as uncompiled Python); the
registry only routes here when the probe succeeds, and tests force the
ImportError path via the registry's memoised probe.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.kernels.registry import MappingCostParams

try:
    import numba
    from numba import njit

    NUMBA_AVAILABLE = True
    IMPORT_ERROR: Optional[str] = None
except Exception as _exc:  # ImportError, or a broken install failing later
    NUMBA_AVAILABLE = False
    IMPORT_ERROR = f"{type(_exc).__name__}: {_exc}"
    numba = None

    def njit(*_args, **_kwargs):
        """Decorator stand-in so the kernels below still define (uncompiled)."""
        def wrap(function):
            return function
        return wrap


def numba_version() -> Optional[str]:
    """The imported numba's version string (None when unavailable)."""
    return getattr(numba, "__version__", None) if NUMBA_AVAILABLE else None


@njit(cache=True)
def _pairwise_small(values, n):  # pragma: no cover - exercised compiled
    """NumPy's pairwise float64 sum for ``n <= 128`` contiguous elements.

    The two base cases of the pairwise order specification (see
    :mod:`repro.kernels.numpy_backend`): sequential from 0.0 below 8,
    the 8-accumulator unrolled body with sequential tail up to 128.
    """
    if n < 8:
        result = 0.0
        for i in range(n):
            result = result + values[i]
        return result
    r0 = values[0]
    r1 = values[1]
    r2 = values[2]
    r3 = values[3]
    r4 = values[4]
    r5 = values[5]
    r6 = values[6]
    r7 = values[7]
    i = 8
    stop = n - (n % 8)
    while i < stop:
        r0 = r0 + values[i]
        r1 = r1 + values[i + 1]
        r2 = r2 + values[i + 2]
        r3 = r3 + values[i + 3]
        r4 = r4 + values[i + 4]
        r5 = r5 + values[i + 5]
        r6 = r6 + values[i + 6]
        r7 = r7 + values[i + 7]
        i += 8
    result = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
    while i < n:
        result = result + values[i]
        i += 1
    return result


@njit(parallel=False, cache=True)
def _ofmap_block_product(windows, kern2, out_block):  # pragma: no cover
    """Fused multiply/pairwise-reduce/accumulate over one ofmap block.

    ``windows``: contiguous ``(out_h, out_w, K*K)`` float64;
    ``kern2``: contiguous ``(Mb, K*K)`` float64;
    ``out_block``: ``(Mb, out_h, out_w)`` float64, accumulated in place.

    Loop nest: spatial position outermost (the window stays hot in L1
    across the whole ofmap block), kernels inner.  One pass, no
    materialised product array — the compiled win over the reference.
    """
    out_h, out_w, n = windows.shape
    m_count = kern2.shape[0]
    buffer = np.empty(n, dtype=np.float64)
    for y in range(out_h):
        for x in range(out_w):
            window = windows[y, x]
            for m in range(m_count):
                kernel = kern2[m]
                for t in range(n):
                    buffer[t] = window[t] * kernel[t]
                out_block[m, y, x] += _pairwise_small(buffer, n)


def ofmap_block_product(plane_windows: np.ndarray, kernels: np.ndarray,
                        out_block: np.ndarray) -> None:
    """Compiled ofmap block product; same contract as the reference.

    Delegates to the NumPy reference when the merged kernel axis would hit
    the recursive-halving branch of the pairwise order (``K^2 > 128``, i.e.
    kernels larger than 11x11 — none in the mainstream set) or when the
    output slice is not contiguous.
    """
    from repro.kernels import numpy_backend

    k = kernels.shape[-1]
    n = k * k
    if n > 128 or not out_block.flags.c_contiguous:
        numpy_backend.ofmap_block_product(plane_windows, kernels, out_block)
        return
    m_count, out_h, out_w = out_block.shape
    windows = np.ascontiguousarray(plane_windows, dtype=np.float64)
    kern2 = np.ascontiguousarray(kernels, dtype=np.float64).reshape(m_count, n)
    _ofmap_block_product(windows.reshape(out_h, out_w, n), kern2, out_block)


@njit(parallel=False, cache=True)
def _winograd_group_conv(ext, u, out_block):  # pragma: no cover - compiled
    """One group's Winograd F(2x2,3x3) convolution, tile loop.

    Bit-identical to :func:`repro.kernels.numpy_backend.winograd_group_conv`
    by construction: per element the input transform performs the same
    adds in the same association, the transform-domain accumulation walks
    input channels in the same ascending order (one rounded multiply, one
    rounded add per channel), and the inverse transform repeats the
    reference's association exactly.  ``fastmath`` stays off so none of it
    is reassociated or contracted.
    """
    cg, rows, cols = ext.shape
    mb, out_h, out_w = out_block.shape
    th = (rows - 2) // 2
    tw = (cols - 2) // 2
    vbuf = np.empty((cg, 4, 4), dtype=np.float64)
    nbuf = np.empty((4, 4), dtype=np.float64)
    acc = np.empty((4, 4), dtype=np.float64)
    q0 = np.empty(4, dtype=np.float64)
    q1 = np.empty(4, dtype=np.float64)
    for ty in range(th):
        r0 = 2 * ty
        for tx in range(tw):
            c0 = 2 * tx
            # input transform B^T d B for every channel of this tile
            for ci in range(cg):
                for b in range(4):
                    d0 = ext[ci, r0, c0 + b]
                    d1 = ext[ci, r0 + 1, c0 + b]
                    d2 = ext[ci, r0 + 2, c0 + b]
                    d3 = ext[ci, r0 + 3, c0 + b]
                    nbuf[0, b] = d0 - d2
                    nbuf[1, b] = d1 + d2
                    nbuf[2, b] = d2 - d1
                    nbuf[3, b] = d1 - d3
                for a in range(4):
                    n0 = nbuf[a, 0]
                    n1 = nbuf[a, 1]
                    n2 = nbuf[a, 2]
                    n3 = nbuf[a, 3]
                    vbuf[ci, a, 0] = n0 - n2
                    vbuf[ci, a, 1] = n1 + n2
                    vbuf[ci, a, 2] = n2 - n1
                    vbuf[ci, a, 3] = n1 - n3
            for mi in range(mb):
                for a in range(4):
                    for b in range(4):
                        acc[a, b] = 0.0
                for ci in range(cg):
                    for a in range(4):
                        for b in range(4):
                            acc[a, b] += u[mi, ci, a, b] * vbuf[ci, a, b]
                # inverse transform A^T m A
                for b in range(4):
                    q0[b] = (acc[0, b] + acc[1, b]) + acc[2, b]
                    q1[b] = (acc[1, b] - acc[2, b]) - acc[3, b]
                oy = 2 * ty
                ox = 2 * tx
                if oy < out_h:
                    if ox < out_w:
                        out_block[mi, oy, ox] = (q0[0] + q0[1]) + q0[2]
                    if ox + 1 < out_w:
                        out_block[mi, oy, ox + 1] = (q0[1] - q0[2]) - q0[3]
                if oy + 1 < out_h:
                    if ox < out_w:
                        out_block[mi, oy + 1, ox] = (q1[0] + q1[1]) + q1[2]
                    if ox + 1 < out_w:
                        out_block[mi, oy + 1, ox + 1] = (q1[1] - q1[2]) - q1[3]


def winograd_group_conv(ext: np.ndarray, u: np.ndarray,
                        out_block: np.ndarray) -> None:
    """Compiled Winograd group convolution; same contract as the reference."""
    ext_c = np.ascontiguousarray(ext, dtype=np.float64)
    u_c = np.ascontiguousarray(u, dtype=np.float64)
    if out_block.flags.c_contiguous:
        _winograd_group_conv(ext_c, u_c, out_block)
        return
    scratch = np.empty(out_block.shape, dtype=np.float64)
    _winograd_group_conv(ext_c, u_c, scratch)
    out_block[:] = scratch


#: index layout of the packed scalar-parameter arrays fed to the compiled
#: scorer (numba functions take arrays, not dataclasses)
_INT_PARAMS = ("kernel_area", "channel_pairs", "per_stripe_cycles",
               "out_height", "weight_count", "batch", "ofmap_words",
               "stride", "kernel_size", "padded_width",
               "in_channels_per_group", "word_bytes",
               "wino_tiles_h", "wino_tiles_w", "wino_weight_count",
               "wino_ext_width")
_FLOAT_PARAMS = ("frequency_hz", "pe_cycle_j", "static_fraction",
                 "kmemory_access_j", "imemory_access_j", "omemory_access_j",
                 "dram_byte_j", "wino_pe_energy_factor")


@njit(parallel=False, cache=True)
def _score_mappings(p, h, c, image_major, ints, floats, out_i, out_f):  # pragma: no cover
    """Scalar-loop scorer matching the reference's float64 operation order.

    Every float operation mirrors one elementwise NumPy operation of the
    reference — same operands, same left-to-right association, same
    int64→float64 conversion points — so the results are bit-identical.
    """
    kernel_area = ints[0]
    channel_pairs = ints[1]
    per_stripe_cycles = ints[2]
    out_height = ints[3]
    weight_count = ints[4]
    batch = ints[5]
    ofmap_words = ints[6]
    stride = ints[7]
    kernel_size = ints[8]
    padded_width = ints[9]
    in_channels_per_group = ints[10]
    word_bytes = ints[11]
    frequency = floats[0]
    pe_cycle_j = floats[1]
    static_fraction = floats[2]
    kmemory_access_j = floats[3]
    imemory_access_j = floats[4]
    omemory_access_j = floats[5]
    dram_byte_j = floats[6]

    chain_scale = pe_cycle_j * (1.0 + static_fraction)
    omem_words = 2 * ofmap_words * in_channels_per_group * batch
    omem_j = omemory_access_j * np.float64(omem_words)
    weight_count_f = np.float64(weight_count)
    batch_f = np.float64(batch)

    for i in range(p.shape[0]):
        passes = -((-channel_pairs) // p[i])
        active_pes = p[i] * kernel_area
        stripes = -((-out_height) // h[i])
        conv_img = stripes * per_stripe_cycles * passes
        chunk_eff = min(c[i], passes)
        refills = -((-passes) // chunk_eff)

        if image_major[i] and refills > 1:
            load_cycles = weight_count * batch
        else:
            load_cycles = weight_count
        batch_cycles = conv_img * batch + load_cycles

        conv_img_f = np.float64(conv_img)
        batch_major_first = (conv_img * ((refills - 1) * batch + 1)) / refills
        if image_major[i]:
            first_cycles = weight_count_f + conv_img_f
        else:
            first_cycles = weight_count_f + batch_major_first

        if (not image_major[i]) and refills > 1:
            spill_words = 2 * ofmap_words * (refills - 1) * batch
        else:
            spill_words = 0

        time_batch_s = batch_cycles / frequency
        first_s = first_cycles / frequency
        fps = batch_f / time_batch_s

        chain_j = ((chain_scale * np.float64(active_pes)) * conv_img_f) * batch_f
        if stride == 1:
            kmem_repeats = stripes
        else:
            kmem_repeats = out_height
        kmem_words = (kernel_area * channel_pairs * kmem_repeats * batch
                      + load_cycles)
        kmem_j = kmemory_access_j * np.float64(kmem_words)
        stripe_rows = (h[i] - 1) * stride + kernel_size
        imem_words = (stripes * stripe_rows * padded_width
                      * channel_pairs * batch)
        imem_j = imemory_access_j * np.float64(imem_words)
        dram_words = load_cycles + spill_words
        dram_j = (dram_byte_j * np.float64(dram_words)) * np.float64(word_bytes)

        energy_j = (((chain_j + kmem_j) + imem_j) + omem_j) + dram_j

        out_i[0, i] = passes
        out_i[1, i] = active_pes
        out_i[2, i] = refills
        out_i[3, i] = stripes
        out_f[0, i] = conv_img_f
        out_f[1, i] = np.float64(load_cycles)
        out_f[2, i] = np.float64(batch_cycles)
        out_f[3, i] = first_cycles
        out_f[4, i] = time_batch_s
        out_f[5, i] = first_s
        out_f[6, i] = fps
        out_f[7, i] = np.float64(spill_words)
        out_f[8, i] = energy_j
        out_f[9, i] = energy_j * time_batch_s


def score_mappings(params: MappingCostParams, primitives: np.ndarray,
                   stripe_height: np.ndarray, chunk: np.ndarray,
                   image_major: np.ndarray) -> Dict[str, np.ndarray]:
    """Compiled candidate scorer; same contract as the reference.

    The compiled loop assumes ``per_stripe_cycles`` is integral (true for
    every layer the paper's closed forms produce — the annotation on
    :func:`repro.core.performance.per_stripe_cycles_paper` is wider than
    its values); a non-integral value delegates to the reference.
    """
    from repro.kernels import numpy_backend

    if float(params.per_stripe_cycles) != float(int(params.per_stripe_cycles)):
        return numpy_backend.score_mappings(params, primitives, stripe_height,
                                            chunk, image_major)
    p = np.ascontiguousarray(primitives, dtype=np.int64)
    h = np.ascontiguousarray(stripe_height, dtype=np.int64)
    c = np.ascontiguousarray(chunk, dtype=np.int64)
    im = np.ascontiguousarray(image_major, dtype=np.bool_)
    ints = np.array([int(getattr(params, name)) for name in _INT_PARAMS],
                    dtype=np.int64)
    floats = np.array([float(getattr(params, name)) for name in _FLOAT_PARAMS],
                      dtype=np.float64)
    n = p.shape[0]
    out_i = np.empty((4, n), dtype=np.int64)
    out_f = np.empty((10, n), dtype=np.float64)
    _score_mappings(p, h, c, im, ints, floats, out_i, out_f)
    return _unpack_score_columns(out_i, out_f)


def _unpack_score_columns(out_i: np.ndarray,
                          out_f: np.ndarray) -> Dict[str, np.ndarray]:
    return {
        "passes": out_i[0],
        "active_pes": out_i[1],
        "kmemory_refills": out_i[2],
        "stripes": out_i[3],
        "conv_cycles_per_image": out_f[0],
        "kernel_load_cycles": out_f[1],
        "batch_cycles": out_f[2],
        "first_image_cycles": out_f[3],
        "time_per_batch_s": out_f[4],
        "first_image_latency_s": out_f[5],
        "fps": out_f[6],
        "spill_dram_words": out_f[7],
        "energy_per_batch_j": out_f[8],
        "edp_js": out_f[9],
    }


@njit(parallel=False, cache=True)
def _score_mappings_winograd(p, c, image_major, ints, floats,
                             out_i, out_f):  # pragma: no cover - compiled
    """Scalar-loop Winograd scorer matching the reference's float64 order.

    Same bit-identity discipline as :func:`_score_mappings`, applied to the
    transform-domain closed forms of
    :func:`repro.kernels.numpy_backend.score_mappings_winograd`.
    """
    kernel_area = ints[0]
    channel_pairs = ints[1]
    batch = ints[5]
    ofmap_words = ints[6]
    in_channels_per_group = ints[10]
    word_bytes = ints[11]
    tiles_h = ints[12]
    tiles_w = ints[13]
    weight_count = ints[14]
    ext_width = ints[15]
    frequency = floats[0]
    pe_cycle_j = floats[1]
    static_fraction = floats[2]
    kmemory_access_j = floats[3]
    imemory_access_j = floats[4]
    omemory_access_j = floats[5]
    dram_byte_j = floats[6]
    pe_energy_factor = floats[7]

    chain_scale = (pe_cycle_j * pe_energy_factor) * (1.0 + static_fraction)
    omem_words = 2 * ofmap_words * in_channels_per_group * batch
    omem_j = omemory_access_j * np.float64(omem_words)
    weight_count_f = np.float64(weight_count)
    batch_f = np.float64(batch)
    # 2 multiply cycles + 1 transform-overhead cycle per tile, plus the
    # direct model's K^2-1 stripe fill
    per_stripe = 3 * tiles_w + (kernel_area - 1)

    for i in range(p.shape[0]):
        passes = -((-channel_pairs) // p[i])
        active_pes = p[i] * kernel_area
        stripes = tiles_h
        conv_img = stripes * per_stripe * passes
        chunk_eff = min(c[i], passes)
        refills = -((-passes) // chunk_eff)

        if image_major[i] and refills > 1:
            load_cycles = weight_count * batch
        else:
            load_cycles = weight_count
        batch_cycles = conv_img * batch + load_cycles

        conv_img_f = np.float64(conv_img)
        batch_major_first = (conv_img * ((refills - 1) * batch + 1)) / refills
        if image_major[i]:
            first_cycles = weight_count_f + conv_img_f
        else:
            first_cycles = weight_count_f + batch_major_first

        if (not image_major[i]) and refills > 1:
            spill_words = 2 * ofmap_words * (refills - 1) * batch
        else:
            spill_words = 0

        time_batch_s = batch_cycles / frequency
        first_s = first_cycles / frequency
        fps = batch_f / time_batch_s

        chain_j = ((chain_scale * np.float64(active_pes)) * conv_img_f) * batch_f
        kmem_words = (16 * channel_pairs * stripes * batch + load_cycles)
        kmem_j = kmemory_access_j * np.float64(kmem_words)
        imem_words = stripes * 4 * ext_width * channel_pairs * batch
        imem_j = imemory_access_j * np.float64(imem_words)
        dram_words = load_cycles + spill_words
        dram_j = (dram_byte_j * np.float64(dram_words)) * np.float64(word_bytes)

        energy_j = (((chain_j + kmem_j) + imem_j) + omem_j) + dram_j

        out_i[0, i] = passes
        out_i[1, i] = active_pes
        out_i[2, i] = refills
        out_i[3, i] = stripes
        out_f[0, i] = conv_img_f
        out_f[1, i] = np.float64(load_cycles)
        out_f[2, i] = np.float64(batch_cycles)
        out_f[3, i] = first_cycles
        out_f[4, i] = time_batch_s
        out_f[5, i] = first_s
        out_f[6, i] = fps
        out_f[7, i] = np.float64(spill_words)
        out_f[8, i] = energy_j
        out_f[9, i] = energy_j * time_batch_s


def score_mappings_winograd(params: MappingCostParams, primitives: np.ndarray,
                            chunk: np.ndarray,
                            image_major: np.ndarray) -> Dict[str, np.ndarray]:
    """Compiled Winograd candidate scorer; same contract as the reference."""
    p = np.ascontiguousarray(primitives, dtype=np.int64)
    c = np.ascontiguousarray(chunk, dtype=np.int64)
    im = np.ascontiguousarray(image_major, dtype=np.bool_)
    ints = np.array([int(getattr(params, name)) for name in _INT_PARAMS],
                    dtype=np.int64)
    floats = np.array([float(getattr(params, name)) for name in _FLOAT_PARAMS],
                      dtype=np.float64)
    n = p.shape[0]
    out_i = np.empty((4, n), dtype=np.int64)
    out_f = np.empty((10, n), dtype=np.float64)
    _score_mappings_winograd(p, c, im, ints, floats, out_i, out_f)
    return _unpack_score_columns(out_i, out_f)
