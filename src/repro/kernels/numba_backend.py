"""Numba JIT implementations of the hot kernels — bit-identical by design.

The compiled kernels reproduce the NumPy reference results *bit-for-bit*:

* :func:`ofmap_block_product` re-implements NumPy's pairwise float64
  summation order (the specification transcribed by
  :func:`repro.kernels.numpy_backend.pairwise_sum_reference`) inside the
  fused multiply/reduce loop, so the ofmaps match the reference — and
  therefore the scalar walk and the im2col golden — exactly.  Only the
  unrolled base case (``K^2 <= 128``, i.e. every kernel up to 11x11) is
  compiled; larger kernels delegate to the reference implementation rather
  than re-implement the recursive-halving branch.
* :func:`score_mappings` evaluates the integral-pass cost model as a scalar
  loop whose per-candidate arithmetic performs the same float64 operations
  in the same order as the reference's whole-array expressions (int64
  arithmetic is exact in both, and every int→float conversion point
  matches), so scores *and* argmins are identical.

``fastmath`` stays off everywhere: it licenses reassociation, which is
exactly what bit-identity forbids.  The module imports cleanly without
numba (``NUMBA_AVAILABLE`` False, kernels left as uncompiled Python); the
registry only routes here when the probe succeeds, and tests force the
ImportError path via the registry's memoised probe.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.kernels.registry import MappingCostParams

try:
    import numba
    from numba import njit

    NUMBA_AVAILABLE = True
    IMPORT_ERROR: Optional[str] = None
except Exception as _exc:  # ImportError, or a broken install failing later
    NUMBA_AVAILABLE = False
    IMPORT_ERROR = f"{type(_exc).__name__}: {_exc}"
    numba = None

    def njit(*_args, **_kwargs):
        """Decorator stand-in so the kernels below still define (uncompiled)."""
        def wrap(function):
            return function
        return wrap


def numba_version() -> Optional[str]:
    """The imported numba's version string (None when unavailable)."""
    return getattr(numba, "__version__", None) if NUMBA_AVAILABLE else None


@njit(cache=True)
def _pairwise_small(values, n):  # pragma: no cover - exercised compiled
    """NumPy's pairwise float64 sum for ``n <= 128`` contiguous elements.

    The two base cases of the pairwise order specification (see
    :mod:`repro.kernels.numpy_backend`): sequential from 0.0 below 8,
    the 8-accumulator unrolled body with sequential tail up to 128.
    """
    if n < 8:
        result = 0.0
        for i in range(n):
            result = result + values[i]
        return result
    r0 = values[0]
    r1 = values[1]
    r2 = values[2]
    r3 = values[3]
    r4 = values[4]
    r5 = values[5]
    r6 = values[6]
    r7 = values[7]
    i = 8
    stop = n - (n % 8)
    while i < stop:
        r0 = r0 + values[i]
        r1 = r1 + values[i + 1]
        r2 = r2 + values[i + 2]
        r3 = r3 + values[i + 3]
        r4 = r4 + values[i + 4]
        r5 = r5 + values[i + 5]
        r6 = r6 + values[i + 6]
        r7 = r7 + values[i + 7]
        i += 8
    result = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
    while i < n:
        result = result + values[i]
        i += 1
    return result


@njit(parallel=False, cache=True)
def _ofmap_block_product(windows, kern2, out_block):  # pragma: no cover
    """Fused multiply/pairwise-reduce/accumulate over one ofmap block.

    ``windows``: contiguous ``(out_h, out_w, K*K)`` float64;
    ``kern2``: contiguous ``(Mb, K*K)`` float64;
    ``out_block``: ``(Mb, out_h, out_w)`` float64, accumulated in place.

    Loop nest: spatial position outermost (the window stays hot in L1
    across the whole ofmap block), kernels inner.  One pass, no
    materialised product array — the compiled win over the reference.
    """
    out_h, out_w, n = windows.shape
    m_count = kern2.shape[0]
    buffer = np.empty(n, dtype=np.float64)
    for y in range(out_h):
        for x in range(out_w):
            window = windows[y, x]
            for m in range(m_count):
                kernel = kern2[m]
                for t in range(n):
                    buffer[t] = window[t] * kernel[t]
                out_block[m, y, x] += _pairwise_small(buffer, n)


def ofmap_block_product(plane_windows: np.ndarray, kernels: np.ndarray,
                        out_block: np.ndarray) -> None:
    """Compiled ofmap block product; same contract as the reference.

    Delegates to the NumPy reference when the merged kernel axis would hit
    the recursive-halving branch of the pairwise order (``K^2 > 128``, i.e.
    kernels larger than 11x11 — none in the mainstream set) or when the
    output slice is not contiguous.
    """
    from repro.kernels import numpy_backend

    k = kernels.shape[-1]
    n = k * k
    if n > 128 or not out_block.flags.c_contiguous:
        numpy_backend.ofmap_block_product(plane_windows, kernels, out_block)
        return
    m_count, out_h, out_w = out_block.shape
    windows = np.ascontiguousarray(plane_windows, dtype=np.float64)
    kern2 = np.ascontiguousarray(kernels, dtype=np.float64).reshape(m_count, n)
    _ofmap_block_product(windows.reshape(out_h, out_w, n), kern2, out_block)


#: index layout of the packed scalar-parameter arrays fed to the compiled
#: scorer (numba functions take arrays, not dataclasses)
_INT_PARAMS = ("kernel_area", "channel_pairs", "per_stripe_cycles",
               "out_height", "weight_count", "batch", "ofmap_words",
               "stride", "kernel_size", "padded_width",
               "in_channels_per_group", "word_bytes")
_FLOAT_PARAMS = ("frequency_hz", "pe_cycle_j", "static_fraction",
                 "kmemory_access_j", "imemory_access_j", "omemory_access_j",
                 "dram_byte_j")


@njit(parallel=False, cache=True)
def _score_mappings(p, h, c, image_major, ints, floats, out_i, out_f):  # pragma: no cover
    """Scalar-loop scorer matching the reference's float64 operation order.

    Every float operation mirrors one elementwise NumPy operation of the
    reference — same operands, same left-to-right association, same
    int64→float64 conversion points — so the results are bit-identical.
    """
    kernel_area = ints[0]
    channel_pairs = ints[1]
    per_stripe_cycles = ints[2]
    out_height = ints[3]
    weight_count = ints[4]
    batch = ints[5]
    ofmap_words = ints[6]
    stride = ints[7]
    kernel_size = ints[8]
    padded_width = ints[9]
    in_channels_per_group = ints[10]
    word_bytes = ints[11]
    frequency = floats[0]
    pe_cycle_j = floats[1]
    static_fraction = floats[2]
    kmemory_access_j = floats[3]
    imemory_access_j = floats[4]
    omemory_access_j = floats[5]
    dram_byte_j = floats[6]

    chain_scale = pe_cycle_j * (1.0 + static_fraction)
    omem_words = 2 * ofmap_words * in_channels_per_group * batch
    omem_j = omemory_access_j * np.float64(omem_words)
    weight_count_f = np.float64(weight_count)
    batch_f = np.float64(batch)

    for i in range(p.shape[0]):
        passes = -((-channel_pairs) // p[i])
        active_pes = p[i] * kernel_area
        stripes = -((-out_height) // h[i])
        conv_img = stripes * per_stripe_cycles * passes
        chunk_eff = min(c[i], passes)
        refills = -((-passes) // chunk_eff)

        if image_major[i] and refills > 1:
            load_cycles = weight_count * batch
        else:
            load_cycles = weight_count
        batch_cycles = conv_img * batch + load_cycles

        conv_img_f = np.float64(conv_img)
        batch_major_first = (conv_img * ((refills - 1) * batch + 1)) / refills
        if image_major[i]:
            first_cycles = weight_count_f + conv_img_f
        else:
            first_cycles = weight_count_f + batch_major_first

        if (not image_major[i]) and refills > 1:
            spill_words = 2 * ofmap_words * (refills - 1) * batch
        else:
            spill_words = 0

        time_batch_s = batch_cycles / frequency
        first_s = first_cycles / frequency
        fps = batch_f / time_batch_s

        chain_j = ((chain_scale * np.float64(active_pes)) * conv_img_f) * batch_f
        if stride == 1:
            kmem_repeats = stripes
        else:
            kmem_repeats = out_height
        kmem_words = (kernel_area * channel_pairs * kmem_repeats * batch
                      + load_cycles)
        kmem_j = kmemory_access_j * np.float64(kmem_words)
        stripe_rows = (h[i] - 1) * stride + kernel_size
        imem_words = (stripes * stripe_rows * padded_width
                      * channel_pairs * batch)
        imem_j = imemory_access_j * np.float64(imem_words)
        dram_words = load_cycles + spill_words
        dram_j = (dram_byte_j * np.float64(dram_words)) * np.float64(word_bytes)

        energy_j = (((chain_j + kmem_j) + imem_j) + omem_j) + dram_j

        out_i[0, i] = passes
        out_i[1, i] = active_pes
        out_i[2, i] = refills
        out_i[3, i] = stripes
        out_f[0, i] = conv_img_f
        out_f[1, i] = np.float64(load_cycles)
        out_f[2, i] = np.float64(batch_cycles)
        out_f[3, i] = first_cycles
        out_f[4, i] = time_batch_s
        out_f[5, i] = first_s
        out_f[6, i] = fps
        out_f[7, i] = np.float64(spill_words)
        out_f[8, i] = energy_j
        out_f[9, i] = energy_j * time_batch_s


def score_mappings(params: MappingCostParams, primitives: np.ndarray,
                   stripe_height: np.ndarray, chunk: np.ndarray,
                   image_major: np.ndarray) -> Dict[str, np.ndarray]:
    """Compiled candidate scorer; same contract as the reference.

    The compiled loop assumes ``per_stripe_cycles`` is integral (true for
    every layer the paper's closed forms produce — the annotation on
    :func:`repro.core.performance.per_stripe_cycles_paper` is wider than
    its values); a non-integral value delegates to the reference.
    """
    from repro.kernels import numpy_backend

    if float(params.per_stripe_cycles) != float(int(params.per_stripe_cycles)):
        return numpy_backend.score_mappings(params, primitives, stripe_height,
                                            chunk, image_major)
    p = np.ascontiguousarray(primitives, dtype=np.int64)
    h = np.ascontiguousarray(stripe_height, dtype=np.int64)
    c = np.ascontiguousarray(chunk, dtype=np.int64)
    im = np.ascontiguousarray(image_major, dtype=np.bool_)
    ints = np.array([int(getattr(params, name)) for name in _INT_PARAMS],
                    dtype=np.int64)
    floats = np.array([float(getattr(params, name)) for name in _FLOAT_PARAMS],
                      dtype=np.float64)
    n = p.shape[0]
    out_i = np.empty((4, n), dtype=np.int64)
    out_f = np.empty((10, n), dtype=np.float64)
    _score_mappings(p, h, c, im, ints, floats, out_i, out_f)
    return {
        "passes": out_i[0],
        "active_pes": out_i[1],
        "kmemory_refills": out_i[2],
        "stripes": out_i[3],
        "conv_cycles_per_image": out_f[0],
        "kernel_load_cycles": out_f[1],
        "batch_cycles": out_f[2],
        "first_image_cycles": out_f[3],
        "time_per_batch_s": out_f[4],
        "first_image_latency_s": out_f[5],
        "fps": out_f[6],
        "spill_dram_words": out_f[7],
        "energy_per_batch_j": out_f[8],
        "edp_js": out_f[9],
    }
