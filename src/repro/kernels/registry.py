"""Kernel-backend registry: named implementations of the two hot loops.

The library's per-element inner kernels — the functional simulator's ofmap
block product (:mod:`repro.sim.functional_vectorized`) and the mapping-
candidate scorer (:class:`repro.analysis.batch.MappingBatchEvaluator`) —
dispatch through this registry so the *same* call sites can run either the
NumPy reference implementation or a compiled (Numba JIT) equivalent.  The
contract every backend must honour is **bit-identity**: identical float64
results, not merely allclose, which requires reproducing NumPy's pairwise
summation order exactly (see :mod:`repro.kernels.numpy_backend` for the
order specification and :mod:`repro.kernels.numba_backend` for the compiled
re-implementation).

Selection precedence (first match wins):

1. an explicit ``name`` argument at the call site,
2. the process-wide override set by :func:`set_default_backend`
   (the CLI's ``--kernel-backend`` flag),
3. the ``REPRO_KERNEL_BACKEND`` environment variable,
4. autodetection: ``numba`` when importable, else ``numpy``.

Requesting ``numba`` on a machine without it degrades to the ``numpy``
backend with a one-per-process warning; the returned backend records the
degradation in :attr:`KernelBackend.fallback_from` so callers (and tests)
can distinguish "numpy by choice" from "numpy because numba is missing".
Unknown names raise :class:`~repro.errors.ConfigurationError`.

Backend identity participates in engine fingerprints through
:func:`backend_fingerprint`, so the on-disk ``RunCache`` never serves a
record produced by one backend to a run configured for another — even
though the backends are bit-identical, the cache stays conservative.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics

#: environment variable naming the default kernel backend
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: backend names the registry accepts (a future C extension slots in here)
KNOWN_BACKENDS = ("numpy", "numba")


@dataclass(frozen=True)
class MappingCostParams:
    """Layer/hardware constants of one mapping-candidate scoring problem.

    Everything :meth:`repro.analysis.batch.MappingBatchEvaluator.evaluate`
    needs besides the candidate columns themselves, flattened to plain
    scalars so any backend — NumPy expressions or a compiled scalar loop —
    can consume them.  ``per_stripe_cycles`` is integral for every layer the
    paper's closed forms produce; the compiled backend relies on that and
    delegates to the reference implementation otherwise.
    """

    kernel_area: int
    channel_pairs: int
    per_stripe_cycles: int
    out_height: int
    weight_count: int
    batch: int
    ofmap_words: int
    stride: int
    kernel_size: int
    padded_width: int
    in_channels_per_group: int
    frequency_hz: float
    word_bytes: int
    pe_cycle_j: float
    static_fraction: float
    kmemory_access_j: float
    imemory_access_j: float
    omemory_access_j: float
    dram_byte_j: float
    # ---- Winograd F(2x2,3x3) extension (see repro.analysis.winograd) --- #
    # zero/identity defaults mean "layer not eligible"; the batch evaluator
    # fills them via winograd_cost_fields() and only dispatches
    # score_mappings_winograd when they are set
    wino_tiles_h: int = 0
    wino_tiles_w: int = 0
    wino_weight_count: int = 0
    wino_ext_width: int = 0
    wino_pe_energy_factor: float = 1.0


@dataclass(frozen=True)
class KernelBackend:
    """One named implementation of the hot kernels.

    ``ofmap_block_product(plane_windows, kernels, out_block)`` accumulates
    one ifmap channel's contribution to a block of ofmap channels;
    ``score_mappings(params, primitives, stripe_height, chunk, image_major)``
    scores mapping-candidate columns.  The Winograd pair mirrors them for
    the transform-domain execution mode:
    ``winograd_group_conv(ext, u, out_block)`` computes one group's
    F(2x2,3x3) ofmap block from tile-aligned inputs and transformed
    filters, and ``score_mappings_winograd(params, primitives, chunk,
    image_major)`` scores Winograd-algorithm candidates (the stripe-height
    axis is pinned by the tile grid).  ``fallback_from`` names the backend
    that was *requested* when the registry had to degrade (requested numba,
    numba missing); ``None`` means the backend runs as asked.
    """

    name: str
    version: Optional[str]
    ofmap_block_product: Callable[..., None]
    score_mappings: Callable[..., Dict[str, np.ndarray]]
    winograd_group_conv: Callable[..., None]
    score_mappings_winograd: Callable[..., Dict[str, np.ndarray]]
    fallback_from: Optional[str] = None


#: memoised numba probe: (available, version, import error) — tests force
#: the ImportError path by assigning a (False, None, "...") triple here
_numba_probe: Optional[Tuple[bool, Optional[str], Optional[str]]] = None

#: process-wide override installed by the CLI (``--kernel-backend``)
_default_override: Optional[str] = None

#: one warning per process when a requested backend degrades
_warned_fallback = False

#: memoised backend objects by name
_backends: Dict[str, KernelBackend] = {}


def _probe_numba() -> Tuple[bool, Optional[str], Optional[str]]:
    """(available, version, error) for the numba toolchain, memoised."""
    global _numba_probe
    if _numba_probe is None:
        try:
            from repro.kernels import numba_backend
        except Exception as exc:  # pragma: no cover - defensive
            _numba_probe = (False, None, f"{type(exc).__name__}: {exc}")
        else:
            if numba_backend.NUMBA_AVAILABLE:
                _numba_probe = (True, numba_backend.numba_version(), None)
            else:
                _numba_probe = (False, None, numba_backend.IMPORT_ERROR)
    return _numba_probe


def numba_version() -> Optional[str]:
    """The importable numba's version string, or ``None`` when absent."""
    return _probe_numba()[1]


def available_backends() -> Tuple[str, ...]:
    """The backend names that can actually run on this machine."""
    if _probe_numba()[0]:
        return ("numpy", "numba")
    return ("numpy",)


def set_default_backend(name: Optional[str]) -> None:
    """Install (or clear, with ``None``) the process-wide backend override.

    The CLI routes ``--kernel-backend`` here; the override outranks the
    ``REPRO_KERNEL_BACKEND`` environment variable.  Validation is deferred
    to :func:`get_backend` so an override naming an unavailable backend
    degrades (with the warning) exactly like the other selection paths.
    """
    global _default_override
    if name is not None:
        name = name.strip().lower()
        if name not in KNOWN_BACKENDS:
            raise ConfigurationError(
                f"unknown kernel backend {name!r}; expected one of "
                f"{', '.join(KNOWN_BACKENDS)}"
            )
    _default_override = name


def _requested_name(name: Optional[str]) -> Optional[str]:
    """The requested backend under the selection precedence (None = auto)."""
    for candidate in (name, _default_override,
                      os.environ.get(KERNEL_BACKEND_ENV)):
        if candidate:
            return candidate.strip().lower()
    return None


def _numpy_backend() -> KernelBackend:
    if "numpy" not in _backends:
        from repro.kernels import numpy_backend
        _backends["numpy"] = KernelBackend(
            name="numpy",
            version=np.__version__,
            ofmap_block_product=numpy_backend.ofmap_block_product,
            score_mappings=numpy_backend.score_mappings,
            winograd_group_conv=numpy_backend.winograd_group_conv,
            score_mappings_winograd=numpy_backend.score_mappings_winograd,
        )
    return _backends["numpy"]


def _numba_backend() -> KernelBackend:
    if "numba" not in _backends:
        from repro.kernels import numba_backend
        _backends["numba"] = KernelBackend(
            name="numba",
            version=numba_backend.numba_version(),
            ofmap_block_product=numba_backend.ofmap_block_product,
            score_mappings=numba_backend.score_mappings,
            winograd_group_conv=numba_backend.winograd_group_conv,
            score_mappings_winograd=numba_backend.score_mappings_winograd,
        )
    return _backends["numba"]


def _warn_fallback(requested: str, error: Optional[str]) -> None:
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    detail = f" ({error})" if error else ""
    warnings.warn(
        f"kernel backend {requested!r} is unavailable{detail}; "
        f"falling back to the numpy reference backend "
        f"(install the extra: pip install -e .[numba])",
        RuntimeWarning,
        stacklevel=3,
    )


def _counted(backend: KernelBackend) -> KernelBackend:
    """Count one dispatch to ``backend`` in the observability registry."""
    obs_metrics.REGISTRY.counter("kernels.dispatch." + backend.name).inc()
    return backend


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """The kernel backend the selection precedence resolves to.

    ``name=None`` applies the override/env/autodetect chain; an explicit
    name short-circuits it.  Requesting ``numba`` without numba installed
    returns the numpy backend flagged with ``fallback_from="numba"``.
    Every resolution counts as one ``kernels.dispatch.<name>`` metric, so
    traces show which implementation actually served the hot loops.
    """
    requested = _requested_name(name)
    if requested is None:
        return _counted(_numba_backend() if _probe_numba()[0]
                        else _numpy_backend())
    if requested not in KNOWN_BACKENDS:
        raise ConfigurationError(
            f"unknown kernel backend {requested!r}; expected one of "
            f"{', '.join(KNOWN_BACKENDS)}"
        )
    if requested == "numba":
        available, _version, error = _probe_numba()
        if not available:
            _warn_fallback(requested, error)
            return _counted(replace(_numpy_backend(), fallback_from="numba"))
        return _counted(_numba_backend())
    return _counted(_numpy_backend())


def resolve_backend_name(name: Optional[str] = None) -> str:
    """The *effective* backend name (after any fallback) for ``name``."""
    return get_backend(name).name


def backend_fingerprint(name: Optional[str] = None) -> Dict[str, Optional[str]]:
    """Cache-key fragment identifying the effective kernel backend.

    Folding this into engine/search fingerprints keeps ``RunCache`` records
    segregated per backend (and, for numba, per numba version).
    """
    backend = get_backend(name)
    fingerprint: Dict[str, Optional[str]] = {"backend": backend.name}
    if backend.name == "numba":
        fingerprint["numba"] = backend.version
    return fingerprint


def warmup(name: Optional[str] = None) -> str:
    """Run tiny inputs through both kernels of the resolved backend.

    For the numba backend this triggers (or loads the on-disk cache of) the
    JIT compilation once, so worker processes pay the compile cost at pool
    start-up instead of inside the first real task.  Returns the effective
    backend name.
    """
    backend = get_backend(name)
    windows = np.arange(2 * 2 * 3 * 3, dtype=np.float64).reshape(2, 2, 3, 3)
    kernels = np.linspace(-1.0, 1.0, 2 * 3 * 3).reshape(2, 3, 3)
    out = np.zeros((2, 2, 2), dtype=np.float64)
    backend.ofmap_block_product(windows, kernels, out)
    params = MappingCostParams(
        kernel_area=9, channel_pairs=4, per_stripe_cycles=21, out_height=4,
        weight_count=72, batch=2, ofmap_words=32, stride=1, kernel_size=3,
        padded_width=6, in_channels_per_group=2, frequency_hz=700e6,
        word_bytes=2, pe_cycle_j=1e-12, static_fraction=0.1,
        kmemory_access_j=1e-12, imemory_access_j=1e-12,
        omemory_access_j=1e-12, dram_byte_j=1e-11,
    )
    backend.score_mappings(
        params,
        np.array([1, 2], dtype=np.int64),
        np.array([1, 3], dtype=np.int64),
        np.array([1, 2], dtype=np.int64),
        np.array([True, False]),
    )
    # Winograd kernels: a 2x2 tile grid (6x6 extended plane) and the same
    # scoring problem with the transform-domain fields filled in
    ext = np.zeros((2, 6, 6), dtype=np.float64)
    ext[:, :5, :5] = np.arange(2 * 5 * 5, dtype=np.float64).reshape(2, 5, 5)
    u = np.linspace(-1.0, 1.0, 2 * 2 * 16).reshape(2, 2, 4, 4)
    wino_out = np.zeros((2, 3, 3), dtype=np.float64)
    backend.winograd_group_conv(ext, u, wino_out)
    wino_params = replace(params, wino_tiles_h=2, wino_tiles_w=2,
                          wino_weight_count=128, wino_ext_width=6,
                          wino_pe_energy_factor=1.25)
    backend.score_mappings_winograd(
        wino_params,
        np.array([1, 2], dtype=np.int64),
        np.array([1, 2], dtype=np.int64),
        np.array([True, False]),
    )
    return backend.name
