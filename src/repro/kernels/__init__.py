"""Pluggable compiled-kernel backends for the two hottest inner loops.

``repro.kernels`` hosts named, bit-identical implementations of the
functional simulator's ofmap block product and the mapping-candidate
scorer: the ``numpy`` reference (the specification) and a ``numba`` JIT
backend with graceful fallback when numba is not installed.  See
:mod:`repro.kernels.registry` for the selection precedence
(explicit argument > ``--kernel-backend`` CLI override >
``REPRO_KERNEL_BACKEND`` environment variable > autodetection).
"""

from repro.kernels.registry import (
    KERNEL_BACKEND_ENV,
    KNOWN_BACKENDS,
    KernelBackend,
    MappingCostParams,
    available_backends,
    backend_fingerprint,
    get_backend,
    numba_version,
    resolve_backend_name,
    set_default_backend,
    warmup,
)

__all__ = [
    "KERNEL_BACKEND_ENV",
    "KNOWN_BACKENDS",
    "KernelBackend",
    "MappingCostParams",
    "available_backends",
    "backend_fingerprint",
    "get_backend",
    "numba_version",
    "resolve_backend_name",
    "set_default_backend",
    "warmup",
]
