"""Pluggable compiled-kernel backends for the hottest inner loops.

``repro.kernels`` hosts named implementations of the functional
simulator's ofmap block product, the mapping-candidate scorer, and their
Winograd F(2x2,3x3) counterparts (``winograd_group_conv``,
``score_mappings_winograd``): the ``numpy`` reference (the specification)
and a ``numba`` JIT backend with graceful fallback when numba is not
installed.  The direct kernels are bit-identical to NumPy's pairwise
reduction order; the Winograd kernels are bit-identical *to each other*
across backends and block partitions, and tolerance-checked against the
im2col golden (the transforms reassociate the reduction).  See
:mod:`repro.kernels.registry` for the selection precedence
(explicit argument > ``--kernel-backend`` CLI override >
``REPRO_KERNEL_BACKEND`` environment variable > autodetection).
"""

from repro.kernels.registry import (
    KERNEL_BACKEND_ENV,
    KNOWN_BACKENDS,
    KernelBackend,
    MappingCostParams,
    available_backends,
    backend_fingerprint,
    get_backend,
    numba_version,
    resolve_backend_name,
    set_default_backend,
    warmup,
)

__all__ = [
    "KERNEL_BACKEND_ENV",
    "KNOWN_BACKENDS",
    "KernelBackend",
    "MappingCostParams",
    "available_backends",
    "backend_fingerprint",
    "get_backend",
    "numba_version",
    "resolve_backend_name",
    "set_default_backend",
    "warmup",
]
