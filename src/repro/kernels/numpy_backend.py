"""NumPy reference implementations of the hot kernels.

This backend *is* the specification: every other backend must reproduce its
float64 results bit-for-bit.  The code here is the inner arithmetic that
previously lived inline in :mod:`repro.sim.functional_vectorized` and
:class:`repro.analysis.batch.MappingBatchEvaluator`, moved behind the
:mod:`repro.kernels` registry unchanged.

**The reduction-order contract.**  Bit-identity between the vectorized
ofmap path, the scalar per-window walk and any compiled backend hinges on
one NumPy implementation detail: ``np.sum`` over a contiguous float64 axis
of length ``n`` uses *pairwise summation* with an unrolled base case.  The
exact order, which :func:`pairwise_sum_reference` transcribes (and
``tests/test_kernels.py`` pins against ``np.sum`` for every ``n`` up to
128):

* ``n < 8`` — a sequential left-to-right sum starting from ``0.0``;
* ``8 <= n <= 128`` — eight running accumulators seeded from the first
  eight elements, advanced eight-at-a-time over the unrolled body, combined
  as ``((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))``, then a sequential tail;
* ``n > 128`` — recursive halving (the split point rounded down to a
  multiple of 8).

The kernel axes are merged before the reduction (``reshape(..., K*K)``)
precisely so the reduction runs over the same ``K^2`` contiguous elements
in this order as the scalar ``np.sum(window * kernel)``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.kernels.registry import MappingCostParams


def pairwise_sum_reference(values: np.ndarray) -> float:
    """Pure-Python transcription of NumPy's pairwise float64 sum order.

    Bit-identical to ``float(np.sum(values))`` for contiguous 1D float64
    input — the order specification the compiled backends implement.
    """
    n = values.shape[0]
    if n < 8:
        result = 0.0
        for i in range(n):
            result = result + values[i]
        return result
    if n <= 128:
        r = [float(values[i]) for i in range(8)]
        i = 8
        while i < n - (n % 8):
            for j in range(8):
                r[j] = r[j] + values[i + j]
            i += 8
        result = ((r[0] + r[1]) + (r[2] + r[3])) + ((r[4] + r[5]) + (r[6] + r[7]))
        while i < n:
            result = result + values[i]
            i += 1
        return result
    half = n // 2
    half -= half % 8
    return pairwise_sum_reference(values[:half]) + pairwise_sum_reference(values[half:])


def ofmap_block_product(plane_windows: np.ndarray, kernels: np.ndarray,
                        out_block: np.ndarray) -> None:
    """Accumulate one ifmap channel's contribution to an ofmap block.

    ``plane_windows`` is the channel's contiguous ``(out_h, out_w, K, K)``
    float64 kept-window tensor, ``kernels`` the ``(Mb, K, K)`` float64
    kernels of the ofmap block, ``out_block`` the ``(Mb, out_h, out_w)``
    float64 ofmap slice to accumulate into (``+=``).

    One broadcasted multiply followed by a merged-kernel-axis reduction:
    the product is contiguous, so the ``axis=-1`` sum runs over the same
    ``K^2`` contiguous elements with the same pairwise order NumPy uses for
    the scalar per-window ``np.sum(window * kernel)``.
    """
    m_count, out_h, out_w = out_block.shape
    k = kernels.shape[-1]
    # contiguous (Mb, out_h, out_w, K, K) product; merging the kernel axes
    # before the sum keeps NumPy's pairwise reduction order identical to
    # the scalar per-window np.sum
    product = plane_windows[None] * kernels[:, None, None]
    sums = np.sum(product.reshape(m_count, out_h, out_w, k * k), axis=-1)
    # release the block product before the caller's next block allocates:
    # keeping it alive across iterations doubles peak memory
    del product
    out_block += sums


def score_mappings(params: MappingCostParams, primitives: np.ndarray,
                   stripe_height: np.ndarray, chunk: np.ndarray,
                   image_major: np.ndarray) -> Dict[str, np.ndarray]:
    """Score mapping-candidate columns; the integral-pass cost model.

    Inputs are equally-long 1D arrays (``image_major`` boolean); the cost
    model is documented on :class:`repro.analysis.batch.MappingBatchEvaluator`.
    Returns the :data:`repro.analysis.batch.MAPPING_RESULT_COLUMNS` dict —
    ``passes``/``active_pes``/``kmemory_refills``/``stripes`` int64,
    everything else float64.
    """
    p = np.asarray(primitives, dtype=np.int64)
    h = np.asarray(stripe_height, dtype=np.int64)
    c = np.asarray(chunk, dtype=np.int64)
    image_major = np.asarray(image_major, dtype=bool)
    batch = params.batch

    passes = -(-params.channel_pairs // p)
    active_pes = p * params.kernel_area
    stripes = -(-params.out_height // h)
    conv_img = stripes * params.per_stripe_cycles * passes
    chunk_eff = np.minimum(c, passes)
    refills = -(-passes // chunk_eff)

    weight_count = params.weight_count
    reloads = image_major & (refills > 1)
    load_cycles = np.where(reloads, weight_count * batch, weight_count)
    batch_cycles = conv_img * batch + load_cycles

    # first-image completion: image-major finishes after one image's
    # convolutions; chunk-major-over-batch finishes (refills-1)/refills
    # of the way into the batch (kernels always fully loaded by then)
    batch_major_first = conv_img * ((refills - 1) * batch + 1) / refills
    first_cycles = weight_count + np.where(image_major, conv_img,
                                           batch_major_first)

    spills = (~image_major) & (refills > 1)
    spill_words = np.where(spills,
                           2 * params.ofmap_words * (refills - 1) * batch, 0)

    frequency = params.frequency_hz
    time_batch_s = batch_cycles / frequency
    first_s = first_cycles / frequency
    fps = batch / time_batch_s

    # ---- energy (joules per batch) ------------------------------------ #
    chain_j = (params.pe_cycle_j * (1.0 + params.static_fraction)
               * active_pes * conv_img * batch)
    # kMemory: one weight read per MAC slot per stripe revisit, plus the
    # write traffic of the (re)loads
    if params.stride == 1:
        kmem_repeats = stripes
    else:
        kmem_repeats = np.full_like(stripes, params.out_height)
    kmem_words = (params.kernel_area * params.channel_pairs * kmem_repeats
                  * batch + load_cycles)
    kmem_j = params.kmemory_access_j * kmem_words
    # iMemory: every pass streams its stripe bands (overlap rows re-read)
    stripe_rows = (h - 1) * params.stride + params.kernel_size
    imem_words = (stripes * stripe_rows * params.padded_width
                  * params.channel_pairs * batch)
    imem_j = params.imemory_access_j * imem_words
    # oMemory: read-modify-write of the partial sum per kept window
    omem_words = 2 * params.ofmap_words * params.in_channels_per_group * batch
    omem_j = params.omemory_access_j * np.full(p.shape, float(omem_words))
    # DRAM: weight (re)loads plus partial-sum spills
    dram_words = load_cycles + spill_words
    dram_j = params.dram_byte_j * dram_words * params.word_bytes

    energy_j = chain_j + kmem_j + imem_j + omem_j + dram_j
    return {
        "passes": passes,
        "active_pes": active_pes,
        "kmemory_refills": refills,
        "stripes": stripes,
        "conv_cycles_per_image": conv_img.astype(np.float64),
        "kernel_load_cycles": load_cycles.astype(np.float64),
        "batch_cycles": batch_cycles.astype(np.float64),
        "first_image_cycles": np.asarray(first_cycles, dtype=np.float64),
        "time_per_batch_s": time_batch_s,
        "first_image_latency_s": first_s,
        "fps": fps,
        "spill_dram_words": spill_words.astype(np.float64),
        "energy_per_batch_j": energy_j,
        "edp_js": energy_j * time_batch_s,
    }
