"""NumPy reference implementations of the hot kernels.

This backend *is* the specification: every other backend must reproduce its
float64 results bit-for-bit.  The code here is the inner arithmetic that
previously lived inline in :mod:`repro.sim.functional_vectorized` and
:class:`repro.analysis.batch.MappingBatchEvaluator`, moved behind the
:mod:`repro.kernels` registry unchanged.

**The reduction-order contract.**  Bit-identity between the vectorized
ofmap path, the scalar per-window walk and any compiled backend hinges on
one NumPy implementation detail: ``np.sum`` over a contiguous float64 axis
of length ``n`` uses *pairwise summation* with an unrolled base case.  The
exact order, which :func:`pairwise_sum_reference` transcribes (and
``tests/test_kernels.py`` pins against ``np.sum`` for every ``n`` up to
128):

* ``n < 8`` — a sequential left-to-right sum starting from ``0.0``;
* ``8 <= n <= 128`` — eight running accumulators seeded from the first
  eight elements, advanced eight-at-a-time over the unrolled body, combined
  as ``((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))``, then a sequential tail;
* ``n > 128`` — recursive halving (the split point rounded down to a
  multiple of 8).

The kernel axes are merged before the reduction (``reshape(..., K*K)``)
precisely so the reduction runs over the same ``K^2`` contiguous elements
in this order as the scalar ``np.sum(window * kernel)``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.kernels.registry import MappingCostParams


def pairwise_sum_reference(values: np.ndarray) -> float:
    """Pure-Python transcription of NumPy's pairwise float64 sum order.

    Bit-identical to ``float(np.sum(values))`` for contiguous 1D float64
    input — the order specification the compiled backends implement.
    """
    n = values.shape[0]
    if n < 8:
        result = 0.0
        for i in range(n):
            result = result + values[i]
        return result
    if n <= 128:
        r = [float(values[i]) for i in range(8)]
        i = 8
        while i < n - (n % 8):
            for j in range(8):
                r[j] = r[j] + values[i + j]
            i += 8
        result = ((r[0] + r[1]) + (r[2] + r[3])) + ((r[4] + r[5]) + (r[6] + r[7]))
        while i < n:
            result = result + values[i]
            i += 1
        return result
    half = n // 2
    half -= half % 8
    return pairwise_sum_reference(values[:half]) + pairwise_sum_reference(values[half:])


def ofmap_block_product(plane_windows: np.ndarray, kernels: np.ndarray,
                        out_block: np.ndarray) -> None:
    """Accumulate one ifmap channel's contribution to an ofmap block.

    ``plane_windows`` is the channel's contiguous ``(out_h, out_w, K, K)``
    float64 kept-window tensor, ``kernels`` the ``(Mb, K, K)`` float64
    kernels of the ofmap block, ``out_block`` the ``(Mb, out_h, out_w)``
    float64 ofmap slice to accumulate into (``+=``).

    One broadcasted multiply followed by a merged-kernel-axis reduction:
    the product is contiguous, so the ``axis=-1`` sum runs over the same
    ``K^2`` contiguous elements with the same pairwise order NumPy uses for
    the scalar per-window ``np.sum(window * kernel)``.
    """
    m_count, out_h, out_w = out_block.shape
    k = kernels.shape[-1]
    # contiguous (Mb, out_h, out_w, K, K) product; merging the kernel axes
    # before the sum keeps NumPy's pairwise reduction order identical to
    # the scalar per-window np.sum
    product = plane_windows[None] * kernels[:, None, None]
    sums = np.sum(product.reshape(m_count, out_h, out_w, k * k), axis=-1)
    # release the block product before the caller's next block allocates:
    # keeping it alive across iterations doubles peak memory
    del product
    out_block += sums


def winograd_group_conv(ext: np.ndarray, u: np.ndarray,
                        out_block: np.ndarray) -> None:
    """One group's Winograd F(2x2,3x3) convolution, vectorized.

    ``ext`` is the group's ``(Cg, 2*th+2, 2*tw+2)`` float64 input plane,
    zero-extended to the 4x4 tile grid; ``u`` the ``(Mb, Cg, 4, 4)`` float64
    *transformed* filters (``G g G^T``, see
    :func:`repro.sim.winograd.transform_filters`); ``out_block`` the
    ``(Mb, out_h, out_w)`` float64 ofmap block, **assigned** (not
    accumulated).

    Unlike the direct kernels, the Winograd backends are not bit-identical
    to the im2col golden — the transforms reassociate the 3x3 reduction —
    but the numpy and numba implementations *are* bit-identical to each
    other: the input transform is explicit adds, the transform-domain
    accumulation runs over input channels in ascending order element by
    element, and the inverse transform uses the same association, so any
    partition of the ofmap block (serial, parallel workers, either backend)
    produces the same bits.
    """
    cg = ext.shape[0]
    mb, out_h, out_w = out_block.shape
    th = (ext.shape[1] - 2) // 2
    tw = (ext.shape[2] - 2) // 2
    tiles = th * tw
    # 4x4 input tiles at stride 2: (Cg, th, tw, 4, 4)
    d = np.lib.stride_tricks.sliding_window_view(
        ext, (4, 4), axis=(1, 2))[:, ::2, ::2]
    # input transform B^T d B — B has entries in {0, +-1}, so the transform
    # is pure adds; rows first, then columns, association fixed for the
    # cross-backend bit-identity contract
    n = np.empty((cg, th, tw, 4, 4), dtype=np.float64)
    n[..., 0, :] = d[..., 0, :] - d[..., 2, :]
    n[..., 1, :] = d[..., 1, :] + d[..., 2, :]
    n[..., 2, :] = d[..., 2, :] - d[..., 1, :]
    n[..., 3, :] = d[..., 1, :] - d[..., 3, :]
    v = np.empty_like(n)
    v[..., 0] = n[..., 0] - n[..., 2]
    v[..., 1] = n[..., 1] + n[..., 2]
    v[..., 2] = n[..., 2] - n[..., 1]
    v[..., 3] = n[..., 1] - n[..., 3]
    v2 = v.reshape(cg, tiles, 16)
    u2 = np.ascontiguousarray(u, dtype=np.float64).reshape(mb, cg, 16)
    # transform-domain Hadamard product, accumulated over input channels in
    # ascending order (one rounded multiply + one rounded add per element
    # per channel — the order every backend and block partition reproduces)
    m = np.zeros((mb, tiles, 16), dtype=np.float64)
    for ci in range(cg):
        m += u2[:, ci, :][:, None, :] * v2[ci]
    # inverse transform A^T m A — again pure adds with fixed association
    m4 = m.reshape(mb, tiles, 4, 4)
    q = np.empty((mb, tiles, 2, 4), dtype=np.float64)
    q[..., 0, :] = (m4[..., 0, :] + m4[..., 1, :]) + m4[..., 2, :]
    q[..., 1, :] = (m4[..., 1, :] - m4[..., 2, :]) - m4[..., 3, :]
    y = np.empty((mb, tiles, 2, 2), dtype=np.float64)
    y[..., 0] = (q[..., 0] + q[..., 1]) + q[..., 2]
    y[..., 1] = (q[..., 1] - q[..., 2]) - q[..., 3]
    # scatter the 2x2 tiles back onto the ofmap grid and crop ragged edges
    full = y.reshape(mb, th, tw, 2, 2).transpose(0, 1, 3, 2, 4)
    out_block[:] = full.reshape(mb, 2 * th, 2 * tw)[:, :out_h, :out_w]


#: Winograd tile cost on a K^2=9-PE primitive — keep in lock-step with the
#: documented model in :mod:`repro.analysis.winograd` (which cannot be
#: imported here without a cycle: analysis.batch imports repro.kernels)
_WINO_MULT_CYCLES_PER_TILE = 2    # ceil(16 transform-domain multiplies / 9 PEs)
_WINO_XFORM_CYCLES_PER_TILE = 1   # overlapped input+output transform slot
_WINO_PLANE_WORDS = 16            # 4x4 transformed filter plane


def score_mappings_winograd(params: MappingCostParams, primitives: np.ndarray,
                            chunk: np.ndarray,
                            image_major: np.ndarray) -> Dict[str, np.ndarray]:
    """Score Winograd-algorithm mapping candidates; same metric vector.

    Mirrors :func:`score_mappings` term by term with the transform-domain
    substitutions documented in :mod:`repro.analysis.winograd`: one stripe
    is one 2-output-row tile row (``stripes = wino_tiles_h``, the
    stripe-height axis is pinned), each tile costs 2 multiply cycles plus 1
    transform-overhead cycle, kernel memory holds 16-word transformed
    planes (``wino_weight_count``), 4 input rows stream per stripe, and the
    PE energy term carries the wider-accumulator factor.
    """
    p = np.asarray(primitives, dtype=np.int64)
    c = np.asarray(chunk, dtype=np.int64)
    image_major = np.asarray(image_major, dtype=bool)
    batch = params.batch

    passes = -(-params.channel_pairs // p)
    active_pes = p * params.kernel_area
    stripes = np.full_like(p, params.wino_tiles_h)
    per_stripe = ((_WINO_MULT_CYCLES_PER_TILE + _WINO_XFORM_CYCLES_PER_TILE)
                  * params.wino_tiles_w + (params.kernel_area - 1))
    conv_img = stripes * per_stripe * passes
    chunk_eff = np.minimum(c, passes)
    refills = -(-passes // chunk_eff)

    weight_count = params.wino_weight_count
    reloads = image_major & (refills > 1)
    load_cycles = np.where(reloads, weight_count * batch, weight_count)
    batch_cycles = conv_img * batch + load_cycles

    batch_major_first = conv_img * ((refills - 1) * batch + 1) / refills
    first_cycles = weight_count + np.where(image_major, conv_img,
                                           batch_major_first)

    spills = (~image_major) & (refills > 1)
    spill_words = np.where(spills,
                           2 * params.ofmap_words * (refills - 1) * batch, 0)

    frequency = params.frequency_hz
    time_batch_s = batch_cycles / frequency
    first_s = first_cycles / frequency
    fps = batch / time_batch_s

    # ---- energy (joules per batch) ------------------------------------ #
    # wider transform-domain accumulators scale the PE term
    chain_j = (params.pe_cycle_j * params.wino_pe_energy_factor
               * (1.0 + params.static_fraction)
               * active_pes * conv_img * batch)
    # kMemory: one transformed-plane word per multiply slot per tile-row
    # revisit, plus the (re)load write traffic
    kmem_words = (_WINO_PLANE_WORDS * params.channel_pairs * stripes
                  * batch + load_cycles)
    kmem_j = params.kmemory_access_j * kmem_words
    # iMemory: each tile row streams its 4 input rows of the tile-aligned
    # extended plane
    imem_words = (stripes * 4 * params.wino_ext_width
                  * params.channel_pairs * batch)
    imem_j = params.imemory_access_j * imem_words
    # oMemory: read-modify-write of the partial sum, unchanged
    omem_words = 2 * params.ofmap_words * params.in_channels_per_group * batch
    omem_j = params.omemory_access_j * np.full(p.shape, float(omem_words))
    # DRAM: transformed-plane (re)loads plus partial-sum spills
    dram_words = load_cycles + spill_words
    dram_j = params.dram_byte_j * dram_words * params.word_bytes

    energy_j = chain_j + kmem_j + imem_j + omem_j + dram_j
    return {
        "passes": passes,
        "active_pes": active_pes,
        "kmemory_refills": refills,
        "stripes": stripes,
        "conv_cycles_per_image": conv_img.astype(np.float64),
        "kernel_load_cycles": load_cycles.astype(np.float64),
        "batch_cycles": batch_cycles.astype(np.float64),
        "first_image_cycles": np.asarray(first_cycles, dtype=np.float64),
        "time_per_batch_s": time_batch_s,
        "first_image_latency_s": first_s,
        "fps": fps,
        "spill_dram_words": spill_words.astype(np.float64),
        "energy_per_batch_j": energy_j,
        "edp_js": energy_j * time_batch_s,
    }


def score_mappings(params: MappingCostParams, primitives: np.ndarray,
                   stripe_height: np.ndarray, chunk: np.ndarray,
                   image_major: np.ndarray) -> Dict[str, np.ndarray]:
    """Score mapping-candidate columns; the integral-pass cost model.

    Inputs are equally-long 1D arrays (``image_major`` boolean); the cost
    model is documented on :class:`repro.analysis.batch.MappingBatchEvaluator`.
    Returns the :data:`repro.analysis.batch.MAPPING_RESULT_COLUMNS` dict —
    ``passes``/``active_pes``/``kmemory_refills``/``stripes`` int64,
    everything else float64.
    """
    p = np.asarray(primitives, dtype=np.int64)
    h = np.asarray(stripe_height, dtype=np.int64)
    c = np.asarray(chunk, dtype=np.int64)
    image_major = np.asarray(image_major, dtype=bool)
    batch = params.batch

    passes = -(-params.channel_pairs // p)
    active_pes = p * params.kernel_area
    stripes = -(-params.out_height // h)
    conv_img = stripes * params.per_stripe_cycles * passes
    chunk_eff = np.minimum(c, passes)
    refills = -(-passes // chunk_eff)

    weight_count = params.weight_count
    reloads = image_major & (refills > 1)
    load_cycles = np.where(reloads, weight_count * batch, weight_count)
    batch_cycles = conv_img * batch + load_cycles

    # first-image completion: image-major finishes after one image's
    # convolutions; chunk-major-over-batch finishes (refills-1)/refills
    # of the way into the batch (kernels always fully loaded by then)
    batch_major_first = conv_img * ((refills - 1) * batch + 1) / refills
    first_cycles = weight_count + np.where(image_major, conv_img,
                                           batch_major_first)

    spills = (~image_major) & (refills > 1)
    spill_words = np.where(spills,
                           2 * params.ofmap_words * (refills - 1) * batch, 0)

    frequency = params.frequency_hz
    time_batch_s = batch_cycles / frequency
    first_s = first_cycles / frequency
    fps = batch / time_batch_s

    # ---- energy (joules per batch) ------------------------------------ #
    chain_j = (params.pe_cycle_j * (1.0 + params.static_fraction)
               * active_pes * conv_img * batch)
    # kMemory: one weight read per MAC slot per stripe revisit, plus the
    # write traffic of the (re)loads
    if params.stride == 1:
        kmem_repeats = stripes
    else:
        kmem_repeats = np.full_like(stripes, params.out_height)
    kmem_words = (params.kernel_area * params.channel_pairs * kmem_repeats
                  * batch + load_cycles)
    kmem_j = params.kmemory_access_j * kmem_words
    # iMemory: every pass streams its stripe bands (overlap rows re-read)
    stripe_rows = (h - 1) * params.stride + params.kernel_size
    imem_words = (stripes * stripe_rows * params.padded_width
                  * params.channel_pairs * batch)
    imem_j = params.imemory_access_j * imem_words
    # oMemory: read-modify-write of the partial sum per kept window
    omem_words = 2 * params.ofmap_words * params.in_channels_per_group * batch
    omem_j = params.omemory_access_j * np.full(p.shape, float(omem_words))
    # DRAM: weight (re)loads plus partial-sum spills
    dram_words = load_cycles + spill_words
    dram_j = params.dram_byte_j * dram_words * params.word_bytes

    energy_j = chain_j + kmem_j + imem_j + omem_j + dram_j
    return {
        "passes": passes,
        "active_pes": active_pes,
        "kmemory_refills": refills,
        "stripes": stripes,
        "conv_cycles_per_image": conv_img.astype(np.float64),
        "kernel_load_cycles": load_cycles.astype(np.float64),
        "batch_cycles": batch_cycles.astype(np.float64),
        "first_image_cycles": np.asarray(first_cycles, dtype=np.float64),
        "time_per_batch_s": time_batch_s,
        "first_image_latency_s": first_s,
        "fps": fps,
        "spill_dram_words": spill_words.astype(np.float64),
        "energy_per_batch_j": energy_j,
        "edp_js": energy_j * time_batch_s,
    }
