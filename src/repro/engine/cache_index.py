"""Sqlite index over the :class:`~repro.engine.cache.RunCache` directory.

The file-per-record layout is what makes the cache crash-safe (a record
appears atomically or not at all), but every *aggregate* operation on it —
``cache stats``, ``__len__``, LRU eviction under a size bound — was a
directory walk: ``glob`` + ``stat`` over every record, O(n) per call and
O(n²) across a bounded sweep.  :class:`CacheIndex` keeps a WAL-mode sqlite
database (``index.db`` beside the records) mapping

    key -> (payload file name, size, mtime, engine fingerprint)

so those aggregates become single indexed queries: entry/byte totals are
one ``SELECT count(*), sum(size)``, the LRU victim scan is an indexed
``ORDER BY mtime`` walk that stops at the bound, and a hit's recency bump
is one ``UPDATE``.  **Payloads stay content-addressed JSON files** — the
index is an accelerator, never the source of truth:

* WAL mode + a generous busy timeout make one database safe for 8+
  concurrent reader/writer processes (each process opens its own
  connection; a connection inherited across ``fork`` is discarded, not
  shared);
* every operation funnels through one executor that **degrades on any
  sqlite error**: the index marks itself unavailable, warns once per
  process, and every caller falls back to the original directory-walk
  path — a broken or unwritable index can cost speed, never correctness;
* records written by older versions (or with the index disabled via
  ``$REPRO_CACHE_INDEX=0``) are picked up by :meth:`RunCache.migrate`,
  which is idempotent and safe to run against a live server because
  single-record reads/writes never touch the advisory lock it runs under.
"""

from __future__ import annotations

import os
import sqlite3
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import metrics as obs_metrics

__all__ = ["CacheIndex", "INDEX_FILENAME", "INDEX_ENV", "index_enabled"]

#: the index database, stored beside the record files it indexes
INDEX_FILENAME = "index.db"

#: set to ``0`` to disable the sqlite index (directory walks throughout)
INDEX_ENV = "REPRO_CACHE_INDEX"

#: how long one statement waits on a locked database before the index
#: degrades (WAL keeps writers brief, so contention this long is a hang)
_BUSY_TIMEOUT_S = 10.0

#: one unavailable-index warning per process, not one per operation
_warned_unavailable = False

# lookup latency through the index (the file-scan comparison lives in
# BENCH_serve.json; this is the live number --metrics reports)
_M_LOOKUP = obs_metrics.histogram("cache.index_lookup_s")
_M_FALLBACKS = obs_metrics.counter("cache.index_fallbacks")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    key    TEXT PRIMARY KEY,
    path   TEXT NOT NULL,
    size   INTEGER NOT NULL,
    mtime  REAL NOT NULL,
    engine TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS records_by_mtime ON records (mtime, key);
"""


def index_enabled(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether new :class:`~repro.engine.cache.RunCache` instances index."""
    env = environ if environ is not None else os.environ
    return env.get(INDEX_ENV, "1") != "0"


class CacheIndex:
    """Process-local handle on the shared ``index.db`` of one cache root.

    All methods are **total**: on any sqlite failure they disable the
    index for this instance (one warning per process) and return the
    neutral value (``None`` / ``0`` / ``[]``), so callers can always fall
    back to the directory-walk path without exception handling.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.path = self.root / INDEX_FILENAME
        self.available = True
        self._conn: Optional[sqlite3.Connection] = None
        self._pid: Optional[int] = None

    # ------------------------------------------------------------------ #
    # connection management
    # ------------------------------------------------------------------ #
    def _connect(self, create: bool) -> Optional[sqlite3.Connection]:
        """This process's connection (``None`` when degraded/absent).

        ``create=False`` read paths never materialise the database (or the
        cache directory) just to report emptiness.  A connection inherited
        across ``fork`` is dropped without closing — the parent owns those
        file descriptors — and reopened under the child's pid.
        """
        if not self.available:
            return None
        if self._conn is not None:
            if self._pid == os.getpid():
                return self._conn
            self._conn = None  # forked copy: abandon, never close
        if not create and not self.path.is_file():
            return None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(str(self.path), timeout=_BUSY_TIMEOUT_S,
                                   isolation_level=None)
            conn.execute(f"PRAGMA busy_timeout = {int(_BUSY_TIMEOUT_S * 1000)}")
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
            conn.executescript(_SCHEMA)
        except sqlite3.Error as error:
            self._disable(error)
            return None
        self._conn = conn
        self._pid = os.getpid()
        return conn

    def _disable(self, error: BaseException) -> None:
        """Mark the index unusable; callers fall back to directory walks."""
        global _warned_unavailable
        self.available = False
        self._conn = None
        _M_FALLBACKS.inc()
        if not _warned_unavailable:
            _warned_unavailable = True
            warnings.warn(
                f"cache index {self.path} unavailable "
                f"({type(error).__name__}: {error}); falling back to "
                "directory scans (records stay intact; 'repro cache migrate' "
                "rebuilds the index)",
                RuntimeWarning,
                stacklevel=4,
            )

    def _run(self, sql: str, params: Tuple[Any, ...] = (),
             create: bool = False) -> Optional[sqlite3.Cursor]:
        conn = self._connect(create)
        if conn is None:
            return None
        try:
            return conn.execute(sql, params)
        except sqlite3.Error as error:
            self._disable(error)
            return None

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - already torn down
                pass
        self._conn = None

    # ------------------------------------------------------------------ #
    # record maintenance (called from RunCache's write paths)
    # ------------------------------------------------------------------ #
    def add(self, key: str, name: str, size: int, mtime: float,
            engine: str = "") -> None:
        """Insert or refresh one record row (upsert; engine sticks)."""
        self._run(
            "INSERT INTO records (key, path, size, mtime, engine) "
            "VALUES (?, ?, ?, ?, ?) ON CONFLICT(key) DO UPDATE SET "
            "path = excluded.path, size = excluded.size, "
            "mtime = excluded.mtime, engine = CASE "
            "WHEN excluded.engine = '' THEN records.engine "
            "ELSE excluded.engine END",
            (key, name, int(size), float(mtime), engine),
            create=True,
        )

    def touch(self, key: str, mtime: float) -> bool:
        """Bump a row's recency; ``False`` when the key is not indexed."""
        cursor = self._run("UPDATE records SET mtime = ? WHERE key = ?",
                           (float(mtime), key))
        return cursor is not None and cursor.rowcount > 0

    def remove(self, key: str) -> None:
        self._run("DELETE FROM records WHERE key = ?", (key,))

    def clear(self) -> None:
        self._run("DELETE FROM records")

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """Indexed row for ``key`` (``None`` on miss or degraded index)."""
        started = time.perf_counter()
        cursor = self._run(
            "SELECT path, size, mtime, engine FROM records WHERE key = ?",
            (key,))
        row = cursor.fetchone() if cursor is not None else None
        _M_LOOKUP.observe(time.perf_counter() - started)
        if row is None:
            return None
        return {"path": row[0], "size": row[1], "mtime": row[2],
                "engine": row[3]}

    def totals(self) -> Optional[Tuple[int, int]]:
        """``(entries, bytes)`` in one indexed query (``None`` = degraded)."""
        cursor = self._run(
            "SELECT count(*), coalesce(sum(size), 0) FROM records")
        if cursor is None:
            return None
        row = cursor.fetchone()
        return int(row[0]), int(row[1])

    def keys(self) -> Optional[List[str]]:
        cursor = self._run("SELECT key FROM records")
        if cursor is None:
            return None
        return [row[0] for row in cursor.fetchall()]

    def lru(self) -> Iterator[Tuple[str, str, int, float]]:
        """``(key, file name, size, mtime)`` oldest-first (eviction order).

        Fetched eagerly so eviction's deletes never interleave with an open
        read cursor on the same connection.
        """
        cursor = self._run(
            "SELECT key, path, size, mtime FROM records ORDER BY mtime, key")
        if cursor is None:
            return iter(())
        return iter(cursor.fetchall())
