"""Parallel, cached evaluation of design-point sweeps.

:class:`SweepExecutor` turns a list of :class:`~repro.core.config.ChainConfig`
design points into :class:`~repro.engine.base.RunRecord` results through one
engine, with two orthogonal accelerations:

* **memoisation** — every evaluation is keyed by a content hash (see
  :mod:`repro.engine.cache`); cached points are served from disk without
  touching the engine, so re-running a sweep after adding one point only
  evaluates the new point;
* **parallelism** — uncached points are fanned out over the **persistent**
  :class:`~repro.runtime.ParallelRuntime`.  Workers are created once per
  executor and reused across calls: each worker caches its engine (rebuilt
  from the registry name, so engines themselves never cross the process
  boundary) and the broadcast network, which means a follow-up sweep on the
  same executor pays neither pool construction nor network pickling again.
  When a pool cannot be created (restricted sandboxes, missing semaphores)
  the executor silently degrades to the serial path — results are identical
  either way, only the wall-clock differs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.engine.base import Engine, RunRecord
from repro.engine.cache import (
    RunCache,
    canonical_json,
    grid_key,
    run_key,
    workload_fingerprint,
)
from repro.engine.registry import create_engine
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime import ParallelRuntime, WorkerError, shared_runtime

# parent-side sweep throughput counters (also fed when the points actually
# evaluate inside pool workers, so the CLI stats footer needs no shipping)
_M_POINTS = obs_metrics.counter("sweep.points")
_M_POINTS_CACHED = obs_metrics.counter("sweep.points_cached")
_M_POINTS_EVALUATED = obs_metrics.counter("sweep.points_evaluated")
_M_GRID_POINTS = obs_metrics.counter("sweep.grid_points")
_M_GRID_CHUNKS = obs_metrics.counter("sweep.grid_chunks")
_M_GRID_CHUNKS_CACHED = obs_metrics.counter("sweep.grid_chunks_cached")

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.batch import BatchSweepResult, DesignGrid

#: grid points per columnar chunk: 8192 points x ~14 float64 working columns
#: is under 1 MB, so a chunk's whole working set stays cache-resident while
#: still amortising the per-chunk constant-folding overhead
GRID_CHUNK_POINTS = 8192


class SweepExecutor:
    """Evaluates many design points through one engine, cached and parallel."""

    def __init__(
        self,
        engine: str | Engine = "analytical",
        network: Optional[Network] = None,
        batch: int = 128,
        engine_kwargs: Optional[Dict] = None,
        cache: Optional[RunCache] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        if isinstance(engine, Engine):
            # a pre-built engine can be used serially but cannot be shipped to
            # workers by name; parallel runs require a registry name
            self.engine_name = engine.name
            self._engine: Optional[Engine] = engine
            self.engine_kwargs: Dict = {}
            self._parallelizable = False
        else:
            self.engine_name = engine
            self.engine_kwargs = dict(engine_kwargs or {})
            self._engine = None
            # only the default engines are re-registered when a worker imports
            # repro.engine; custom registrations would be missing under the
            # spawn/forkserver start methods, so those engines stay serial
            from repro.engine.adapters import DEFAULT_ENGINES

            self._parallelizable = engine in DEFAULT_ENGINES
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.network = network
        self.batch = batch
        self.cache = cache
        self.max_workers = max_workers
        #: the process-wide worker pool handle, created lazily on the first
        #: parallel call and shared with every other runtime consumer (the
        #: executor's --workers only sizes its own calls)
        self._pool = shared_runtime()
        #: network fingerprints already broadcast, per live pool instance
        #: (a replaced pool has fresh workers that know no networks)
        self._broadcast: set = set()
        self._broadcast_pool: Optional[ParallelRuntime] = None

    # ------------------------------------------------------------------ #
    # engine access
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> Engine:
        """The executor's in-process engine instance (lazily created)."""
        if self._engine is None:
            self._engine = create_engine(self.engine_name, **self.engine_kwargs)
        return self._engine

    # ------------------------------------------------------------------ #
    # runtime lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Detach from the shared pool (idempotent; serial use needs none)."""
        self._pool.release()
        self._broadcast = set()
        self._broadcast_pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, config: Optional[ChainConfig],
                 network: Optional[Network] = None,
                 batch: Optional[int] = None) -> RunRecord:
        """Evaluate a single point (through the cache when one is attached)."""
        return self.run([config], network=network, batch=batch, parallel=False)[0]

    def run(
        self,
        configs: Sequence[Optional[ChainConfig]],
        network: Optional[Network] = None,
        batch: Optional[int] = None,
        parallel: bool = False,
    ) -> List[RunRecord]:
        """Evaluate ``configs`` in order; identical results serial or parallel.

        Cached points never reach a worker.  The returned list is aligned
        with ``configs`` regardless of completion order.
        """
        batch = self.batch if batch is None else batch
        return self.run_points([(config, batch) for config in configs],
                               network=network, parallel=parallel)

    def run_batches(
        self,
        config: Optional[ChainConfig],
        batches: Sequence[int],
        network: Optional[Network] = None,
        parallel: bool = False,
    ) -> List[RunRecord]:
        """Evaluate one configuration at many batch sizes (the Sec. V.B axis)."""
        return self.run_points([(config, batch) for batch in batches],
                               network=network, parallel=parallel)

    def run_points(
        self,
        points: Sequence[Tuple[Optional[ChainConfig], int]],
        network: Optional[Network] = None,
        parallel: bool = False,
    ) -> List[RunRecord]:
        """Evaluate arbitrary (config, batch) points, cached and parallel."""
        network = network or self.network
        if network is None:
            raise ValueError("SweepExecutor needs a network (constructor or run())")

        with obs_trace.span("sweep.run_points", engine=self.engine_name,
                            network=network.name, points=len(points)) as sweep_span:
            keys = [run_key(self.engine, network, config, batch)
                    for config, batch in points]
            records: List[Optional[RunRecord]] = [None] * len(points)
            pending: List[Tuple[int, Optional[ChainConfig], int]] = []
            for index, (point, key) in enumerate(zip(points, keys)):
                cached = self.cache.get(key) if self.cache is not None else None
                if cached is not None:
                    records[index] = cached
                else:
                    pending.append((index, point[0], point[1]))
            _M_POINTS.inc(len(points))
            _M_POINTS_CACHED.inc(len(points) - len(pending))
            _M_POINTS_EVALUATED.inc(len(pending))
            sweep_span.set(cached=len(points) - len(pending))

            if pending:
                fresh = self._run_pending(pending, network, parallel)
                for (index, _, _), record in zip(pending, fresh):
                    record = record.with_cache_info(cache_key=keys[index],
                                                    cached=False)
                    if self.cache is not None:
                        self.cache.put(keys[index], record)
                    records[index] = record
        return [record for record in records if record is not None]

    def run_grid(
        self,
        grid: "DesignGrid",
        network: Optional[Network] = None,
        base: Optional[ChainConfig] = None,
        chunk_size: Optional[int] = None,
    ) -> "BatchSweepResult":
        """Evaluate a design grid through the engine's columnar fast path.

        The grid is split into cache-aware chunks (:data:`GRID_CHUNK_POINTS`
        by default) and each chunk goes through ``engine.evaluate_batch`` —
        the struct-of-arrays fast path for engines that support it, the
        per-point fallback loop otherwise.  With a cache attached, chunks are
        memoised whole (one record per chunk rather than one per point, which
        is what makes 10^5-point grids cacheable at all); re-running a sweep
        after editing one axis only re-evaluates the chunks that changed.
        """
        from repro.analysis.batch import BatchSweepResult

        network = network or self.network
        if network is None:
            raise ValueError("SweepExecutor needs a network (constructor or run_grid())")
        chunk_size = GRID_CHUNK_POINTS if chunk_size is None else chunk_size

        results: List["BatchSweepResult"] = []
        for chunk in grid.chunks(chunk_size):
            key = grid_key(self.engine, network, base, chunk)
            cached = self.cache.get(key) if self.cache is not None else None
            _M_GRID_CHUNKS.inc()
            _M_GRID_POINTS.inc(chunk.n_points)
            if cached is not None and "batch_result" in cached.extra:
                _M_GRID_CHUNKS_CACHED.inc()
                results.append(BatchSweepResult.from_json_dict(cached.extra["batch_result"]))
                continue
            with obs_trace.span("sweep.grid_chunk", engine=self.engine_name,
                                network=network.name, points=chunk.n_points):
                result = self.engine.evaluate_batch(network, chunk, base=base)
            if self.cache is not None:
                record = RunRecord(
                    engine=self.engine.name,
                    network=network.name,
                    batch=0,
                    config_summary=f"grid chunk ({chunk.n_points} points)",
                    metrics={"points": float(chunk.n_points)},
                    extra={"batch_result": result.to_json_dict()},
                )
                self.cache.put(key, record)
            results.append(result)
        if len(results) == 1:
            return results[0]
        return BatchSweepResult.concatenate(results)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _run_pending(
        self,
        pending: Sequence[Tuple[int, Optional[ChainConfig], int]],
        network: Network,
        parallel: bool,
    ) -> List[RunRecord]:
        if parallel and self._parallelizable and len(pending) > 1:
            runtime = self._pool.get(task_hint=len(pending),
                                     workers=self.max_workers)
            if runtime is not None:
                try:
                    if runtime is not self._broadcast_pool:
                        self._broadcast = set()
                        self._broadcast_pool = runtime
                    fingerprint = canonical_json(workload_fingerprint(network))
                    if fingerprint not in self._broadcast:
                        with obs_trace.span("sweep.broadcast_network",
                                            network=network.name):
                            runtime.broadcast("sweep.set_network",
                                              {"fingerprint": fingerprint,
                                               "network": network})
                        self._broadcast.add(fingerprint)
                    return runtime.map("sweep.point", [
                        {
                            "engine": self.engine_name,
                            "engine_kwargs": self.engine_kwargs,
                            "network_fingerprint": fingerprint,
                            "config": config,
                            "batch": batch,
                        }
                        for _, config, batch in pending
                    ])
                except WorkerError:
                    # last rung of the degradation ladder: even the
                    # supervised pool could not complete the call — finish
                    # on the serial path, which is bit-identical (a genuine
                    # engine bug re-raises its original exception below)
                    self._broadcast = set()
                    self._broadcast_pool = None
        return [
            self.engine.evaluate(network, config, batch)
            for _, config, batch in pending
        ]
