"""The ``Engine`` interface: one way to evaluate any model on any workload.

Historically every consumer (sweeps, the Table V comparison, the experiment
runner, the CLI, the benchmarks) hand-wired its own combination of
:class:`~repro.core.performance.PerformanceModel`,
:class:`~repro.energy.power.PowerModel`, cycle/functional simulators and
baselines.  The engine layer collapses those call sites onto a single
protocol:

    ``engine.evaluate(network, config, batch) -> RunRecord``

where the :class:`RunRecord` is a flat, JSON-serialisable summary that the
sweep executor can cache on disk and ship across process boundaries.
Concrete engines live in :mod:`repro.engine.adapters` and are instantiated
by name through :mod:`repro.engine.registry`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RunRecord:
    """One engine evaluation of one workload at one design point.

    Attributes
    ----------
    engine:
        Registry name of the engine that produced the record.
    network:
        Name of the evaluated network.
    batch:
        Batch size the metrics are reported for.
    config_summary:
        Human-readable description of the evaluated configuration (empty for
        engines that ignore the chain configuration, e.g. baselines).
    metrics:
        Flat ``name -> float`` mapping of headline numbers.  Common keys:
        ``fps``, ``achieved_gops``, ``peak_gops``, ``power_w``,
        ``gops_per_watt``, ``total_time_per_batch_s``.
    extra:
        JSON-serialisable engine-specific payload (per-layer tables, the full
        accelerator summary of a baseline, reference-check errors, ...).
    cache_key:
        Content hash under which the record is (or would be) cached.
    cached:
        True when the record was served from the on-disk cache rather than
        evaluated.
    """

    engine: str
    network: str
    batch: int
    config_summary: str
    metrics: Dict[str, float]
    extra: Dict[str, Any] = field(default_factory=dict)
    cache_key: Optional[str] = None
    cached: bool = False

    def metric(self, name: str, default: Optional[float] = None) -> float:
        """Look up one metric, raising a helpful error when it is absent."""
        if name in self.metrics:
            return self.metrics[name]
        if default is not None:
            return default
        raise ConfigurationError(
            f"engine {self.engine!r} produced no metric {name!r} "
            f"(available: {sorted(self.metrics)})"
        )

    # ------------------------------------------------------------------ #
    # serialisation (used by the on-disk cache)
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-dict form suitable for ``json.dump``."""
        return {
            "engine": self.engine,
            "network": self.network,
            "batch": self.batch,
            "config_summary": self.config_summary,
            "metrics": dict(self.metrics),
            "extra": self.extra,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_json_dict` output."""
        return cls(
            engine=data["engine"],
            network=data["network"],
            batch=int(data["batch"]),
            config_summary=data.get("config_summary", ""),
            metrics={str(k): float(v) for k, v in data.get("metrics", {}).items()},
            extra=data.get("extra", {}),
        )

    def with_cache_info(self, cache_key: str, cached: bool) -> "RunRecord":
        """Copy of this record annotated with its cache provenance."""
        return replace(self, cache_key=cache_key, cached=cached)


class Engine(abc.ABC):
    """Anything that can evaluate a network on a configuration.

    Implementations must be deterministic: the same (engine fingerprint,
    config, workload, batch) quadruple must produce the same record, which is
    what makes the on-disk memoisation of
    :class:`~repro.engine.executor.SweepExecutor` sound.
    """

    #: registry name (set by the adapter; used in records and cache keys)
    name: str = "engine"

    @abc.abstractmethod
    def evaluate(self, network: Network, config: Optional[ChainConfig] = None,
                 batch: int = 1) -> RunRecord:
        """Evaluate ``network`` at ``config`` (engine default when ``None``)."""

    def fingerprint(self) -> Dict[str, Any]:
        """Engine identity entering the cache key.

        Adapters extend this with every parameter that can change the result
        (fidelity mode, simulation backend, tensor seed, ...).
        """
        return {"name": self.name}
