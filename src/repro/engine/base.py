"""The ``Engine`` interface: one way to evaluate any model on any workload.

Historically every consumer (sweeps, the Table V comparison, the experiment
runner, the CLI, the benchmarks) hand-wired its own combination of
:class:`~repro.core.performance.PerformanceModel`,
:class:`~repro.energy.power.PowerModel`, cycle/functional simulators and
baselines.  The engine layer collapses those call sites onto a single
protocol:

    ``engine.evaluate(network, config, batch) -> RunRecord``

where the :class:`RunRecord` is a flat, JSON-serialisable summary that the
sweep executor can cache on disk and ship across process boundaries.
Concrete engines live in :mod:`repro.engine.adapters` and are instantiated
by name through :mod:`repro.engine.registry`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.batch import BatchSweepResult, DesignGrid


@dataclass(frozen=True)
class RunRecord:
    """One engine evaluation of one workload at one design point.

    Attributes
    ----------
    engine:
        Registry name of the engine that produced the record.
    network:
        Name of the evaluated network.
    batch:
        Batch size the metrics are reported for.
    config_summary:
        Human-readable description of the evaluated configuration (empty for
        engines that ignore the chain configuration, e.g. baselines).
    metrics:
        Flat ``name -> float`` mapping of headline numbers.  Common keys:
        ``fps``, ``achieved_gops``, ``peak_gops``, ``power_w``,
        ``gops_per_watt``, ``total_time_per_batch_s``.
    extra:
        JSON-serialisable engine-specific payload (per-layer tables, the full
        accelerator summary of a baseline, reference-check errors, ...).
    cache_key:
        Content hash under which the record is (or would be) cached.
    cached:
        True when the record was served from the on-disk cache rather than
        evaluated.
    """

    engine: str
    network: str
    batch: int
    config_summary: str
    metrics: Dict[str, float]
    extra: Dict[str, Any] = field(default_factory=dict)
    cache_key: Optional[str] = None
    cached: bool = False

    def metric(self, name: str, default: Optional[float] = None) -> float:
        """Look up one metric, raising a helpful error when it is absent."""
        if name in self.metrics:
            return self.metrics[name]
        if default is not None:
            return default
        raise ConfigurationError(
            f"engine {self.engine!r} produced no metric {name!r} "
            f"(available: {sorted(self.metrics)})"
        )

    # ------------------------------------------------------------------ #
    # serialisation (used by the on-disk cache)
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-dict form suitable for ``json.dump``."""
        return {
            "engine": self.engine,
            "network": self.network,
            "batch": self.batch,
            "config_summary": self.config_summary,
            "metrics": dict(self.metrics),
            "extra": self.extra,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_json_dict` output."""
        return cls(
            engine=data["engine"],
            network=data["network"],
            batch=int(data["batch"]),
            config_summary=data.get("config_summary", ""),
            metrics={str(k): float(v) for k, v in data.get("metrics", {}).items()},
            extra=data.get("extra", {}),
        )

    def with_cache_info(self, cache_key: str, cached: bool) -> "RunRecord":
        """Copy of this record annotated with its cache provenance."""
        return replace(self, cache_key=cache_key, cached=cached)


class Engine(abc.ABC):
    """Anything that can evaluate a network on a configuration.

    Implementations must be deterministic: the same (engine fingerprint,
    config, workload, batch) quadruple must produce the same record, which is
    what makes the on-disk memoisation of
    :class:`~repro.engine.executor.SweepExecutor` sound.
    """

    #: registry name (set by the adapter; used in records and cache keys)
    name: str = "engine"

    #: True when :meth:`evaluate_batch` is a genuine columnar fast path
    #: rather than the per-point fallback loop below
    supports_batch: bool = False

    @abc.abstractmethod
    def evaluate(self, network: Network, config: Optional[ChainConfig] = None,
                 batch: int = 1) -> RunRecord:
        """Evaluate ``network`` at ``config`` (engine default when ``None``)."""

    def evaluate_batch(self, network: Network, grid: "DesignGrid",
                       base: Optional[ChainConfig] = None) -> "BatchSweepResult":
        """Evaluate a whole design grid; returns struct-of-arrays columns.

        The default implementation is the per-point fallback: every grid
        point is materialised as a :class:`ChainConfig` and pushed through
        :meth:`evaluate`, with config-only metrics (gate count, worst-case
        utilization) backfilled for engines that do not model them.  Engines
        with a real columnar path override this and set
        :attr:`supports_batch` (see
        :class:`repro.engine.adapters.AnalyticalBatchEngine`).
        """
        from repro.analysis.batch import (
            RESULT_COLUMNS,
            BatchSweepResult,
            worst_case_utilization_array,
        )
        from repro.energy.area import AreaModel

        columns = {name: np.zeros(grid.n_points) for name in RESULT_COLUMNS}
        gates_cache: Dict[int, float] = {}
        engine_models_utilization = True
        for index in range(grid.n_points):
            config = grid.config_at(index, base)
            record = self.evaluate(network, config, batch=int(grid.batch[index]))
            columns["peak_gops"][index] = record.metric("peak_gops",
                                                        default=config.peak_gops)
            columns["fps"][index] = record.metric("fps", default=0.0)
            columns["total_time_per_batch_s"][index] = record.metric(
                "total_time_per_batch_s", default=0.0)
            columns["achieved_gops"][index] = record.metric("achieved_gops", default=0.0)
            columns["power_w"][index] = record.metric("power_w", default=0.0)
            columns["gops_per_watt"][index] = record.metric("gops_per_watt", default=0.0)
            total_gates = record.metrics.get("total_gates")
            if total_gates is None:
                pes = config.num_pes
                if pes not in gates_cache:
                    gates_cache[pes] = AreaModel(config).report().total_gates
                total_gates = gates_cache[pes]
            columns["total_gates"][index] = total_gates
            worst = record.metrics.get("worst_case_utilization")
            if worst is None:
                engine_models_utilization = False
            else:
                columns["worst_case_utilization"][index] = worst
        if not engine_models_utilization:
            columns["worst_case_utilization"] = worst_case_utilization_array(grid.num_pes)
        return BatchSweepResult(grid=grid, **columns)

    def fingerprint(self) -> Dict[str, Any]:
        """Engine identity entering the cache key.

        Adapters extend this with every parameter that can change the result
        (fidelity mode, simulation backend, tensor seed, ...).
        """
        return {"name": self.name}
