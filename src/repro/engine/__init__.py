"""Unified execution-engine layer.

One ``Engine`` interface over every evaluator of the library — the analytical
models (``paper`` and ``detailed`` fidelity), the cycle-accurate simulator
(vectorized or scalar backend), the functional simulator and the Table V
baselines — plus a registry to instantiate engines by name, a deterministic
on-disk result cache and a parallel sweep executor.

>>> from repro.engine import available_engines, create_engine
>>> "analytical" in available_engines() and "cycle" in available_engines()
True
"""

from repro.engine.adapters import (
    DEFAULT_ENGINES,
    AnalyticalBatchEngine,
    AnalyticalEngine,
    BaselineEngine,
    CycleEngine,
    FunctionalEngine,
    MappedAnalyticalEngine,
    summary_from_record,
    worst_case_utilization,
)
from repro.engine.base import Engine, RunRecord
from repro.engine.cache import (
    CACHE_DIR_ENV,
    CACHE_MAX_MB_ENV,
    RunCache,
    default_cache_dir,
    grid_key,
    run_key,
    workload_fingerprint,
)
from repro.engine.cache_index import INDEX_ENV, CacheIndex, index_enabled
from repro.engine.executor import GRID_CHUNK_POINTS, SweepExecutor
from repro.engine.registry import (
    available_engines,
    create_engine,
    engine_registered,
    register_engine,
    unregister_engine,
)

__all__ = [
    "AnalyticalBatchEngine",
    "AnalyticalEngine",
    "BaselineEngine",
    "CACHE_DIR_ENV",
    "CACHE_MAX_MB_ENV",
    "CacheIndex",
    "CycleEngine",
    "INDEX_ENV",
    "index_enabled",
    "DEFAULT_ENGINES",
    "Engine",
    "FunctionalEngine",
    "GRID_CHUNK_POINTS",
    "MappedAnalyticalEngine",
    "RunCache",
    "RunRecord",
    "SweepExecutor",
    "grid_key",
    "available_engines",
    "create_engine",
    "default_cache_dir",
    "engine_registered",
    "register_engine",
    "run_key",
    "summary_from_record",
    "unregister_engine",
    "workload_fingerprint",
    "worst_case_utilization",
]
