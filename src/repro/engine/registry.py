"""String-keyed registry of execution engines.

The registry decouples consumers (CLI flags, sweep configuration files,
cached run records) from adapter classes: an engine is requested by name,

>>> from repro.engine import create_engine
>>> engine = create_engine("analytical")
>>> sorted(create_engine("cycle").fingerprint())  # doctest: +SKIP

and new engines — further baselines, alternative simulators — are added with
one :func:`register_engine` call (typically at adapter-module import time).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.engine.base import Engine
from repro.errors import ConfigurationError

EngineFactory = Callable[..., Engine]

_FACTORIES: Dict[str, EngineFactory] = {}


def register_engine(name: str, factory: EngineFactory | None = None):
    """Register ``factory`` under ``name``; usable as a decorator.

    >>> @register_engine("my-engine")           # doctest: +SKIP
    ... class MyEngine(Engine): ...
    """
    if not name:
        raise ConfigurationError("engine name must be non-empty")

    def _register(target: EngineFactory) -> EngineFactory:
        if name in _FACTORIES:
            raise ConfigurationError(f"engine {name!r} is already registered")
        _FACTORIES[name] = target
        return target

    if factory is not None:
        return _register(factory)
    return _register


def unregister_engine(name: str) -> None:
    """Remove an engine from the registry (primarily for tests)."""
    _FACTORIES.pop(name, None)


def engine_registered(name: str) -> bool:
    """True when ``name`` resolves to a registered factory."""
    return name in _FACTORIES


def available_engines() -> Tuple[str, ...]:
    """Sorted names of every registered engine."""
    return tuple(sorted(_FACTORIES))


def create_engine(name: str, **kwargs) -> Engine:
    """Instantiate the engine registered under ``name``.

    Keyword arguments are forwarded to the factory, so engine-specific knobs
    (``mode``, ``backend``, ``seed``, ...) stay reachable through the string
    interface.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown engine {name!r}; available: {', '.join(available_engines())}"
        ) from None
    engine = factory(**kwargs)
    if not isinstance(engine, Engine):
        raise ConfigurationError(
            f"factory for engine {name!r} returned {type(engine).__name__}, "
            "expected an Engine"
        )
    return engine
