"""Deterministic on-disk memoisation of engine evaluations.

A run is identified by the SHA-256 of the canonical JSON encoding of

    (engine fingerprint, chain configuration, workload fingerprint, batch)

so the key is stable across processes and sessions: the same design point
evaluated by the same engine on the same workload always maps to the same
file, and a cache hit returns the stored :class:`~repro.engine.base.RunRecord`
without evaluating anything.  Records are stored one-JSON-file-per-key with
atomic writes, which makes the cache safe under the parallel sweep executor
(two workers racing on the same key simply write identical bytes).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.engine.base import Engine, RunRecord

#: environment variable overriding the default cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: cache-key schema generation — bump whenever model code changes in a way
#: that should invalidate previously cached results (keys also embed the
#: package version, so releases invalidate automatically)
CACHE_SCHEMA = 1


def default_cache_dir() -> Path:
    """Default cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-chain-nn``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-chain-nn"


def canonical_json(data: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"), default=_encode)


def _encode(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    raise TypeError(f"cannot canonicalise {type(obj).__name__}")


def config_fingerprint(config: Optional[ChainConfig]) -> Dict[str, Any]:
    """Content identity of a chain configuration (``{}`` when unset)."""
    if config is None:
        return {}
    return dataclasses.asdict(config)


def workload_fingerprint(network: Network) -> Dict[str, Any]:
    """Content identity of a workload: name plus every conv-layer geometry."""
    return {
        "name": network.name,
        "conv_layers": [dataclasses.asdict(layer) for layer in network.conv_layers],
    }


def run_key(engine: Engine, network: Network, config: Optional[ChainConfig],
            batch: int) -> str:
    """Cache key of one evaluation (versioned so stale results die on upgrade)."""
    from repro import __version__

    payload = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "engine": engine.fingerprint(),
        "config": config_fingerprint(config),
        "workload": workload_fingerprint(network),
        "batch": batch,
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def grid_key(engine: Engine, network: Network, base: Optional[ChainConfig],
             grid) -> str:
    """Cache key of one columnar grid-chunk evaluation.

    The whole chunk (every axis column) enters the hash, so any change to the
    grid, the base configuration, the engine fingerprint, the workload or the
    schema/version yields a different key — the same invalidation story as
    :func:`run_key`, at chunk granularity.
    """
    from repro import __version__

    payload = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "engine": engine.fingerprint(),
        "base": config_fingerprint(base),
        "workload": workload_fingerprint(network),
        "grid": grid.to_json_dict(),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class RunCache:
    """One-file-per-record JSON cache with hit/miss accounting."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # path handling
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """File under which ``key`` is (or would be) stored."""
        return self.root / f"{key}.json"

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[RunRecord]:
        """Stored record for ``key`` or ``None`` (corrupt entries are misses)."""
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            record = RunRecord.from_json_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return record.with_cache_info(cache_key=key, cached=True)

    def put(self, key: str, record: RunRecord) -> None:
        """Atomically persist ``record`` under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record.to_json_dict(), sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def stats(self) -> Dict[str, Any]:
        """On-disk and in-process cache statistics.

        ``entries``/``bytes`` describe the directory contents; ``hits`` and
        ``misses`` count this process's :meth:`get` outcomes (the counters
        the sweep executor surfaces after a run).
        """
        entries = 0
        size = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": size,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> int:
        """Delete every cached record; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
