"""Deterministic on-disk memoisation of engine evaluations.

A run is identified by the SHA-256 of the canonical JSON encoding of

    (engine fingerprint, chain configuration, workload fingerprint, batch)

so the key is stable across processes and sessions: the same design point
evaluated by the same engine on the same workload always maps to the same
file, and a cache hit returns the stored :class:`~repro.engine.base.RunRecord`
without evaluating anything.  Records are stored one-JSON-file-per-key with
atomic writes, which makes the cache safe under the parallel sweep executor
(two workers racing on the same key simply write identical bytes).

The cache is also safe as a **shared cross-process store** (the
evaluation-as-a-service prerequisite):

* single-record reads and writes are lock-free — ``os.replace`` makes a
  record appear atomically, so readers see either nothing or whole records,
  never torn bytes;
* multi-file read-modify cycles (LRU eviction, ``clear``) serialise on an
  advisory ``fcntl`` lock (``<root>/.lock``), so 8+ concurrent processes
  evicting against one root cannot double-delete or miscount;
* a corrupt record (torn by a crashed writer on a non-atomic filesystem,
  or mangled by anything else) is **quarantined** — renamed to
  ``*.corrupt`` and warned about once per process — instead of silently
  re-missing on every future call;
* ``*.tmp`` spool files orphaned by crashed writers are counted by
  :meth:`RunCache.stats`, reaped by :meth:`RunCache.clear`, and
  age-reaped opportunistically during eviction;
* with ``max_mb`` set (CLI ``--cache-max-mb`` / ``$REPRO_CACHE_MAX_MB``),
  the store is size-bounded: least-recently-*used* records (hits bump
  mtime) are evicted under the lock until the bound holds;
* a WAL-mode **sqlite index** (:mod:`repro.engine.cache_index`) beside the
  records turns the aggregate operations — entry/byte totals, the LRU
  victim scan, recency bumps — into single indexed queries instead of
  directory walks; payloads stay content-addressed JSON files, any sqlite
  failure degrades back to the walk paths, and :meth:`RunCache.migrate`
  (idempotent, live-server-safe) indexes records written by older layouts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.engine.base import Engine, RunRecord
from repro.engine.cache_index import CacheIndex, index_enabled
from repro.obs import metrics as obs_metrics

# process-wide observability mirrors of the per-instance counters below
# (bound once: repro.obs.metrics memoises by name and reset() zeroes in place)
_M_HITS = obs_metrics.counter("cache.hits")
_M_MISSES = obs_metrics.counter("cache.misses")
_M_QUARANTINED = obs_metrics.counter("cache.quarantined")
_M_EVICTIONS = obs_metrics.counter("cache.evictions")
_M_PUTS = obs_metrics.counter("cache.puts")
_M_LOCK_WAIT = obs_metrics.histogram("cache.lock_wait_s")

try:  # POSIX advisory locking; other platforms fall back to lock-free mode
    import fcntl
except ImportError:  # pragma: no cover - platform dependent
    fcntl = None

#: environment variable overriding the default cache location
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: environment variable providing a default size bound (in MB) for caches
#: constructed without an explicit ``max_mb``
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

#: cache-key schema generation — bump whenever model code changes in a way
#: that should invalidate previously cached results (keys also embed the
#: package version, so releases invalidate automatically)
CACHE_SCHEMA = 1

#: ``*.tmp`` spool files older than this are crash orphans (a healthy
#: mkstemp -> write -> replace cycle lives milliseconds); eviction reaps them
TMP_ORPHAN_SECONDS = 300.0

#: suffix quarantined (corrupt) records are renamed to
CORRUPT_SUFFIX = ".corrupt"

#: one corrupt-entry warning per process, not one per record
_warned_corrupt = False


def default_cache_dir() -> Path:
    """Default cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-chain-nn``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-chain-nn"


def canonical_json(data: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"), default=_encode)


def _encode(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    raise TypeError(f"cannot canonicalise {type(obj).__name__}")


def config_fingerprint(config: Optional[ChainConfig]) -> Dict[str, Any]:
    """Content identity of a chain configuration (``{}`` when unset)."""
    if config is None:
        return {}
    return dataclasses.asdict(config)


def workload_fingerprint(network: Network) -> Dict[str, Any]:
    """Content identity of a workload: name plus every conv-layer geometry."""
    return {
        "name": network.name,
        "conv_layers": [dataclasses.asdict(layer) for layer in network.conv_layers],
    }


def run_key(engine: Engine, network: Network, config: Optional[ChainConfig],
            batch: int) -> str:
    """Cache key of one evaluation (versioned so stale results die on upgrade)."""
    from repro import __version__

    payload = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "engine": engine.fingerprint(),
        "config": config_fingerprint(config),
        "workload": workload_fingerprint(network),
        "batch": batch,
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def grid_key(engine: Engine, network: Network, base: Optional[ChainConfig],
             grid) -> str:
    """Cache key of one columnar grid-chunk evaluation.

    The whole chunk (every axis column) enters the hash, so any change to the
    grid, the base configuration, the engine fingerprint, the workload or the
    schema/version yields a different key — the same invalidation story as
    :func:`run_key`, at chunk granularity.
    """
    from repro import __version__

    payload = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "engine": engine.fingerprint(),
        "base": config_fingerprint(base),
        "workload": workload_fingerprint(network),
        "grid": grid.to_json_dict(),
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _env_max_mb(environ: Optional[Dict[str, str]] = None) -> Optional[float]:
    """Size bound from ``$REPRO_CACHE_MAX_MB`` (``None`` when unset/invalid)."""
    raw = (environ if environ is not None else os.environ).get(CACHE_MAX_MB_ENV)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


class RunCache:
    """One-file-per-record JSON cache, hardened for concurrent processes.

    Reads and writes of single records stay lock-free and atomic; corrupt
    records are quarantined to ``*.corrupt``; crash-orphaned ``*.tmp`` files
    are reaped; and an optional ``max_mb`` bound evicts least-recently-used
    records under an advisory file lock (see the module docstring).
    """

    def __init__(self, root: str | Path | None = None,
                 max_mb: Optional[float] = None,
                 use_index: Optional[bool] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_mb is None:
            max_mb = _env_max_mb()
        if max_mb is not None and max_mb <= 0:
            raise ValueError(f"max_mb must be positive, got {max_mb}")
        self.max_bytes = int(max_mb * 1024 * 1024) if max_mb is not None else None
        if use_index is None:
            use_index = index_enabled()
        self._index: Optional[CacheIndex] = (
            CacheIndex(self.root) if use_index else None)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.evictions = 0

    @property
    def index(self) -> Optional[CacheIndex]:
        """The sqlite index handle (``None`` when disabled outright)."""
        return self._index

    # ------------------------------------------------------------------ #
    # path handling
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        """File under which ``key`` is (or would be) stored."""
        return self.root / f"{key}.json"

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Advisory exclusive lock over multi-file read-modify cycles.

        Single-record operations never take this; only eviction and
        :meth:`clear` do, so concurrent processes cannot interleave their
        scan-and-delete cycles.  Platforms without ``fcntl`` degrade to
        lock-free (single-record atomicity still holds there).
        """
        if fcntl is None:
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with (self.root / ".lock").open("w") as handle:
            waited = time.perf_counter()
            fcntl.flock(handle, fcntl.LOCK_EX)
            _M_LOCK_WAIT.observe(time.perf_counter() - waited)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[RunRecord]:
        """Stored record for ``key`` or ``None``.

        A missing file is a plain miss.  A file that exists but does not
        decode into a :class:`RunRecord` is **quarantined**: renamed to
        ``<key>.json.corrupt`` (so the bytes survive for inspection and the
        slot becomes writable again) with one ``RuntimeWarning`` per
        process.  Hits bump the record's mtime so LRU eviction has a
        recency signal.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            record = RunRecord.from_json_dict(data)
        except OSError:
            self.misses += 1
            _M_MISSES.inc()
            return None
        except (ValueError, KeyError, TypeError):
            self.misses += 1
            _M_MISSES.inc()
            self._quarantine(path)
            return None
        self.hits += 1
        _M_HITS.inc()
        try:
            os.utime(path)
        except OSError:
            pass  # concurrently evicted/cleared; the hit itself already served
        if self._index is not None and not self._index.touch(key, time.time()):
            # hit on a record the index never saw (legacy layout, or written
            # with the index disabled): self-heal by indexing it now
            try:
                stat = path.stat()
            except OSError:
                pass
            else:
                self._index.add(key, path.name, stat.st_size, stat.st_mtime,
                                record.engine)
        return record.with_cache_info(cache_key=key, cached=True)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt record aside and warn once per process."""
        global _warned_corrupt
        self.quarantined += 1
        _M_QUARANTINED.inc()
        if self._index is not None and path.suffix == ".json":
            self._index.remove(path.name[:-len(".json")])
        try:
            os.replace(path, path.with_name(path.name + CORRUPT_SUFFIX))
        except OSError:
            return  # another process quarantined (or evicted) it first
        if not _warned_corrupt:
            _warned_corrupt = True
            warnings.warn(
                f"quarantined corrupt cache entry {path.name} -> "
                f"{path.name}{CORRUPT_SUFFIX} under {self.root} "
                "(further corrupt entries are quarantined silently)",
                RuntimeWarning,
                stacklevel=3,
            )

    def put(self, key: str, record: RunRecord) -> None:
        """Atomically persist ``record`` under ``key`` (then enforce bounds)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record.to_json_dict(), sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        _M_PUTS.inc()
        if self._index is not None:
            path = self.path_for(key)
            try:
                stat = path.stat()
            except OSError:
                pass  # concurrently evicted/cleared already
            else:
                self._index.add(key, path.name, stat.st_size, stat.st_mtime,
                                record.engine)
        if self.max_bytes is not None:
            self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        """Delete least-recently-used records until the size bound holds.

        Runs entirely under the advisory lock: the scan, the deletions and
        the orphan reap are one critical section, so two bounded processes
        never race each other's view of the directory.  Records vanishing
        mid-scan (an unbounded third process clearing) are tolerated.
        """
        assert self.max_bytes is not None
        with self._locked():
            self._reap_orphans(min_age=TMP_ORPHAN_SECONDS)
            if self._evict_via_index():
                return
            entries = []
            total = 0
            for path in self.root.glob("*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
            if total <= self.max_bytes:
                return
            entries.sort(key=lambda item: (item[0], item[2].name))
            for _mtime, size, path in entries:
                if total <= self.max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                if self._index is not None:
                    self._index.remove(path.name[:-len(".json")])
                total -= size
                self.evictions += 1
                _M_EVICTIONS.inc()

    def _evict_via_index(self) -> bool:
        """Indexed eviction cycle; ``False`` falls back to the walk path.

        One ``sum(size)`` query replaces the directory ``stat`` walk and an
        indexed oldest-first cursor replaces the full sort, so a bounded
        put's overhead no longer grows with the record count.  A row whose
        file already vanished (deleted by an unindexed process) is dropped
        as stale rather than counted as an eviction.  Runs under the
        advisory lock held by :meth:`_evict_if_needed`.
        """
        if self._index is None:
            return False
        totals = self._index.totals()
        if totals is None:
            return False  # index degraded: caller walks the directory
        total = totals[1]
        if total <= self.max_bytes:
            return True
        for key, name, size, _mtime in self._index.lru():
            if total <= self.max_bytes:
                break
            try:
                (self.root / name).unlink()
            except FileNotFoundError:
                pass  # stale row: the bytes were already gone
            except OSError:
                continue
            else:
                self.evictions += 1
                _M_EVICTIONS.inc()
            self._index.remove(key)
            total -= size
        return self._index.available

    def _reap_orphans(self, min_age: float = 0.0) -> int:
        """Delete ``*.tmp`` spool files at least ``min_age`` seconds old."""
        removed = 0
        now = time.time()
        for path in self.root.glob("*.tmp"):
            try:
                if min_age > 0 and now - path.stat().st_mtime < min_age:
                    continue  # plausibly a live writer mid-spool
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed

    def stats(self) -> Dict[str, Any]:
        """On-disk and in-process cache statistics.

        ``entries``/``bytes`` describe the live records; ``tmp_orphans`` and
        ``corrupt`` count crash debris and quarantined records still on
        disk; ``hits``/``misses``/``quarantined``/``evictions`` count this
        process's outcomes (the counters the sweep executor surfaces).
        The ``index`` block reports sqlite-index health: row count vs
        on-disk payload files, ``stale`` rows whose file vanished and
        ``unindexed`` files the index never saw (``repro cache migrate``
        reconciles both).
        """
        entries = 0
        size = 0
        tmp_orphans = 0
        corrupt = 0
        disk_keys = set()
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    size += path.stat().st_size
                except OSError:
                    continue
                entries += 1
                disk_keys.add(path.name[:-len(".json")])
            tmp_orphans = sum(1 for _ in self.root.glob("*.tmp"))
            corrupt = sum(1 for _ in self.root.glob(f"*{CORRUPT_SUFFIX}"))
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": size,
            "max_bytes": self.max_bytes,
            "tmp_orphans": tmp_orphans,
            "corrupt": corrupt,
            "hits": self.hits,
            "misses": self.misses,
            "quarantined": self.quarantined,
            "evictions": self.evictions,
            "index": self._index_health(disk_keys),
        }

    def _index_health(self, disk_keys: set) -> Dict[str, Any]:
        """Index-vs-directory reconciliation report for :meth:`stats`."""
        if self._index is None:
            return {"enabled": False, "available": False}
        index_keys = self._index.keys()
        if index_keys is None:
            return {"enabled": True, "available": False}
        indexed = set(index_keys)
        return {
            "enabled": True,
            "available": True,
            "entries": len(indexed),
            "stale": len(indexed - disk_keys),
            "unindexed": len(disk_keys - indexed),
        }

    def quick_stats(self) -> Dict[str, Any]:
        """``entries``/``bytes`` without walking the directory.

        One indexed query when the index is live — the O(1) lookup path the
        serving layer polls — falling back to the :meth:`stats` walk when
        the index is disabled, degraded or not yet built.
        """
        if self._index is not None:
            totals = self._index.totals()
            if totals is not None:
                return {"entries": totals[0], "bytes": totals[1],
                        "indexed": True}
        stats = self.stats()
        return {"entries": stats["entries"], "bytes": stats["bytes"],
                "indexed": False}

    def migrate(self) -> Dict[str, Any]:
        """Reconcile the sqlite index with the on-disk records (idempotent).

        Indexes every payload file the index never saw (reading the engine
        name from the record body), refreshes rows whose size/mtime
        drifted, and prunes rows whose file vanished.  Runs under the
        advisory lock, so concurrent migrations and eviction cycles
        serialise — and it is safe against a **live server**: single-record
        reads/writes never take that lock, and a put racing the scan simply
        self-indexes, which the upsert tolerates.  Running it twice is a
        no-op.
        """
        if self._index is None:
            return {"enabled": False, "available": False, "entries": 0,
                    "added": 0, "refreshed": 0, "pruned": 0}
        with self._locked():
            disk: Dict[str, Any] = {}
            if self.root.is_dir():
                for path in self.root.glob("*.json"):
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    disk[path.name[:-len(".json")]] = (
                        path.name, stat.st_size, stat.st_mtime)
            existing = {key: (name, size, mtime)
                        for key, name, size, mtime in self._index.lru()}
            added = refreshed = pruned = 0
            for key, (name, size, mtime) in sorted(disk.items()):
                previous = existing.get(key)
                if previous is not None:
                    if previous[1] == size and previous[2] == mtime:
                        continue
                    self._index.add(key, name, size, mtime)
                    refreshed += 1
                    continue
                self._index.add(key, name, size, mtime,
                                self._record_engine(self.root / name))
                added += 1
            for key in sorted(existing.keys() - disk.keys()):
                self._index.remove(key)
                pruned += 1
            return {
                "enabled": True,
                "available": self._index.available,
                "entries": len(disk),
                "added": added,
                "refreshed": refreshed,
                "pruned": pruned,
            }

    @staticmethod
    def _record_engine(path: Path) -> str:
        """Engine name stored in a record file (``""`` when unreadable)."""
        try:
            with path.open("r", encoding="utf-8") as handle:
                return str(json.load(handle).get("engine", ""))
        except (OSError, ValueError):
            return ""

    def clear(self) -> int:
        """Delete every record, quarantined record and orphaned spool file.

        Returns the number of live records removed (debris is reaped but
        not counted, keeping the CLI's "cleared N entries" truthful).
        """
        removed = 0
        if self.root.is_dir():
            with self._locked():
                for path in self.root.glob("*.json"):
                    path.unlink(missing_ok=True)
                    removed += 1
                for path in self.root.glob(f"*{CORRUPT_SUFFIX}"):
                    path.unlink(missing_ok=True)
                self._reap_orphans()
                if self._index is not None:
                    self._index.clear()
        return removed
