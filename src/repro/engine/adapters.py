"""Engine adapters: every evaluator of the library behind one interface.

* :class:`AnalyticalEngine` — the :class:`~repro.core.accelerator.ChainNN`
  facade (performance + power + area + utilization) in either fidelity mode;
* :class:`AnalyticalBatchEngine` — the same closed forms evaluated columnar
  (struct-of-arrays) over whole design grids: the ``evaluate_batch`` fast
  path design-space sweeps dispatch to;
* :class:`MappedAnalyticalEngine` — mapping-searched analytical evaluation:
  every run first optimises the per-layer mapping (:mod:`repro.mapping`)
  for a configurable objective and reports searched-vs-baseline metrics;
* :class:`CycleEngine` — the cycle-accurate simulator (vectorized fast path
  or register-accurate scalar cross-check) on synthetic seeded tensors;
* :class:`FunctionalEngine` — the dataflow-level simulator (scalar window
  walk, bit-identical vectorized fast path, or cross-checking ``both`` mode);
* :class:`BaselineEngine` — any :class:`~repro.baselines.base.AcceleratorModel`
  (Chain-NN itself, the memory-centric DaDianNao-like and the 2D spatial
  Eyeriss-like baselines of Table V).

Importing this module registers the default engine names listed in
:data:`DEFAULT_ENGINES`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import asdict
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.batch import BatchDesignEvaluator, BatchSweepResult, DesignGrid

from repro.baselines.base import AcceleratorModel, AcceleratorSummary
from repro.baselines.chain_nn_model import ChainNNModel
from repro.baselines.memory_centric import MemoryCentricAccelerator
from repro.baselines.spatial_2d import Spatial2DAccelerator
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.network import Network
from repro.core.accelerator import ChainNN
from repro.core.config import MAINSTREAM_KERNEL_SIZES, ChainConfig
from repro.core.utilization import minimum_utilization
from repro.energy.area import AreaModel
from repro.engine.base import Engine, RunRecord
from repro.engine.cache import canonical_json, config_fingerprint, workload_fingerprint
from repro.kernels import backend_fingerprint
from repro.engine.registry import register_engine
from repro.sim.cycle import CycleAccurateChainSimulator
from repro.sim.functional import FunctionalChainSimulator


def worst_case_utilization(config: ChainConfig) -> float:
    """Worst-case spatial utilization over the mainstream kernel sizes."""
    sizes = [k for k in MAINSTREAM_KERNEL_SIZES if k * k <= config.num_pes]
    return minimum_utilization(config.num_pes, sizes) if sizes else 0.0


class AnalyticalEngine(Engine):
    """Analytical Chain-NN models (the Fig. 9 / Fig. 10 / sweep substrate)."""

    def __init__(self, config: Optional[ChainConfig] = None, mode: str = "paper",
                 chip: Optional[ChainNN] = None) -> None:
        # an injected chip defines the fidelity mode (so records and cache
        # fingerprints stay truthful); otherwise one is built for `mode`
        self.mode = chip.performance_model.mode if chip is not None else mode
        self._chip = chip or ChainNN(config, performance_mode=mode)
        self.name = "analytical" if self.mode == "paper" else f"analytical-{self.mode}"

    @property
    def chip(self) -> ChainNN:
        """The underlying facade (default-config instance)."""
        return self._chip

    def _chip_for(self, config: Optional[ChainConfig]) -> ChainNN:
        if config is None or config == self._chip.config:
            return self._chip
        # carry the (possibly calibrated) unit energies over, so evaluations
        # at other design points use the same power model the fingerprint
        # advertises
        return ChainNN(config, performance_mode=self.mode,
                       energy=self._chip.power_model.energy)

    def evaluate(self, network: Network, config: Optional[ChainConfig] = None,
                 batch: int = 1) -> RunRecord:
        chip = self._chip_for(config)
        result = chip.run_network(network, batch)
        area = AreaModel(chip.config)
        metrics = dict(result.summary())
        metrics.update(
            peak_gops=chip.peak_gops,
            power_w=result.power.total_w,
            total_time_per_batch_s=result.performance.total_time_per_batch_s,
            total_gates=area.report().total_gates,
            worst_case_utilization=worst_case_utilization(chip.config),
            onchip_memory_bytes=float(chip.config.onchip_memory_bytes),
            dram_traffic_mb=result.traffic.totals()["DRAM"],
        )
        extra: Dict[str, Any] = {
            "layer_times_ms": result.performance.layer_times_ms(),
            "kernel_load_times_ms": result.performance.kernel_load_times_ms(),
        }
        return RunRecord(
            engine=self.name,
            network=network.name,
            batch=batch,
            config_summary=chip.config.describe(),
            metrics=metrics,
            extra=extra,
        )

    def fingerprint(self) -> Dict[str, Any]:
        # the default config and (possibly calibrated) unit energies decide
        # what a config=None evaluation returns, so they enter the cache key
        return {
            "name": self.name,
            "mode": self.mode,
            "default_config": dataclasses.asdict(self._chip.config),
            "energy": dataclasses.asdict(self._chip.power_model.energy),
        }


class AnalyticalBatchEngine(Engine):
    """Columnar batch evaluation of the analytical models (design grids).

    Point evaluations delegate to a wrapped :class:`AnalyticalEngine` (so a
    single-point ``evaluate`` is numerically the scalar path, merely renamed
    in the record); :meth:`evaluate_batch` is the struct-of-arrays fast path
    of :class:`repro.analysis.batch.BatchDesignEvaluator` — the same closed
    forms as whole-array expressions, with per-network layer constants
    memoised across chunks of the same sweep.
    """

    supports_batch = True

    def __init__(self, config: Optional[ChainConfig] = None, mode: str = "paper") -> None:
        self._scalar = AnalyticalEngine(config=config, mode=mode)
        self.mode = self._scalar.mode
        self.name = ("analytical-batch" if self.mode == "paper"
                     else f"analytical-batch-{self.mode}")
        #: BatchDesignEvaluator per (workload, base-config) pair
        self._evaluators: Dict[str, "BatchDesignEvaluator"] = {}

    @property
    def default_config(self) -> ChainConfig:
        """Base configuration supplying the non-grid fields."""
        return self._scalar.chip.config

    def evaluate(self, network: Network, config: Optional[ChainConfig] = None,
                 batch: int = 1) -> RunRecord:
        record = self._scalar.evaluate(network, config, batch)
        return dataclasses.replace(record, engine=self.name)

    def evaluate_batch(self, network: Network, grid: "DesignGrid",
                       base: Optional[ChainConfig] = None) -> "BatchSweepResult":
        from repro.analysis.batch import BatchDesignEvaluator

        base = base or self.default_config
        key = canonical_json({
            "workload": workload_fingerprint(network),
            "base": config_fingerprint(base),
        })
        evaluator = self._evaluators.get(key)
        if evaluator is None:
            evaluator = BatchDesignEvaluator(
                network, base=base, mode=self.mode,
                energy=self._scalar.chip.power_model.energy,
            )
            self._evaluators[key] = evaluator
        return evaluator.evaluate_grid(grid)

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "mode": self.mode,
            "default_config": dataclasses.asdict(self.default_config),
            "energy": dataclasses.asdict(self._scalar.chip.power_model.energy),
        }


class MappedAnalyticalEngine(Engine):
    """Mapping-searched analytical evaluation (the ``analytical-mapped`` engine).

    Every evaluation first optimises the per-layer mapping with the
    configured objective and search strategy (:mod:`repro.mapping`), then
    reports the searched schedule's metrics next to the Table II baseline's.
    The full search configuration — objective, strategy knobs, seed, unit
    energies — enters :meth:`fingerprint`, so cached sweep records from
    different searches can never collide.
    """

    def __init__(self, config: Optional[ChainConfig] = None,
                 objective: str = "throughput", strategy: str = "exhaustive",
                 shortlist: int = 4, kernel_backend: Optional[str] = None,
                 algorithm: str = "direct", **strategy_kwargs) -> None:
        from repro.kernels import resolve_backend_name
        from repro.mapping import make_strategy

        self.name = "analytical-mapped"
        self.default_config = config or ChainConfig()
        self.objective = objective
        self.shortlist = shortlist
        self.kernel_backend = resolve_backend_name(kernel_backend)
        self.algorithm = algorithm
        self.strategy = make_strategy(strategy, **strategy_kwargs)
        self._memo: Dict[str, Any] = {}

    def _optimize(self, network: Network, config: ChainConfig, batch: int):
        from repro.mapping import ScheduleOptimizer

        memo_key = canonical_json({
            "config": config_fingerprint(config),
            "workload": workload_fingerprint(network),
            "batch": batch,
        })
        if memo_key not in self._memo:
            optimizer = ScheduleOptimizer(
                config=config,
                objective=self.objective,
                strategy=self.strategy,
                batch=batch,
                shortlist=self.shortlist,
                kernel_backend=self.kernel_backend,
                algorithm=self.algorithm,
            )
            self._memo[memo_key] = optimizer.optimize(network)
        return self._memo[memo_key]

    def evaluate(self, network: Network, config: Optional[ChainConfig] = None,
                 batch: int = 1) -> RunRecord:
        config = config or self.default_config
        schedule = self._optimize(network, config, batch)
        time_s = schedule.total_time_per_batch_s()
        energy_j = schedule.total_energy_per_batch_j()
        metrics = {
            "fps": schedule.frames_per_second(),
            "total_time_per_batch_s": time_s,
            "first_image_latency_s": schedule.first_image_latency_s(),
            "energy_per_batch_j": energy_j,
            "edp_js": energy_j * time_s,
            "power_w": energy_j / time_s if time_s else 0.0,
            "objective_value": schedule.objective_value(),
            "baseline_objective_value": schedule.baseline_objective_value(),
            "improvement_fraction": schedule.improvement_fraction(),
            "search_evaluations": float(schedule.evaluations),
            "peak_gops": config.peak_gops,
        }
        return RunRecord(
            engine=self.name,
            network=network.name,
            batch=batch,
            config_summary=config.describe(),
            metrics=metrics,
            extra={"schedule": schedule.to_json_dict()},
        )

    def fingerprint(self) -> Dict[str, Any]:
        fingerprint = {
            "name": self.name,
            "objective": self.objective,
            "strategy": self.strategy.fingerprint(),
            "shortlist": self.shortlist,
            "default_config": dataclasses.asdict(self.default_config),
            # candidate scoring runs on a repro.kernels backend; every
            # backend is bit-identical, but the fingerprint keeps cached
            # records attributable if a compiled backend ever misbehaves
            "kernels": backend_fingerprint(self.kernel_backend),
        }
        # the algorithm axis only enters the key when it changes the search
        # space, so pre-existing direct-mode cache entries remain valid
        if self.algorithm != "direct":
            fingerprint["algorithm"] = self.algorithm
        return fingerprint


class CycleEngine(Engine):
    """Cycle-accurate simulation of every conv layer on seeded tensors."""

    def __init__(self, backend: str = "vectorized", seed: int = 2017,
                 total_bits: int = 16, check_against_reference: bool = True) -> None:
        self.backend = backend
        self.seed = seed
        self.total_bits = total_bits
        self.check_against_reference = check_against_reference
        self.name = "cycle" if backend == "vectorized" else f"cycle-{backend}"
        # the simulation itself is batch-independent (batch only scales the
        # time arithmetic), so one (config, workload) simulation serves every
        # batch size — e.g. the whole Sec. V.B batch sweep
        self._memo: Dict[str, Dict[str, Any]] = {}

    def _simulate(self, network: Network, config: ChainConfig) -> Dict[str, Any]:
        memo_key = canonical_json({
            "config": config_fingerprint(config),
            "workload": workload_fingerprint(network),
        })
        if memo_key in self._memo:
            return self._memo[memo_key]
        simulator = CycleAccurateChainSimulator(
            config, total_bits=self.total_bits, backend=self.backend
        )
        generator = WorkloadGenerator(seed=self.seed)
        layers: Dict[str, Dict[str, float]] = {}
        conv_cycles = 0.0
        kernel_load_cycles = 0
        macs = 0
        outputs = 0
        max_error = 0.0
        for layer in network.conv_layers:
            ifmaps, weights = generator.layer_pair(layer)
            result = simulator.run_layer(
                layer, ifmaps, weights,
                check_against_reference=self.check_against_reference,
            )
            conv_cycles += result.chain_cycles_estimate
            kernel_load_cycles += result.stats.kernel_load_cycles
            macs += result.stats.macs
            outputs += result.stats.outputs_collected
            error = result.reference_max_abs_error or 0.0
            max_error = max(max_error, error)
            layers[layer.name] = {
                "chain_cycles": result.chain_cycles_estimate,
                "primitive_cycles": float(result.stats.primitive_cycles),
                "macs": float(result.stats.macs),
                "outputs_collected": float(result.stats.outputs_collected),
                "max_abs_error": error,
            }
        data = {
            "conv_cycles": conv_cycles,
            "kernel_load_cycles": kernel_load_cycles,
            "macs": macs,
            "outputs": outputs,
            "max_error": max_error,
            "layers": layers,
        }
        self._memo[memo_key] = data
        return data

    def evaluate(self, network: Network, config: Optional[ChainConfig] = None,
                 batch: int = 1) -> RunRecord:
        config = config or ChainConfig()
        sim = self._simulate(network, config)
        conv_cycles = sim["conv_cycles"]
        kernel_load_cycles = sim["kernel_load_cycles"]
        frequency = config.frequency_hz
        total_time_s = (conv_cycles * batch + kernel_load_cycles) / frequency
        fps = batch / total_time_s if total_time_s else 0.0
        metrics = {
            "fps": fps,
            "conv_cycles_per_image": conv_cycles,
            "kernel_load_cycles": float(kernel_load_cycles),
            "total_time_per_batch_s": total_time_s,
            "simulated_macs": float(sim["macs"]),
            "outputs_collected": float(sim["outputs"]),
            "max_abs_error": sim["max_error"],
            "peak_gops": config.peak_gops,
        }
        layers = sim["layers"]
        return RunRecord(
            engine=self.name,
            network=network.name,
            batch=batch,
            config_summary=config.describe(),
            metrics=metrics,
            extra={"layers": layers, "backend": self.backend},
        )

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "backend": self.backend,
            "seed": self.seed,
            "total_bits": self.total_bits,
            "check": self.check_against_reference,
        }


class FunctionalEngine(Engine):
    """Dataflow-level simulation (window enumeration) of every conv layer.

    ``backend`` selects the scalar per-window walk (the historical default,
    registered as ``functional``), the bit-identical vectorized fast path
    (``functional-vectorized``) or the cross-checking ``both`` mode mirroring
    the cycle simulator.
    """

    def __init__(self, seed: int = 2017, backend: str = "scalar",
                 workers: Optional[int] = None,
                 kernel_backend: Optional[str] = None,
                 algorithm: str = "direct") -> None:
        from repro.kernels import resolve_backend_name

        self.seed = seed
        self.backend = backend
        self.kernel_backend = resolve_backend_name(kernel_backend)
        #: "direct" runs every layer on the sliding-window dataflow;
        #: "winograd"/"auto" run eligible 3x3-stride-1 layers in the
        #: transform domain (ineligible layers always stay direct)
        self.algorithm = algorithm
        self.name = "functional" if backend == "scalar" else f"functional-{backend}"
        self._memo: Dict[str, Dict[str, Any]] = {}
        #: fan ofmap blocks over this many workers (vectorized backend only);
        #: results are bit-identical serial or parallel, so the worker count
        #: deliberately stays out of the engine fingerprint
        self.workers = workers
        from repro.runtime import shared_runtime

        self._pool = shared_runtime()

    def _runtime(self):
        """The engine's persistent pool, or ``None`` for the serial path."""
        if self.workers is None or self.workers <= 1 or self.backend != "vectorized":
            return None
        return self._pool.get(workers=self.workers)

    def _simulate(self, network: Network, config: ChainConfig) -> Dict[str, Any]:
        memo_key = canonical_json({
            "config": config_fingerprint(config),
            "workload": workload_fingerprint(network),
        })
        if memo_key in self._memo:
            return self._memo[memo_key]
        simulator = FunctionalChainSimulator(config, backend=self.backend,
                                             kernel_backend=self.kernel_backend)
        generator = WorkloadGenerator(seed=self.seed)
        runtime = self._runtime()
        layers: Dict[str, Dict[str, float]] = {}
        chain_cycles = 0.0
        windows_kept = 0
        max_error = 0.0
        for layer in network.conv_layers:
            ifmaps, weights = generator.layer_pair(layer)
            algorithm = "direct"
            if self.algorithm != "direct":
                # lazy: repro.analysis closes an import cycle back into this
                # module, so the eligibility check cannot be a top-level import
                from repro.analysis.winograd import winograd_eligible

                if winograd_eligible(layer):
                    algorithm = "winograd"
            if runtime is not None:
                result = simulator.run_layer_parallel(layer, ifmaps, weights,
                                                      runtime,
                                                      algorithm=algorithm)
            else:
                result = simulator.run_layer(layer, ifmaps, weights,
                                             algorithm=algorithm)
            error = result.max_abs_error_vs_reference(ifmaps, weights)
            chain_cycles += result.chain_cycles_estimate
            windows_kept += result.stats.windows_kept
            max_error = max(max_error, error)
            layers[layer.name] = {
                "chain_cycles": result.chain_cycles_estimate,
                "windows_kept": float(result.stats.windows_kept),
                "stride_discard_fraction": result.stats.stride_discard_fraction,
                "max_abs_error": error,
            }
        data = {
            "chain_cycles": chain_cycles,
            "windows_kept": windows_kept,
            "max_error": max_error,
            "layers": layers,
        }
        self._memo[memo_key] = data
        return data

    def evaluate(self, network: Network, config: Optional[ChainConfig] = None,
                 batch: int = 1) -> RunRecord:
        config = config or ChainConfig()
        sim = self._simulate(network, config)
        chain_cycles = sim["chain_cycles"]
        total_time_s = chain_cycles * batch / config.frequency_hz
        metrics = {
            "fps": batch / total_time_s if total_time_s else 0.0,
            "conv_cycles_per_image": chain_cycles,
            "windows_kept": float(sim["windows_kept"]),
            "max_abs_error": sim["max_error"],
            "total_time_per_batch_s": total_time_s,
            "peak_gops": config.peak_gops,
        }
        return RunRecord(
            engine=self.name,
            network=network.name,
            batch=batch,
            config_summary=config.describe(),
            metrics=metrics,
            extra={"layers": sim["layers"]},
        )

    def fingerprint(self) -> Dict[str, Any]:
        fingerprint = {
            "name": self.name,
            "seed": self.seed,
            "backend": self.backend,
            # every repro.kernels backend is bit-identical; the fingerprint
            # still records which one computed a cached result
            "kernels": backend_fingerprint(self.kernel_backend),
        }
        # only a non-default algorithm changes the simulated numbers, so the
        # direct-mode cache keys stay identical to earlier library versions
        if self.algorithm != "direct":
            fingerprint["algorithm"] = self.algorithm
        return fingerprint


class BaselineEngine(Engine):
    """Any Table V :class:`AcceleratorModel` as an engine (config is ignored)."""

    def __init__(self, model: AcceleratorModel, name: Optional[str] = None) -> None:
        self.model = model
        self.name = name or f"baseline-{_slug(model.name)}"

    def evaluate(self, network: Network, config: Optional[ChainConfig] = None,
                 batch: int = 1) -> RunRecord:
        summary = self.model.summarise(network, batch)
        metrics = {
            "fps": 0.0,
            "peak_gops": summary.peak_gops,
            "achieved_gops": summary.achieved_gops,
            "power_w": summary.power_w,
            "gops_per_watt": summary.energy_efficiency_gops_w,
            "parallelism": float(summary.parallelism),
            "frequency_hz": summary.frequency_hz,
        }
        time_s = self.model.workload_time_s(network, batch)
        if time_s > 0:
            metrics["fps"] = batch / time_s
            metrics["total_time_per_batch_s"] = time_s
        return RunRecord(
            engine=self.name,
            network=network.name,
            batch=batch,
            config_summary=f"{self.model.name} @ {summary.technology}",
            metrics=metrics,
            extra={"summary": asdict(summary)},
        )

    def fingerprint(self) -> Dict[str, Any]:
        fingerprint: Dict[str, Any] = {
            "name": self.name,
            "model": self.model.name,
            "technology": self.model.technology.name,
            "parallelism": self.model.parallelism,
            "frequency_hz": self.model.frequency_hz,
        }
        chip = getattr(self.model, "chip", None)
        if chip is not None:
            # Chain-NN baseline: configuration and calibrated energies decide
            # the modelled numbers
            fingerprint["default_config"] = dataclasses.asdict(chip.config)
            fingerprint["energy"] = dataclasses.asdict(chip.power_model.energy)
        return fingerprint


def _slug(text: str) -> str:
    """Lower-case dash-separated identifier from a human-readable name."""
    out = []
    for char in text.lower():
        if char.isalnum():
            out.append(char)
        elif out and out[-1] != "-":
            out.append("-")
    return "".join(out).strip("-")


def summary_from_record(record: RunRecord) -> AcceleratorSummary:
    """Rebuild the Table V :class:`AcceleratorSummary` a baseline record carries."""
    data = dict(record.extra["summary"])
    if data.get("onchip_memory_bytes") is not None:
        data["onchip_memory_bytes"] = int(data["onchip_memory_bytes"])
    data["parallelism"] = int(data["parallelism"])
    data["batch"] = int(data["batch"])
    return AcceleratorSummary(**data)


# --------------------------------------------------------------------- #
# default registrations
# --------------------------------------------------------------------- #
def _make_analytical(**kwargs) -> AnalyticalEngine:
    return AnalyticalEngine(**kwargs)


def _make_analytical_detailed(**kwargs) -> AnalyticalEngine:
    kwargs.setdefault("mode", "detailed")
    return AnalyticalEngine(**kwargs)


def _make_analytical_batch(**kwargs) -> AnalyticalBatchEngine:
    return AnalyticalBatchEngine(**kwargs)


def _make_analytical_batch_detailed(**kwargs) -> AnalyticalBatchEngine:
    kwargs.setdefault("mode", "detailed")
    return AnalyticalBatchEngine(**kwargs)


def _make_analytical_mapped(**kwargs) -> MappedAnalyticalEngine:
    return MappedAnalyticalEngine(**kwargs)


def _make_cycle(**kwargs) -> CycleEngine:
    return CycleEngine(**kwargs)


def _make_cycle_scalar(**kwargs) -> CycleEngine:
    kwargs.setdefault("backend", "scalar")
    return CycleEngine(**kwargs)


def _make_functional(**kwargs) -> FunctionalEngine:
    return FunctionalEngine(**kwargs)


def _make_functional_vectorized(**kwargs) -> FunctionalEngine:
    kwargs.setdefault("backend", "vectorized")
    return FunctionalEngine(**kwargs)


def _make_baseline_chain_nn(calibrate_power_to: Optional[Network] = None,
                            **kwargs) -> BaselineEngine:
    model = ChainNNModel(calibrate_power_to=calibrate_power_to)
    return BaselineEngine(model, name="baseline-chain-nn", **kwargs)


def _make_baseline_eyeriss(**kwargs) -> BaselineEngine:
    return BaselineEngine(Spatial2DAccelerator.scaled_to_28nm(),
                          name="baseline-eyeriss", **kwargs)


def _make_baseline_dadiannao(**kwargs) -> BaselineEngine:
    return BaselineEngine(MemoryCentricAccelerator(),
                          name="baseline-dadiannao", **kwargs)


#: engines registered on import, keyed by registry name
DEFAULT_ENGINES = {
    "analytical": _make_analytical,
    "analytical-detailed": _make_analytical_detailed,
    "analytical-batch": _make_analytical_batch,
    "analytical-batch-detailed": _make_analytical_batch_detailed,
    "analytical-mapped": _make_analytical_mapped,
    "cycle": _make_cycle,
    "cycle-scalar": _make_cycle_scalar,
    "functional": _make_functional,
    "functional-vectorized": _make_functional_vectorized,
    "baseline-chain-nn": _make_baseline_chain_nn,
    "baseline-eyeriss": _make_baseline_eyeriss,
    "baseline-dadiannao": _make_baseline_dadiannao,
}

for _name, _factory in DEFAULT_ENGINES.items():
    register_engine(_name, _factory)
