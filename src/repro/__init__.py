"""Chain-NN reproduction library.

An open-source Python reproduction of *"Chain-NN: An Energy-Efficient 1D
Chain Architecture for Accelerating Deep Convolutional Neural Networks"*
(DATE 2017).  The package models the dual-channel PE chain, its column-wise
scan dataflow, the surrounding memory hierarchy, and the power/area budget,
plus the baselines the paper compares against, and regenerates every table
and figure of the paper's evaluation (see EXPERIMENTS.md).

Quickstart
----------
>>> from repro import ChainNN, alexnet
>>> chip = ChainNN.paper_configuration()
>>> chip.peak_gops
806.4
"""

from repro.cnn import (
    ConvLayer,
    Network,
    WorkloadGenerator,
    alexnet,
    cifar10_quick,
    get_network,
    lenet5,
    tiny_test_network,
    vgg16,
)
from repro.core import (
    ChainConfig,
    ChainNN,
    ColumnScanSchedule,
    LayerMapper,
    NetworkResult,
    PerformanceModel,
    SystolicPrimitive,
    utilization_table,
)
from repro.energy import AreaModel, EnergyParams, PowerModel
from repro.engine import (
    Engine,
    RunCache,
    RunRecord,
    SweepExecutor,
    available_engines,
    create_engine,
)
from repro.memory import TrafficModel

__version__ = "1.6.0"

__all__ = [
    "__version__",
    "available_engines",
    "create_engine",
    "ChainNN",
    "Engine",
    "RunCache",
    "RunRecord",
    "SweepExecutor",
    "ChainConfig",
    "ColumnScanSchedule",
    "SystolicPrimitive",
    "LayerMapper",
    "PerformanceModel",
    "NetworkResult",
    "TrafficModel",
    "PowerModel",
    "EnergyParams",
    "AreaModel",
    "utilization_table",
    "ConvLayer",
    "Network",
    "WorkloadGenerator",
    "alexnet",
    "vgg16",
    "lenet5",
    "cifar10_quick",
    "tiny_test_network",
    "get_network",
]
