"""Command-line interface.

``python -m repro <command>`` exposes the most common workflows without
writing any Python:

* ``info``        — describe the configured accelerator (peak GOPS, memories,
  Table II utilization);
* ``run``         — evaluate a zoo network (fps, GOPS, power, traffic);
* ``experiments`` — regenerate every paper table/figure (paper vs measured);
* ``sweep``       — chain-length / frequency / batch design-space sweeps;
* ``verify``      — run the cycle-accurate simulator on small layers and check
  against the software reference.

Every command takes ``--pes`` and ``--frequency-mhz`` so non-paper
instantiations can be explored from the shell.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import render_bar_chart, render_dict_table, render_table
from repro.analysis.sweep import DesignSpaceExplorer
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.zoo import NETWORKS, get_network, tiny_test_network
from repro.core.accelerator import ChainNN
from repro.core.config import MAINSTREAM_KERNEL_SIZES, ChainConfig
from repro.core.utilization import utilization_table
from repro.hwmodel.clock import ClockDomain
from repro.sim.cycle import CycleAccurateChainSimulator


def _config_from_args(args: argparse.Namespace) -> ChainConfig:
    return ChainConfig(
        num_pes=args.pes,
        clock=ClockDomain(args.frequency_mhz * 1e6),
    )


# --------------------------------------------------------------------- #
# sub-commands
# --------------------------------------------------------------------- #
def cmd_info(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    chip = ChainNN(config)
    print(chip.describe())
    rows = {}
    for kernel, entry in utilization_table(config.num_pes, MAINSTREAM_KERNEL_SIZES).items():
        rows[f"K={kernel}"] = {
            "primitives": entry.active_primitives,
            "active PEs": entry.active_pes,
            "utilization (%)": entry.utilization * 100.0,
        }
    print(render_dict_table(rows, title="PE utilization (Table II)", row_label="kernel"))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    network = get_network(args.network)
    chip = ChainNN(config)
    result = chip.run_network(network, batch=args.batch)
    summary = result.summary()
    print(chip.describe())
    print(network.summary())
    print()
    print(render_table([summary], title=f"{network.name}, batch {args.batch}"))
    print()
    print(render_bar_chart(result.performance.layer_times_ms(),
                           title="Per-layer convolution time (ms)", unit=" ms"))
    if args.traffic:
        print()
        print(render_dict_table(result.traffic.table(), title="Memory traffic (MB)",
                                row_label="layer"))
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    report = run_all()
    print(report.report())
    print()
    for key, value in report.headline().items():
        print(f"{key:<36} {value:10.2f}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    explorer = DesignSpaceExplorer(get_network(args.network), batch=args.batch)
    if args.axis == "pes":
        points = explorer.sweep_chain_length()
    elif args.axis == "frequency":
        points = explorer.sweep_frequency()
    else:
        fps = explorer.sweep_batch_size()
        print(render_bar_chart({f"batch {b}": value for b, value in fps.items()},
                               title="fps vs batch size", unit=" fps"))
        return 0
    print(render_table([point.as_row() for point in points],
                       title=f"{args.axis} sweep on {args.network}",
                       row_names=[point.label for point in points], row_label="point"))
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    simulator = CycleAccurateChainSimulator(config)
    generator = WorkloadGenerator(seed=args.seed)
    failures = 0
    for layer in tiny_test_network().conv_layers:
        ifmaps, weights = generator.layer_pair(layer)
        result = simulator.run_layer(layer, ifmaps, weights)
        status = "ok" if (result.reference_max_abs_error or 0.0) < 1e-9 else "MISMATCH"
        if status != "ok":
            failures += 1
        print(f"{layer.name:<10} K={layer.kernel_size} "
              f"max|err|={result.reference_max_abs_error:.2e} "
              f"cycles={result.stats.primitive_cycles:<8} {status}")
    print("verification " + ("PASSED" if failures == 0 else f"FAILED ({failures} layers)"))
    return 0 if failures == 0 else 1


# --------------------------------------------------------------------- #
# argument parsing
# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chain-NN (DATE 2017) reproduction — accelerator models and experiments",
    )
    parser.add_argument("--pes", type=int, default=576, help="number of PEs in the chain")
    parser.add_argument("--frequency-mhz", type=float, default=700.0, help="core clock (MHz)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="describe the accelerator and its Table II utilization")

    run = sub.add_parser("run", help="evaluate a zoo network")
    run.add_argument("network", choices=sorted(NETWORKS), help="network to evaluate")
    run.add_argument("--batch", type=int, default=4, help="batch size")
    run.add_argument("--traffic", action="store_true", help="also print the traffic table")

    sub.add_parser("experiments", help="regenerate every paper table and figure")

    sweep = sub.add_parser("sweep", help="design-space sweeps")
    sweep.add_argument("axis", choices=("pes", "frequency", "batch"), help="sweep axis")
    sweep.add_argument("--network", default="alexnet", choices=sorted(NETWORKS))
    sweep.add_argument("--batch", type=int, default=16)

    verify = sub.add_parser("verify", help="cycle-accurate verification on small layers")
    verify.add_argument("--seed", type=int, default=2017)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "info": cmd_info,
        "run": cmd_run,
        "experiments": cmd_experiments,
        "sweep": cmd_sweep,
        "verify": cmd_verify,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
