"""Command-line interface.

``python -m repro <command>`` exposes the most common workflows without
writing any Python:

* ``info``        — describe the configured accelerator (peak GOPS, memories,
  Table II utilization);
* ``engines``     — list the registered execution engines;
* ``run``         — evaluate a zoo network through any engine (fps, GOPS,
  power, traffic), with ``--mode {paper,detailed}`` fidelity selection;
* ``experiments`` — regenerate every paper table/figure (paper vs measured),
  with ``--json`` machine-readable headline export;
* ``sweep``       — chain-length / frequency / batch design-space sweeps,
  with ``--engine``, ``--parallel`` and an on-disk result cache; dense grids
  via ``--grid pe=128:1152:32,freq=200:1000:50`` run through the columnar
  ``analytical-batch`` fast path, with ``--pareto`` / ``--top`` reduction;
* ``pareto``      — grid sweep + Pareto frontier (time vs. power vs. area)
  in one command;
* ``cache``       — ``stats`` / ``clear`` for the on-disk sweep result cache;
* ``verify``      — cross-check the cycle-accurate simulator's backends on
  small layers (``--sim cycle``), or run whole-network functional dataflow
  verification (``--sim functional [--network alexnet]``) through the
  vectorized window-enumeration backend;
* ``map``         — search the per-layer mapping space (primitive partition,
  stripe height, kernel chunking, batch interleave) for a latency /
  throughput / EDP / energy objective with ``--strategy
  {exhaustive,random,greedy,anneal}``, report searched-vs-baseline
  schedules and optionally ``--verify`` every searched mapping against the
  im2col golden reference;
* ``networks``    — list the network zoo with per-network layer counts,
  MACs, parameter totals and Winograd-eligible MAC coverage;
* ``bench``       — run a registered benchmark (``sweep``, ``cycle``,
  ``functional``, ``mapping``, ``obs``, ``parallel``, ``kernels``,
  ``faults``, ``winograd`` or ``all``) and write its ``BENCH_*.json``
  trajectory record;
* ``trace``       — ``summarize FILE`` renders per-span statistics for a
  wall-clock trace exported with ``--trace``.

Observability (:mod:`repro.obs`) is global: ``--trace FILE`` records a
wall-clock span trace of the whole command — engines, cache, mapping
search and pool workers merged onto one timeline — as Chrome trace-event
JSON (load in Perfetto / chrome://tracing; a ``.jsonl`` suffix selects the
line-oriented format instead), and ``--metrics`` dumps the metrics
registry (cache hits/misses, candidates enumerated/pruned/scored, retries,
backend dispatches, ...) to stderr after the command.  ``sweep`` and
``map`` always print a one-line stats footer (wall time, throughput,
cache hit-rate, workers) even without either flag.

``run``/``map``/``verify`` take ``--algorithm {direct,winograd,auto}`` to
select the conv execution algorithm: ``winograd`` runs (or pins the search
to) the Winograd F(2x2,3x3) transform domain on eligible 3x3-stride-1
layers, ``auto`` lets the mapping search pick direct vs Winograd per layer
under the never-worse guarantee.

Every command takes ``--pes`` and ``--frequency-mhz`` so non-paper
instantiations can be explored from the shell, plus ``--kernel-backend
{numpy,numba}`` to pin the :mod:`repro.kernels` compute backend (default:
``$REPRO_KERNEL_BACKEND`` or autodetection, with a bit-identical NumPy
fallback when numba is unavailable); ``run``/``sweep``/``map``/``verify``
additionally take ``--workers`` to fan work over the persistent
shared-memory parallel runtime (:mod:`repro.runtime`) with bit-identical
results.  The supervised runtime's fault-tolerance knobs are global too:
``--task-deadline`` / ``--task-retries`` set the hang deadline and retry
budget (exported as ``$REPRO_TASK_DEADLINE`` / ``$REPRO_TASK_RETRIES`` so
workers spawned anywhere downstream inherit them), and cache-carrying
commands take ``--cache-max-mb`` to bound the on-disk store with LRU
eviction.  All evaluation dispatches through the unified engine layer
(:mod:`repro.engine`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

import numpy as np

from repro.analysis.batch import DEFAULT_OBJECTIVES
from repro.analysis.winograd import network_winograd_coverage, winograd_eligible
from repro.analysis.report import render_bar_chart, render_dict_table, render_table
from repro.analysis.sweep import DesignSpaceExplorer
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.layer import FullyConnectedLayer
from repro.cnn.zoo import NETWORKS, get_network, tiny_test_network
from repro.core.accelerator import ChainNN
from repro.core.config import MAINSTREAM_KERNEL_SIZES, ChainConfig
from repro.core.utilization import utilization_table
from repro.engine import (
    CACHE_DIR_ENV,
    CACHE_MAX_MB_ENV,
    INDEX_ENV,
    RunCache,
    available_engines,
    create_engine,
)
from repro.hwmodel.clock import ClockDomain
from repro.kernels import KERNEL_BACKEND_ENV, KNOWN_BACKENDS, set_default_backend
from repro.mapping import OBJECTIVES, STRATEGIES, ScheduleOptimizer, make_strategy
from repro.mapping.mapspace import ALGORITHM_MODES
from repro.obs import trace as obs_trace
from repro.obs.export import export_trace, render_summary, summarize_trace
from repro.obs.metrics import REGISTRY, render_metrics
from repro.runtime.supervisor import DEADLINE_ENV, RETRIES_ENV
from repro.memory.traffic import TrafficModel
from repro.serve import payloads as serve_payloads
from repro.serve.protocol import DEFAULT_PORT
from repro.sim.cycle import CYCLE_BACKENDS, CycleAccurateChainSimulator
from repro.sim.network import FunctionalNetworkRunner


def _config_from_args(args: argparse.Namespace) -> ChainConfig:
    return ChainConfig(
        num_pes=args.pes,
        clock=ClockDomain(args.frequency_mhz * 1e6),
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _cache_from_args(args: argparse.Namespace) -> Optional[RunCache]:
    """Sweep cache selection: ``--cache-dir`` wins, else ``$REPRO_CACHE_DIR``
    enables the default location, else caching stays off."""
    if getattr(args, "no_cache", False):
        return None
    max_mb = getattr(args, "cache_max_mb", None)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        return RunCache(cache_dir, max_mb=max_mb)
    if os.environ.get(CACHE_DIR_ENV):
        return RunCache(max_mb=max_mb)
    return None


# --------------------------------------------------------------------- #
# sub-commands
# --------------------------------------------------------------------- #
def cmd_info(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    chip = ChainNN(config)
    print(chip.describe())
    rows = {}
    for kernel, entry in utilization_table(config.num_pes, MAINSTREAM_KERNEL_SIZES).items():
        rows[f"K={kernel}"] = {
            "primitives": entry.active_primitives,
            "active PEs": entry.active_pes,
            "utilization (%)": entry.utilization * 100.0,
        }
    print(render_dict_table(rows, title="PE utilization (Table II)", row_label="kernel"))
    return 0


def cmd_engines(args: argparse.Namespace) -> int:
    print("registered engines:")
    for name in available_engines():
        print(f"  {name}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    network = get_network(args.network)
    engine_kwargs = {}
    if args.engine == "analytical":
        engine_kwargs = {"mode": args.mode or "paper"}
    elif args.mode is not None:
        expected = "detailed" if args.engine == "analytical-detailed" else None
        if args.mode != expected:
            print(f"error: --mode {args.mode} conflicts with --engine {args.engine}",
                  file=sys.stderr)
            return 2
    if args.workers is not None:
        # only the functional simulator decomposes a single evaluation into
        # parallel ofmap-block tasks; other engines evaluate one closed form
        if args.engine != "functional-vectorized":
            print("error: --workers applies to --engine functional-vectorized "
                  f"only, not {args.engine}", file=sys.stderr)
            return 2
        engine_kwargs["workers"] = args.workers
    if args.algorithm != "direct":
        # the algorithm axis exists where convolutions are actually executed
        # or mapped; the closed-form analytical engines model direct only
        algorithm_engines = ("functional", "functional-vectorized",
                             "analytical-mapped")
        if args.engine not in algorithm_engines:
            print(f"error: --algorithm {args.algorithm} applies to "
                  f"--engine {{{','.join(algorithm_engines)}}}, "
                  f"not {args.engine}", file=sys.stderr)
            return 2
        engine_kwargs["algorithm"] = args.algorithm
    engine = create_engine(args.engine, **engine_kwargs)
    record = engine.evaluate(network, config, batch=args.batch)

    # the traffic model is config-derived, so --traffic works with any engine
    traffic = (TrafficModel(config).network_traffic(network, args.batch)
               if args.traffic else None)

    if args.json:
        print(serve_payloads.dumps(serve_payloads.run_payload(record, traffic)))
        return 0

    # the mapped engine reports search metrics, not the per-layer analytical
    # summary; it renders through the generic engine table below
    if args.engine.startswith("analytical") and args.engine != "analytical-mapped":
        summary_keys = ("batch", "fps", "conv_time_per_batch_ms", "kernel_load_time_ms",
                        "achieved_gops", "total_power_w", "gops_per_watt")
        summary = {key: record.metrics[key] for key in summary_keys}
        print(record.config_summary)
        print(network.summary())
        print()
        print(render_table([summary],
                           title=f"{network.name}, batch {args.batch} ({record.engine})"))
        print()
        print(render_bar_chart(record.extra["layer_times_ms"],
                               title="Per-layer convolution time (ms)", unit=" ms"))
        _print_traffic(traffic)
        return 0

    print(record.config_summary or config.describe())
    print(network.summary())
    print()
    rows = {record.engine: {k: v for k, v in sorted(record.metrics.items())}}
    print(render_dict_table(rows, title=f"{network.name}, batch {args.batch}",
                            row_label="engine"))
    _print_traffic(traffic)
    return 0


def _print_traffic(traffic) -> None:
    if traffic is not None:
        print()
        print(render_dict_table(traffic.table(), title="Memory traffic (MB)",
                                row_label="layer"))


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments import runner

    if args.json or args.write_md:
        # one implementation of the export paths for both entry points
        argv = ["--json"] if args.json else []
        if args.write_md:
            argv += ["--write-md", args.write_md]
        return runner.main(argv)
    report = runner.run_all()
    print(report.report())
    print()
    for key, value in report.headline().items():
        print(f"{key:<36} {value:10.2f}")
    return 0


def _print_cache_counters(explorer: DesignSpaceExplorer) -> None:
    """Surface the executor's cache hit/miss counters after a sweep."""
    cache = explorer.executor.cache
    if cache is None:
        return
    stats = cache.stats()
    print(f"cache: {stats['hits']} hits / {stats['misses']} misses, "
          f"{stats['entries']} entries on disk ({stats['root']})")


def cmd_sweep_grid(args: argparse.Namespace) -> int:
    """Dense-grid sweep through the columnar batch path."""
    if (getattr(args, "parallel", False) or getattr(args, "jobs", None)
            or getattr(args, "workers", None)):
        # grids run through the columnar evaluate_batch path (serial by
        # design: the fast path is array arithmetic, the fallback a per-point
        # loop); refusing beats silently ignoring the requested workers
        print("error: --parallel/--jobs/--workers apply to axis sweeps only; "
              "--grid evaluates through the columnar batch path", file=sys.stderr)
        return 2
    # the columnar engines are numerically identical to their scalar
    # counterparts; dense grids dispatch to them in either fidelity mode
    engine = serve_payloads.upgrade_grid_engine(args.engine)
    explorer = DesignSpaceExplorer(
        get_network(args.network),
        batch=args.batch,
        engine=engine,
        cache=_cache_from_args(args),
    )
    result = explorer.sweep_grid(args.grid, base=_config_from_args(args))
    pareto, top = serve_payloads.reduce_grid_result(
        result, args.objectives, args.metric, args.top, args.pareto)

    if args.json:
        print(serve_payloads.dumps(serve_payloads.grid_payload(
            args.grid, engine, args.network, result, pareto, top,
            args.objectives, args.metric)))
        return 0

    print(f"{result.n_points} design points on {args.network} ({engine}), "
          f"grid {args.grid}")
    if pareto is not None:
        shown = min(pareto.n_points, args.max_rows)
        title = (f"Pareto frontier ({pareto.n_points} points, "
                 f"{' vs '.join(args.objectives)})")
        if shown < pareto.n_points:
            title += f" — first {shown} shown, use --json for all"
        order = pareto.top_k("gops_per_watt", shown)
        print(render_table(order.rows(), title=title, row_names=order.labels(),
                           row_label="point"))
    if top is not None:
        print(render_table(top.rows(), title=f"top {top.n_points} by {args.metric}",
                           row_names=top.labels(), row_label="point"))
    _print_cache_counters(explorer)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.grid is not None and args.axis is not None:
        print("error: give either a sweep axis or --grid, not both", file=sys.stderr)
        return 2
    if args.grid is None and args.axis is None:
        print("error: need a sweep axis (pes/frequency/batch) or --grid",
              file=sys.stderr)
        return 2
    if args.grid is not None:
        return cmd_sweep_grid(args)
    if args.workers is not None and args.jobs is not None:
        print("error: give either --workers or its legacy alias --jobs, not both",
              file=sys.stderr)
        return 2
    workers = args.workers if args.workers is not None else args.jobs
    args.parallel = args.parallel or args.workers is not None
    explorer = DesignSpaceExplorer(
        get_network(args.network),
        batch=args.batch,
        engine=args.engine,
        cache=_cache_from_args(args),
        parallel=args.parallel,
        max_workers=workers,
    )
    base = _config_from_args(args)
    if args.axis == "pes":
        points = explorer.sweep_chain_length(base=base)
    elif args.axis == "frequency":
        points = explorer.sweep_frequency(base=base)
    else:
        fps = explorer.sweep_batch_size(base=base)
        if args.json:
            print(json.dumps({"axis": "batch", "engine": args.engine,
                              "network": args.network,
                              "fps_by_batch": {str(b): v for b, v in fps.items()}},
                             indent=2, sort_keys=True))
            return 0
        print(render_bar_chart({f"batch {b}": value for b, value in fps.items()},
                               title="fps vs batch size", unit=" fps"))
        return 0
    if args.json:
        payload = {
            "axis": args.axis,
            "engine": args.engine,
            "network": args.network,
            "batch": args.batch,
            "parallel": args.parallel,
            "points": [{"label": point.label, **point.as_row()} for point in points],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(render_table([point.as_row() for point in points],
                       title=f"{args.axis} sweep on {args.network} ({args.engine})",
                       row_names=[point.label for point in points], row_label="point"))
    _print_cache_counters(explorer)
    return 0


def cmd_pareto(args: argparse.Namespace) -> int:
    """Grid sweep + Pareto reduction in one command."""
    args.pareto = True
    args.top = None
    return cmd_sweep_grid(args)


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the on-disk sweep result cache."""
    # explicit None check: RunCache defines __len__, so an *empty* cache is
    # falsy and `or` would silently swap a --cache-dir selection for the
    # default root
    cache = _cache_from_args(args)
    if cache is None:
        cache = RunCache(max_mb=args.cache_max_mb)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached records from {cache.root}")
        return 0
    if args.action == "migrate":
        outcome = cache.migrate()
        if not outcome["enabled"]:
            print(f"cache index disabled (${INDEX_ENV}=0); nothing to migrate")
            return 0
        if not outcome["available"]:
            print(f"error: cache index under {cache.root} is unavailable "
                  "(see the warning above)", file=sys.stderr)
            return 1
        print(f"cache index at {cache.root}: {outcome['entries']} records "
              f"({outcome['added']} added, {outcome['refreshed']} refreshed, "
              f"{outcome['pruned']} stale rows pruned)")
        return 0
    stats = cache.stats()
    print(f"cache root : {stats['root']}")
    print(f"entries    : {stats['entries']}")
    print(f"size       : {stats['bytes'] / 1024:.1f} KiB")
    if stats["max_bytes"] is not None:
        print(f"size bound : {stats['max_bytes'] / (1024 * 1024):.1f} MiB (LRU)")
    index = stats["index"]
    if not index["enabled"]:
        print(f"index      : disabled (${INDEX_ENV}=0)")
    elif not index["available"]:
        print("index      : unavailable — directory scans in use "
              "('repro cache migrate' rebuilds it)")
    else:
        health = []
        if index["stale"]:
            health.append(f"{index['stale']} stale")
        if index["unindexed"]:
            health.append(f"{index['unindexed']} unindexed")
        suffix = (f" ({', '.join(health)}; 'repro cache migrate' reconciles)"
                  if health else " (healthy)")
        print(f"index      : {index['entries']} records indexed{suffix}")
    if stats["tmp_orphans"]:
        print(f"tmp orphans: {stats['tmp_orphans']} (crash debris; "
              "'repro cache clear' reaps them)")
    if stats["corrupt"]:
        print(f"corrupt    : {stats['corrupt']} quarantined record(s)")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    if args.sim == "functional":
        return _verify_functional(args)
    if args.algorithm != "direct":
        print("error: --algorithm applies to --sim functional only (the "
              "cycle simulator executes the direct dataflow)", file=sys.stderr)
        return 2
    if args.workers is not None:
        print("error: --workers applies to --sim functional only (the cycle "
              "cross-check runs tiny layers where fan-out cannot pay off)",
              file=sys.stderr)
        return 2
    if args.network != "tiny":
        print("error: --network applies to --sim functional only (the scalar "
              "cycle cross-check is limited to the tiny network)", file=sys.stderr)
        return 2
    config = _config_from_args(args)
    backend = args.backend or "both"
    backends = list(CYCLE_BACKENDS) if backend == "both" else [backend]
    simulators = {
        backend: CycleAccurateChainSimulator(config, backend=backend)
        for backend in backends
    }
    generator = WorkloadGenerator(seed=args.seed)
    failures = 0
    for layer in tiny_test_network().conv_layers:
        ifmaps, weights = generator.layer_pair(layer)
        results = {
            backend: simulator.run_layer(layer, ifmaps, weights)
            for backend, simulator in simulators.items()
        }
        result = next(iter(results.values()))
        status = "ok" if (result.reference_max_abs_error or 0.0) < 1e-9 else "MISMATCH"
        if len(results) == 2:
            vec, scalar = results["vectorized"], results["scalar"]
            if not (np.array_equal(vec.ofmaps, scalar.ofmaps)
                    and vec.stats == scalar.stats):
                status = "BACKEND-MISMATCH"
        if status != "ok":
            failures += 1
        print(f"{layer.name:<10} K={layer.kernel_size} "
              f"max|err|={result.reference_max_abs_error:.2e} "
              f"cycles={result.stats.primitive_cycles:<8} "
              f"[{'+'.join(backends)}] {status}")
    print("verification " + ("PASSED" if failures == 0 else f"FAILED ({failures} layers)"))
    return 0 if failures == 0 else 1


def cmd_networks(args: argparse.Namespace) -> int:
    """List the network zoo with layer counts, MACs and parameter totals."""
    entries = {}
    for name in sorted(NETWORKS):
        network = get_network(name)
        fc_params = sum(layer.in_features * layer.out_features
                        for layer in network.layers
                        if isinstance(layer, FullyConnectedLayer))
        conv_layers = network.conv_layers
        coverage = network_winograd_coverage(network)
        entries[name] = {
            "network": network.name,
            "layers": len(network.layers),
            "conv_layers": len(conv_layers),
            "conv_macs_per_image": network.total_conv_macs,
            "conv_weights": network.total_conv_weights,
            "fc_weights": fc_params,
            "total_weights": network.total_conv_weights + fc_params,
            "max_kernel": max((layer.kernel_size for layer in conv_layers),
                              default=0),
            # which conv layers the Winograd F(2x2,3x3) mode can execute,
            # and what fraction of the network's conv MACs they hold
            "winograd_eligible": {
                layer.name: winograd_eligible(layer) for layer in conv_layers
            },
            "winograd_mac_coverage": coverage["mac_coverage"],
        }
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    rows = {
        name: {
            "layers": entry["layers"],
            "conv": entry["conv_layers"],
            "MACs/image (M)": entry["conv_macs_per_image"] / 1e6,
            "conv params (M)": entry["conv_weights"] / 1e6,
            "total params (M)": entry["total_weights"] / 1e6,
            "max K": entry["max_kernel"],
            "wino MAC cov (%)": entry["winograd_mac_coverage"] * 100.0,
        }
        for name, entry in entries.items()
    }
    print(render_dict_table(rows, title="network zoo", row_label="network"))
    return 0


def cmd_map(args: argparse.Namespace) -> int:
    """Search the mapping space and report the optimised schedule."""
    # knobs that don't apply to the chosen strategy are errors, not no-ops
    if args.samples is not None and args.strategy != "random":
        print(f"error: --samples applies to --strategy random only, "
              f"not {args.strategy}", file=sys.stderr)
        return 2
    if args.iterations is not None and args.strategy != "anneal":
        print(f"error: --iterations applies to --strategy anneal only, "
              f"not {args.strategy}", file=sys.stderr)
        return 2
    strategy_kwargs = {}
    if args.strategy in ("random", "anneal"):
        strategy_kwargs["seed"] = args.seed
    if args.samples is not None:
        strategy_kwargs["samples"] = args.samples
    if args.iterations is not None:
        strategy_kwargs["iterations"] = args.iterations
    optimizer = ScheduleOptimizer(
        config=_config_from_args(args),
        objective=args.objective,
        strategy=make_strategy(args.strategy, **strategy_kwargs),
        batch=args.batch,
        cache=_cache_from_args(args),
        workers=args.workers,
        algorithm=args.algorithm,
    )
    network = get_network(args.network)
    schedule = optimizer.optimize(network)
    verification = (optimizer.verify(network, schedule, seed=args.seed)
                    if args.verify else None)

    if args.json:
        print(serve_payloads.dumps(
            serve_payloads.map_payload(schedule, args.algorithm, verification)))
        return 0 if verification is None or verification.passed else 1

    print(schedule.describe())
    searched_fps = schedule.frames_per_second()
    base_time = sum(s.metrics["time_per_batch_s"] for s in schedule.baseline)
    print(f"  fps: searched {searched_fps:.1f} vs baseline "
          f"{schedule.batch / base_time:.1f}; first image "
          f"{schedule.first_image_latency_s() * 1e3:.2f} ms, "
          f"energy/batch {schedule.total_energy_per_batch_j() * 1e3:.1f} mJ")
    if verification is not None:
        print()
        print(verification.describe())
        return 0 if verification.passed else 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the evaluation service until interrupted."""
    import asyncio

    from repro.serve.server import EvalServer

    server = EvalServer(
        args.host, args.port,
        window_ms=args.window_ms,
        workers=args.workers,
        cache=_cache_from_args(args),
    )

    async def _serve() -> None:
        await server.start()
        print(f"repro serve listening on http://{server.host}:{server.port} "
              f"(coalescing window {args.window_ms:g} ms; Ctrl-C stops)")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    flat = REGISTRY.flat()
    print(f"[serve] {int(flat.get('serve.requests', 0))} requests, "
          f"{int(flat.get('serve.coalesced_batches', 0))} coalesced batches, "
          f"{int(flat.get('serve.points', 0))} points", file=sys.stderr)
    return 0


def cmd_request(args: argparse.Namespace) -> int:
    """Send one request to a running evaluation service.

    The response body is printed exactly as the server produced it, which
    is byte-identical to the matching ``repro <command> --json`` output.
    """
    from repro.serve.client import ServeClient, ServeError

    try:
        params = json.loads(args.params) if args.params else {}
    except ValueError as error:
        print(f"error: request parameters must be a JSON object ({error})",
              file=sys.stderr)
        return 2
    if not isinstance(params, dict):
        print("error: request parameters must be a JSON object", file=sys.stderr)
        return 2
    try:
        with ServeClient(args.host, args.port, timeout=args.timeout) as client:
            if args.op in ("map", "verify"):
                def on_event(event: dict) -> None:
                    print(json.dumps(event, sort_keys=True), file=sys.stderr)
                payload, status = client.stream(
                    f"/v1/{args.op}", params,
                    on_event if args.progress else None)
                print(serve_payloads.dumps(payload))
                return status
            if args.op in ("health", "metrics"):
                payload = client.call(f"/v1/{args.op}", method="GET")
            else:
                payload = client.call(f"/v1/{args.op}", params)
            print(serve_payloads.dumps(payload))
            return 0
    except ServeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: cannot reach the evaluation service at "
              f"{args.host}:{args.port} ({error}); start one with "
              "'repro serve'", file=sys.stderr)
        return 1


#: registered benchmarks: name -> pytest files that measure it and write
#: ``BENCH_<name>.json`` at the repo root (run from a repo checkout)
BENCHMARKS = {
    "sweep": ("benchmarks/bench_batch_sweep.py",),
    "cycle": ("benchmarks/bench_vectorized_cycle.py",),
    "functional": ("benchmarks/bench_functional.py",),
    "mapping": ("benchmarks/bench_mapping.py",),
    "parallel": ("benchmarks/bench_parallel.py",),
    "kernels": ("benchmarks/bench_kernels.py",),
    "faults": ("benchmarks/bench_faults.py",),
    "winograd": ("benchmarks/bench_winograd.py",),
    "obs": ("benchmarks/bench_obs.py",),
    "serve": ("benchmarks/bench_serve.py",),
}


def cmd_bench(args: argparse.Namespace) -> int:
    """Run registered benchmarks and write their ``BENCH_*.json`` records.

    ``repro bench <name>`` replaces the ad-hoc per-file pytest invocations
    CI used to carry: it locates the benchmark files relative to the
    installed sources, runs them through pytest (``--timing`` enables the
    pytest-benchmark timing loop; the default smoke pass only asserts the
    qualitative claims and records the measured numbers) and reports where
    the trajectory JSON landed.
    """
    import subprocess
    from pathlib import Path

    import repro

    src_dir = Path(repro.__file__).resolve().parent.parent
    repo_root = src_dir.parent
    names = sorted(BENCHMARKS) if args.name == "all" else [args.name]
    for name in names:
        paths = [repo_root / path for path in BENCHMARKS[name]]
        missing = [str(path) for path in paths if not path.is_file()]
        if missing:
            print(f"error: benchmark files not found: {', '.join(missing)} "
                  "(repro bench needs a repository checkout)", file=sys.stderr)
            return 2
        command = [sys.executable, "-m", "pytest",
                   *[str(path) for path in paths], "-q"]
        if not args.timing:
            command.append("--benchmark-disable")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_dir)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        if args.kernel_backend is not None:
            # the benchmarks run in a pytest subprocess; the CLI flag crosses
            # the process boundary as the backend environment variable
            env[KERNEL_BACKEND_ENV] = args.kernel_backend
        print(f"[bench {name}] {' '.join(command[2:])}")
        outcome = subprocess.run(command, env=env, cwd=repo_root)
        if outcome.returncode != 0:
            print(f"error: benchmark {name!r} failed "
                  f"(exit {outcome.returncode})", file=sys.stderr)
            return outcome.returncode
        record = repo_root / f"BENCH_{name}.json"
        if record.is_file():
            print(f"[bench {name}] wrote {record}")
        else:  # pragma: no cover - benchmark contract violation
            print(f"warning: benchmark {name!r} did not write {record}",
                  file=sys.stderr)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Summarize a wall-clock trace file written by ``--trace``."""
    try:
        summary = summarize_trace(args.path)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_summary(summary))
    return 0


def _verify_functional(args: argparse.Namespace) -> int:
    """Whole-network dataflow verification through the functional simulator.

    The default backend cross-checks scalar vs vectorized bit-identity on the
    tiny network; zoo-scale networks default to the vectorized fast path
    (golden-checked against the im2col reference per layer), which keeps full
    AlexNet/VGG verification a seconds-scale operation.
    """
    network = (tiny_test_network() if args.network == "tiny"
               else get_network(args.network))
    backend = args.backend or ("both" if args.network == "tiny" else "vectorized")
    if args.workers is not None and backend != "vectorized":
        print(f"error: --workers requires the vectorized backend, not {backend}",
              file=sys.stderr)
        return 2
    with FunctionalNetworkRunner(
        _config_from_args(args), backend=backend, seed=args.seed,
        workers=args.workers, algorithm=args.algorithm,
    ) as runner:
        result = runner.run(network)
    print(result.describe())
    return 0 if result.passed else 1


# --------------------------------------------------------------------- #
# argument parsing
# --------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chain-NN (DATE 2017) reproduction — accelerator models and experiments",
    )
    parser.add_argument("--pes", type=int, default=576, help="number of PEs in the chain")
    parser.add_argument("--frequency-mhz", type=float, default=700.0, help="core clock (MHz)")
    parser.add_argument("--kernel-backend", choices=KNOWN_BACKENDS, default=None,
                        help="repro.kernels compute backend (default: "
                             f"${KERNEL_BACKEND_ENV} or autodetection; a "
                             "requested-but-unavailable backend degrades to "
                             "the bit-identical numpy reference)")
    parser.add_argument("--task-deadline", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="supervised-runtime hang deadline: a worker "
                             "silent on one task this long is killed and the "
                             "task retried (default: "
                             f"${DEADLINE_ENV} or no deadline)")
    parser.add_argument("--task-retries", type=_positive_int, default=None,
                        metavar="N",
                        help="worker deaths one task may cause before it is "
                             "quarantined to serial parent execution "
                             f"(default: ${RETRIES_ENV} or 3)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="record a wall-clock span trace of the command "
                             "(engines, cache, mapping search and pool "
                             "workers merged) as Chrome trace-event JSON "
                             "for Perfetto/chrome://tracing; a .jsonl "
                             "suffix writes line-oriented JSON instead")
    parser.add_argument("--metrics", action="store_true",
                        help="dump the repro.obs metrics registry to stderr "
                             "after the command")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="describe the accelerator and its Table II utilization")
    sub.add_parser("engines", help="list the registered execution engines")

    run = sub.add_parser("run", help="evaluate a zoo network")
    run.add_argument("network", choices=sorted(NETWORKS), help="network to evaluate")
    run.add_argument("--batch", type=int, default=4, help="batch size")
    run.add_argument("--mode", choices=("paper", "detailed"), default=None,
                     help="analytical fidelity mode (paper-idealised or "
                          "register-level); only valid with analytical engines")
    run.add_argument("--engine", choices=available_engines(), default="analytical",
                     help="execution engine to dispatch through")
    run.add_argument("--json", action="store_true", help="emit the run record as JSON")
    run.add_argument("--traffic", action="store_true", help="also print the traffic table")
    run.add_argument("--workers", type=_positive_int, default=None,
                     help="worker processes for the functional-vectorized "
                          "engine's per-layer ofmap blocks (default: serial)")
    run.add_argument("--algorithm", choices=ALGORITHM_MODES, default="direct",
                     help="conv execution algorithm: winograd/auto run "
                          "eligible 3x3-stride-1 layers in the transform "
                          "domain (functional engines) or add the algorithm "
                          "axis to the search (analytical-mapped)")

    experiments = sub.add_parser("experiments",
                                 help="regenerate every paper table and figure")
    experiments.add_argument("--json", action="store_true",
                             help="emit the headline numbers as JSON")
    experiments.add_argument("--write-md", nargs="?", const="EXPERIMENTS.md", default=None,
                             metavar="PATH", help="write EXPERIMENTS.md and exit")

    config_sensitive = tuple(name for name in available_engines()
                             if not name.startswith("baseline-"))

    def add_grid_arguments(parser: argparse.ArgumentParser,
                           pareto_implied: bool) -> None:
        parser.add_argument("--network", default="alexnet", choices=sorted(NETWORKS))
        parser.add_argument("--batch", type=int, default=16)
        parser.add_argument("--engine", choices=config_sensitive, default="analytical",
                            help="engine evaluating each design point (baselines are "
                                 "fixed architectures and cannot be swept); grids "
                                 "upgrade 'analytical' to the columnar "
                                 "'analytical-batch' fast path")
        parser.add_argument("--grid", default=None if not pareto_implied
                            else "pe=128:1152:32,freq=200:1000:50",
                            metavar="SPEC",
                            help="dense design grid, e.g. "
                                 "pe=128:1152:32,freq=200:1000:50[,batch=...][,bits=...] "
                                 "(freq in MHz, ranges are start:stop:step with "
                                 "inclusive stop)")
        parser.add_argument("--objectives", default=DEFAULT_OBJECTIVES,
                            type=lambda text: tuple(text.split(",")),
                            metavar="COL1,COL2,...",
                            help="metric columns minimised by the Pareto frontier "
                                 f"(default: {','.join(DEFAULT_OBJECTIVES)})")
        parser.add_argument("--metric", default="gops_per_watt",
                            help="metric column for --top ranking")
        parser.add_argument("--max-rows", type=_positive_int, default=20,
                            help="frontier rows printed in text mode")
        parser.add_argument("--json", action="store_true",
                            help="emit the results as JSON")
        parser.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="memoise design points in this directory "
                                 f"(${CACHE_DIR_ENV} enables the default location)")
        parser.add_argument("--no-cache", action="store_true",
                            help="disable the on-disk result cache even when "
                                 f"${CACHE_DIR_ENV} is set")
        parser.add_argument("--cache-max-mb", type=_positive_float, default=None,
                            metavar="MB",
                            help="bound the cache directory to this many MB; "
                                 "least-recently-used records are evicted "
                                 f"(default: ${CACHE_MAX_MB_ENV} or unbounded)")

    sweep = sub.add_parser("sweep", help="design-space sweeps")
    sweep.add_argument("axis", nargs="?", choices=("pes", "frequency", "batch"),
                       help="sweep axis (omit when sweeping a dense --grid)")
    add_grid_arguments(sweep, pareto_implied=False)
    sweep.add_argument("--pareto", action="store_true",
                       help="reduce a --grid sweep to its Pareto frontier")
    sweep.add_argument("--top", type=_positive_int, default=None, metavar="K",
                       help="also report the top-K points by --metric")
    sweep.add_argument("--parallel", action="store_true",
                       help="evaluate design points in worker processes")
    sweep.add_argument("--workers", type=_positive_int, default=None,
                       help="worker processes for axis sweeps (implies "
                            "--parallel; default: CPU cores)")
    sweep.add_argument("--jobs", type=_positive_int, default=None,
                       help="legacy alias of --workers (only sets the count "
                            "when --parallel is given)")

    pareto = sub.add_parser("pareto",
                            help="grid sweep reduced to its Pareto frontier "
                                 "(time vs. power vs. area)")
    add_grid_arguments(pareto, pareto_implied=True)

    cache = sub.add_parser("cache", help="inspect or clear the on-disk sweep cache")
    cache.add_argument("action", choices=("stats", "clear", "migrate"),
                       help="show entry/size statistics (with sqlite index "
                            "health), delete every record, or rebuild the "
                            "sqlite index from the record files (idempotent; "
                            "safe against a live server)")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory (default: "
                            f"${CACHE_DIR_ENV} or ~/.cache/repro-chain-nn)")
    cache.add_argument("--cache-max-mb", type=_positive_float, default=None,
                       metavar="MB",
                       help="size bound reported by stats (eviction applies "
                            "when sweeps write through a bounded cache)")

    networks = sub.add_parser("networks",
                              help="list the network zoo (layer counts, MACs, "
                                   "parameter totals)")
    networks.add_argument("--json", action="store_true",
                          help="emit the zoo statistics as JSON")

    map_cmd = sub.add_parser(
        "map",
        help="search the per-layer mapping space for an objective and report "
             "the optimised schedule vs the paper's Table II mapping",
    )
    map_cmd.add_argument("--network", default="alexnet", choices=sorted(NETWORKS))
    map_cmd.add_argument("--objective", default="throughput",
                         choices=tuple(OBJECTIVES),
                         help="objective the schedule is optimised for")
    map_cmd.add_argument("--strategy", default="anneal", choices=STRATEGIES,
                         help="search strategy (exhaustive scans the pruned "
                              "space; anneal/random/greedy sample it)")
    map_cmd.add_argument("--batch", type=_positive_int, default=16,
                         help="batch size the schedule is optimised for")
    map_cmd.add_argument("--seed", type=int, default=2017,
                         help="seed for the stochastic strategies and the "
                              "verification tensors")
    map_cmd.add_argument("--samples", type=_positive_int, default=None,
                         help="candidates sampled by --strategy random")
    map_cmd.add_argument("--iterations", type=_positive_int, default=None,
                         help="steps of --strategy anneal")
    map_cmd.add_argument("--algorithm", choices=ALGORITHM_MODES,
                         default="direct",
                         help="algorithm axis of the search: 'auto' lets the "
                              "optimizer pick direct vs Winograd per layer, "
                              "'winograd' forces the transform domain on "
                              "eligible layers (default: direct only)")
    map_cmd.add_argument("--verify", action="store_true",
                         help="functionally verify every searched mapping "
                              "against the im2col golden reference")
    map_cmd.add_argument("--workers", type=_positive_int, default=None,
                         help="fan per-layer searches over this many worker "
                              "processes (bit-identical to serial search)")
    map_cmd.add_argument("--json", action="store_true",
                         help="emit the optimised schedule as JSON")
    map_cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="memoise searches in this directory "
                              f"(${CACHE_DIR_ENV} enables the default location)")
    map_cmd.add_argument("--no-cache", action="store_true",
                         help="disable the on-disk search cache even when "
                              f"${CACHE_DIR_ENV} is set")
    map_cmd.add_argument("--cache-max-mb", type=_positive_float, default=None,
                         metavar="MB",
                         help="bound the search cache to this many MB with "
                              "LRU eviction")

    verify = sub.add_parser(
        "verify",
        help="simulator verification: cycle-accurate cross-check on small "
             "layers, or whole-network functional dataflow verification",
    )
    verify.add_argument("--seed", type=int, default=2017)
    verify.add_argument("--sim", choices=("cycle", "functional"), default="cycle",
                        help="which simulator to verify (default: cycle)")
    verify.add_argument("--network", choices=("tiny",) + tuple(sorted(NETWORKS)),
                        default="tiny",
                        help="network to verify with --sim functional "
                             "(default: the tiny test network)")
    verify.add_argument("--backend", choices=CYCLE_BACKENDS + ("both",), default=None,
                        help="simulator backend (default: cross-check both; "
                             "functional verification of zoo networks defaults "
                             "to the vectorized fast path)")
    verify.add_argument("--workers", type=_positive_int, default=None,
                        help="worker processes for --sim functional ofmap "
                             "blocks (bit-identical to the serial path)")
    verify.add_argument("--algorithm", choices=ALGORITHM_MODES,
                        default="direct",
                        help="run eligible 3x3-stride-1 layers through the "
                             "Winograd F(2x2,3x3) transform domain "
                             "(--sim functional; checked against the im2col "
                             "golden within the documented tolerance)")

    bench = sub.add_parser(
        "bench",
        help="run a registered benchmark and write its BENCH_*.json record",
    )
    bench.add_argument("name", choices=sorted(BENCHMARKS) + ["all"],
                       help="benchmark to run (or 'all')")
    bench.add_argument("--timing", action="store_true",
                       help="enable the pytest-benchmark timing loop instead "
                            "of the smoke pass")

    serve_cmd = sub.add_parser(
        "serve",
        help="run the evaluation service: concurrent run/sweep/map/verify "
             "over HTTP/JSON with request coalescing",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default: loopback)")
    serve_cmd.add_argument("--port", type=int, default=DEFAULT_PORT,
                           help=f"TCP port (default: {DEFAULT_PORT}; 0 picks "
                                "a free port)")
    serve_cmd.add_argument("--window-ms", type=_positive_float, default=4.0,
                           help="coalescing micro-batch window: how long the "
                                "first sweep request of a batch waits for "
                                "compatible company (default: 4 ms)")
    serve_cmd.add_argument("--workers", type=_positive_int, default=None,
                           help="default worker processes for map/verify "
                                "requests that do not set their own "
                                "(default: serial, like the CLI)")
    serve_cmd.add_argument("--cache-dir", default=None, metavar="DIR",
                           help="shared RunCache for mapping searches "
                                f"(${CACHE_DIR_ENV} enables the default "
                                "location)")
    serve_cmd.add_argument("--no-cache", action="store_true",
                           help="disable the on-disk cache even when "
                                f"${CACHE_DIR_ENV} is set")
    serve_cmd.add_argument("--cache-max-mb", type=_positive_float, default=None,
                           metavar="MB", help="bound the cache with LRU eviction")

    request_cmd = sub.add_parser(
        "request",
        help="send one request to a running evaluation service and print "
             "the JSON response (byte-identical to the --json CLI output)",
    )
    request_cmd.add_argument("op",
                             choices=("run", "sweep", "map", "verify",
                                      "health", "metrics"),
                             help="operation to request")
    request_cmd.add_argument("params", nargs="?", default=None,
                             metavar="JSON",
                             help="request parameters as a JSON object, e.g. "
                                  '\'{"network": "alexnet", "batch": 8}\' '
                                  "(defaults mirror the CLI defaults)")
    request_cmd.add_argument("--host", default="127.0.0.1")
    request_cmd.add_argument("--port", type=int, default=DEFAULT_PORT)
    request_cmd.add_argument("--timeout", type=_positive_float, default=600.0,
                             help="response timeout in seconds")
    request_cmd.add_argument("--progress", action="store_true",
                             help="print map/verify progress events to stderr "
                                  "as they stream in")

    trace_cmd = sub.add_parser(
        "trace",
        help="inspect wall-clock traces exported with --trace",
    )
    trace_cmd.add_argument("action", choices=("summarize",),
                           help="render per-span statistics for a trace file")
    trace_cmd.add_argument("path", metavar="FILE",
                           help="trace written by --trace (Chrome trace-event "
                                "JSON or .jsonl)")

    return parser


def _print_stats_footer(args: argparse.Namespace, wall_s: float) -> None:
    """One-line run statistics after ``sweep``/``map`` (metrics-registry
    sourced, printed even without ``--trace``)."""
    flat = REGISTRY.flat()
    if args.command == "map":
        count = flat.get("mapping.candidates_searched", 0)
        unit = "candidates"
    else:
        count = flat.get("sweep.points", 0) + flat.get("sweep.grid_points", 0)
        unit = "points"
    hits = flat.get("cache.hits", 0)
    lookups = hits + flat.get("cache.misses", 0)
    cache_part = (f"cache {hits}/{lookups} hits ({hits / lookups:.0%})"
                  if lookups else "cache off")
    workers = getattr(args, "workers", None) or getattr(args, "jobs", None)
    if workers is None:
        workers = "auto" if getattr(args, "parallel", False) else 1
    rate = f", {count / wall_s:.1f} {unit}/s" if wall_s > 0 and count else ""
    print(f"[obs] {args.command}: {count} {unit} in {wall_s:.2f}s{rate}, "
          f"{cache_part}, workers={workers}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.kernel_backend is not None:
        # the CLI flag outranks $REPRO_KERNEL_BACKEND; every engine,
        # simulator and worker constructed below inherits this default
        set_default_backend(args.kernel_backend)
    if args.task_deadline is not None:
        # exported (not threaded through call chains) so RetryPolicy.from_env
        # picks it up wherever a supervised pool is constructed downstream
        os.environ[DEADLINE_ENV] = str(args.task_deadline)
    if args.task_retries is not None:
        os.environ[RETRIES_ENV] = str(args.task_retries)
    if args.trace:
        # enabling before dispatch also exports $REPRO_TRACE, so pool
        # workers spawned lazily anywhere downstream record and ship spans
        obs_trace.enable()
    handlers = {
        "info": cmd_info,
        "engines": cmd_engines,
        "run": cmd_run,
        "experiments": cmd_experiments,
        "sweep": cmd_sweep,
        "pareto": cmd_pareto,
        "cache": cmd_cache,
        "verify": cmd_verify,
        "map": cmd_map,
        "networks": cmd_networks,
        "bench": cmd_bench,
        "trace": cmd_trace,
        "serve": cmd_serve,
        "request": cmd_request,
    }
    start = time.perf_counter()
    with obs_trace.span("cli." + args.command):
        status = handlers[args.command](args)
    wall_s = time.perf_counter() - start
    if args.command in ("sweep", "pareto", "map"):
        _print_stats_footer(args, wall_s)
    if args.trace:
        events = export_trace(args.trace)
        print(f"[obs] wrote {events} trace events to {args.trace} — load in "
              "Perfetto (ui.perfetto.dev) or chrome://tracing, or run "
              f"'repro trace summarize {args.trace}'", file=sys.stderr)
    if args.metrics:
        print(render_metrics(), file=sys.stderr)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
