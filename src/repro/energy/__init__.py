"""Power, energy and area models."""

from repro.energy.area import AreaModel, AreaReport
from repro.energy.components import (
    PAPER_POWER_BREAKDOWN_W,
    PAPER_TOTAL_POWER_W,
    EnergyParams,
    GateCountParams,
)
from repro.energy.power import PowerModel, PowerReport
from repro.energy.technology import (
    ST_28NM,
    TSMC_28NM,
    TSMC_65NM,
    TechNode,
    scale_efficiency,
    scale_frequency,
)

__all__ = [
    "AreaModel",
    "AreaReport",
    "EnergyParams",
    "GateCountParams",
    "PAPER_POWER_BREAKDOWN_W",
    "PAPER_TOTAL_POWER_W",
    "PowerModel",
    "PowerReport",
    "TechNode",
    "TSMC_28NM",
    "TSMC_65NM",
    "ST_28NM",
    "scale_efficiency",
    "scale_frequency",
]
