"""Activity-based power model — regenerates Fig. 10 and the Table V power rows.

Power is computed as ``activity x unit energy`` for four blocks:

* **chain** — every active PE spends :attr:`EnergyParams.pe_cycle_j` per busy
  cycle (MAC + channel/psum/pipeline registers + control share); idle PEs of
  partially-used chains contribute only through the static fraction;
* **kMemory** — per-PE register-file reads at the rate the traffic model
  derives (activity factor ``1/(K*E)`` of Sec. V.C);
* **iMemory / oMemory** — SRAM accesses at the traffic-model rates;
* a configurable static fraction on top of the dynamic chain power.

The same machinery yields the power of a workload (AlexNet for Fig. 10) or of
a hypothetical fully-busy chain (peak power), and the energy-efficiency
figures used in the Table V comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.core.performance import NetworkPerformance, PerformanceModel
from repro.energy.components import (
    PAPER_POWER_BREAKDOWN_W,
    EnergyParams,
)
from repro.errors import ConfigurationError
from repro.memory.traffic import NetworkTraffic, TrafficModel


# --------------------------------------------------------------------- #
# closed forms (shared with the columnar batch evaluator, which applies
# them to whole arrays of design points at once — keep them free of any
# scalar-only operations)
# --------------------------------------------------------------------- #
def chain_power_w(busy_pe_cycles, runtime_s, energy: EnergyParams):
    """Chain block power: busy PE-cycles x per-cycle energy (+ static share)."""
    chain_w = busy_pe_cycles * energy.pe_cycle_j / runtime_s
    return chain_w * (1.0 + energy.static_fraction)


def memory_power_w(word_accesses, runtime_s, access_energy_j):
    """SRAM/register-file block power: word accesses x per-access energy."""
    return word_accesses * access_energy_j / runtime_s


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown of one workload on one configuration."""

    name: str
    components_w: Dict[str, float]
    throughput_gops: float

    @property
    def total_w(self) -> float:
        """Total chip power (excluding DRAM, as the paper does)."""
        return sum(self.components_w.values())

    @property
    def gops_per_watt(self) -> float:
        """Energy efficiency (the paper's headline 1421 GOPS/W metric)."""
        return self.throughput_gops / self.total_w if self.total_w else 0.0

    @property
    def core_only_w(self) -> float:
        """Power of the processor core (chain + kMemory), Fig. 10's split."""
        return self.components_w.get("chain", 0.0) + self.components_w.get("kMemory", 0.0)

    @property
    def memory_hierarchy_w(self) -> float:
        """Power of the iMemory/oMemory hierarchy."""
        return self.components_w.get("iMemory", 0.0) + self.components_w.get("oMemory", 0.0)

    @property
    def core_only_gops_per_watt(self) -> float:
        """Core-only efficiency (the paper quotes ~1.7 TOPS/W for Chain-NN)."""
        return self.throughput_gops / self.core_only_w if self.core_only_w else 0.0

    def fractions(self) -> Dict[str, float]:
        """Per-component share of the total (the Fig. 10 percentages)."""
        total = self.total_w
        if total == 0.0:
            return {name: 0.0 for name in self.components_w}
        return {name: watts / total for name, watts in self.components_w.items()}


class PowerModel:
    """Computes :class:`PowerReport` objects for a chain configuration."""

    def __init__(
        self,
        config: ChainConfig | None = None,
        energy: EnergyParams | None = None,
        performance: PerformanceModel | None = None,
        traffic: TrafficModel | None = None,
    ) -> None:
        self.config = config or ChainConfig()
        self.energy = energy or EnergyParams()
        self.performance = performance or PerformanceModel(self.config)
        self.traffic = traffic or TrafficModel(self.config)

    # ------------------------------------------------------------------ #
    # workload power
    # ------------------------------------------------------------------ #
    def network_power(self, network: Network, batch: int = 4,
                      name: str | None = None) -> PowerReport:
        """Average power while running a network's convolutional layers."""
        perf = self.performance.network_performance(network, batch)
        traffic = self.traffic.network_traffic(network, batch)
        return self._report_from(perf, traffic, name or network.name)

    def _report_from(self, perf: NetworkPerformance, traffic: NetworkTraffic,
                     name: str) -> PowerReport:
        runtime_s = perf.total_time_per_batch_s
        if runtime_s <= 0:
            raise ConfigurationError("workload runtime must be positive")
        word = self.config.word_bytes

        # chain: busy PE-cycles x per-cycle energy (+ static share)
        busy_pe_cycles = sum(
            layer.mapping.active_pes * layer.conv_cycles_per_batch for layer in perf.layers
        )
        chain_w = chain_power_w(busy_pe_cycles, runtime_s, self.energy)

        # memories: word accesses x per-access energy
        kmem_words = sum(layer.kmemory_bytes for layer in traffic.layers) / word
        imem_words = sum(layer.imemory_bytes for layer in traffic.layers) / word
        omem_words = sum(layer.omemory_bytes for layer in traffic.layers) / word
        kmemory_w = memory_power_w(kmem_words, runtime_s, self.energy.kmemory_access_j)
        imemory_w = memory_power_w(imem_words, runtime_s, self.energy.imemory_access_j)
        omemory_w = memory_power_w(omem_words, runtime_s, self.energy.omemory_access_j)

        return PowerReport(
            name=name,
            components_w={
                "chain": chain_w,
                "kMemory": kmemory_w,
                "iMemory": imemory_w,
                "oMemory": omemory_w,
            },
            throughput_gops=perf.achieved_gops,
        )

    # ------------------------------------------------------------------ #
    # peak power (all PEs busy, no workload)
    # ------------------------------------------------------------------ #
    def peak_power(self, kernel_size: int = 3) -> PowerReport:
        """Power with every primitive streaming at full rate (kernel-size dependent
        only through the kMemory activity factor ``1/(K*E)``)."""
        freq = self.config.frequency_hz
        chain_w = self.config.num_pes * self.energy.pe_cycle_j * freq
        chain_w *= 1.0 + self.energy.static_fraction
        # steady-state per-cycle access rates
        kmem_rate = self.config.num_pes / (kernel_size * 32.0)  # nominal E ~ 32
        imem_rate = 2.0 * (self.config.num_pes / (kernel_size * kernel_size))
        omem_rate = 1.0 * (self.config.num_pes / (kernel_size * kernel_size))
        return PowerReport(
            name=f"peak (K={kernel_size})",
            components_w={
                "chain": chain_w,
                "kMemory": kmem_rate * freq * self.energy.kmemory_access_j,
                "iMemory": imem_rate * freq * self.energy.imemory_access_j,
                "oMemory": omem_rate * freq * self.energy.omemory_access_j,
            },
            throughput_gops=self.config.peak_gops,
        )

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #
    def calibrated_to_paper(self, network: Network, batch: int = 4) -> "PowerModel":
        """Return a new model whose unit energies reproduce Fig. 10 exactly.

        Each block's unit energy is rescaled by the ratio between the paper's
        reported power and the power this model predicts for the same
        workload; the resulting parameters make the Table V comparison use
        the paper's own operating point while every other experiment can
        still run with the representative defaults.
        """
        baseline = self.network_power(network, batch)
        targets = PAPER_POWER_BREAKDOWN_W

        def ratio(component: str) -> float:
            predicted = baseline.components_w[component]
            if predicted <= 0:
                return 1.0
            return targets[component] / predicted

        chain_ratio = ratio("chain")
        calibrated = self.energy.with_overrides(
            mac_op_j=self.energy.mac_op_j * chain_ratio,
            pe_register_j=self.energy.pe_register_j * chain_ratio,
            pe_control_j=self.energy.pe_control_j * chain_ratio,
            kmemory_access_j=self.energy.kmemory_access_j * ratio("kMemory"),
            imemory_access_j=self.energy.imemory_access_j * ratio("iMemory"),
            omemory_access_j=self.energy.omemory_access_j * ratio("oMemory"),
        )
        return PowerModel(
            config=self.config,
            energy=calibrated,
            performance=self.performance,
            traffic=self.traffic,
        )
