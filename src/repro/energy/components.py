"""Per-component unit energies and gate counts.

The power model is an activity x unit-energy product, so everything hinges on
the unit energies collected here.  The defaults are representative 28 nm
figures (in the range published for this class of design: a 16-bit fixed-point
MAC below a picojoule, small SRAM accesses of a few picojoules, DRAM two
orders of magnitude above that).  Because absolute numbers from any public
source carry large error bars, the module also provides
:func:`EnergyParams.calibrated_to_paper`, which rescales the on-chip entries
so that the model's Fig. 10 breakdown matches the paper exactly for the
AlexNet workload — the calibrated preset is what the Table V comparison bench
uses by default, and the representative preset shows the model is in the right
regime without calibration.

Gate counts follow the same philosophy: the per-PE budget sums to the 6.51k
gates/PE the paper reports, split over the datapath elements a dual-channel PE
contains.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EnergyParams:
    """Unit energies in joules (per operation / access / byte)."""

    #: one 16-bit fixed-point multiply-accumulate
    mac_op_j: float = 0.60e-12
    #: clocking + shifting the PE's channel / psum / weight registers for one cycle
    pe_register_j: float = 0.40e-12
    #: per-PE share of control, muxing and the primitive ports for one cycle
    pe_control_j: float = 0.17e-12
    #: one 16-bit read/write of the per-PE kMemory register file
    kmemory_access_j: float = 1.20e-12
    #: one 16-bit access of the 32 KB iMemory SRAM
    imemory_access_j: float = 2.40e-12
    #: one 16-bit access of the 25 KB oMemory SRAM
    omemory_access_j: float = 2.20e-12
    #: one byte moved to/from DRAM (excluded from chip power, reported separately)
    dram_byte_j: float = 160.0e-12
    #: static (leakage + clock tree) power as a fraction of dynamic chain power
    static_fraction: float = 0.08

    def __post_init__(self) -> None:
        for name in ("mac_op_j", "pe_register_j", "pe_control_j", "kmemory_access_j",
                     "imemory_access_j", "omemory_access_j", "dram_byte_j"):
            check_positive(name, getattr(self, name))
        if not (0.0 <= self.static_fraction < 1.0):
            raise ValueError(f"static_fraction must be in [0, 1), got {self.static_fraction}")

    @property
    def pe_cycle_j(self) -> float:
        """Energy of one busy PE-cycle excluding kMemory (MAC + registers + control)."""
        return self.mac_op_j + self.pe_register_j + self.pe_control_j

    def scaled(self, factor: float) -> "EnergyParams":
        """Uniformly scale every on-chip unit energy (e.g. for a node port)."""
        check_positive("factor", factor)
        return replace(
            self,
            mac_op_j=self.mac_op_j * factor,
            pe_register_j=self.pe_register_j * factor,
            pe_control_j=self.pe_control_j * factor,
            kmemory_access_j=self.kmemory_access_j * factor,
            imemory_access_j=self.imemory_access_j * factor,
            omemory_access_j=self.omemory_access_j * factor,
        )

    def with_overrides(self, **changes: float) -> "EnergyParams":
        """Return a copy with selected fields replaced."""
        return replace(self, **changes)


#: Fig. 10 target breakdown (watts) used for calibration
PAPER_POWER_BREAKDOWN_W: Dict[str, float] = {
    "chain": 0.46671,
    "kMemory": 0.04015,
    "iMemory": 0.00391,
    "oMemory": 0.05670,
}
PAPER_TOTAL_POWER_W: float = 0.5675


@dataclass(frozen=True)
class GateCountParams:
    """NAND2-equivalent gate counts per PE component (sums to ~6.51k/PE)."""

    multiplier_gates: int = 2450
    adder_gates: int = 460
    pipeline_register_gates: int = 1480
    channel_register_gates: int = 640
    weight_register_gates: int = 160
    mux_gates: int = 420
    control_gates: int = 480
    primitive_port_share_gates: int = 360

    @property
    def per_pe_gates(self) -> int:
        """Total logic gates per PE (the paper's 6.51k/PE metric)."""
        return (
            self.multiplier_gates
            + self.adder_gates
            + self.pipeline_register_gates
            + self.channel_register_gates
            + self.weight_register_gates
            + self.mux_gates
            + self.control_gates
            + self.primitive_port_share_gates
        )

    def breakdown(self) -> Dict[str, int]:
        """Per-component gate counts (for the area report)."""
        return {
            "multiplier": self.multiplier_gates,
            "adder": self.adder_gates,
            "pipeline registers": self.pipeline_register_gates,
            "channel registers": self.channel_register_gates,
            "weight register": self.weight_register_gates,
            "muxes": self.mux_gates,
            "control": self.control_gates,
            "primitive ports (share)": self.primitive_port_share_gates,
        }
