"""Gate-count / area model (the area rows of Table V).

The paper reports 3751k logic gates for the 576-PE instantiation plus 352 KB
of on-chip memory, i.e. 6.51k gates per PE — against Eyeriss's 11.02k
gates/PE — and credits the 1.7x area efficiency to the simpler inter-PE data
paths of the 1D chain.  The model composes the total from a per-PE component
budget plus a small chain-level overhead (FSM controller, memory-interface
logic), so the scaling studies (more PEs, different kernel-port counts) have
something principled to vary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import ChainConfig
from repro.energy.components import GateCountParams


@dataclass(frozen=True)
class AreaReport:
    """Gate-count summary of one accelerator instantiation."""

    name: str
    num_pes: int
    gates_per_pe: float
    chain_gates: float
    controller_gates: float
    memory_interface_gates: float
    onchip_memory_bytes: int

    @property
    def total_gates(self) -> float:
        """Total logic gates (the paper's "Gate Count" row)."""
        return self.chain_gates + self.controller_gates + self.memory_interface_gates

    @property
    def logic_gates_per_pe(self) -> float:
        """Total logic divided by PE count — the area-efficiency metric of Sec. V.D."""
        return self.total_gates / self.num_pes

    def breakdown(self) -> Dict[str, float]:
        """Gate counts by block."""
        return {
            "PE chain": self.chain_gates,
            "controller": self.controller_gates,
            "memory interface": self.memory_interface_gates,
        }


class AreaModel:
    """Gate-count model for a chain configuration."""

    #: chain-level overheads, independent of the PE count (FSM + config regs)
    CONTROLLER_GATES = 24_000.0
    #: per-primitive-port memory-interface logic (address generators, fifos)
    PORT_INTERFACE_GATES = 800.0

    def __init__(self, config: ChainConfig | None = None,
                 gates: GateCountParams | None = None) -> None:
        self.config = config or ChainConfig()
        self.gates = gates or GateCountParams()

    @classmethod
    def total_gates_for(cls, num_pes, gates: GateCountParams | None = None,
                        reference_kernel: int = 3):
        """Total-logic-gates closed form.

        ``num_pes`` may be a scalar or an integer NumPy array (the columnar
        batch evaluator applies this to a whole design grid at once); the
        arithmetic is identical to :meth:`report`'s ``total_gates``.
        """
        gates = gates or GateCountParams()
        ports = num_pes // (reference_kernel * reference_kernel)
        return (float(gates.per_pe_gates) * num_pes + cls.CONTROLLER_GATES
                + cls.PORT_INTERFACE_GATES * ports)

    def report(self, name: str = "Chain-NN", reference_kernel: int = 3) -> AreaReport:
        """Build the area report.

        ``reference_kernel`` sets how many primitive ports the memory
        interface is sized for (the smallest supported kernel needs the most
        ports: ``num_pes / K^2``).
        """
        ports = self.config.num_pes // (reference_kernel * reference_kernel)
        return AreaReport(
            name=name,
            num_pes=self.config.num_pes,
            gates_per_pe=float(self.gates.per_pe_gates),
            chain_gates=float(self.gates.per_pe_gates * self.config.num_pes),
            controller_gates=self.CONTROLLER_GATES,
            memory_interface_gates=self.PORT_INTERFACE_GATES * ports,
            onchip_memory_bytes=self.config.onchip_memory_bytes,
        )

    def pe_breakdown(self) -> Dict[str, int]:
        """Per-PE gate budget by component."""
        return self.gates.breakdown()
