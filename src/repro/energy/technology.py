"""Technology-node parameters and inter-node scaling.

Table V compares designs manufactured in different nodes (DaDianNao: ST 28 nm,
Eyeriss: TSMC 65 nm, Chain-NN: TSMC 28 nm); the paper's footnote scales
Eyeriss's energy efficiency to 28 nm before comparing.  This module captures
the node parameters and the first-order scaling rules used for that kind of
normalisation:

* dynamic energy scales with ``C * V^2`` — approximated as the product of the
  feature-size ratio (capacitance) and the square of the voltage ratio;
* achievable frequency scales roughly with the inverse of the gate delay,
  approximated by the feature-size ratio.

These are the standard constant-field (Dennard-style) approximations; they
are crude but match how accelerator papers of this era normalise numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TechNode:
    """A CMOS technology node."""

    name: str
    feature_nm: float
    nominal_voltage_v: float

    def __post_init__(self) -> None:
        check_positive("feature_nm", self.feature_nm)
        check_positive("nominal_voltage_v", self.nominal_voltage_v)

    def energy_scale_to(self, target: "TechNode") -> float:
        """Multiplier applied to dynamic energy when porting to ``target``."""
        capacitance_ratio = target.feature_nm / self.feature_nm
        voltage_ratio = (target.nominal_voltage_v / self.nominal_voltage_v) ** 2
        return capacitance_ratio * voltage_ratio

    def frequency_scale_to(self, target: "TechNode") -> float:
        """Multiplier applied to achievable clock frequency when porting to ``target``."""
        return self.feature_nm / target.feature_nm

    def efficiency_scale_to(self, target: "TechNode") -> float:
        """Multiplier applied to GOPS/W when porting to ``target``.

        Energy per operation shrinks by ``energy_scale`` so efficiency grows
        by its inverse.
        """
        scale = self.energy_scale_to(target)
        if scale <= 0:
            raise ConfigurationError("energy scale must be positive")
        return 1.0 / scale

    def area_scale_to(self, target: "TechNode") -> float:
        """Multiplier applied to area when porting to ``target`` (quadratic in feature size)."""
        return (target.feature_nm / self.feature_nm) ** 2


#: the nodes appearing in Table V
TSMC_28NM = TechNode(name="TSMC 28nm", feature_nm=28.0, nominal_voltage_v=0.9)
TSMC_65NM = TechNode(name="TSMC 65nm", feature_nm=65.0, nominal_voltage_v=1.0)
ST_28NM = TechNode(name="ST 28nm", feature_nm=28.0, nominal_voltage_v=0.9)


def scale_efficiency(gops_per_watt: float, source: TechNode, target: TechNode) -> float:
    """Scale an energy-efficiency figure between nodes.

    With the default node voltages this turns Eyeriss's 245.6 GOPS/W at 65 nm
    into roughly the 570 GOPS/W the paper's footnote quotes for 28 nm.
    """
    return gops_per_watt * source.efficiency_scale_to(target)


def scale_frequency(frequency_hz: float, source: TechNode, target: TechNode) -> float:
    """Scale an achievable clock frequency between nodes."""
    return frequency_hz * source.frequency_scale_to(target)
