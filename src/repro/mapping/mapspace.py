"""Mapspace enumeration: the legal mappings of one layer onto the chain.

A mapping candidate fixes the four scheduling choices the chain architecture
leaves open for a convolutional layer:

* ``primitives`` — how many of the chain's ``floor(P / K^2)`` primitive
  slots execute the layer (fewer primitives mean more passes but fewer
  active PEs);
* ``stripe_height`` — ofmap rows computed per stripe (the paper uses the
  full ``K``; any ``1..K`` is legal, trading stripe count against the
  iMemory band height);
* ``chunk`` — kMemory-resident passes per kernel refill (``1..capacity``
  words per PE; ``ceil(passes / chunk)`` refills);
* ``interleave`` — ``"batch"`` (the paper's chunk-major-over-batch order:
  kernels load once per batch, partial ofmaps spill across chunk
  boundaries) or ``"image"`` (image-major: no partial-sum spills, kernels
  reload per image whenever they do not fit);
* ``algorithm`` — ``"direct"`` (the paper's sliding-window dataflow) or
  ``"winograd"`` (the F(2x2,3x3) transform-domain mode of
  :mod:`repro.analysis.winograd`, legal only for 3x3 stride-1 layers).
  Winograd candidates pin ``stripe_height`` to the kernel size — the 4x4
  tile grid fixes the stripe plan, so the height axis is degenerate — and
  draw their chunk axis from the *reduced* kMemory capacity left by the
  16/9-wider transformed filter planes.  The axis is **opt-in** per space
  (``algorithm="direct"`` keeps the space exactly as before; ``"auto"``
  enumerates both algorithms on eligible layers; ``"winograd"`` forces the
  transform domain on eligible layers), so direct-only searches and their
  caches are untouched.

Legality checks reuse :class:`~repro.errors.MappingError` via
:meth:`repro.core.mapper.LayerMapper.map_layer_with`.  Enumeration applies
*analytic pruning bounds* so zoo-scale spaces stay tractable:

* the cost model depends on ``primitives`` only through ``passes =
  ceil(Q / p)`` and the active-PE count ``p * K^2``, and every cost column
  is weakly *increasing* in ``p`` at fixed ``passes`` (more active PEs burn
  more chain energy for the same latency) — so only the **minimal** ``p``
  per distinct ``passes`` value (plus the Table II baseline ``p``) needs
  evaluating;
* the cost model depends on ``chunk`` only through ``refills =
  ceil(passes / chunk)`` — so only the **maximal** chunk per distinct
  refill count needs evaluating;
* the two interleave policies coincide when ``refills == 1``, so the
  image-major variant is only emitted when the weights do not fit.

Both bounds follow the ``ceil``-plateau structure (there are at most
``O(sqrt(Q))`` distinct values of ``ceil(Q / p)``), which is what keeps the
pruned space around 10^3–10^4 candidates per layer even for VGG-scale
``Q = 262144`` channel-pair layers whose full space has ~10^5 points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.analysis.winograd import (
    winograd_eligible,
    winograd_kmemory_capacity,
)
from repro.cnn.layer import ConvLayer
from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.core.mapper import LayerMapper
from repro.errors import MappingError
from repro.obs import metrics as obs_metrics

# enumeration counters: "pruned" counts the candidates the analytic bounds
# removed relative to the unpruned cross-product (full_size - pruned_size)
_M_ENUMERATED = obs_metrics.counter("mapping.candidates_enumerated")
_M_PRUNED = obs_metrics.counter("mapping.candidates_pruned")

#: batch-interleave policies a candidate can select
INTERLEAVES = ("batch", "image")

#: execution algorithms a candidate can select
ALGORITHMS = ("direct", "winograd")

#: algorithm-axis modes a mapspace (and the optimizer/CLI) accepts
ALGORITHM_MODES = ("direct", "winograd", "auto")


@dataclass(frozen=True)
class MappingCandidate:
    """One point of a layer's mapspace."""

    primitives: int
    stripe_height: int
    chunk: int
    interleave: str = "batch"
    algorithm: str = "direct"

    def __post_init__(self) -> None:
        if self.interleave not in INTERLEAVES:
            raise MappingError(
                f"interleave must be one of {INTERLEAVES}, got {self.interleave!r}"
            )
        if self.algorithm not in ALGORITHMS:
            raise MappingError(
                f"algorithm must be one of {ALGORITHMS}, got {self.algorithm!r}"
            )

    @property
    def image_major(self) -> bool:
        """True for the image-major (latency-oriented) schedule."""
        return self.interleave == "image"

    @property
    def is_winograd(self) -> bool:
        """True when the candidate runs in the transform domain."""
        return self.algorithm == "winograd"

    def describe(self) -> str:
        """Compact human-readable form (the ``repro map`` table cells)."""
        suffix = " wino" if self.is_winograd else ""
        return (f"p={self.primitives} h={self.stripe_height} "
                f"c={self.chunk} {self.interleave}{suffix}")

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-dict form suitable for ``json.dump`` and cache payloads."""
        return {
            "primitives": self.primitives,
            "stripe_height": self.stripe_height,
            "chunk": self.chunk,
            "interleave": self.interleave,
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "MappingCandidate":
        """Rebuild a candidate from :meth:`to_json_dict` output."""
        return cls(
            primitives=int(data["primitives"]),
            stripe_height=int(data["stripe_height"]),
            chunk=int(data["chunk"]),
            interleave=str(data.get("interleave", "batch")),
            algorithm=str(data.get("algorithm", "direct")),
        )


def candidate_arrays(candidates: List[MappingCandidate]
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                np.ndarray, np.ndarray]:
    """Struct-of-arrays columns of a candidate list.

    Returns ``(primitives, stripe_height, chunk, interleave_image,
    winograd)`` in the argument order
    :meth:`repro.analysis.batch.MappingBatchEvaluator.evaluate` expects.
    """
    return (
        np.array([c.primitives for c in candidates], dtype=np.int64),
        np.array([c.stripe_height for c in candidates], dtype=np.int64),
        np.array([c.chunk for c in candidates], dtype=np.int64),
        np.array([c.image_major for c in candidates], dtype=bool),
        np.array([c.is_winograd for c in candidates], dtype=bool),
    )


class LayerMapSpace:
    """The legal mapping candidates of one layer on one chain configuration."""

    def __init__(self, layer: ConvLayer, config: Optional[ChainConfig] = None,
                 algorithm: str = "direct") -> None:
        self.layer = layer
        self.config = config or ChainConfig()
        self._mapper = LayerMapper(self.config)
        kernel_area = layer.kernel_size * layer.kernel_size
        if kernel_area > self.config.num_pes:
            raise MappingError(
                f"{layer.name}: kernel {layer.kernel_size}x{layer.kernel_size} needs "
                f"{kernel_area} PEs but the chain has only {self.config.num_pes}"
            )
        if algorithm not in ALGORITHM_MODES:
            raise MappingError(
                f"algorithm must be one of {ALGORITHM_MODES}, got {algorithm!r}"
            )
        self.max_primitives = self.config.num_pes // kernel_area
        self.kmemory_capacity = self.config.kmemory_words_per_pe
        #: chunk capacity (in passes) for Winograd candidates — transformed
        #: 4x4 planes take 16/9 of the direct footprint per PE
        self.winograd_capacity = winograd_kmemory_capacity(self.kmemory_capacity)
        self.channel_pairs = layer.channel_pairs()
        #: the algorithm values this space enumerates; ineligible layers
        #: degrade every mode to direct-only
        if winograd_eligible(layer):
            self.algorithms: Tuple[str, ...] = {
                "direct": ("direct",),
                "winograd": ("winograd",),
                "auto": ("direct", "winograd"),
            }[algorithm]
        else:
            self.algorithms = ("direct",)
        # plateau walks are pure functions of the (immutable) layer geometry;
        # memoising them turns the annealer's and beam search's candidate
        # generation from repeated Python loops into dict lookups
        self._pruned_primitives: Optional[List[int]] = None
        self._pruned_chunks: Dict[Tuple[int, bool], List[int]] = {}

    @property
    def winograd_axis(self) -> bool:
        """True when this space enumerates Winograd candidates at all."""
        return "winograd" in self.algorithms

    # ------------------------------------------------------------------ #
    # individual candidates
    # ------------------------------------------------------------------ #
    def baseline(self) -> MappingCandidate:
        """The paper's Table II mapping as a candidate of this space.

        In the winograd-forced mode (no direct axis) the baseline is the
        Table II mapping normalised onto the Winograd sub-space, so search
        strategies seeded from the baseline never leave the space.
        """
        passes = -(-self.channel_pairs // self.max_primitives)
        candidate = MappingCandidate(
            primitives=self.max_primitives,
            stripe_height=self.layer.kernel_size,
            chunk=min(self.kmemory_capacity, passes),
            interleave="batch",
        )
        if "direct" not in self.algorithms:
            candidate = self._as_winograd(candidate)
        return candidate

    def validate(self, candidate: MappingCandidate) -> None:
        """Raise :class:`MappingError` unless ``candidate`` is legal here.

        Delegates to :meth:`LayerMapper.map_layer_with`, the single source of
        legality for primitive counts, stripe heights and kernel chunks;
        Winograd candidates additionally require an eligible layer, the
        pinned stripe height and the reduced transformed-plane chunk bound.
        """
        self._mapper.map_layer_with(
            self.layer,
            primitives=candidate.primitives,
            stripe_height=candidate.stripe_height,
            kernel_chunk=candidate.chunk,
        )
        if candidate.is_winograd:
            if not winograd_eligible(self.layer):
                raise MappingError(
                    f"{self.layer.name}: winograd needs a 3x3 stride-1 layer "
                    f"(K={self.layer.kernel_size}, S={self.layer.stride})"
                )
            if candidate.stripe_height != self.layer.kernel_size:
                raise MappingError(
                    f"{self.layer.name}: winograd candidates pin "
                    f"stripe_height to K={self.layer.kernel_size}, got "
                    f"{candidate.stripe_height}"
                )
            if candidate.chunk > self.winograd_capacity:
                raise MappingError(
                    f"{self.layer.name}: winograd chunk {candidate.chunk} "
                    f"exceeds the transformed-plane capacity "
                    f"{self.winograd_capacity}"
                )

    def passes_for(self, primitives: int) -> int:
        """Round-robin passes needed at a given primitive count."""
        if not (1 <= primitives <= self.max_primitives):
            raise MappingError(
                f"{self.layer.name}: primitives must be in [1, {self.max_primitives}], "
                f"got {primitives}"
            )
        return -(-self.channel_pairs // primitives)

    def refills_for(self, passes: int, chunk: int) -> int:
        """kMemory refills at a given pass count and chunk size."""
        return -(-passes // min(chunk, passes))

    # ------------------------------------------------------------------ #
    # pruning bounds
    # ------------------------------------------------------------------ #
    def pruned_primitives(self) -> List[int]:
        """Minimal primitive count per distinct ``passes`` value (+ baseline).

        Cost is weakly *increasing* in ``p`` at fixed ``passes`` (latency
        depends on ``passes`` alone; energy additionally scales with the
        active-PE count ``p * K^2``), so the smallest ``p`` on each
        ``ceil(Q/p)`` plateau dominates the rest of it — the plateau walk
        visits O(sqrt(Q)) values instead of all ``max_primitives``.
        """
        if self._pruned_primitives is not None:
            return self._pruned_primitives
        q = self.channel_pairs
        values: List[int] = []
        p = 1
        while p <= self.max_primitives:
            passes = -(-q // p)
            values.append(p)
            if passes == 1:
                break
            # largest p with the same ceil(Q/p) plateau
            p = (q - 1) // (passes - 1) + 1
        if self.max_primitives not in values:
            values.append(self.max_primitives)
        self._pruned_primitives = sorted(values)
        return self._pruned_primitives

    def pruned_chunks(self, passes: int, winograd: bool = False) -> List[int]:
        """Maximal chunk per distinct refill count (descending).

        Cost depends on ``chunk`` only through ``refills``, so one chunk per
        plateau of ``ceil(passes / chunk)`` covers every distinct cost.
        Winograd candidates start the walk from the reduced
        transformed-plane capacity.
        """
        cached = self._pruned_chunks.get((passes, winograd))
        if cached is not None:
            return cached
        capacity = self.winograd_capacity if winograd else self.kmemory_capacity
        chunk = min(capacity, passes)
        values: List[int] = []
        while chunk >= 1:
            refills = -(-passes // chunk)
            values.append(chunk)
            # smallest chunk still achieving `refills`, then step below it
            chunk = -(-passes // refills) - 1
        self._pruned_chunks[(passes, winograd)] = values
        return values

    def stripe_heights(self) -> List[int]:
        """All legal stripe heights (``1..K`` — K is at most 11, no pruning)."""
        return list(range(1, self.layer.kernel_size + 1))

    # ------------------------------------------------------------------ #
    # enumeration
    # ------------------------------------------------------------------ #
    def full_size(self) -> int:
        """Size of the unpruned space (the analytic upper bound)."""
        total = 0
        if "direct" in self.algorithms:
            total += (self.max_primitives * self.layer.kernel_size
                      * self.kmemory_capacity * len(INTERLEAVES))
        if self.winograd_axis:
            # stripe height is pinned: one height value, reduced chunk range
            total += (self.max_primitives * self.winograd_capacity
                      * len(INTERLEAVES))
        return total

    def enumerate(self) -> List[MappingCandidate]:
        """Every cost-distinct legal candidate (the pruned space)."""
        candidates = list(self.iter_candidates())
        _M_ENUMERATED.inc(len(candidates))
        _M_PRUNED.inc(max(0, self.full_size() - len(candidates)))
        return candidates

    def iter_candidates(self) -> Iterator[MappingCandidate]:
        """Yield the pruned space lazily (see the module docstring bounds)."""
        heights = self.stripe_heights()
        for primitives in self.pruned_primitives():
            passes = self.passes_for(primitives)
            if "direct" in self.algorithms:
                for chunk in self.pruned_chunks(passes):
                    refills = self.refills_for(passes, chunk)
                    interleaves = INTERLEAVES if refills > 1 else ("batch",)
                    for height in heights:
                        for interleave in interleaves:
                            yield MappingCandidate(
                                primitives=primitives,
                                stripe_height=height,
                                chunk=chunk,
                                interleave=interleave,
                            )
            if self.winograd_axis:
                for chunk in self.pruned_chunks(passes, winograd=True):
                    refills = self.refills_for(passes, chunk)
                    interleaves = INTERLEAVES if refills > 1 else ("batch",)
                    for interleave in interleaves:
                        yield MappingCandidate(
                            primitives=primitives,
                            stripe_height=self.layer.kernel_size,
                            chunk=chunk,
                            interleave=interleave,
                            algorithm="winograd",
                        )

    def pruned_size(self) -> int:
        """Number of candidates :meth:`enumerate` yields."""
        total = 0
        for primitives in self.pruned_primitives():
            passes = self.passes_for(primitives)
            if "direct" in self.algorithms:
                for chunk in self.pruned_chunks(passes):
                    refills = self.refills_for(passes, chunk)
                    total += self.layer.kernel_size * (2 if refills > 1 else 1)
            if self.winograd_axis:
                for chunk in self.pruned_chunks(passes, winograd=True):
                    refills = self.refills_for(passes, chunk)
                    total += 2 if refills > 1 else 1
        return total

    # ------------------------------------------------------------------ #
    # stochastic access (random sampling / annealing moves)
    # ------------------------------------------------------------------ #
    def _as_winograd(self, candidate: MappingCandidate) -> MappingCandidate:
        """Normalise a candidate onto the Winograd sub-space (pin h, cap chunk)."""
        passes = self.passes_for(candidate.primitives)
        return replace(
            candidate,
            algorithm="winograd",
            stripe_height=self.layer.kernel_size,
            chunk=min(candidate.chunk, min(self.winograd_capacity, passes)),
        )

    def sample(self, rng: np.random.Generator, count: int) -> List[MappingCandidate]:
        """``count`` candidates drawn uniformly from the *full* space.

        Direct-only spaces consume exactly the RNG stream they always did;
        the algorithm draw only exists when the Winograd axis is enabled,
        so seeded searches without the axis are unchanged.
        """
        candidates = []
        for _ in range(count):
            primitives = int(rng.integers(1, self.max_primitives + 1))
            passes = self.passes_for(primitives)
            candidate = MappingCandidate(
                primitives=primitives,
                stripe_height=int(rng.integers(1, self.layer.kernel_size + 1)),
                chunk=int(rng.integers(1, min(self.kmemory_capacity, passes) + 1)),
                interleave=INTERLEAVES[int(rng.integers(len(INTERLEAVES)))],
            )
            if self.winograd_axis:
                pick = self.algorithms[int(rng.integers(len(self.algorithms)))]
                if pick == "winograd":
                    candidate = self._as_winograd(candidate)
            candidates.append(candidate)
        return candidates

    def neighbor(self, candidate: MappingCandidate,
                 rng: np.random.Generator) -> MappingCandidate:
        """A legal single-dimension mutation of ``candidate`` (annealing move).

        With the Winograd axis enabled a fifth dimension flips the
        algorithm (normalising stripe height and chunk on the way in);
        the other dimensions respect the pinned height/reduced chunk of a
        Winograd candidate.
        """
        wino = candidate.is_winograd
        dimension = int(rng.integers(5 if self.winograd_axis else 4))
        if dimension == 0:
            values = self.pruned_primitives()
            mutated = replace(candidate,
                              primitives=values[int(rng.integers(len(values)))])
            return self._as_winograd(mutated) if wino else mutated
        if dimension == 1:
            if wino:  # stripe height is pinned; mutate the chunk instead
                dimension = 2
            else:
                return replace(
                    candidate,
                    stripe_height=int(rng.integers(1, self.layer.kernel_size + 1)))
        if dimension == 2:
            passes = self.passes_for(candidate.primitives)
            chunks = self.pruned_chunks(passes, winograd=wino)
            return replace(candidate, chunk=chunks[int(rng.integers(len(chunks)))])
        if dimension == 3:
            flipped = "image" if candidate.interleave == "batch" else "batch"
            return replace(candidate, interleave=flipped)
        # dimension 4: the algorithm axis
        if wino:
            if "direct" in self.algorithms:
                return replace(candidate, algorithm="direct")
            return candidate
        return self._as_winograd(candidate)

    def describe(self) -> str:
        """One-line space summary (sizes before/after pruning)."""
        axis = "+winograd" if self.winograd_axis else ""
        return (f"{self.layer.name}: {self.pruned_size()} pruned / "
                f"{self.full_size()} full candidates "
                f"(p<=%d, K=%d, chunk<=%d%s)" % (
                    self.max_primitives, self.layer.kernel_size,
                    self.kmemory_capacity, axis))


class MapSpace:
    """Per-layer mapspaces of a whole network."""

    def __init__(self, network: Network, config: Optional[ChainConfig] = None,
                 algorithm: str = "direct") -> None:
        self.network = network
        self.config = config or ChainConfig()
        self.algorithm = algorithm
        self.layer_spaces = [LayerMapSpace(layer, self.config,
                                           algorithm=algorithm)
                             for layer in network.conv_layers]
        if not self.layer_spaces:
            raise MappingError(f"{network.name}: no convolutional layers to map")

    def __iter__(self) -> Iterator[LayerMapSpace]:
        return iter(self.layer_spaces)

    def __len__(self) -> int:
        return len(self.layer_spaces)

    def total_pruned_size(self) -> int:
        """Candidates across all layers after pruning."""
        return sum(space.pruned_size() for space in self.layer_spaces)

    def total_full_size(self) -> int:
        """Candidates across all layers before pruning."""
        return sum(space.full_size() for space in self.layer_spaces)

    def baseline_candidates(self) -> List[MappingCandidate]:
        """The Table II mapping of every layer."""
        return [space.baseline() for space in self.layer_spaces]

    def describe(self) -> str:
        """Multi-line summary of every layer's space."""
        lines = [f"{self.network.name}: {self.total_pruned_size()} pruned / "
                 f"{self.total_full_size()} full candidates"]
        lines += ["  " + space.describe() for space in self.layer_spaces]
        return "\n".join(lines)
