"""Mapping-search subsystem: mapspace enumeration + schedule optimisation.

The paper maps every layer with one fixed decomposition (Table II:
``floor(P/K^2)`` primitives, channel pairs round-robined into passes, full
``K``-row stripes, kernels streamed in kMemory-sized chunks).  This package
explores the *space* of legal mappings around that point:

* :mod:`repro.mapping.mapspace` — :class:`MappingCandidate`,
  :class:`LayerMapSpace` and :class:`MapSpace`: legal per-layer candidates
  (primitive partition, stripe height, kernel-streaming chunk, batch
  interleave) with analytic pruning bounds;
* :mod:`repro.mapping.strategies` — the :class:`Strategy` protocol and the
  exhaustive / random / greedy / annealing searches;
* :mod:`repro.mapping.optimizer` — :class:`ScheduleOptimizer` producing an
  :class:`OptimizedSchedule` (consumed by
  :meth:`repro.core.scheduler.BatchScheduler.schedule_optimized`, the
  ``analytical-mapped`` engine and ``repro map``), plus functional
  verification of searched mappings against the im2col golden reference.

Candidates are scored columnar through
:class:`repro.analysis.batch.MappingBatchEvaluator` (10^4+ candidates per
layer per millisecond-scale call) and whole searches are memoised in
:class:`repro.engine.cache.RunCache`.
"""

from repro.mapping.mapspace import INTERLEAVES, LayerMapSpace, MappingCandidate, MapSpace
from repro.mapping.optimizer import (
    OBJECTIVES,
    LayerSchedule,
    MappingVerification,
    OptimizedSchedule,
    ScheduleOptimizer,
)
from repro.mapping.strategies import (
    STRATEGIES,
    AnnealStrategy,
    ExhaustiveStrategy,
    GreedyStrategy,
    RandomStrategy,
    SearchResult,
    Strategy,
    make_strategy,
)

__all__ = [
    "INTERLEAVES",
    "LayerMapSpace",
    "MapSpace",
    "MappingCandidate",
    "OBJECTIVES",
    "LayerSchedule",
    "MappingVerification",
    "OptimizedSchedule",
    "ScheduleOptimizer",
    "STRATEGIES",
    "AnnealStrategy",
    "ExhaustiveStrategy",
    "GreedyStrategy",
    "RandomStrategy",
    "SearchResult",
    "Strategy",
    "make_strategy",
]
