"""Search strategies over a layer's mapspace.

Every strategy implements one protocol —

    ``strategy.search(space, scorer, shortlist) -> SearchResult``

— where ``scorer`` maps a list of :class:`MappingCandidate` to a NumPy array
of objective values (lower is better; the optimiser builds it on top of the
columnar :class:`repro.analysis.batch.MappingBatchEvaluator`, so a single
scorer call on 10^4 candidates costs milliseconds).  The returned shortlist
is best-first; the optimiser assembles the network schedule from the
shortlists with a never-worse-than-baseline guarantee.

Stochastic strategies (random sampling, simulated annealing) derive their
per-layer RNG streams with :func:`repro.cnn.generator.stable_seed`, so a
(seed, layer, strategy) triple reproduces the same search on any platform —
the determinism CI relies on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cnn.generator import stable_seed
from repro.errors import ConfigurationError
from repro.mapping.mapspace import (
    ALGORITHMS,
    INTERLEAVES,
    LayerMapSpace,
    MappingCandidate,
    candidate_arrays,
)

#: strategy registry names accepted by :func:`make_strategy` and the CLI
STRATEGIES = ("exhaustive", "random", "greedy", "anneal")

Scorer = Callable[[Sequence[MappingCandidate]], np.ndarray]


def _pack_keys(space: LayerMapSpace, primitives: np.ndarray,
               heights: np.ndarray, chunks: np.ndarray,
               image: np.ndarray, winograd: np.ndarray) -> np.ndarray:
    """Bijective int64 key per candidate (the vectorized dedup currency).

    The radices come from the space's bounds (``primitives <=
    max_primitives``, ``stripe_height <= K``, ``chunk <= kmemory
    capacity``), so distinct candidates always pack to distinct keys and
    array-level ``np.unique`` / ``np.isin`` replace per-candidate set
    membership tests.  The algorithm axis packs as one more bit.
    """
    radix_h = space.layer.kernel_size + 1
    radix_c = space.kmemory_capacity + 1
    keys = primitives.astype(np.int64) * radix_h + heights.astype(np.int64)
    keys = keys * radix_c + chunks.astype(np.int64)
    keys = keys * 2 + image.astype(np.int64)
    return keys * 2 + winograd.astype(np.int64)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one per-layer search."""

    candidates: List[MappingCandidate]  # best first
    scores: List[float]                 # objective values, aligned
    evaluations: int                    # candidates scored by the strategy

    @property
    def best(self) -> MappingCandidate:
        """The strategy's best candidate."""
        return self.candidates[0]

    @property
    def best_score(self) -> float:
        """Objective value of :attr:`best`."""
        return self.scores[0]


def _shortlist(candidates: Sequence[MappingCandidate], scores: np.ndarray,
               k: int, evaluations: int,
               space: Optional[LayerMapSpace] = None,
               unique: bool = False) -> SearchResult:
    """Deduplicated best-first shortlist of scored candidates.

    ``unique=True`` asserts the caller's candidates are already distinct
    (pruned enumeration yields each mapping exactly once), so the shortlist
    is a plain stable argsort head.  Otherwise, with a ``space``, the dedup
    runs columnar: candidates pack to int64 keys and one ``np.unique`` finds
    each key's best-scored (first, under the stable score order) occurrence
    — no per-candidate hashing.  Without a space (no packing radices) the
    per-candidate walk is kept; all paths pick the identical shortlist.
    """
    order = np.argsort(scores, kind="stable")
    if unique:
        picked_indices = order[:k]
        return SearchResult(
            candidates=[candidates[int(i)] for i in picked_indices],
            scores=[float(scores[int(i)]) for i in picked_indices],
            evaluations=evaluations,
        )
    if space is not None and len(candidates) > 0:
        columns = candidate_arrays(list(candidates))
        keys = _pack_keys(space, *columns)[order]
        _, first = np.unique(keys, return_index=True)
        picked_indices = order[np.sort(first)[:k]]
        return SearchResult(
            candidates=[candidates[int(i)] for i in picked_indices],
            scores=[float(scores[int(i)]) for i in picked_indices],
            evaluations=evaluations,
        )
    picked: List[MappingCandidate] = []
    picked_scores: List[float] = []
    seen = set()
    for index in order:
        candidate = candidates[int(index)]
        if candidate in seen:
            continue
        seen.add(candidate)
        picked.append(candidate)
        picked_scores.append(float(scores[int(index)]))
        if len(picked) >= k:
            break
    return SearchResult(candidates=picked, scores=picked_scores,
                        evaluations=evaluations)


class Strategy(abc.ABC):
    """A search over one layer's mapspace."""

    #: registry name (used in records, cache fingerprints and CLI output)
    name: str = "strategy"

    @abc.abstractmethod
    def search(self, space: LayerMapSpace, scorer: Scorer,
               shortlist: int = 4) -> SearchResult:
        """Best-first shortlist of at most ``shortlist`` candidates."""

    def fingerprint(self) -> Dict[str, Any]:
        """Identity entering the search cache key (include every knob)."""
        return {"name": self.name}


class ExhaustiveStrategy(Strategy):
    """Score the whole pruned space in one columnar call.

    The analytic pruning bounds of :class:`LayerMapSpace` keep the pruned
    space small enough (10^3–10^4 per layer on the zoo networks) that this is
    both exact and fast; ``max_candidates`` guards against pathological
    configurations blowing the columnar batch up.
    """

    name = "exhaustive"

    def __init__(self, max_candidates: int = 2_000_000) -> None:
        self.max_candidates = max_candidates

    def search(self, space: LayerMapSpace, scorer: Scorer,
               shortlist: int = 4) -> SearchResult:
        size = space.pruned_size()
        if size > self.max_candidates:
            raise ConfigurationError(
                f"{space.layer.name}: pruned mapspace has {size} candidates, "
                f"above the exhaustive limit {self.max_candidates}; use a "
                "sampling strategy"
            )
        candidates = space.enumerate()
        scores = scorer(candidates)
        # the pruned enumeration yields each mapping exactly once, so the
        # shortlist is a pure argsort head — no dedup pass at all
        return _shortlist(candidates, scores, shortlist, len(candidates),
                          space=space, unique=True)

    def fingerprint(self) -> Dict[str, Any]:
        return {"name": self.name, "max_candidates": self.max_candidates}


class RandomStrategy(Strategy):
    """Uniform sampling of the full space (baseline always included)."""

    name = "random"

    def __init__(self, samples: int = 1024, seed: int = 2017) -> None:
        if samples < 1:
            raise ConfigurationError(f"samples must be >= 1, got {samples}")
        self.samples = samples
        self.seed = seed

    def search(self, space: LayerMapSpace, scorer: Scorer,
               shortlist: int = 4) -> SearchResult:
        rng = np.random.default_rng(
            stable_seed(self.seed, self.name, space.layer.name))
        candidates = [space.baseline()] + space.sample(rng, self.samples)
        scores = scorer(candidates)
        return _shortlist(candidates, scores, shortlist, len(candidates),
                          space=space)

    def fingerprint(self) -> Dict[str, Any]:
        return {"name": self.name, "samples": self.samples, "seed": self.seed}


class GreedyStrategy(Strategy):
    """Beam-kept coordinate descent from the Table II baseline.

    Each sweep relaxes one mapping dimension at a time (primitives, stripe
    height, chunk, interleave — plus the algorithm when the space enables
    the Winograd axis), scoring every pruned value of that dimension for
    every beam state in one columnar call, and keeps the ``beam`` best
    states.  Converges in a handful of sweeps because the per-dimension cost
    structure is unimodal under the pruning bounds.
    """

    name = "greedy"

    def __init__(self, beam: int = 4, max_sweeps: int = 4) -> None:
        if beam < 1 or max_sweeps < 1:
            raise ConfigurationError("beam and max_sweeps must be >= 1")
        self.beam = beam
        self.max_sweeps = max_sweeps

    def _dimension_columns(self, space: LayerMapSpace, state: MappingCandidate,
                           dimension: str) -> Tuple[np.ndarray, ...]:
        """One state's relaxation of ``dimension`` as candidate columns.

        Returns ``(primitives, stripe_height, chunk, image, winograd)``
        arrays in the order the old per-candidate ``dataclasses.replace``
        loop produced — candidate *objects* are only materialised later, for
        the deduped fresh pool that actually reaches the scorer.  A Winograd
        state keeps its pinned stripe height and draws its chunk values from
        the reduced transformed-plane capacity; the ``algorithm`` dimension
        re-normalises the state onto each enabled algorithm.
        """
        wino = state.is_winograd
        if dimension == "algorithm":
            variants = [
                space._as_winograd(state) if algorithm == "winograd"
                else replace(state, algorithm="direct")
                for algorithm in space.algorithms
            ]
            return candidate_arrays(variants)
        if dimension == "primitives":
            values = np.asarray(space.pruned_primitives(), dtype=np.int64)
        elif dimension == "stripe_height":
            if wino:  # pinned by the tile grid — nothing to relax
                values = np.array([space.layer.kernel_size], dtype=np.int64)
            else:
                values = np.arange(1, space.layer.kernel_size + 1,
                                   dtype=np.int64)
        elif dimension == "chunk":
            passes = space.passes_for(state.primitives)
            values = np.asarray(space.pruned_chunks(passes, winograd=wino),
                                dtype=np.int64)
        else:
            values = np.arange(len(INTERLEAVES), dtype=np.int64)
        count = len(values)
        columns = [
            np.full(count, state.primitives, dtype=np.int64),
            np.full(count, state.stripe_height, dtype=np.int64),
            np.full(count, state.chunk, dtype=np.int64),
            np.full(count, int(state.image_major), dtype=np.int64),
            np.full(count, int(wino), dtype=np.int64),
        ]
        index = {"primitives": 0, "stripe_height": 1, "chunk": 2,
                 "interleave": 3}[dimension]
        columns[index] = values
        return tuple(columns)

    def search(self, space: LayerMapSpace, scorer: Scorer,
               shortlist: int = 4) -> SearchResult:
        states = [space.baseline()]
        best_seen: Dict[MappingCandidate, float] = {}
        seen_keys = np.empty(0, dtype=np.int64)
        evaluations = 0
        dimensions = ("primitives", "stripe_height", "chunk", "interleave")
        if space.winograd_axis:
            dimensions = dimensions + ("algorithm",)
        for _ in range(self.max_sweeps):
            improved = False
            for dimension in dimensions:
                # columnar pool: cross product of beam states x dimension
                # values as arrays, deduped (within the pool and against
                # everything already scored) through packed keys instead of
                # per-candidate set membership
                per_state = [self._dimension_columns(space, state, dimension)
                             for state in states]
                columns = [np.concatenate([cols[i] for cols in per_state])
                           for i in range(5)]
                keys = _pack_keys(space, *columns)
                _, first = np.unique(keys, return_index=True)
                first = first[~np.isin(keys[first], seen_keys)]
                first.sort()  # keep the old states-outer, values-inner order
                if first.size == 0:
                    continue
                pool = [
                    MappingCandidate(
                        primitives=int(columns[0][i]),
                        stripe_height=int(columns[1][i]),
                        chunk=int(columns[2][i]),
                        interleave=INTERLEAVES[int(columns[3][i])],
                        algorithm=ALGORITHMS[int(columns[4][i])],
                    )
                    for i in first
                ]
                scores = scorer(pool)
                evaluations += len(pool)
                for candidate, score in zip(pool, scores):
                    best_seen[candidate] = float(score)
                seen_keys = np.concatenate([seen_keys, keys[first]])
                ranked = sorted(best_seen.items(), key=lambda item: item[1])
                new_states = [candidate for candidate, _ in ranked[:self.beam]]
                if new_states != states:
                    improved = True
                states = new_states
            if not improved:
                break
        ranked = sorted(best_seen.items(), key=lambda item: item[1])
        top = ranked[:shortlist]
        return SearchResult(
            candidates=[candidate for candidate, _ in top],
            scores=[score for _, score in top],
            evaluations=evaluations,
        )

    def fingerprint(self) -> Dict[str, Any]:
        return {"name": self.name, "beam": self.beam, "max_sweeps": self.max_sweeps}


class AnnealStrategy(Strategy):
    """Simulated annealing with single-dimension moves and relative acceptance.

    Moves come from :meth:`LayerMapSpace.neighbor`; a worse candidate is
    accepted with probability ``exp(-delta / (T * |current|))``, with the
    temperature decaying geometrically from ``initial_temperature`` — the
    relative form keeps one schedule meaningful across objectives whose
    scales differ by orders of magnitude (seconds vs. joules).
    """

    name = "anneal"

    def __init__(self, iterations: int = 256, seed: int = 2017,
                 initial_temperature: float = 0.25,
                 cooling: float = 0.98) -> None:
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        if not (0.0 < cooling < 1.0):
            raise ConfigurationError(f"cooling must be in (0, 1), got {cooling}")
        if initial_temperature <= 0.0:
            raise ConfigurationError("initial_temperature must be > 0")
        self.iterations = iterations
        self.seed = seed
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    def search(self, space: LayerMapSpace, scorer: Scorer,
               shortlist: int = 4) -> SearchResult:
        rng = np.random.default_rng(
            stable_seed(self.seed, self.name, space.layer.name))
        current = space.baseline()
        scored: Dict[MappingCandidate, float] = {}

        def score_of(candidate: MappingCandidate) -> float:
            if candidate not in scored:
                scored[candidate] = float(scorer([candidate])[0])
            return scored[candidate]

        current_score = score_of(current)
        temperature = self.initial_temperature
        for _ in range(self.iterations):
            proposal = space.neighbor(current, rng)
            proposal_score = score_of(proposal)
            delta = proposal_score - current_score
            scale = max(abs(current_score), np.finfo(float).tiny)
            if delta <= 0 or rng.random() < np.exp(-delta / (temperature * scale)):
                current, current_score = proposal, proposal_score
            temperature *= self.cooling
        ranked = sorted(scored.items(), key=lambda item: item[1])
        top = ranked[:shortlist]
        return SearchResult(
            candidates=[candidate for candidate, _ in top],
            scores=[score for _, score in top],
            evaluations=len(scored),
        )

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "iterations": self.iterations,
            "seed": self.seed,
            "initial_temperature": self.initial_temperature,
            "cooling": self.cooling,
        }


def make_strategy(name: str, **kwargs) -> Strategy:
    """Instantiate a strategy by registry name (CLI / engine entry point).

    Keyword arguments not accepted by the named strategy are rejected, so a
    typo'd knob fails loudly instead of silently running the default.
    """
    factories = {
        "exhaustive": ExhaustiveStrategy,
        "random": RandomStrategy,
        "greedy": GreedyStrategy,
        "anneal": AnnealStrategy,
    }
    if name not in factories:
        raise ConfigurationError(
            f"unknown strategy {name!r}; available: {', '.join(STRATEGIES)}"
        )
    try:
        return factories[name](**kwargs)
    except TypeError as error:
        raise ConfigurationError(f"strategy {name!r}: {error}") from None
