"""Search strategies over a layer's mapspace.

Every strategy implements one protocol —

    ``strategy.search(space, scorer, shortlist) -> SearchResult``

— where ``scorer`` maps a list of :class:`MappingCandidate` to a NumPy array
of objective values (lower is better; the optimiser builds it on top of the
columnar :class:`repro.analysis.batch.MappingBatchEvaluator`, so a single
scorer call on 10^4 candidates costs milliseconds).  The returned shortlist
is best-first; the optimiser assembles the network schedule from the
shortlists with a never-worse-than-baseline guarantee.

Stochastic strategies (random sampling, simulated annealing) derive their
per-layer RNG streams with :func:`repro.cnn.generator.stable_seed`, so a
(seed, layer, strategy) triple reproduces the same search on any platform —
the determinism CI relies on.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from repro.cnn.generator import stable_seed
from repro.errors import ConfigurationError
from repro.mapping.mapspace import INTERLEAVES, LayerMapSpace, MappingCandidate

#: strategy registry names accepted by :func:`make_strategy` and the CLI
STRATEGIES = ("exhaustive", "random", "greedy", "anneal")

Scorer = Callable[[Sequence[MappingCandidate]], np.ndarray]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one per-layer search."""

    candidates: List[MappingCandidate]  # best first
    scores: List[float]                 # objective values, aligned
    evaluations: int                    # candidates scored by the strategy

    @property
    def best(self) -> MappingCandidate:
        """The strategy's best candidate."""
        return self.candidates[0]

    @property
    def best_score(self) -> float:
        """Objective value of :attr:`best`."""
        return self.scores[0]


def _shortlist(candidates: Sequence[MappingCandidate], scores: np.ndarray,
               k: int, evaluations: int) -> SearchResult:
    """Deduplicated best-first shortlist of scored candidates."""
    order = np.argsort(scores, kind="stable")
    picked: List[MappingCandidate] = []
    picked_scores: List[float] = []
    seen = set()
    for index in order:
        candidate = candidates[int(index)]
        if candidate in seen:
            continue
        seen.add(candidate)
        picked.append(candidate)
        picked_scores.append(float(scores[int(index)]))
        if len(picked) >= k:
            break
    return SearchResult(candidates=picked, scores=picked_scores,
                        evaluations=evaluations)


class Strategy(abc.ABC):
    """A search over one layer's mapspace."""

    #: registry name (used in records, cache fingerprints and CLI output)
    name: str = "strategy"

    @abc.abstractmethod
    def search(self, space: LayerMapSpace, scorer: Scorer,
               shortlist: int = 4) -> SearchResult:
        """Best-first shortlist of at most ``shortlist`` candidates."""

    def fingerprint(self) -> Dict[str, Any]:
        """Identity entering the search cache key (include every knob)."""
        return {"name": self.name}


class ExhaustiveStrategy(Strategy):
    """Score the whole pruned space in one columnar call.

    The analytic pruning bounds of :class:`LayerMapSpace` keep the pruned
    space small enough (10^3–10^4 per layer on the zoo networks) that this is
    both exact and fast; ``max_candidates`` guards against pathological
    configurations blowing the columnar batch up.
    """

    name = "exhaustive"

    def __init__(self, max_candidates: int = 2_000_000) -> None:
        self.max_candidates = max_candidates

    def search(self, space: LayerMapSpace, scorer: Scorer,
               shortlist: int = 4) -> SearchResult:
        size = space.pruned_size()
        if size > self.max_candidates:
            raise ConfigurationError(
                f"{space.layer.name}: pruned mapspace has {size} candidates, "
                f"above the exhaustive limit {self.max_candidates}; use a "
                "sampling strategy"
            )
        candidates = space.enumerate()
        scores = scorer(candidates)
        return _shortlist(candidates, scores, shortlist, len(candidates))

    def fingerprint(self) -> Dict[str, Any]:
        return {"name": self.name, "max_candidates": self.max_candidates}


class RandomStrategy(Strategy):
    """Uniform sampling of the full space (baseline always included)."""

    name = "random"

    def __init__(self, samples: int = 1024, seed: int = 2017) -> None:
        if samples < 1:
            raise ConfigurationError(f"samples must be >= 1, got {samples}")
        self.samples = samples
        self.seed = seed

    def search(self, space: LayerMapSpace, scorer: Scorer,
               shortlist: int = 4) -> SearchResult:
        rng = np.random.default_rng(
            stable_seed(self.seed, self.name, space.layer.name))
        candidates = [space.baseline()] + space.sample(rng, self.samples)
        scores = scorer(candidates)
        return _shortlist(candidates, scores, shortlist, len(candidates))

    def fingerprint(self) -> Dict[str, Any]:
        return {"name": self.name, "samples": self.samples, "seed": self.seed}


class GreedyStrategy(Strategy):
    """Beam-kept coordinate descent from the Table II baseline.

    Each sweep relaxes one mapping dimension at a time (primitives, stripe
    height, chunk, interleave), scoring every pruned value of that dimension
    for every beam state in one columnar call, and keeps the ``beam`` best
    states.  Converges in a handful of sweeps because the per-dimension cost
    structure is unimodal under the pruning bounds.
    """

    name = "greedy"

    def __init__(self, beam: int = 4, max_sweeps: int = 4) -> None:
        if beam < 1 or max_sweeps < 1:
            raise ConfigurationError("beam and max_sweeps must be >= 1")
        self.beam = beam
        self.max_sweeps = max_sweeps

    def _dimension_values(self, space: LayerMapSpace, state: MappingCandidate,
                          dimension: str) -> List[MappingCandidate]:
        if dimension == "primitives":
            return [replace(state, primitives=value)
                    for value in space.pruned_primitives()]
        if dimension == "stripe_height":
            return [replace(state, stripe_height=value)
                    for value in space.stripe_heights()]
        if dimension == "chunk":
            passes = space.passes_for(state.primitives)
            return [replace(state, chunk=value)
                    for value in space.pruned_chunks(passes)]
        return [replace(state, interleave=value) for value in INTERLEAVES]

    def search(self, space: LayerMapSpace, scorer: Scorer,
               shortlist: int = 4) -> SearchResult:
        states = [space.baseline()]
        best_seen: Dict[MappingCandidate, float] = {}
        evaluations = 0
        for _ in range(self.max_sweeps):
            improved = False
            for dimension in ("primitives", "stripe_height", "chunk", "interleave"):
                pool: List[MappingCandidate] = []
                pooled = set()
                for state in states:
                    for candidate in self._dimension_values(space, state, dimension):
                        if candidate not in best_seen and candidate not in pooled:
                            pool.append(candidate)
                            pooled.add(candidate)
                if not pool:
                    continue
                scores = scorer(pool)
                evaluations += len(pool)
                for candidate, score in zip(pool, scores):
                    best_seen[candidate] = float(score)
                ranked = sorted(best_seen.items(), key=lambda item: item[1])
                new_states = [candidate for candidate, _ in ranked[:self.beam]]
                if new_states != states:
                    improved = True
                states = new_states
            if not improved:
                break
        ranked = sorted(best_seen.items(), key=lambda item: item[1])
        top = ranked[:shortlist]
        return SearchResult(
            candidates=[candidate for candidate, _ in top],
            scores=[score for _, score in top],
            evaluations=evaluations,
        )

    def fingerprint(self) -> Dict[str, Any]:
        return {"name": self.name, "beam": self.beam, "max_sweeps": self.max_sweeps}


class AnnealStrategy(Strategy):
    """Simulated annealing with single-dimension moves and relative acceptance.

    Moves come from :meth:`LayerMapSpace.neighbor`; a worse candidate is
    accepted with probability ``exp(-delta / (T * |current|))``, with the
    temperature decaying geometrically from ``initial_temperature`` — the
    relative form keeps one schedule meaningful across objectives whose
    scales differ by orders of magnitude (seconds vs. joules).
    """

    name = "anneal"

    def __init__(self, iterations: int = 256, seed: int = 2017,
                 initial_temperature: float = 0.25,
                 cooling: float = 0.98) -> None:
        if iterations < 1:
            raise ConfigurationError(f"iterations must be >= 1, got {iterations}")
        if not (0.0 < cooling < 1.0):
            raise ConfigurationError(f"cooling must be in (0, 1), got {cooling}")
        if initial_temperature <= 0.0:
            raise ConfigurationError("initial_temperature must be > 0")
        self.iterations = iterations
        self.seed = seed
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    def search(self, space: LayerMapSpace, scorer: Scorer,
               shortlist: int = 4) -> SearchResult:
        rng = np.random.default_rng(
            stable_seed(self.seed, self.name, space.layer.name))
        current = space.baseline()
        scored: Dict[MappingCandidate, float] = {}

        def score_of(candidate: MappingCandidate) -> float:
            if candidate not in scored:
                scored[candidate] = float(scorer([candidate])[0])
            return scored[candidate]

        current_score = score_of(current)
        temperature = self.initial_temperature
        for _ in range(self.iterations):
            proposal = space.neighbor(current, rng)
            proposal_score = score_of(proposal)
            delta = proposal_score - current_score
            scale = max(abs(current_score), np.finfo(float).tiny)
            if delta <= 0 or rng.random() < np.exp(-delta / (temperature * scale)):
                current, current_score = proposal, proposal_score
            temperature *= self.cooling
        ranked = sorted(scored.items(), key=lambda item: item[1])
        top = ranked[:shortlist]
        return SearchResult(
            candidates=[candidate for candidate, _ in top],
            scores=[score for _, score in top],
            evaluations=len(scored),
        )

    def fingerprint(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "iterations": self.iterations,
            "seed": self.seed,
            "initial_temperature": self.initial_temperature,
            "cooling": self.cooling,
        }


def make_strategy(name: str, **kwargs) -> Strategy:
    """Instantiate a strategy by registry name (CLI / engine entry point).

    Keyword arguments not accepted by the named strategy are rejected, so a
    typo'd knob fails loudly instead of silently running the default.
    """
    factories = {
        "exhaustive": ExhaustiveStrategy,
        "random": RandomStrategy,
        "greedy": GreedyStrategy,
        "anneal": AnnealStrategy,
    }
    if name not in factories:
        raise ConfigurationError(
            f"unknown strategy {name!r}; available: {', '.join(STRATEGIES)}"
        )
    try:
        return factories[name](**kwargs)
    except TypeError as error:
        raise ConfigurationError(f"strategy {name!r}: {error}") from None
