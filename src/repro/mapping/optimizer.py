"""Schedule optimisation over per-layer mapspaces, with verification.

:class:`ScheduleOptimizer` searches every layer's
:class:`~repro.mapping.mapspace.LayerMapSpace` with a
:class:`~repro.mapping.strategies.Strategy`, scoring candidates columnar
through :class:`repro.analysis.batch.MappingBatchEvaluator`, and assembles an
:class:`OptimizedSchedule` for one of four objectives:

* ``latency``    — first-image latency (image-pipelined network view);
* ``throughput`` — batch makespan (the paper's fps metric);
* ``energy``     — joules per batch;
* ``edp``        — energy x batch-makespan product.

The assembly starts from the Table II baseline and only adopts a searched
candidate when it strictly improves the *network* objective, so the
optimised schedule is **never worse than the baseline** by construction —
even for the non-additive EDP objective, where per-layer proxy scores alone
would not guarantee it.

Whole searches are memoised in :class:`repro.engine.cache.RunCache` (keyed
by configuration, workload, batch, objective and the full strategy
fingerprint), and :meth:`ScheduleOptimizer.verify` drives every searched
mapping through the :class:`~repro.sim.functional.FunctionalChainSimulator`:
the candidate's ofmaps must match the im2col golden reference to float
round-off and be bit-identical to the baseline-stripe simulation.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.batch import MAPPING_RESULT_COLUMNS, MappingBatchEvaluator
from repro.cnn.generator import WorkloadGenerator
from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.energy.components import EnergyParams
from repro.engine.base import RunRecord
from repro.engine.cache import (
    CACHE_SCHEMA,
    RunCache,
    canonical_json,
    config_fingerprint,
    workload_fingerprint,
)
from repro.errors import ConfigurationError
from repro.analysis.winograd import winograd_tile_grid
from repro.cnn.reference import conv2d_im2col, pad_input
from repro.kernels import backend_fingerprint, resolve_backend_name
from repro.mapping.mapspace import (
    ALGORITHM_MODES,
    LayerMapSpace,
    MappingCandidate,
    MapSpace,
    candidate_arrays,
)
from repro.mapping.strategies import SearchResult, Strategy, make_strategy
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime import WorkerError, shared_runtime
from repro.sim.functional import FunctionalChainSimulator
from repro.sim.winograd import (
    conv2d_winograd,
    winograd_ofmap_block,
    winograd_tolerance,
)

# parent-side search counters: candidates_searched aggregates the per-layer
# evaluation counts from the entry results, so it is correct whether layers
# searched serially or inside pool workers (candidates_scored, by contrast,
# counts scoring calls in whichever process performed them)
_M_LAYERS_SEARCHED = obs_metrics.counter("mapping.layers_searched")
_M_CANDIDATES_SEARCHED = obs_metrics.counter("mapping.candidates_searched")
_M_SCHEDULE_CACHE_HITS = obs_metrics.counter("mapping.schedule_cache_hits")

#: objective name -> per-layer proxy column of MAPPING_RESULT_COLUMNS
OBJECTIVES: Dict[str, str] = {
    "latency": "first_image_latency_s",
    "throughput": "time_per_batch_s",
    "energy": "energy_per_batch_j",
    "edp": "edp_js",
}


def network_objective(objective: str,
                      layer_metrics: List[Dict[str, float]]) -> float:
    """Network-level objective value from per-layer metric rows.

    Latency, batch time and energy are sums over layers; EDP is the product
    of the network sums (not the sum of per-layer products), which is why
    schedule assembly re-checks this value instead of trusting per-layer
    proxies.
    """
    if objective not in OBJECTIVES:
        raise ConfigurationError(
            f"unknown objective {objective!r}; available: {', '.join(OBJECTIVES)}"
        )
    if objective == "latency":
        return sum(m["first_image_latency_s"] for m in layer_metrics)
    time_s = sum(m["time_per_batch_s"] for m in layer_metrics)
    if objective == "throughput":
        return time_s
    energy_j = sum(m["energy_per_batch_j"] for m in layer_metrics)
    if objective == "energy":
        return energy_j
    return energy_j * time_s


def make_layer_scorer(layer, config: ChainConfig, objective: str, batch: int,
                      energy: EnergyParams,
                      kernel_backend: Optional[str] = None):
    """(evaluator, scorer) for one layer — the single scoring construction.

    Both the serial :meth:`ScheduleOptimizer.search_layer` and the parallel
    ``map.search_layer`` worker task score through this, so there is exactly
    one definition of how a candidate list becomes objective values.
    ``kernel_backend`` selects the :mod:`repro.kernels` scorer backend;
    every backend is bit-identical, so scores and argmins never depend on
    the choice.
    """
    evaluator = MappingBatchEvaluator(layer, config=config, batch=batch,
                                      energy=energy,
                                      kernel_backend=kernel_backend)
    proxy = OBJECTIVES[objective]

    def scorer(candidates):
        columns = evaluator.evaluate(*candidate_arrays(list(candidates)))
        return np.asarray(columns[proxy], dtype=np.float64)

    return evaluator, scorer


def search_layer_entry(layer, config: ChainConfig, objective: str,
                       strategy: Strategy, batch: int, energy: EnergyParams,
                       shortlist: int,
                       kernel_backend: Optional[str] = None,
                       algorithm: str = "direct") -> Dict[str, Any]:
    """Search one layer's mapspace and score its shortlist pool.

    This is the per-layer body of :meth:`ScheduleOptimizer.optimize`,
    factored out so the serial loop and the parallel runtime's
    ``map.search_layer`` task execute the *same* code on the same inputs —
    the construction that makes parallel search results bit-identical to
    serial ones.  Stochastic strategies derive their RNG stream from
    ``(seed, strategy, layer)`` via ``stable_seed``, so the outcome is
    independent of which process runs the search.  ``algorithm`` is the
    space's algorithm-axis mode (``direct`` | ``winograd`` | ``auto``).
    """
    with obs_trace.span("map.search_layer", layer=layer.name,
                        strategy=strategy.name, objective=objective) as layer_span:
        space = LayerMapSpace(layer, config, algorithm=algorithm)
        evaluator, scorer = make_layer_scorer(layer, config, objective, batch,
                                              energy,
                                              kernel_backend=kernel_backend)
        result = strategy.search(space, scorer, shortlist=shortlist)
        layer_span.set(evaluations=result.evaluations)
        baseline = space.baseline()
        pool = list(result.candidates)
        if baseline not in pool:
            pool.append(baseline)
        columns = evaluator.evaluate(*candidate_arrays(pool))
    rows = [
        {name: float(columns[name][index]) for name in MAPPING_RESULT_COLUMNS}
        for index in range(len(pool))
    ]
    return {
        "layer_name": layer.name,
        "evaluations": result.evaluations,
        "pool": pool,
        "rows": rows,
        "baseline": baseline,
    }


@dataclass(frozen=True)
class LayerSchedule:
    """One layer's chosen mapping and its evaluated metrics."""

    layer_name: str
    candidate: MappingCandidate
    metrics: Dict[str, float]

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-dict form for cache records and ``--json`` output."""
        return {
            "layer": self.layer_name,
            "candidate": self.candidate.to_json_dict(),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "LayerSchedule":
        """Rebuild from :meth:`to_json_dict` output."""
        return cls(
            layer_name=str(data["layer"]),
            candidate=MappingCandidate.from_json_dict(data["candidate"]),
            metrics={str(k): float(v) for k, v in data["metrics"].items()},
        )


@dataclass(frozen=True)
class OptimizedSchedule:
    """A searched network schedule, with its baseline for comparison."""

    network_name: str
    objective: str
    strategy: str
    batch: int
    frequency_hz: float
    layers: List[LayerSchedule]
    baseline: List[LayerSchedule]
    evaluations: int = 0
    cached: bool = False

    # ------------------------------------------------------------------ #
    # objective arithmetic
    # ------------------------------------------------------------------ #
    def objective_value(self) -> float:
        """Network objective of the searched schedule (lower is better)."""
        return network_objective(self.objective, [s.metrics for s in self.layers])

    def baseline_objective_value(self) -> float:
        """Network objective of the Table II baseline schedule."""
        return network_objective(self.objective, [s.metrics for s in self.baseline])

    def improvement_fraction(self) -> float:
        """Relative gain over the baseline (0.0 when the baseline is optimal)."""
        base = self.baseline_objective_value()
        return (base - self.objective_value()) / base if base else 0.0

    def total_time_per_batch_s(self) -> float:
        """Batch makespan of the searched schedule."""
        return sum(s.metrics["time_per_batch_s"] for s in self.layers)

    def total_energy_per_batch_j(self) -> float:
        """Energy per batch of the searched schedule."""
        return sum(s.metrics["energy_per_batch_j"] for s in self.layers)

    def first_image_latency_s(self) -> float:
        """First-image latency of the searched schedule."""
        return sum(s.metrics["first_image_latency_s"] for s in self.layers)

    def frames_per_second(self) -> float:
        """Throughput implied by the searched schedule."""
        time_s = self.total_time_per_batch_s()
        return self.batch / time_s if time_s else 0.0

    # ------------------------------------------------------------------ #
    # consumers
    # ------------------------------------------------------------------ #
    def stripe_heights(self) -> Dict[str, int]:
        """Layer-name -> searched stripe height (the functional-sim knob)."""
        return {s.layer_name: s.candidate.stripe_height for s in self.layers}

    def algorithms(self) -> Dict[str, str]:
        """Layer-name -> searched execution algorithm (direct | winograd)."""
        return {s.layer_name: s.candidate.algorithm for s in self.layers}

    def layer_schedule(self, layer_name: str) -> LayerSchedule:
        """Look up one layer's searched schedule."""
        for entry in self.layers:
            if entry.layer_name == layer_name:
                return entry
        raise ConfigurationError(
            f"{self.network_name}: no scheduled layer named {layer_name!r}"
        )

    def describe(self) -> str:
        """Human-readable per-layer schedule with the objective summary."""
        lines = [f"{self.network_name}: objective={self.objective} "
                 f"strategy={self.strategy} batch={self.batch} "
                 f"({self.evaluations} candidates evaluated"
                 + (", cached)" if self.cached else ")")]
        for searched, base in zip(self.layers, self.baseline):
            marker = " " if searched.candidate == base.candidate else "*"
            lines.append(f"  {marker} {searched.layer_name:<10} "
                         f"{searched.candidate.describe():<28} "
                         f"refills={searched.metrics['kmemory_refills']:.0f} "
                         f"passes={searched.metrics['passes']:.0f}")
        base_value = self.baseline_objective_value()
        lines.append(
            f"  {self.objective}: searched {self.objective_value():.6g} "
            f"vs baseline {base_value:.6g} "
            f"({self.improvement_fraction() * 100:.2f} % better)"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-dict form for cache records and ``--json`` output."""
        return {
            "network": self.network_name,
            "objective": self.objective,
            "strategy": self.strategy,
            "batch": self.batch,
            "frequency_hz": self.frequency_hz,
            "evaluations": self.evaluations,
            "layers": [s.to_json_dict() for s in self.layers],
            "baseline": [s.to_json_dict() for s in self.baseline],
            "objective_value": self.objective_value(),
            "baseline_objective_value": self.baseline_objective_value(),
            "improvement_fraction": self.improvement_fraction(),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any],
                       cached: bool = False) -> "OptimizedSchedule":
        """Rebuild from :meth:`to_json_dict` output."""
        return cls(
            network_name=str(data["network"]),
            objective=str(data["objective"]),
            strategy=str(data["strategy"]),
            batch=int(data["batch"]),
            frequency_hz=float(data["frequency_hz"]),
            layers=[LayerSchedule.from_json_dict(s) for s in data["layers"]],
            baseline=[LayerSchedule.from_json_dict(s) for s in data["baseline"]],
            evaluations=int(data.get("evaluations", 0)),
            cached=cached,
        )


@dataclass(frozen=True)
class LayerVerification:
    """Functional verification of one searched layer mapping.

    For direct mappings ``bit_identical`` compares against the baseline-
    stripe simulation; for Winograd mappings it compares the whole-ofmap
    transform-domain result against an ofmap-channel block partition (the
    parallel runtime's bit-identity ladder).  ``tolerance`` overrides the
    network-wide golden tolerance when set — Winograd entries carry the
    documented :func:`repro.sim.winograd.winograd_tolerance` bound because
    the transforms reassociate the reduction.
    """

    layer_name: str
    candidate: MappingCandidate
    max_abs_error: float          # vs the im2col golden reference
    bit_identical: bool           # vs the baseline-stripe simulation
    windows_kept: int
    seconds: float
    covers: Tuple[str, ...] = ()  # geometry-identical layers this result covers
    tolerance: Optional[float] = None  # per-entry golden bound override

    def describe(self) -> str:
        """One verification line."""
        status = "ok" if self.bit_identical else "BIT-MISMATCH"
        extra = f" (also {', '.join(self.covers)})" if self.covers else ""
        return (f"{self.layer_name:<10} {self.candidate.describe():<28} "
                f"max|err|={self.max_abs_error:.2e} "
                f"windows={self.windows_kept:<10} {status}{extra}")


@dataclass
class MappingVerification:
    """Whole-schedule functional verification outcome."""

    network_name: str
    seed: int
    tolerance: float
    layers: List[LayerVerification] = field(default_factory=list)

    @property
    def max_abs_error(self) -> float:
        """Worst golden-reference deviation over all verified mappings."""
        return max((entry.max_abs_error for entry in self.layers), default=0.0)

    @property
    def passed(self) -> bool:
        """True when every mapping is golden-close and baseline-bit-identical."""
        return all(
            entry.bit_identical and entry.max_abs_error
            <= (entry.tolerance if entry.tolerance is not None else self.tolerance)
            for entry in self.layers
        )

    def describe(self) -> str:
        """Multi-line verification report."""
        lines = [entry.describe() for entry in self.layers]
        verdict = "PASSED" if self.passed else "FAILED"
        lines.append(
            f"mapping verification {verdict}: {len(self.layers)} distinct "
            f"mappings, max|err|={self.max_abs_error:.2e} "
            f"(tolerance {self.tolerance:.0e})"
        )
        return "\n".join(lines)


class ScheduleOptimizer:
    """Searches per-layer mapspaces and assembles network schedules."""

    def __init__(
        self,
        config: Optional[ChainConfig] = None,
        objective: str = "throughput",
        strategy: str | Strategy = "exhaustive",
        batch: int = 16,
        energy: Optional[EnergyParams] = None,
        cache: Optional[RunCache] = None,
        shortlist: int = 4,
        workers: Optional[int] = None,
        kernel_backend: Optional[str] = None,
        algorithm: str = "direct",
    ) -> None:
        if objective not in OBJECTIVES:
            raise ConfigurationError(
                f"unknown objective {objective!r}; available: {', '.join(OBJECTIVES)}"
            )
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        if shortlist < 1:
            raise ConfigurationError(f"shortlist must be >= 1, got {shortlist}")
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if algorithm not in ALGORITHM_MODES:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}; available: "
                f"{', '.join(ALGORITHM_MODES)}"
            )
        self.config = config or ChainConfig()
        self.objective = objective
        #: algorithm-axis mode every layer space is built with ("direct"
        #: reproduces the pre-axis search space and its cache keys bit for
        #: bit; "auto" lets eligible layers pick Winograd when it wins)
        self.algorithm = algorithm
        self.strategy = (strategy if isinstance(strategy, Strategy)
                         else make_strategy(strategy))
        self.batch = int(batch)
        self.energy = energy or EnergyParams()
        self.cache = cache
        self.shortlist = shortlist
        #: per-layer searches fan out over this many worker processes
        #: (``None``/1 = serial); results are bit-identical either way, so
        #: the worker count deliberately stays out of the cache fingerprint
        self.workers = workers
        #: effective :mod:`repro.kernels` scorer backend; resolved once so
        #: serial and parallel searches use the same implementation (it
        #: *does* enter the fingerprint — backends are bit-identical, but
        #: the cache stays conservative about who produced a record)
        self.kernel_backend = resolve_backend_name(kernel_backend)
        self._pool = shared_runtime()

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #
    def search_layer(self, space: LayerMapSpace) -> SearchResult:
        """Run the configured strategy over one layer's space."""
        _, scorer = make_layer_scorer(space.layer, self.config, self.objective,
                                      self.batch, self.energy,
                                      kernel_backend=self.kernel_backend)
        return self.strategy.search(space, scorer, shortlist=self.shortlist)

    def optimize(self, network: Network) -> OptimizedSchedule:
        """Search every layer and assemble the never-worse network schedule."""
        if self.cache is not None:
            key = self.cache_key(network)
            record = self.cache.get(key)
            if record is not None and "schedule" in record.extra:
                _M_SCHEDULE_CACHE_HITS.inc()
                schedule = OptimizedSchedule.from_json_dict(
                    record.extra["schedule"], cached=True)
                _M_CANDIDATES_SEARCHED.inc(schedule.evaluations)
                return schedule
        with obs_trace.span("map.optimize", network=network.name,
                            strategy=self.strategy.name,
                            objective=self.objective):
            schedule = self._optimize_uncached(network)
        if self.cache is not None:
            self.cache.put(key, RunRecord(
                engine="mapping-search",
                network=network.name,
                batch=self.batch,
                config_summary=self.config.describe(),
                metrics={
                    "objective_value": schedule.objective_value(),
                    "baseline_objective_value": schedule.baseline_objective_value(),
                    "improvement_fraction": schedule.improvement_fraction(),
                },
                extra={"schedule": schedule.to_json_dict()},
            ))
        return schedule

    def _search_all_layers(self, network: Network) -> List[Dict[str, Any]]:
        """One :func:`search_layer_entry` result per conv layer, in order.

        Per-layer searches are independent (stochastic strategies seed from
        ``(seed, strategy, layer)``), so they fan out over the parallel
        runtime when ``workers`` asks for it; the serial loop runs the exact
        same entry function, so both paths return bit-identical results.
        Platforms without process pools degrade to the serial loop.
        """
        layers = network.conv_layers
        if self.workers is not None and self.workers > 1 and len(layers) > 1:
            runtime = self._pool.get(task_hint=len(layers),
                                     workers=self.workers)
            if runtime is not None:
                payloads = [
                    {
                        "layer": layer,
                        "config": self.config,
                        "objective": self.objective,
                        "strategy": self.strategy,
                        "batch": self.batch,
                        "energy": self.energy,
                        "shortlist": self.shortlist,
                        "kernel_backend": self.kernel_backend,
                        "algorithm": self.algorithm,
                    }
                    for layer in layers
                ]
                try:
                    return runtime.map("map.search_layer", payloads)
                except WorkerError:
                    pass  # degradation ladder's last rung: the serial loop
        return [
            search_layer_entry(layer, self.config, self.objective,
                               self.strategy, self.batch, self.energy,
                               self.shortlist,
                               kernel_backend=self.kernel_backend,
                               algorithm=self.algorithm)
            for layer in layers
        ]

    def _optimize_uncached(self, network: Network) -> OptimizedSchedule:
        # raises early on unmappable networks / illegal algorithm modes
        MapSpace(network, self.config, algorithm=self.algorithm)
        shortlists: List[List[MappingCandidate]] = []
        metric_cache: List[Dict[MappingCandidate, Dict[str, float]]] = []
        baseline_rows: List[LayerSchedule] = []
        evaluations = 0
        for entry in self._search_all_layers(network):
            _M_LAYERS_SEARCHED.inc()
            _M_CANDIDATES_SEARCHED.inc(entry["evaluations"])
            evaluations += entry["evaluations"]
            pool = entry["pool"]
            metric_cache.append(dict(zip(pool, entry["rows"])))
            shortlists.append(pool)
            baseline_rows.append(LayerSchedule(
                layer_name=entry["layer_name"],
                candidate=entry["baseline"],
                metrics=metric_cache[-1][entry["baseline"]],
            ))

        # assembly: start from the baseline, adopt a shortlisted candidate
        # only when it strictly improves the *network* objective — monotone
        # descent from the baseline, hence never worse than it
        chosen = [row.candidate for row in baseline_rows]
        chosen_metrics = [row.metrics for row in baseline_rows]
        for _ in range(2):  # additive objectives converge in one sweep; EDP in two
            improved = False
            for index, pool in enumerate(shortlists):
                current = network_objective(self.objective, chosen_metrics)
                best_candidate = chosen[index]
                best_value = current
                for candidate in pool:
                    trial = list(chosen_metrics)
                    trial[index] = metric_cache[index][candidate]
                    value = network_objective(self.objective, trial)
                    if value < best_value:
                        best_value = value
                        best_candidate = candidate
                if best_candidate != chosen[index]:
                    chosen[index] = best_candidate
                    chosen_metrics[index] = metric_cache[index][best_candidate]
                    improved = True
            if not improved:
                break

        layers = [
            LayerSchedule(layer_name=row.layer_name, candidate=candidate,
                          metrics=metrics)
            for row, candidate, metrics in zip(baseline_rows, chosen, chosen_metrics)
        ]
        return OptimizedSchedule(
            network_name=network.name,
            objective=self.objective,
            strategy=self.strategy.name,
            batch=self.batch,
            frequency_hz=self.config.frequency_hz,
            layers=layers,
            baseline=baseline_rows,
            evaluations=evaluations,
        )

    # ------------------------------------------------------------------ #
    # memoisation
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> Dict[str, Any]:
        """Search-configuration identity (enters cache keys and records).

        The algorithm axis enters the fingerprint only when enabled, so
        the default direct-only mode keeps its pre-axis cache keys — and a
        cached direct search is never served to (or poisoned by) a run with
        the Winograd axis on.
        """
        fingerprint: Dict[str, Any] = {
            "objective": self.objective,
            "strategy": self.strategy.fingerprint(),
            "batch": self.batch,
            "shortlist": self.shortlist,
            "energy": asdict(self.energy),
            "kernels": backend_fingerprint(self.kernel_backend),
        }
        if self.algorithm != "direct":
            fingerprint["algorithm"] = self.algorithm
        return fingerprint

    def cache_key(self, network: Network) -> str:
        """Deterministic RunCache key of one whole-network search."""
        from repro import __version__

        payload = {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "kind": "mapping-search",
            "config": config_fingerprint(self.config),
            "workload": workload_fingerprint(network),
            "search": self.fingerprint(),
        }
        return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #
    def verify(self, network: Network, schedule: OptimizedSchedule,
               seed: int = 2017, tolerance: float = 1e-9,
               deduplicate: bool = True) -> MappingVerification:
        """Functionally verify every searched mapping of ``schedule``.

        Each distinct (layer geometry, stripe height) pair drives the
        vectorized :class:`FunctionalChainSimulator` on seeded tensors; the
        ofmaps must match the im2col golden reference within ``tolerance``
        (float round-off — the simulator accumulates in window order, the
        GEMM reference in im2col order) and be **bit-identical** to the
        baseline full-stripe simulation.  A searched stripe height equal to
        the baseline's runs the identical stripe plan, so the bit-identity
        re-simulation only happens for genuinely re-striped layers.

        Winograd mappings run :func:`repro.sim.winograd.conv2d_winograd`
        instead: the golden bound is the per-layer
        :func:`~repro.sim.winograd.winograd_tolerance` (the transforms
        reassociate the reduction) and the bit-identity check partitions the
        ofmap channels into two blocks — the invariant the parallel runtime
        relies on.
        """
        outcome = MappingVerification(network_name=network.name, seed=seed,
                                      tolerance=tolerance)
        parent = WorkloadGenerator(seed=seed)
        simulator = FunctionalChainSimulator(self.config, backend="vectorized",
                                             kernel_backend=self.kernel_backend)
        verified: Dict[Tuple, int] = {}
        covers: Dict[int, List[str]] = {}
        for layer in network.conv_layers:
            entry = schedule.layer_schedule(layer.name)
            height = entry.candidate.stripe_height
            geometry = tuple(sorted(
                (name, value) for name, value in asdict(layer).items()
                if name != "name"
            ))
            key = (geometry, height, entry.candidate.algorithm)
            if deduplicate and key in verified:
                covers[verified[key]].append(layer.name)
                continue
            generator = parent.spawn(layer.name)
            ifmaps, weights = generator.layer_pair(layer)
            started = time.perf_counter()
            if entry.candidate.is_winograd:
                reference = conv2d_im2col(layer, ifmaps, weights)
                ofmaps = conv2d_winograd(layer, ifmaps, weights,
                                         kernel_backend=self.kernel_backend)
                error = float(np.max(np.abs(ofmaps - reference)))
                padded = pad_input(np.asarray(ifmaps, dtype=np.float64),
                                   layer.padding)
                split = np.zeros_like(ofmaps)
                half = max(1, layer.out_channels // 2)
                winograd_ofmap_block(layer, padded, weights, 0, half, split,
                                     kernel_backend=self.kernel_backend)
                winograd_ofmap_block(layer, padded, weights, half,
                                     layer.out_channels, split,
                                     kernel_backend=self.kernel_backend)
                identical = bool(np.array_equal(ofmaps, split))
                tiles_h, tiles_w = winograd_tile_grid(layer)
                verified[key] = len(outcome.layers)
                covers[verified[key]] = []
                outcome.layers.append(LayerVerification(
                    layer_name=layer.name,
                    candidate=entry.candidate,
                    max_abs_error=error,
                    bit_identical=identical,
                    windows_kept=tiles_h * tiles_w * layer.out_channels,
                    seconds=time.perf_counter() - started,
                    tolerance=winograd_tolerance(reference),
                ))
                continue
            run = simulator.run_layer(layer, ifmaps, weights, stripe_height=height)
            error = run.max_abs_error_vs_reference(ifmaps, weights)
            if height == layer.kernel_size:
                identical = True
            else:
                base = simulator.run_layer(layer, ifmaps, weights)
                identical = bool(np.array_equal(run.ofmaps, base.ofmaps))
            verified[key] = len(outcome.layers)
            covers[verified[key]] = []
            outcome.layers.append(LayerVerification(
                layer_name=layer.name,
                candidate=entry.candidate,
                max_abs_error=error,
                bit_identical=identical,
                windows_kept=run.stats.windows_kept,
                seconds=time.perf_counter() - started,
            ))
        # attach the geometry-identical layers each verification covers
        outcome.layers = [
            LayerVerification(
                layer_name=entry.layer_name,
                candidate=entry.candidate,
                max_abs_error=entry.max_abs_error,
                bit_identical=entry.bit_identical,
                windows_kept=entry.windows_kept,
                seconds=entry.seconds,
                covers=tuple(covers.get(index, ())),
                tolerance=entry.tolerance,
            )
            for index, entry in enumerate(outcome.layers)
        ]
        return outcome
