"""Pareto-frontier and top-k reduction over columnar sweep results.

A design-space sweep produces one metric vector per design point; what the
architect actually wants is the small set of points that are not strictly
worse than some other point on every axis of interest (time vs. power vs.
area for the chain-architecture exploration of the source paper) plus the
top-k points by any single figure of merit.  Both reducers operate on the
struct-of-arrays columns of :class:`repro.analysis.batch.BatchSweepResult`
without materialising per-point Python objects.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


def pareto_mask(costs: np.ndarray) -> np.ndarray:
    """Boolean mask of the Pareto-efficient rows of a cost matrix.

    ``costs`` is ``(n_points, n_objectives)``; every objective is minimised.
    A point is kept unless another point is <= on every objective and < on at
    least one (exact duplicates of an efficient point are all kept, so the
    mask is permutation-invariant).

    The filter removes the points dominated by the current candidate in one
    vectorised pass and then jumps to the next survivor, so the cost is
    ``O(frontier_size * n)`` array operations rather than ``O(n^2)`` — fast
    enough for the 10^5-point grids the batch evaluator produces.
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.ndim != 2:
        raise ConfigurationError(f"costs must be 2D (points x objectives), got {costs.ndim}D")
    n_points = costs.shape[0]
    if n_points == 0:
        return np.zeros(0, dtype=bool)
    if not np.isfinite(costs).all():
        raise ConfigurationError("costs must be finite to compute a Pareto frontier")

    surviving = np.arange(n_points)
    candidate = 0
    while candidate < costs.shape[0]:
        better_somewhere = np.any(costs < costs[candidate], axis=1)
        duplicate = np.all(costs == costs[candidate], axis=1)
        keep = better_somewhere | duplicate
        surviving = surviving[keep]
        costs = costs[keep]
        # next candidate: first point after the current one that survived
        candidate = int(np.count_nonzero(keep[:candidate])) + 1
    mask = np.zeros(n_points, dtype=bool)
    mask[surviving] = True
    return mask


def pareto_indices(costs: np.ndarray) -> np.ndarray:
    """Indices of the Pareto-efficient rows, in original order."""
    return np.flatnonzero(pareto_mask(costs))


def top_k_indices(values: np.ndarray, k: int, maximize: bool = True) -> np.ndarray:
    """Indices of the ``k`` best entries of ``values``, best first.

    Ties are broken by original index (stable), so the selection is
    deterministic across runs and chunking strategies.
    """
    values = np.asarray(values, dtype=np.float64)
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    k = min(k, values.size)
    order = np.argsort(-values if maximize else values, kind="stable")
    return order[:k]


def objective_matrix(columns: dict, objectives: Sequence[str],
                     maximize: Sequence[str] = ()) -> np.ndarray:
    """Stack named metric columns into a minimisation cost matrix.

    Columns named in ``maximize`` are negated so "higher is better" metrics
    (fps, GOPS/W) can participate in the same minimising frontier.
    """
    missing = [name for name in objectives if name not in columns]
    if missing:
        raise ConfigurationError(
            f"unknown objective column(s) {missing}; available: {sorted(columns)}"
        )
    stacked = []
    for name in objectives:
        column = np.asarray(columns[name], dtype=np.float64)
        stacked.append(-column if name in maximize else column)
    return np.stack(stacked, axis=1)
