"""Roofline analysis of the chain.

A compact way to show *why* the column-wise scan matters: the chain's peak
compute rate is fixed (2 ops per PE per cycle) while its input bandwidth per
primitive is fixed at two pixels per cycle; the attainable throughput of a
layer is the minimum of the compute roof and the bandwidth roof at the
layer's operational intensity (MACs per streamed ifmap pixel).  The
dual-channel scan raises the intensity by ``K^2 / 2`` per primitive, which is
what keeps every mainstream layer comfortably in the compute-bound region —
the single-channel strawman drops several layers onto the bandwidth roof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cnn.layer import ConvLayer
from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.core.mapper import LayerMapper


@dataclass(frozen=True)
class RooflinePoint:
    """One layer placed on the roofline."""

    layer_name: str
    operational_intensity: float     # MACs per streamed ifmap pixel (per primitive)
    attainable_macs_per_cycle: float  # min(compute roof, bandwidth * intensity)
    compute_roof_macs_per_cycle: float
    bound: str                       # "compute" or "bandwidth"

    @property
    def roof_fraction(self) -> float:
        """Attainable rate as a fraction of the compute roof."""
        if self.compute_roof_macs_per_cycle == 0:
            return 0.0
        return self.attainable_macs_per_cycle / self.compute_roof_macs_per_cycle


class RooflineModel:
    """Places layers on the chain's roofline."""

    def __init__(self, config: ChainConfig | None = None) -> None:
        self.config = config or ChainConfig()
        self.mapper = LayerMapper(self.config)

    def pixels_per_cycle_per_primitive(self) -> float:
        """Input bandwidth of one primitive (2 with dual channels, 1 without)."""
        return 2.0 if self.config.dual_channel else 1.0

    def layer_point(self, layer: ConvLayer) -> RooflinePoint:
        """Roofline placement of one layer."""
        mapping = self.mapper.map_layer(layer)
        k = layer.kernel_size
        # per primitive: K^2 MACs per output, (2K-1)/K streamed pixels per output
        macs_per_output = k * k
        pixels_per_output = (2 * k - 1) / k
        intensity = macs_per_output / pixels_per_output
        compute_roof = float(mapping.partition.kernel_size ** 2)  # MACs/cycle/primitive
        bandwidth_roof = self.pixels_per_cycle_per_primitive() * intensity
        attainable = min(compute_roof, bandwidth_roof)
        return RooflinePoint(
            layer_name=layer.name,
            operational_intensity=intensity,
            attainable_macs_per_cycle=attainable,
            compute_roof_macs_per_cycle=compute_roof,
            bound="compute" if attainable >= compute_roof else "bandwidth",
        )

    def network_points(self, network: Network) -> List[RooflinePoint]:
        """Roofline placement of every convolutional layer."""
        return [self.layer_point(layer) for layer in network.conv_layers]

    def summary(self, network: Network) -> Dict[str, str]:
        """Layer-name -> bound classification."""
        return {point.layer_name: point.bound for point in self.network_points(network)}
