"""Columnar (struct-of-arrays) batch evaluation of the analytical models.

Design-space exploration wants 10^5–10^6 design points evaluated
interactively; the per-point path (``PerformanceModel`` + ``TrafficModel`` +
``PowerModel`` + ``AreaModel`` behind one ``ChainConfig`` object each) tops
out at a few hundred points per second because every point rebuilds mapper,
planner and report objects.  This module evaluates a whole grid of design
points — PE count x clock frequency x batch size x datapath precision — as
whole-NumPy-array expressions:

* the per-layer *closed forms* are exactly the ones the scalar models use
  (:func:`repro.core.performance.pair_cycles_for`,
  :func:`repro.energy.power.chain_power_w` /
  :func:`~repro.energy.power.memory_power_w`,
  :meth:`repro.energy.area.AreaModel.total_gates_for`), applied to arrays of
  design points instead of scalars, so the columnar path is numerically
  identical to :class:`repro.analysis.sweep.DesignSpaceExplorer` point by
  point (asserted by the equivalence tests);
* layer-constant factors (pair cycles, channel pairs, traffic word counts
  per image, tile heights per precision) are hoisted out of the grid loop and
  computed once per network.

The engine layer exposes this as the ``analytical-batch`` engine
(:class:`repro.engine.adapters.AnalyticalBatchEngine`);
:meth:`repro.engine.executor.SweepExecutor.run_grid` feeds it cache-aware
chunks.  :mod:`repro.analysis.pareto` reduces the resulting columns to a
Pareto frontier or a top-k list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.pareto import objective_matrix, pareto_mask, top_k_indices
from repro.analysis.winograd import winograd_cost_fields, winograd_eligible
from repro.cnn.network import Network
from repro.core.config import MAINSTREAM_KERNEL_SIZES, ChainConfig
from repro.core.dataflow import DataflowPlanner
from repro.core.performance import Mode, pair_cycles_for, per_stripe_cycles_paper
from repro.energy.area import AreaModel
from repro.energy.components import EnergyParams, GateCountParams
from repro.energy.power import chain_power_w, memory_power_w
from repro.errors import ConfigurationError
from repro.hwmodel.clock import ClockDomain
from repro.kernels import MappingCostParams, get_backend, resolve_backend_name
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

# columnar-path throughput counters (process-local: workers running grid
# chunks feed their own registry and ship deltas with their results)
_M_BATCH_POINTS = obs_metrics.counter("batch.points_evaluated")
_M_CANDIDATES_SCORED = obs_metrics.counter("mapping.candidates_scored")

#: grid-axis names accepted by :meth:`DesignGrid.parse`
GRID_AXES = ("pe", "freq", "batch", "bits")

#: default Pareto objectives (all minimised): latency vs. power vs. area
DEFAULT_OBJECTIVES = ("total_time_per_batch_s", "power_w", "total_gates")

#: metric columns where larger values are better; every other column is
#: treated as lower-is-better by ranking/frontier consumers (the CLI)
HIGHER_IS_BETTER = frozenset({
    "fps",
    "achieved_gops",
    "peak_gops",
    "gops_per_watt",
    "worst_case_utilization",
})


def _parse_axis(name: str, text: str, integer: bool) -> np.ndarray:
    """Parse one axis spec: ``v``, ``start:stop`` or ``start:stop:step``.

    Ranges include the stop value when it lies on the step grid (the natural
    reading of ``pe=128:1152:32``).
    """
    parts = text.split(":")
    if len(parts) not in (1, 2, 3) or any(not part for part in parts):
        raise ConfigurationError(
            f"grid axis {name}={text!r} must be 'value', 'start:stop' or 'start:stop:step'"
        )
    try:
        numbers = [float(part) for part in parts]
    except ValueError:
        raise ConfigurationError(f"grid axis {name}={text!r} contains a non-number") from None
    if len(parts) == 1:
        values = np.array([numbers[0]])
    else:
        start, stop = numbers[0], numbers[1]
        step = numbers[2] if len(parts) == 3 else 1.0
        if step <= 0:
            raise ConfigurationError(f"grid axis {name}: step must be > 0, got {step}")
        if stop < start:
            raise ConfigurationError(f"grid axis {name}: stop {stop} < start {start}")
        # never overshoot: the last value is the largest on-grid point <= stop
        # (with a float-tolerant count so e.g. 200:1000:50 still includes 1000)
        count = int(np.floor((stop - start) / step + 1e-9)) + 1
        values = start + step * np.arange(count)
    if integer:
        rounded = np.rint(values)
        if not np.allclose(values, rounded):
            raise ConfigurationError(f"grid axis {name} must contain integers, got {text!r}")
        return rounded.astype(np.int64)
    return values.astype(np.float64)


@dataclass(frozen=True)
class DesignGrid:
    """A flattened grid of design points, one array ("column") per axis.

    All four columns have the same length; point ``i`` is
    ``(num_pes[i], frequency_hz[i], batch[i], word_bits[i])``.
    """

    num_pes: np.ndarray       # int64
    frequency_hz: np.ndarray  # float64
    batch: np.ndarray         # int64
    word_bits: np.ndarray     # int64

    def __post_init__(self) -> None:
        lengths = {column.shape for column in self._columns()}
        if len(lengths) != 1 or len(next(iter(lengths))) != 1:
            raise ConfigurationError(
                f"grid columns must be 1D and equally long, got shapes {sorted(lengths)}"
            )
        if self.n_points and int(self.num_pes.min()) < 1:
            raise ConfigurationError("num_pes values must be >= 1")
        if self.n_points and int(self.batch.min()) < 1:
            raise ConfigurationError("batch values must be >= 1")
        if self.n_points and float(self.frequency_hz.min()) <= 0:
            raise ConfigurationError("frequency values must be > 0")
        if self.n_points and (np.any(self.word_bits < 8) or np.any(self.word_bits % 8)):
            raise ConfigurationError("word_bits values must be positive multiples of 8")

    def _columns(self) -> Tuple[np.ndarray, ...]:
        return (self.num_pes, self.frequency_hz, self.batch, self.word_bits)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_axes(
        cls,
        pe_counts: Sequence[int] = (576,),
        frequencies_hz: Sequence[float] = (700e6,),
        batches: Sequence[int] = (128,),
        word_bits: Sequence[int] = (16,),
    ) -> "DesignGrid":
        """Cartesian product of the four axes, flattened in C order."""
        pe, freq, batch, bits = np.meshgrid(
            np.asarray(pe_counts, dtype=np.int64),
            np.asarray(frequencies_hz, dtype=np.float64),
            np.asarray(batches, dtype=np.int64),
            np.asarray(word_bits, dtype=np.int64),
            indexing="ij",
        )
        return cls(pe.ravel(), freq.ravel(), batch.ravel(), bits.ravel())

    @classmethod
    def parse(cls, spec: str, base: Optional[ChainConfig] = None,
              default_batch: int = 128) -> "DesignGrid":
        """Build a grid from a CLI spec like ``pe=128:1152:32,freq=200:1000:50``.

        Axes: ``pe`` (chain length), ``freq`` (MHz), ``batch``, ``bits``
        (datapath width).  Ranges are ``start:stop:step`` with an inclusive
        stop; omitted axes default to the ``base`` configuration (and
        ``default_batch``).
        """
        base = base or ChainConfig()
        axes: Dict[str, np.ndarray] = {
            "pe": np.array([base.num_pes], dtype=np.int64),
            "freq": np.array([base.frequency_hz / 1e6]),
            "batch": np.array([default_batch], dtype=np.int64),
            "bits": np.array([base.word_bits], dtype=np.int64),
        }
        spec = spec.strip()
        if not spec:
            raise ConfigurationError("empty grid spec")
        for term in spec.split(","):
            name, _, text = term.partition("=")
            name = name.strip()
            if name not in GRID_AXES:
                raise ConfigurationError(
                    f"unknown grid axis {name!r}; expected one of {', '.join(GRID_AXES)}"
                )
            axes[name] = _parse_axis(name, text.strip(), integer=name != "freq")
        return cls.from_axes(
            pe_counts=axes["pe"],
            frequencies_hz=axes["freq"] * 1e6,
            batches=axes["batch"],
            word_bits=axes["bits"],
        )

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    @property
    def n_points(self) -> int:
        """Number of design points in the grid."""
        return int(self.num_pes.shape[0])

    def config_at(self, index: int, base: Optional[ChainConfig] = None) -> ChainConfig:
        """Materialise one grid point as a :class:`ChainConfig`."""
        base = base or ChainConfig()
        return replace(
            base,
            num_pes=int(self.num_pes[index]),
            clock=ClockDomain(float(self.frequency_hz[index])),
            word_bits=int(self.word_bits[index]),
        )

    def take(self, indices: np.ndarray) -> "DesignGrid":
        """Sub-grid at the given point indices."""
        return DesignGrid(
            num_pes=self.num_pes[indices],
            frequency_hz=self.frequency_hz[indices],
            batch=self.batch[indices],
            word_bits=self.word_bits[indices],
        )

    def chunks(self, chunk_size: int) -> Iterator["DesignGrid"]:
        """Split into consecutive sub-grids of at most ``chunk_size`` points."""
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        for start in range(0, self.n_points, chunk_size):
            yield self.take(np.arange(start, min(start + chunk_size, self.n_points)))

    # ------------------------------------------------------------------ #
    # serialisation (chunk cache keys and payloads)
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-list form suitable for hashing and ``json.dump``."""
        return {
            "num_pes": self.num_pes.tolist(),
            "frequency_hz": self.frequency_hz.tolist(),
            "batch": self.batch.tolist(),
            "word_bits": self.word_bits.tolist(),
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "DesignGrid":
        """Rebuild a grid from :meth:`to_json_dict` output."""
        return cls(
            num_pes=np.asarray(data["num_pes"], dtype=np.int64),
            frequency_hz=np.asarray(data["frequency_hz"], dtype=np.float64),
            batch=np.asarray(data["batch"], dtype=np.int64),
            word_bits=np.asarray(data["word_bits"], dtype=np.int64),
        )


#: metric columns every batch result carries, in report order
RESULT_COLUMNS = (
    "peak_gops",
    "fps",
    "total_time_per_batch_s",
    "achieved_gops",
    "power_w",
    "gops_per_watt",
    "worst_case_utilization",
    "total_gates",
)


@dataclass(frozen=True)
class BatchSweepResult:
    """Struct-of-arrays sweep result: one NumPy column per metric."""

    grid: DesignGrid
    peak_gops: np.ndarray
    fps: np.ndarray
    total_time_per_batch_s: np.ndarray
    achieved_gops: np.ndarray
    power_w: np.ndarray
    gops_per_watt: np.ndarray
    worst_case_utilization: np.ndarray
    total_gates: np.ndarray

    @property
    def n_points(self) -> int:
        """Number of evaluated design points."""
        return self.grid.n_points

    # ------------------------------------------------------------------ #
    # columnar access
    # ------------------------------------------------------------------ #
    def columns(self) -> Dict[str, np.ndarray]:
        """All columns (grid axes + metrics) keyed by name."""
        out: Dict[str, np.ndarray] = {
            "num_pes": self.grid.num_pes,
            "frequency_hz": self.grid.frequency_hz,
            "batch": self.grid.batch,
            "word_bits": self.grid.word_bits,
        }
        for name in RESULT_COLUMNS:
            out[name] = getattr(self, name)
        return out

    def row(self, index: int) -> Dict[str, float]:
        """One design point as a report row (the sweep-table format)."""
        return {
            "PEs": int(self.grid.num_pes[index]),
            "Freq (MHz)": float(self.grid.frequency_hz[index]) / 1e6,
            "batch": int(self.grid.batch[index]),
            "bits": int(self.grid.word_bits[index]),
            "Peak GOPS": float(self.peak_gops[index]),
            "Achieved GOPS": float(self.achieved_gops[index]),
            "fps": float(self.fps[index]),
            "Time/batch (ms)": float(self.total_time_per_batch_s[index]) * 1e3,
            "Power (W)": float(self.power_w[index]),
            "GOPS/W": float(self.gops_per_watt[index]),
            "worst-case util.": float(self.worst_case_utilization[index]),
            "Gates (k)": float(self.total_gates[index]) / 1e3,
        }

    def rows(self, indices: Optional[Sequence[int]] = None) -> List[Dict[str, float]]:
        """Report rows for selected points (all points when ``indices`` is None)."""
        if indices is None:
            indices = range(self.n_points)
        return [self.row(int(index)) for index in indices]

    def labels(self, indices: Optional[Sequence[int]] = None) -> List[str]:
        """Human-readable point labels matching :meth:`rows`."""
        if indices is None:
            indices = range(self.n_points)
        return [
            f"{int(self.grid.num_pes[i])} PEs @ {self.grid.frequency_hz[i] / 1e6:.0f} MHz"
            for i in indices
        ]

    def take(self, indices: np.ndarray) -> "BatchSweepResult":
        """Sub-result at the given point indices."""
        return BatchSweepResult(
            grid=self.grid.take(indices),
            **{name: getattr(self, name)[indices] for name in RESULT_COLUMNS},
        )

    @classmethod
    def concatenate(cls, results: Sequence["BatchSweepResult"]) -> "BatchSweepResult":
        """Stitch chunked results back into one (in chunk order)."""
        if not results:
            raise ConfigurationError("cannot concatenate zero batch results")
        grid = DesignGrid(
            num_pes=np.concatenate([r.grid.num_pes for r in results]),
            frequency_hz=np.concatenate([r.grid.frequency_hz for r in results]),
            batch=np.concatenate([r.grid.batch for r in results]),
            word_bits=np.concatenate([r.grid.word_bits for r in results]),
        )
        columns = {
            name: np.concatenate([getattr(r, name) for r in results])
            for name in RESULT_COLUMNS
        }
        return cls(grid=grid, **columns)

    # ------------------------------------------------------------------ #
    # reduction
    # ------------------------------------------------------------------ #
    def pareto_indices(self, objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                       maximize: Sequence[str] = ()) -> np.ndarray:
        """Indices of the Pareto-efficient points (all objectives minimised
        unless listed in ``maximize``)."""
        costs = objective_matrix(self.columns(), objectives, maximize)
        return np.flatnonzero(pareto_mask(costs))

    def pareto(self, objectives: Sequence[str] = DEFAULT_OBJECTIVES,
               maximize: Sequence[str] = ()) -> "BatchSweepResult":
        """The Pareto frontier as a (smaller) batch result."""
        return self.take(self.pareto_indices(objectives, maximize))

    def top_k(self, metric: str, k: int, maximize: bool = True) -> "BatchSweepResult":
        """The ``k`` best points by one metric column, best first."""
        columns = self.columns()
        if metric not in columns:
            raise ConfigurationError(
                f"unknown metric {metric!r}; available: {sorted(columns)}"
            )
        return self.take(top_k_indices(columns[metric], k, maximize=maximize))

    # ------------------------------------------------------------------ #
    # serialisation (the sweep executor caches whole chunks)
    # ------------------------------------------------------------------ #
    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-list form suitable for ``json.dump``."""
        payload: Dict[str, Any] = {"grid": self.grid.to_json_dict()}
        for name in RESULT_COLUMNS:
            payload[name] = getattr(self, name).tolist()
        return payload

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "BatchSweepResult":
        """Rebuild a result from :meth:`to_json_dict` output."""
        return cls(
            grid=DesignGrid.from_json_dict(data["grid"]),
            **{name: np.asarray(data[name], dtype=np.float64)
               for name in RESULT_COLUMNS},
        )


@dataclass(frozen=True)
class _LayerConstants:
    """Per-layer factors that do not depend on the design point."""

    kernel_area: int            # K^2 (PEs per primitive)
    pair_cycles: float          # per-pair cycles, dual-channel adjusted
    channel_pairs: int
    kernel_load_cycles: int
    macs: int
    out_height: int
    out_width: int
    padded_width: int
    out_channels: int           # M (total)
    out_channels_per_group: int
    in_channels_per_group: int
    groups: int
    kmemory_words: int          # per image
    omemory_words: int          # per image
    tiles_by_bits: Dict[int, Tuple[int, int, int]]  # bits -> (th, stripe_rows, stripes)


class BatchDesignEvaluator:
    """Evaluates a fixed network over arrays of design points, columnar.

    Everything that only depends on the network (pair cycles, channel pairs,
    traffic word counts per image) is computed once at construction;
    :meth:`evaluate_grid` is then pure array arithmetic — no per-point Python
    objects — and numerically identical to the scalar per-point path.
    """

    def __init__(
        self,
        network: Network,
        base: Optional[ChainConfig] = None,
        mode: Mode = "paper",
        energy: Optional[EnergyParams] = None,
        gates: Optional[GateCountParams] = None,
    ) -> None:
        if mode not in ("paper", "detailed"):
            raise ConfigurationError(f"mode must be 'paper' or 'detailed', got {mode!r}")
        self.network = network
        self.base = base or ChainConfig()
        self.mode = mode
        self.energy = energy or EnergyParams()
        self.gates = gates or GateCountParams()
        self._layers = [self._constants_for(layer) for layer in network.conv_layers]
        if not self._layers:
            raise ConfigurationError(f"{network.name}: no convolutional layers to evaluate")
        self._max_kernel_area = max(layer.kernel_area for layer in self._layers)
        self._total_macs = sum(layer.macs for layer in self._layers)

    # ------------------------------------------------------------------ #
    # per-layer constants
    # ------------------------------------------------------------------ #
    def _constants_for(self, layer) -> _LayerConstants:
        pair = pair_cycles_for(layer, self.mode)
        if not self.base.dual_channel:
            pair = pair * layer.kernel_size
        k = layer.kernel_size
        if layer.stride == 1:
            kmem_repeats = math.ceil(layer.out_height / k)
        else:
            kmem_repeats = layer.out_height
        return _LayerConstants(
            kernel_area=k * k,
            pair_cycles=pair,
            channel_pairs=layer.channel_pairs(),
            kernel_load_cycles=layer.weight_count,
            macs=layer.macs,
            out_height=layer.out_height,
            out_width=layer.out_width,
            padded_width=layer.padded_width,
            out_channels=layer.out_channels,
            out_channels_per_group=layer.out_channels_per_group,
            in_channels_per_group=layer.in_channels_per_group,
            groups=layer.groups,
            kmemory_words=k * k * layer.channel_pairs() * kmem_repeats,
            omemory_words=2 * layer.out_height * layer.out_width
            * layer.out_channels * layer.in_channels_per_group,
            tiles_by_bits={},
        )

    def _tile_for(self, layer_index: int, bits: int) -> Tuple[int, int, int]:
        """(th, stripe_rows, stripes) of one layer at one datapath width.

        Delegates to the real :class:`DataflowPlanner` so capacity-driven tile
        shrinking stays byte-for-byte identical to the scalar path (``Tm`` is
        recomputed per design point later; it does not influence ``Th``).
        """
        constants = self._layers[layer_index]
        cached = constants.tiles_by_bits.get(bits)
        if cached is not None:
            return cached
        planner = DataflowPlanner(replace(self.base, word_bits=bits))
        layer = self.network.conv_layers[layer_index]
        tile = planner.plan(layer, active_primitives=1)
        stripes = math.ceil(layer.out_height / tile.th)
        constants.tiles_by_bits[bits] = (tile.th, tile.stripe_rows, stripes)
        return constants.tiles_by_bits[bits]

    def mapping_evaluator(self, layer_index: int, batch: int,
                          kernel_backend: Optional[str] = None,
                          ) -> "MappingBatchEvaluator":
        """Columnar *mapping-candidate* evaluator for one layer of the network.

        The mapping-search subsystem (:mod:`repro.mapping`) scores its
        candidates through this hook so the search shares the evaluator's
        base configuration and unit energies.
        """
        return MappingBatchEvaluator(
            self.network.conv_layers[layer_index],
            config=self.base,
            batch=batch,
            energy=self.energy,
            kernel_backend=kernel_backend,
        )

    # ------------------------------------------------------------------ #
    # grid evaluation
    # ------------------------------------------------------------------ #
    def evaluate_grid(self, grid: DesignGrid) -> BatchSweepResult:
        """Evaluate every grid point; all metrics as whole-array expressions."""
        _M_BATCH_POINTS.inc(grid.n_points)
        with obs_trace.span("batch.evaluate_grid", network=self.network.name,
                            points=grid.n_points):
            return self._evaluate_grid(grid)

    def _evaluate_grid(self, grid: DesignGrid) -> BatchSweepResult:
        num_pes = grid.num_pes
        if grid.n_points == 0:
            empty = np.zeros(0, dtype=np.float64)
            return BatchSweepResult(grid=grid, **{name: empty for name in RESULT_COLUMNS})
        smallest = int(num_pes.min())
        if smallest < self._max_kernel_area:
            raise ConfigurationError(
                f"{self.network.name} needs at least {self._max_kernel_area} PEs "
                f"(largest kernel), but the grid contains {smallest}"
            )

        frequency = grid.frequency_hz
        batch = grid.batch.astype(np.float64)
        n = grid.n_points

        conv_time_s = np.zeros(n)
        kernel_load_time_s = np.zeros(n)
        busy_pe_cycles = np.zeros(n)
        kmem_words = np.zeros(n)
        omem_words = np.zeros(n)
        imem_words = np.zeros(n)

        bits_groups = [(int(value), grid.word_bits == value)
                       for value in np.unique(grid.word_bits)]

        for layer_index, layer in enumerate(self._layers):
            primitives = num_pes // layer.kernel_area
            active_pes = primitives * layer.kernel_area
            cycles_per_image = layer.pair_cycles * layer.channel_pairs / primitives
            cycles_per_batch = cycles_per_image * batch
            conv_time_s += cycles_per_batch / frequency
            kernel_load_time_s += layer.kernel_load_cycles / frequency
            busy_pe_cycles += active_pes * cycles_per_batch
            kmem_words += layer.kmemory_words * batch
            omem_words += layer.omemory_words * batch

            # iMemory words depend on the tile shape: Th is precision-driven
            # (computed per distinct word width), Tm is design-point-driven
            for bits, mask in bits_groups:
                th, stripe_rows, stripes = self._tile_for(layer_index, bits)
                word = bits // 8
                tm_capacity = max(1, self.base.omemory_bytes
                                  // max(1, th * layer.out_width * word))
                tm = np.maximum(
                    1, np.minimum(layer.out_channels,
                                  np.minimum(primitives[mask], tm_capacity)))
                outer_tiles_per_group = -(-layer.out_channels_per_group // tm)
                words_per_image = (
                    outer_tiles_per_group * stripes * stripe_rows
                    * layer.padded_width * layer.in_channels_per_group * layer.groups
                )
                imem_words[mask] += words_per_image * batch[mask]

        total_time_s = conv_time_s + kernel_load_time_s
        fps = batch / total_time_s

        power_w = chain_power_w(busy_pe_cycles, total_time_s, self.energy)
        power_w = power_w + memory_power_w(kmem_words, total_time_s,
                                           self.energy.kmemory_access_j)
        power_w = power_w + memory_power_w(imem_words, total_time_s,
                                           self.energy.imemory_access_j)
        power_w = power_w + memory_power_w(omem_words, total_time_s,
                                           self.energy.omemory_access_j)

        total_ops = 2 * self._total_macs * batch
        achieved_gops = total_ops / total_time_s / 1e9
        peak_gops = num_pes * self.base.ops_per_mac * frequency / 1e9
        gops_per_watt = achieved_gops / power_w

        return BatchSweepResult(
            grid=grid,
            peak_gops=peak_gops,
            fps=fps,
            total_time_per_batch_s=total_time_s,
            achieved_gops=achieved_gops,
            power_w=power_w,
            gops_per_watt=gops_per_watt,
            worst_case_utilization=worst_case_utilization_array(num_pes),
            total_gates=AreaModel.total_gates_for(num_pes, self.gates),
        )


#: metric columns :class:`MappingBatchEvaluator` produces per candidate
MAPPING_RESULT_COLUMNS = (
    "passes",
    "active_pes",
    "kmemory_refills",
    "stripes",
    "conv_cycles_per_image",
    "kernel_load_cycles",
    "batch_cycles",
    "first_image_cycles",
    "time_per_batch_s",
    "first_image_latency_s",
    "fps",
    "spill_dram_words",
    "energy_per_batch_j",
    "edp_js",
)


class MappingBatchEvaluator:
    """Columnar evaluation of per-layer *mapping candidates*.

    Where :class:`BatchDesignEvaluator` sweeps hardware design points at the
    paper's fixed Table II mapping, this evaluator holds the hardware fixed
    and sweeps the *mapping* of one layer: arrays of (primitive count, stripe
    height, kernel-streaming chunk, batch-interleave policy) evaluate to
    arrays of cycle/energy metrics in one pass of NumPy arithmetic, which is
    what lets the search strategies of :mod:`repro.mapping` score 10^4+
    candidates per layer in milliseconds.

    The cost model is the *integral-pass* form of the analytical model
    (honest ``ceil`` accounting instead of the paper's fractional stripes and
    passes — the same closed forms otherwise), extended with the two effects
    a mapping choice actually controls:

    * **Kernel residency.**  ``chunk`` passes' worth of weights are kMemory-
      resident at a time (``refills = ceil(passes / chunk)``).  With the
      batch-interleaved schedule (chunk-major over the batch) kernels load
      once per batch but partial ofmaps of every image must survive each
      chunk boundary, spilling ``2 * ofmap_words * (refills - 1)`` words per
      image to DRAM; with the image-major schedule no partials spill but
      every image reloads all ``weight_count`` kernels.  The two policies
      coincide when the weights fit (``refills == 1``).
    * **First-image latency.**  Image-major schedules finish the first image
      after one image's convolutions; batch-interleaved schedules finish it
      only ``(refills - 1) / refills`` of the way into the batch.

    Energy follows the :class:`~repro.energy.power.PowerModel` philosophy
    (busy-PE cycles x unit energies, with the static fraction on the chain
    term); DRAM spill/reload traffic is charged at ``dram_byte_j``.

    The arithmetic itself lives in :mod:`repro.kernels`
    (:func:`repro.kernels.numpy_backend.score_mappings` is the reference
    specification; the numba backend is its bit-identical compiled form);
    ``kernel_backend`` selects the implementation, ``None`` meaning the
    process default.  Scores *and* argmins are identical across backends,
    so the search results never depend on the selection.
    """

    def __init__(self, layer, config: Optional[ChainConfig] = None,
                 batch: int = 1, energy: Optional[EnergyParams] = None,
                 kernel_backend: Optional[str] = None) -> None:
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {batch}")
        self.layer = layer
        self.config = config or ChainConfig()
        self.batch = int(batch)
        self.energy = energy or EnergyParams()
        self.kernel_backend = resolve_backend_name(kernel_backend)
        k = layer.kernel_size
        self.kernel_area = k * k
        if self.kernel_area > self.config.num_pes:
            raise ConfigurationError(
                f"{layer.name}: kernel {k}x{k} needs {self.kernel_area} PEs "
                f"but the chain has only {self.config.num_pes}"
            )
        self.max_primitives = self.config.num_pes // self.kernel_area
        self.channel_pairs = layer.channel_pairs()
        self.per_stripe_cycles = per_stripe_cycles_paper(layer)
        self.ofmap_words = layer.out_height * layer.out_width * layer.out_channels
        self.winograd_eligible = winograd_eligible(layer)
        wino_fields = (winograd_cost_fields(layer) if self.winograd_eligible
                       else {})
        self._params = MappingCostParams(
            kernel_area=self.kernel_area,
            channel_pairs=self.channel_pairs,
            per_stripe_cycles=self.per_stripe_cycles,
            out_height=layer.out_height,
            weight_count=layer.weight_count,
            batch=self.batch,
            ofmap_words=self.ofmap_words,
            stride=layer.stride,
            kernel_size=layer.kernel_size,
            padded_width=layer.padded_width,
            in_channels_per_group=layer.in_channels_per_group,
            frequency_hz=self.config.frequency_hz,
            word_bytes=self.config.word_bytes,
            pe_cycle_j=self.energy.pe_cycle_j,
            static_fraction=self.energy.static_fraction,
            kmemory_access_j=self.energy.kmemory_access_j,
            imemory_access_j=self.energy.imemory_access_j,
            omemory_access_j=self.energy.omemory_access_j,
            dram_byte_j=self.energy.dram_byte_j,
            **wino_fields,
        )

    def evaluate(
        self,
        primitives: np.ndarray,
        stripe_height: np.ndarray,
        chunk: np.ndarray,
        interleave_image: np.ndarray,
        winograd: Optional[np.ndarray] = None,
    ) -> Dict[str, np.ndarray]:
        """Score candidate columns; returns :data:`MAPPING_RESULT_COLUMNS`.

        The first four inputs are equally-long 1D arrays (``interleave_image``
        is boolean: True for the image-major schedule).  ``winograd`` is an
        optional boolean column selecting the F(2x2,3x3) transform-domain
        cost model per candidate; ``None`` (or all-False) is the direct path,
        byte-for-byte the pre-algorithm-axis behaviour.  Legality is assumed
        to have been established by the map-space (use
        :meth:`repro.core.mapper.LayerMapper.map_layer_with` /
        :class:`repro.mapping.LayerMapSpace` to validate candidates).
        """
        backend = get_backend(self.kernel_backend)
        primitives = np.asarray(primitives, dtype=np.int64)
        _M_CANDIDATES_SCORED.inc(primitives.shape[0] if primitives.ndim else 1)
        stripe_height = np.asarray(stripe_height, dtype=np.int64)
        chunk = np.asarray(chunk, dtype=np.int64)
        interleave_image = np.asarray(interleave_image, dtype=bool)
        if winograd is None:
            return backend.score_mappings(
                self._params, primitives, stripe_height, chunk,
                interleave_image)
        winograd = np.asarray(winograd, dtype=bool)
        if not winograd.any():
            return backend.score_mappings(
                self._params, primitives, stripe_height, chunk,
                interleave_image)
        if not self.winograd_eligible:
            raise ConfigurationError(
                f"{self.layer.name}: winograd candidates on a layer that is "
                f"not F(2x2,3x3)-eligible (needs kernel_size=3, stride=1)")
        wino = backend.score_mappings_winograd(
            self._params, primitives[winograd], chunk[winograd],
            interleave_image[winograd])
        if winograd.all():
            return wino
        direct_mask = ~winograd
        direct = backend.score_mappings(
            self._params, primitives[direct_mask], stripe_height[direct_mask],
            chunk[direct_mask], interleave_image[direct_mask])
        merged: Dict[str, np.ndarray] = {}
        for name in MAPPING_RESULT_COLUMNS:
            column = np.empty(winograd.shape[0], dtype=direct[name].dtype)
            column[direct_mask] = direct[name]
            column[winograd] = wino[name]
            merged[name] = column
        return merged


def worst_case_utilization_array(
    num_pes: np.ndarray,
    kernel_sizes: Sequence[int] = MAINSTREAM_KERNEL_SIZES,
) -> np.ndarray:
    """Vectorised worst-case spatial utilization over the mainstream kernels.

    Matches :func:`repro.engine.adapters.worst_case_utilization` point by
    point (0.0 where no kernel fits the chain).
    """
    num_pes = np.asarray(num_pes, dtype=np.int64)
    worst = np.full(num_pes.shape, np.inf)
    any_fit = np.zeros(num_pes.shape, dtype=bool)
    for kernel in kernel_sizes:
        area = kernel * kernel
        fits = num_pes >= area
        with np.errstate(divide="ignore", invalid="ignore"):
            utilization = (num_pes // area) * area / num_pes
        worst = np.where(fits, np.minimum(worst, utilization), worst)
        any_fit |= fits
    return np.where(any_fit, worst, 0.0)
