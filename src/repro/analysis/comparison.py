"""Table V generation: Chain-NN against the state of the art.

Two views are produced:

* the *published* comparison — the spec numbers the paper tabulates,
  including the 65 nm → 28 nm efficiency scaling footnote; and
* the *modelled* comparison — the same architectures evaluated by this
  library's models on the same workload, which is the reproduction of the
  "who wins and by how much" shape from first principles.

The modelled view dispatches every architecture through the unified engine
layer (:class:`~repro.engine.adapters.BaselineEngine`), so the comparison,
the sweeps and the experiments all share one evaluation path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.base import AcceleratorModel, AcceleratorSummary
from repro.baselines.chain_nn_model import ChainNNModel
from repro.baselines.memory_centric import MemoryCentricAccelerator
from repro.baselines.spatial_2d import Spatial2DAccelerator
from repro.baselines.specs import (
    ALL_PUBLISHED_SPECS,
    CHAIN_NN_SPEC,
    DADIANNAO_SPEC,
    EYERISS_SPEC,
    PublishedSpec,
)
from repro.cnn.network import Network
from repro.cnn.zoo import alexnet
from repro.energy.technology import TSMC_28NM
from repro.engine.adapters import BaselineEngine, summary_from_record
from repro.engine.base import RunRecord


@dataclass(frozen=True)
class ComparisonResult:
    """Everything the Table V bench reports."""

    published_rows: Dict[str, Dict[str, object]]
    modelled_rows: Dict[str, Dict[str, object]]
    efficiency_ratios: Dict[str, float]
    area_efficiency: Dict[str, float]

    @property
    def chain_nn_wins(self) -> bool:
        """True when Chain-NN has the best modelled energy efficiency."""
        efficiencies = {
            name: row["Energy Eff. (GOPS/W)"] for name, row in self.modelled_rows.items()
        }
        best = max(efficiencies, key=efficiencies.get)
        return "Chain-NN" in best


class StateOfTheArtComparison:
    """Builds the published and modelled Table V."""

    def __init__(self, network: Optional[Network] = None, batch: int = 4,
                 calibrate_power: bool = True) -> None:
        self.network = network or alexnet()
        self.batch = batch
        self.calibrate_power = calibrate_power

    # ------------------------------------------------------------------ #
    # published view
    # ------------------------------------------------------------------ #
    def published_table(self) -> Dict[str, Dict[str, object]]:
        """The spec columns exactly as the paper prints them."""
        rows = {spec.name: spec.as_row() for spec in ALL_PUBLISHED_SPECS}
        eyeriss_scaled = EYERISS_SPEC.efficiency_scaled_paper_style(TSMC_28NM)
        rows[EYERISS_SPEC.name]["Energy Eff. scaled to 28nm (GOPS/W)"] = eyeriss_scaled
        return rows

    def published_ratios(self) -> Dict[str, float]:
        """Chain-NN's published efficiency advantage (the 2.5x-4.1x claim)."""
        chain = CHAIN_NN_SPEC.energy_efficiency_gops_w
        return {
            "vs DaDianNao": chain / DADIANNAO_SPEC.energy_efficiency_gops_w,
            "vs Eyeriss (as published, 65nm)": chain / EYERISS_SPEC.energy_efficiency_gops_w,
            "vs Eyeriss (scaled to 28nm)": chain
            / EYERISS_SPEC.efficiency_scaled_paper_style(TSMC_28NM),
        }

    # ------------------------------------------------------------------ #
    # modelled view
    # ------------------------------------------------------------------ #
    def models(self) -> List[AcceleratorModel]:
        """The architecture models entering the modelled comparison."""
        chain = ChainNNModel(
            calibrate_power_to=self.network if self.calibrate_power else None
        )
        return [MemoryCentricAccelerator(), Spatial2DAccelerator.scaled_to_28nm(), chain]

    def engines(self) -> List[BaselineEngine]:
        """The architecture models wrapped as execution engines."""
        return [BaselineEngine(model) for model in self.models()]

    def modelled_records(self) -> List[RunRecord]:
        """Evaluate every architecture through the unified engine layer."""
        return [
            engine.evaluate(self.network, None, self.batch) for engine in self.engines()
        ]

    def modelled_summaries(self) -> List[AcceleratorSummary]:
        """Evaluate every model on the workload."""
        return [summary_from_record(record) for record in self.modelled_records()]

    def modelled_table(self) -> Dict[str, Dict[str, object]]:
        """Table V regenerated from this library's models."""
        return {summary.name: summary.as_row() for summary in self.modelled_summaries()}

    def modelled_ratios(self) -> Dict[str, float]:
        """Chain-NN's modelled efficiency advantage over the modelled baselines."""
        summaries = {summary.name: summary for summary in self.modelled_summaries()}
        chain = next(s for name, s in summaries.items() if "Chain-NN" in name)
        ratios = {}
        for name, summary in summaries.items():
            if "Chain-NN" in name:
                continue
            ratios[f"vs {name}"] = (
                chain.energy_efficiency_gops_w / summary.energy_efficiency_gops_w
            )
        return ratios

    def area_efficiency(self) -> Dict[str, float]:
        """Gates per PE (Sec. V.D: 6.51k vs 11.02k, a 1.7x advantage)."""
        chain = ChainNNModel()
        eyeriss = Spatial2DAccelerator()
        chain_gates_per_pe = chain.gate_count() / chain.parallelism
        return {
            "Chain-NN gates/PE": chain_gates_per_pe,
            "Eyeriss gates/PE": eyeriss.gates_per_pe,
            "ratio": eyeriss.gates_per_pe / chain_gates_per_pe,
        }

    # ------------------------------------------------------------------ #
    # one-call result
    # ------------------------------------------------------------------ #
    def run(self) -> ComparisonResult:
        """Build the complete comparison."""
        return ComparisonResult(
            published_rows=self.published_table(),
            modelled_rows=self.modelled_table(),
            efficiency_ratios={**self.published_ratios(),
                               **{f"modelled {k}": v for k, v in self.modelled_ratios().items()}},
            area_efficiency=self.area_efficiency(),
        )
