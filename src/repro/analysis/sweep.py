"""Design-space exploration sweeps.

The paper argues the 1D chain "involves fewer overheads when scaled up to a
higher parallelism or clock frequency"; these sweeps quantify that claim with
the library's models: chain length, clock frequency, kMemory depth and kernel
mix can all be varied and the resulting throughput / utilization / power /
area trends collected in one table per sweep.

Since the unified engine layer landed, every design point is evaluated
through :class:`~repro.engine.executor.SweepExecutor`: pick any registered
engine (``analytical``, ``analytical-detailed``, ``cycle``, ``functional``,
...), optionally attach an on-disk :class:`~repro.engine.cache.RunCache`, and
evaluate points in parallel — the sweep table is identical serial or
parallel, cached or fresh.

Dense grids (10^4+ points) go through :meth:`DesignSpaceExplorer.sweep_grid`
instead: the ``analytical-batch`` engine evaluates the whole grid as columnar
NumPy expressions (see :mod:`repro.analysis.batch`), orders of magnitude
faster than the per-point path and numerically identical to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.batch import BatchSweepResult, DesignGrid
from repro.cnn.network import Network
from repro.cnn.zoo import alexnet
from repro.core.config import ChainConfig
from repro.energy.area import AreaModel
from repro.engine.adapters import worst_case_utilization
from repro.engine.base import RunRecord
from repro.engine.cache import RunCache
from repro.engine.executor import SweepExecutor


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated design point."""

    label: str
    config: ChainConfig
    peak_gops: float
    fps: float
    power_w: float
    gops_per_watt: float
    worst_case_utilization: float
    total_gates: float

    def as_row(self) -> Dict[str, float | str]:
        """Row for the sweep report."""
        return {
            "PEs": self.config.num_pes,
            "Freq (MHz)": self.config.frequency_hz / 1e6,
            "Peak GOPS": self.peak_gops,
            "AlexNet fps": self.fps,
            "Power (W)": self.power_w,
            "GOPS/W": self.gops_per_watt,
            "worst-case util.": self.worst_case_utilization,
            "Gates (k)": self.total_gates / 1e3,
        }


class DesignSpaceExplorer:
    """Evaluates Chain-NN variants over a workload through one engine.

    ``engine`` is any registered engine name; ``parallel`` fans design points
    out over worker processes, and ``cache`` memoises results on disk so
    repeated sweeps (and sweeps sharing points) skip re-evaluation.
    """

    def __init__(self, network: Optional[Network] = None, batch: int = 128,
                 engine: str = "analytical", engine_kwargs: Optional[Dict] = None,
                 cache: Optional[RunCache] = None, parallel: bool = False,
                 max_workers: Optional[int] = None) -> None:
        self.network = network or alexnet()
        self.batch = batch
        self.engine_name = engine
        self.parallel = parallel
        self.executor = SweepExecutor(
            engine=engine,
            network=self.network,
            batch=batch,
            engine_kwargs=engine_kwargs,
            cache=cache,
            max_workers=max_workers,
        )

    # ------------------------------------------------------------------ #
    # point evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, config: ChainConfig, label: Optional[str] = None) -> SweepPoint:
        """Evaluate one configuration."""
        return self._to_point(self.executor.evaluate(config), config, label)

    def evaluate_many(self, configs: Sequence[ChainConfig],
                      labels: Optional[Sequence[Optional[str]]] = None,
                      parallel: Optional[bool] = None) -> List[SweepPoint]:
        """Evaluate many configurations (in parallel when requested)."""
        if labels is not None and len(labels) != len(configs):
            raise ValueError(
                f"got {len(labels)} labels for {len(configs)} configurations"
            )
        parallel = self.parallel if parallel is None else parallel
        records = self.executor.run(configs, parallel=parallel)
        labels = labels or [None] * len(configs)
        return [
            self._to_point(record, config, label)
            for record, config, label in zip(records, configs, labels)
        ]

    def _to_point(self, record: RunRecord, config: ChainConfig,
                  label: Optional[str] = None) -> SweepPoint:
        """Build the sweep row from a run record, backfilling config-only
        metrics (area, worst-case utilization) for engines that do not model
        them."""
        metrics = record.metrics
        total_gates = metrics.get("total_gates")
        if total_gates is None:
            total_gates = AreaModel(config).report().total_gates
        worst = metrics.get("worst_case_utilization")
        if worst is None:
            worst = worst_case_utilization(config)
        return SweepPoint(
            label=label or f"{config.num_pes} PEs @ {config.frequency_hz / 1e6:.0f} MHz",
            config=config,
            peak_gops=metrics.get("peak_gops", config.peak_gops),
            fps=metrics.get("fps", 0.0),
            power_w=metrics.get("power_w", 0.0),
            gops_per_watt=metrics.get("gops_per_watt", 0.0),
            worst_case_utilization=worst,
            total_gates=total_gates,
        )

    # ------------------------------------------------------------------ #
    # sweeps
    # ------------------------------------------------------------------ #
    def sweep_chain_length(self, pe_counts: Sequence[int] = (144, 288, 432, 576, 720, 864, 1152),
                           base: Optional[ChainConfig] = None) -> List[SweepPoint]:
        """Vary the number of PEs at fixed frequency."""
        base = base or ChainConfig()
        return self.evaluate_many([base.with_pes(count) for count in pe_counts])

    def sweep_frequency(self, frequencies_mhz: Sequence[float] = (200, 350, 500, 700, 850, 1000),
                        base: Optional[ChainConfig] = None) -> List[SweepPoint]:
        """Vary the clock frequency at fixed chain length."""
        base = base or ChainConfig()
        return self.evaluate_many([base.with_frequency(f * 1e6) for f in frequencies_mhz])

    def sweep_batch_size(self, batches: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
                         base: Optional[ChainConfig] = None,
                         parallel: Optional[bool] = None) -> Dict[int, float]:
        """Frame rate versus batch size (kernel loading amortisation, Sec. V.B)."""
        config = base or ChainConfig()
        parallel = self.parallel if parallel is None else parallel
        records = self.executor.run_batches(config, batches, parallel=parallel)
        return {batch: record.metrics.get("fps", 0.0)
                for batch, record in zip(batches, records)}

    # ------------------------------------------------------------------ #
    # dense grids (columnar fast path)
    # ------------------------------------------------------------------ #
    def evaluate_grid(self, grid: DesignGrid, base: Optional[ChainConfig] = None,
                      chunk_size: Optional[int] = None) -> BatchSweepResult:
        """Evaluate a dense design grid through the engine's columnar path.

        Engines without ``evaluate_batch`` support fall back to per-point
        evaluation inside the same interface, so the result shape does not
        depend on the engine choice.
        """
        return self.executor.run_grid(grid, base=base, chunk_size=chunk_size)

    def sweep_grid(self, spec: str, base: Optional[ChainConfig] = None,
                   chunk_size: Optional[int] = None) -> BatchSweepResult:
        """Evaluate a grid described by a spec string.

        ``spec`` uses the CLI grid syntax, e.g.
        ``"pe=128:1152:32,freq=200:1000:50"`` (PE count x frequency in MHz,
        optionally ``batch=...`` and ``bits=...`` axes; omitted axes default
        to the base configuration and the explorer's batch size).
        """
        base = base or ChainConfig()
        grid = DesignGrid.parse(spec, base=base, default_batch=self.batch)
        return self.evaluate_grid(grid, base=base, chunk_size=chunk_size)

    def utilization_by_chain_length(self, low: int = 128, high: int = 1152, step: int = 32
                                    ) -> Dict[int, float]:
        """Worst-case spatial utilization across the mainstream kernel sizes."""
        results = {}
        for num_pes in range(low, high + 1, step):
            utilization = worst_case_utilization(ChainConfig(num_pes=num_pes))
            if utilization > 0.0:
                results[num_pes] = utilization
        return results
