"""Design-space exploration sweeps.

The paper argues the 1D chain "involves fewer overheads when scaled up to a
higher parallelism or clock frequency"; these sweeps quantify that claim with
the library's models: chain length, clock frequency, kMemory depth and kernel
mix can all be varied and the resulting throughput / utilization / power /
area trends collected in one table per sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cnn.network import Network
from repro.cnn.zoo import alexnet
from repro.core.config import MAINSTREAM_KERNEL_SIZES, ChainConfig
from repro.core.performance import PerformanceModel
from repro.core.utilization import minimum_utilization
from repro.energy.area import AreaModel
from repro.energy.power import PowerModel


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated design point."""

    label: str
    config: ChainConfig
    peak_gops: float
    fps: float
    power_w: float
    gops_per_watt: float
    worst_case_utilization: float
    total_gates: float

    def as_row(self) -> Dict[str, float | str]:
        """Row for the sweep report."""
        return {
            "PEs": self.config.num_pes,
            "Freq (MHz)": self.config.frequency_hz / 1e6,
            "Peak GOPS": self.peak_gops,
            "AlexNet fps": self.fps,
            "Power (W)": self.power_w,
            "GOPS/W": self.gops_per_watt,
            "worst-case util.": self.worst_case_utilization,
            "Gates (k)": self.total_gates / 1e3,
        }


class DesignSpaceExplorer:
    """Evaluates Chain-NN variants over a workload."""

    def __init__(self, network: Optional[Network] = None, batch: int = 128) -> None:
        self.network = network or alexnet()
        self.batch = batch

    def evaluate(self, config: ChainConfig, label: Optional[str] = None) -> SweepPoint:
        """Evaluate one configuration."""
        performance = PerformanceModel(config)
        power = PowerModel(config, performance=performance)
        area = AreaModel(config)
        perf = performance.network_performance(self.network, self.batch)
        report = power.network_power(self.network, self.batch)
        kernel_sizes = [k for k in MAINSTREAM_KERNEL_SIZES if k * k <= config.num_pes]
        worst = minimum_utilization(config.num_pes, kernel_sizes) if kernel_sizes else 0.0
        return SweepPoint(
            label=label or f"{config.num_pes} PEs @ {config.frequency_hz / 1e6:.0f} MHz",
            config=config,
            peak_gops=config.peak_gops,
            fps=perf.frames_per_second,
            power_w=report.total_w,
            gops_per_watt=report.gops_per_watt,
            worst_case_utilization=worst,
            total_gates=area.report().total_gates,
        )

    # ------------------------------------------------------------------ #
    # sweeps
    # ------------------------------------------------------------------ #
    def sweep_chain_length(self, pe_counts: Sequence[int] = (144, 288, 432, 576, 720, 864, 1152),
                           base: Optional[ChainConfig] = None) -> List[SweepPoint]:
        """Vary the number of PEs at fixed frequency."""
        base = base or ChainConfig()
        return [self.evaluate(base.with_pes(count)) for count in pe_counts]

    def sweep_frequency(self, frequencies_mhz: Sequence[float] = (200, 350, 500, 700, 850, 1000),
                        base: Optional[ChainConfig] = None) -> List[SweepPoint]:
        """Vary the clock frequency at fixed chain length."""
        base = base or ChainConfig()
        return [self.evaluate(base.with_frequency(f * 1e6)) for f in frequencies_mhz]

    def sweep_batch_size(self, batches: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128)
                         ) -> Dict[int, float]:
        """Frame rate versus batch size (kernel loading amortisation, Sec. V.B)."""
        performance = PerformanceModel(ChainConfig())
        results = {}
        for batch in batches:
            perf = performance.network_performance(self.network, batch)
            results[batch] = perf.frames_per_second
        return results

    def utilization_by_chain_length(self, low: int = 128, high: int = 1152, step: int = 32
                                    ) -> Dict[int, float]:
        """Worst-case spatial utilization across the mainstream kernel sizes."""
        results = {}
        for num_pes in range(low, high + 1, step):
            sizes = [k for k in MAINSTREAM_KERNEL_SIZES if k * k <= num_pes]
            if not sizes:
                continue
            results[num_pes] = minimum_utilization(num_pes, sizes)
        return results
