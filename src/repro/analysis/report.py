"""Plain-text table and bar-chart rendering.

The benchmarks print the regenerated tables/figures to stdout so that a run
of the harness doubles as a human-readable reproduction report; everything is
ASCII (no plotting dependency) which also keeps the output diff-able.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_cell(value) -> str:
    """Render one table cell."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    row_label: str = "",
    row_names: Optional[Sequence[str]] = None,
) -> str:
    """Render a list of mapping rows as an aligned ASCII table.

    ``columns`` defaults to the keys of the first row (in insertion order);
    ``row_names`` optionally adds a leading label column.
    """
    if not rows:
        return title or ""
    columns = list(columns) if columns is not None else list(rows[0].keys())
    header = ([row_label] if row_names is not None else []) + columns
    body: List[List[str]] = []
    for index, row in enumerate(rows):
        cells = [format_cell(row.get(column)) for column in columns]
        if row_names is not None:
            cells = [str(row_names[index])] + cells
        body.append(cells)

    widths = [len(column) for column in header]
    for cells in body:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(line(header))
    lines.append(separator)
    lines.extend(line(cells) for cells in body)
    return "\n".join(lines)


def render_dict_table(data: Mapping[str, Mapping[str, object]], title: Optional[str] = None,
                      row_label: str = "") -> str:
    """Render a nested dict ``{row_name: {column: value}}`` as a table."""
    row_names = list(data.keys())
    rows = [data[name] for name in row_names]
    return render_table(rows, title=title, row_label=row_label, row_names=row_names)


def render_bar_chart(
    values: Mapping[str, float],
    title: Optional[str] = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (used for the figure benches)."""
    if not values:
        return title or ""
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(str(name)) for name in values)
    lines = []
    if title:
        lines.append(title)
    for name, value in values.items():
        bar = "#" * max(1, int(round(width * abs(value) / peak))) if value else ""
        lines.append(f"{str(name).ljust(label_width)} | {bar} {format_cell(value)}{unit}")
    return "\n".join(lines)


def render_comparison(paper: Mapping[str, float], measured: Mapping[str, float],
                      title: Optional[str] = None, unit: str = "") -> str:
    """Render a paper-vs-measured two-column table with the ratio."""
    rows = []
    names = []
    for key in paper:
        names.append(key)
        published = paper[key]
        ours = measured.get(key)
        ratio = None if (ours is None or published == 0) else ours / published
        rows.append({
            f"paper{unit}": published,
            f"measured{unit}": ours,
            "measured/paper": ratio,
        })
    return render_table(rows, title=title, row_label="item", row_names=names)
