"""Result generation: reports, the Table V comparison, sweeps and rooflines."""

from repro.analysis.comparison import ComparisonResult, StateOfTheArtComparison
from repro.analysis.report import (
    format_cell,
    render_bar_chart,
    render_comparison,
    render_dict_table,
    render_table,
)
from repro.analysis.roofline import RooflineModel, RooflinePoint
from repro.analysis.sweep import DesignSpaceExplorer, SweepPoint

__all__ = [
    "ComparisonResult",
    "StateOfTheArtComparison",
    "DesignSpaceExplorer",
    "SweepPoint",
    "RooflineModel",
    "RooflinePoint",
    "format_cell",
    "render_table",
    "render_dict_table",
    "render_bar_chart",
    "render_comparison",
]
