"""Result generation: reports, the Table V comparison, sweeps and rooflines."""

from repro.analysis.batch import (
    BatchDesignEvaluator,
    BatchSweepResult,
    DesignGrid,
)
from repro.analysis.comparison import ComparisonResult, StateOfTheArtComparison
from repro.analysis.pareto import pareto_indices, pareto_mask, top_k_indices
from repro.analysis.report import (
    format_cell,
    render_bar_chart,
    render_comparison,
    render_dict_table,
    render_table,
)
from repro.analysis.roofline import RooflineModel, RooflinePoint
from repro.analysis.sweep import DesignSpaceExplorer, SweepPoint

__all__ = [
    "BatchDesignEvaluator",
    "BatchSweepResult",
    "ComparisonResult",
    "DesignGrid",
    "StateOfTheArtComparison",
    "DesignSpaceExplorer",
    "SweepPoint",
    "RooflineModel",
    "RooflinePoint",
    "format_cell",
    "pareto_indices",
    "pareto_mask",
    "render_table",
    "render_dict_table",
    "render_bar_chart",
    "render_comparison",
    "top_k_indices",
]
