"""Analytical cost model for the Winograd F(2x2,3x3) execution mode.

Chain-NN executes convolutions as a direct sliding-window dataflow; this
module models the *transform-domain* alternative.  Winograd F(2x2,3x3)
computes each 2x2 output tile from a 4x4 input tile with 16 multiplies
instead of the direct 36 — a 2.25x algebraic MAC reduction — at the cost of
input/output transforms (additions only), 4x4 transformed filter planes in
kernel memory (a 16/9 footprint expansion), and wider accumulators in the
transform domain.

The closed forms here mirror the direct model in
:mod:`repro.kernels.numpy_backend` term by term so the two algorithms
produce the *same metric vector* (``MAPPING_RESULT_COLUMNS``) and are
directly comparable per layer:

* A K^2 = 9-PE chain primitive is repurposed as a bank of transform-domain
  multipliers: the 16 Hadamard multiplies of one tile take
  ``ceil(16/9) = 2`` cycles, plus one overlapped transform slot per tile
  (the 32-add input transform and 24-add output transform run on the dual
  adder chain), so a tile of four outputs costs 3 cycles where the direct
  dataflow spends 4 — ``WINOGRAD_CYCLES_PER_TILE``.
* One Winograd *stripe* is one tile row: 4 input rows stream in, 2 output
  rows emerge, so ``stripes = ceil(out_height / 2)`` regardless of the
  direct stripe-height axis (Winograd candidates pin ``stripe_height`` to
  the kernel size; the tile grid fixes the stripe plan).
* Kernel memory holds 4x4 transformed planes: 16 words per channel pair
  instead of 9, shrinking the streaming-chunk capacity by the same ratio
  (:func:`winograd_kmemory_capacity`) and growing load/DRAM traffic.
* Transform-domain partial sums carry ``log2(16/9)`` extra bits of growth
  on top of the direct accumulator; the PE energy term is scaled by
  ``WINOGRAD_PE_ENERGY_FACTOR`` to account for the wider datapath.
"""

from __future__ import annotations

from repro.cnn.layer import ConvLayer

#: input/output tile edge of F(2x2,3x3)
WINOGRAD_TILE = 4
#: output tile edge — each tile yields a 2x2 block of ofmap pixels
WINOGRAD_TILE_OUT = 2
#: the only kernel size F(2x2,3x3) applies to
WINOGRAD_KERNEL = 3

#: element-wise multiplies per tile in the transform domain
WINOGRAD_MULTIPLIES_PER_TILE = WINOGRAD_TILE * WINOGRAD_TILE  # 16
#: direct MACs replaced by one tile (4 outputs x 9 MACs each)
DIRECT_MACS_PER_TILE = WINOGRAD_TILE_OUT * WINOGRAD_TILE_OUT * WINOGRAD_KERNEL**2  # 36
#: the algebraic multiply reduction of F(2x2,3x3)
WINOGRAD_MAC_REDUCTION = DIRECT_MACS_PER_TILE / WINOGRAD_MULTIPLIES_PER_TILE  # 2.25

#: additions in one B^T d B input transform (standard F(2,3) count)
WINOGRAD_INPUT_TRANSFORM_ADDS = 32
#: additions in one A^T m A output transform
WINOGRAD_OUTPUT_TRANSFORM_ADDS = 24

#: multiply slots per tile on a 9-PE primitive: ceil(16 / 9)
WINOGRAD_MULTIPLY_CYCLES_PER_TILE = 2
#: overlapped transform slot per tile (input + output transforms on the
#: adder chain) — the modeled transform overhead, broken out per tile
WINOGRAD_TRANSFORM_CYCLES_PER_TILE = 1
#: total modeled cycles per 2x2 output tile
WINOGRAD_CYCLES_PER_TILE = (
    WINOGRAD_MULTIPLY_CYCLES_PER_TILE + WINOGRAD_TRANSFORM_CYCLES_PER_TILE
)

#: kernel-memory footprint ratio of a 4x4 transformed plane vs a 3x3 plane
WINOGRAD_FILTER_EXPANSION = WINOGRAD_MULTIPLIES_PER_TILE / WINOGRAD_KERNEL**2  # 16/9

#: PE-energy multiplier for the wider transform-domain accumulators
WINOGRAD_PE_ENERGY_FACTOR = 1.25

#: relative float tolerance of the Winograd functional path vs the im2col
#: golden — the transforms reassociate the 3x3 reduction, so results agree
#: to round-off of the accumulator scale rather than bit-exactly
WINOGRAD_RELATIVE_TOLERANCE = 1e-6


def winograd_eligible(layer) -> bool:
    """True when ``layer`` can run as Winograd F(2x2,3x3).

    Requires a conv layer with a 3x3 kernel and unit stride (unit dilation
    is implicit — :class:`~repro.cnn.layer.ConvLayer` models no dilation).
    Grouped convolutions are fine: the transform is applied per group.
    """
    return (
        isinstance(layer, ConvLayer)
        and layer.kernel_size == WINOGRAD_KERNEL
        and layer.stride == 1
    )


def winograd_tile_grid(layer: ConvLayer) -> tuple:
    """``(tiles_h, tiles_w)`` — the 2x2-output tile grid covering the ofmap."""
    tiles_h = -(-layer.out_height // WINOGRAD_TILE_OUT)
    tiles_w = -(-layer.out_width // WINOGRAD_TILE_OUT)
    return tiles_h, tiles_w


def winograd_tiles(layer: ConvLayer) -> int:
    """Total 4x4 input tiles per (ofmap channel, ifmap channel) pair."""
    tiles_h, tiles_w = winograd_tile_grid(layer)
    return tiles_h * tiles_w


def winograd_weight_count(layer: ConvLayer) -> int:
    """Words of transformed 4x4 filter planes (vs ``layer.weight_count``)."""
    return WINOGRAD_MULTIPLIES_PER_TILE * layer.channel_pairs()


def winograd_ext_width(layer: ConvLayer) -> int:
    """Width of the tile-aligned extended input plane streamed per stripe."""
    _, tiles_w = winograd_tile_grid(layer)
    return WINOGRAD_TILE_OUT * tiles_w + 2


def winograd_kmemory_capacity(capacity: int) -> int:
    """Streaming-chunk capacity (in passes) once planes are 16/9 wider."""
    return max(1, (capacity * WINOGRAD_KERNEL**2) // WINOGRAD_MULTIPLIES_PER_TILE)


def winograd_cost_fields(layer: ConvLayer) -> dict:
    """The extra :class:`~repro.kernels.MappingCostParams` fields.

    Returns the Winograd-specific closed-form inputs consumed by
    ``score_mappings_winograd``; raises nothing — callers gate on
    :func:`winograd_eligible` first.
    """
    tiles_h, tiles_w = winograd_tile_grid(layer)
    return {
        "wino_tiles_h": tiles_h,
        "wino_tiles_w": tiles_w,
        "wino_weight_count": winograd_weight_count(layer),
        "wino_ext_width": winograd_ext_width(layer),
        "wino_pe_energy_factor": WINOGRAD_PE_ENERGY_FACTOR,
    }


def winograd_layer_summary(layer: ConvLayer) -> dict:
    """Per-layer transform-domain accounting for benchmarks and reports.

    ``mac_reduction`` is the modeled multiply reduction (direct MACs over
    transform-domain multiplies, including ragged edge tiles); the cycle
    numbers break the modeled tile cost into multiply slots and transform
    overhead so BENCH_winograd.json can report both.
    """
    tiles_h, tiles_w = winograd_tile_grid(layer)
    tiles = tiles_h * tiles_w
    pairs = layer.channel_pairs()
    direct_macs = layer.out_height * layer.out_width * WINOGRAD_KERNEL**2 * pairs
    multiplies = tiles * WINOGRAD_MULTIPLIES_PER_TILE * pairs
    multiply_cycles = tiles * WINOGRAD_MULTIPLY_CYCLES_PER_TILE * pairs
    transform_cycles = tiles * WINOGRAD_TRANSFORM_CYCLES_PER_TILE * pairs
    return {
        "layer": layer.name,
        "eligible": winograd_eligible(layer),
        "tiles_per_pair": tiles,
        "direct_macs": direct_macs,
        "winograd_multiplies": multiplies,
        "mac_reduction": direct_macs / multiplies if multiplies else 0.0,
        "multiply_cycles": multiply_cycles,
        "transform_overhead_cycles": transform_cycles,
        "transform_overhead_fraction": (
            transform_cycles / (multiply_cycles + transform_cycles)
            if multiply_cycles else 0.0
        ),
        "weight_words_direct": layer.weight_count,
        "weight_words_winograd": winograd_weight_count(layer),
    }


def network_winograd_coverage(network) -> dict:
    """Fraction of a network's conv MACs that Winograd-eligible layers hold."""
    eligible_macs = 0
    total_macs = 0
    eligible_layers = []
    for layer in network.conv_layers:
        total_macs += layer.macs
        if winograd_eligible(layer):
            eligible_macs += layer.macs
            eligible_layers.append(layer.name)
    return {
        "eligible_layers": eligible_layers,
        "eligible_macs": eligible_macs,
        "total_conv_macs": total_macs,
        "mac_coverage": eligible_macs / total_macs if total_macs else 0.0,
    }
