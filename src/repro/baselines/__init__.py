"""Baseline architectures and published specs for the Table V comparison."""

from repro.baselines.base import AcceleratorModel, AcceleratorSummary
from repro.baselines.chain_nn_model import ChainNNModel
from repro.baselines.memory_centric import MemoryCentricAccelerator, MemoryCentricParams
from repro.baselines.single_channel import SingleChannelChain
from repro.baselines.spatial_2d import Spatial2DAccelerator, Spatial2DParams
from repro.baselines.specs import (
    ALL_PUBLISHED_SPECS,
    CHAIN_NN_SPEC,
    DADIANNAO_SPEC,
    EYERISS_SPEC,
    PAPER_EFFICIENCY_RATIOS,
    PublishedSpec,
)

__all__ = [
    "AcceleratorModel",
    "AcceleratorSummary",
    "ChainNNModel",
    "MemoryCentricAccelerator",
    "MemoryCentricParams",
    "Spatial2DAccelerator",
    "Spatial2DParams",
    "SingleChannelChain",
    "PublishedSpec",
    "ALL_PUBLISHED_SPECS",
    "DADIANNAO_SPEC",
    "EYERISS_SPEC",
    "CHAIN_NN_SPEC",
    "PAPER_EFFICIENCY_RATIOS",
]
