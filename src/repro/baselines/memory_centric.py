"""Memory-centric baseline (Fig. 2(a) of the taxonomy; DaDianNao-like).

In a memory-centric architecture the processor core is a flat stack of MAC
units with no inter-PE reuse paths: every operand travels between the memory
hierarchy and the datapath.  Reconfiguration comes from memory addressing, so
utilization is high, but each MAC pays for operand movement:

* the synaptic weight is read from the (large, banked) on-chip eDRAM/SRAM;
* ifmap values are read from a central buffer, amortised over the output
  neurons that share them in the adder tree (``ifmap_sharing`` outputs);
* partial sums are kept inside the NFU pipeline (no extra traffic).

The model multiplies those per-MAC access counts by per-access energies
representative of the structure (multi-megabyte eDRAM is an order of
magnitude costlier per access than Chain-NN's 512-byte kMemories), which is
exactly the effect the taxonomy section argues makes this class less energy
efficient despite its very high peak throughput.  With the default
parameters the model lands within a few percent of DaDianNao's published
349.7 GOPS/W while using the published parallelism and clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import AcceleratorModel
from repro.cnn.network import Network
from repro.energy.technology import ST_28NM, TechNode
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MemoryCentricParams:
    """Structural and energy parameters of the memory-centric model."""

    parallelism: int = 288 * 16
    frequency_hz: float = 606e6
    onchip_memory_bytes: int = 36 * 1024 * 1024
    #: 16-bit MAC energy (28 nm)
    mac_op_j: float = 0.60e-12
    #: weight read from the multi-megabyte eDRAM banks
    weight_access_j: float = 4.50e-12
    #: ifmap read from the central input buffer
    ifmap_access_j: float = 2.60e-12
    #: ofmap/psum write-back to the output eDRAM
    ofmap_access_j: float = 3.10e-12
    #: outputs sharing one ifmap fetch through the adder tree
    ifmap_sharing: int = 16
    #: MACs accumulated inside the NFU before a psum write-back
    psum_chain_length: int = 16
    #: pipeline registers, control and interconnect per MAC
    overhead_j: float = 0.55e-12
    #: average fraction of MAC units that are busy (memory-centric designs
    #: keep utilization high because any layer shape can be packed)
    utilization: float = 0.95

    def __post_init__(self) -> None:
        check_positive("parallelism", self.parallelism)
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("utilization", self.utilization)

    @property
    def energy_per_mac_j(self) -> float:
        """Average energy of one MAC including its share of data movement."""
        weight = self.weight_access_j
        ifmap = self.ifmap_access_j / self.ifmap_sharing
        ofmap = self.ofmap_access_j / self.psum_chain_length
        return self.mac_op_j + self.overhead_j + weight + ifmap + ofmap


class MemoryCentricAccelerator(AcceleratorModel):
    """DaDianNao-style memory-centric accelerator model."""

    name = "Memory-centric (DaDianNao-like)"

    def __init__(self, params: MemoryCentricParams | None = None,
                 technology: TechNode = ST_28NM) -> None:
        self.params = params or MemoryCentricParams()
        self._technology = technology

    # ------------------------------------------------------------------ #
    # interface
    # ------------------------------------------------------------------ #
    @property
    def technology(self) -> TechNode:
        return self._technology

    @property
    def parallelism(self) -> int:
        return self.params.parallelism

    @property
    def frequency_hz(self) -> float:
        return self.params.frequency_hz

    def onchip_memory_bytes(self) -> int:
        return self.params.onchip_memory_bytes

    def workload_time_s(self, network: Network, batch: int) -> float:
        macs = network.total_conv_macs * batch
        effective_rate = self.parallelism * self.params.utilization * self.frequency_hz
        return macs / effective_rate

    def workload_power_w(self, network: Network, batch: int) -> float:
        # power is throughput-proportional: busy MACs x energy per MAC
        busy_macs_per_s = self.parallelism * self.params.utilization * self.frequency_hz
        return busy_macs_per_s * self.params.energy_per_mac_j

    # ------------------------------------------------------------------ #
    # peak-operating-point helpers (used by the Table V bench)
    # ------------------------------------------------------------------ #
    def peak_power_w(self) -> float:
        """Power with every MAC unit busy."""
        return self.parallelism * self.frequency_hz * self.params.energy_per_mac_j

    @property
    def peak_efficiency_gops_w(self) -> float:
        """Peak GOPS per watt (the Table V metric)."""
        return self.peak_gops / self.peak_power_w()
