"""Published specifications of the designs compared in Table V.

These are the numbers the paper itself tabulates for DaDianNao (MICRO'14) and
Eyeriss (ISSCC/ISCA'16) next to Chain-NN; the comparison bench reports them
side by side with the figures our models regenerate so that both the
published-vs-published and modelled-vs-published comparisons are visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.energy.technology import ST_28NM, TSMC_28NM, TSMC_65NM, TechNode, scale_efficiency


@dataclass(frozen=True)
class PublishedSpec:
    """One column of Table V as printed in the paper."""

    name: str
    venue: str
    technology: TechNode
    gate_count: Optional[float]          # NAND2-equivalent gates
    onchip_memory_bytes: int
    parallelism: int
    frequency_hz: float
    power_w: float
    peak_gops: float
    #: the efficiency figure printed in the paper's table, when it differs
    #: from peak/power (the Eyeriss row does: 245.6 GOPS/W is quoted although
    #: 84.0 GOPS / 0.45 W = 186.7 — the paper uses Eyeriss's AlexNet operating
    #: point for the efficiency figure)
    published_efficiency_gops_w: Optional[float] = None

    @property
    def energy_efficiency_gops_w(self) -> float:
        """The Table V efficiency figure (published value if quoted, else peak/power)."""
        if self.published_efficiency_gops_w is not None:
            return self.published_efficiency_gops_w
        return self.peak_gops / self.power_w

    @property
    def gates_per_pe(self) -> Optional[float]:
        """Logic gates per PE where the gate count is published."""
        if self.gate_count is None:
            return None
        return self.gate_count / self.parallelism

    def efficiency_scaled_to(self, node: TechNode) -> float:
        """Energy efficiency scaled to another node using C*V^2 scaling."""
        return scale_efficiency(self.energy_efficiency_gops_w, self.technology, node)

    def efficiency_scaled_paper_style(self, node: TechNode) -> float:
        """Energy efficiency scaled the way the paper's footnote does.

        The footnote turns Eyeriss's 245.6 GOPS/W into 570.1 GOPS/W, i.e. it
        multiplies by the feature-size ratio only (65/28), attributing the
        gain to the higher clock reachable at the smaller node and leaving
        voltage untouched.
        """
        return self.energy_efficiency_gops_w * (self.technology.feature_nm / node.feature_nm)

    def as_row(self) -> Dict[str, float | str | None]:
        """Row for the Table V report."""
        return {
            "Technology": self.technology.name,
            "Gate Count (k)": None if self.gate_count is None else self.gate_count / 1e3,
            "On-chip Memory (KB)": self.onchip_memory_bytes / 1024,
            "Parallelism": self.parallelism,
            "Core Freq. (MHz)": self.frequency_hz / 1e6,
            "Power (W)": self.power_w,
            "Peak Throughput (GOPS)": self.peak_gops,
            "Energy Eff. (GOPS/W)": self.energy_efficiency_gops_w,
        }


#: DaDianNao, MICRO 2014 — the memory-centric representative.
DADIANNAO_SPEC = PublishedSpec(
    name="DaDianNao [10]",
    venue="MICRO'14",
    technology=ST_28NM,
    gate_count=None,
    onchip_memory_bytes=36 * 1024 * 1024,     # 36 MB eDRAM
    parallelism=288 * 16,
    frequency_hz=606e6,
    power_w=15.97,
    peak_gops=5584.9,
)

#: Eyeriss, ISSCC/ISCA 2016 — the 2D spatial representative.
EYERISS_SPEC = PublishedSpec(
    name="Eyeriss [12]",
    venue="ISCA'16",
    technology=TSMC_65NM,
    gate_count=1852e3,
    onchip_memory_bytes=int(181.5 * 1024),
    parallelism=168,
    frequency_hz=250e6,
    power_w=0.450,
    peak_gops=84.0,
    published_efficiency_gops_w=245.6,
)

#: Chain-NN as reported by the paper (the column our models should reproduce).
CHAIN_NN_SPEC = PublishedSpec(
    name="Chain-NN (paper)",
    venue="DATE'17",
    technology=TSMC_28NM,
    gate_count=3751e3,
    onchip_memory_bytes=352 * 1024,
    parallelism=576,
    frequency_hz=700e6,
    power_w=0.5675,
    peak_gops=806.4,
)

#: the efficiency ratios behind the paper's "2.5x to 4.1x" headline claim
PAPER_EFFICIENCY_RATIOS = {
    "vs DaDianNao": CHAIN_NN_SPEC.energy_efficiency_gops_w / DADIANNAO_SPEC.energy_efficiency_gops_w,
    "vs Eyeriss (65nm)": CHAIN_NN_SPEC.energy_efficiency_gops_w / EYERISS_SPEC.energy_efficiency_gops_w,
    "vs Eyeriss (scaled to 28nm)": CHAIN_NN_SPEC.energy_efficiency_gops_w
    / EYERISS_SPEC.efficiency_scaled_paper_style(TSMC_28NM),
}

ALL_PUBLISHED_SPECS = (DADIANNAO_SPEC, EYERISS_SPEC, CHAIN_NN_SPEC)
