"""Single-channel chain ablation (the strawman of Fig. 5(a)).

A chain whose PEs have only one ifmap channel cannot keep the systolic
primitive fed: after every completed window the primitive must wait for the
``K`` non-overlapping pixels of the next window to trickle in one per cycle,
so at best ``1/K`` of the peak throughput is reached (33 % for K = 3).  This
module models that architecture with the same machinery as the real Chain-NN
— only the throughput differs — so the Fig. 5 ablation bench can put the two
side by side, per kernel size and per AlexNet layer.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import AcceleratorModel
from repro.cnn.layer import ConvLayer
from repro.cnn.network import Network
from repro.core.config import ChainConfig
from repro.core.performance import PerformanceModel
from repro.energy.power import PowerModel
from repro.energy.technology import TSMC_28NM, TechNode


class SingleChannelChain(AcceleratorModel):
    """Chain-NN with single-channel PEs (Fig. 5(a) behaviour)."""

    name = "1D chain, single channel"

    def __init__(self, config: ChainConfig | None = None) -> None:
        base = config or ChainConfig()
        self.config = base.single_channel()
        self.performance = PerformanceModel(self.config)
        self.power_model = PowerModel(self.config, performance=self.performance)

    @property
    def technology(self) -> TechNode:
        return TSMC_28NM

    @property
    def parallelism(self) -> int:
        return self.config.num_pes

    @property
    def frequency_hz(self) -> float:
        return self.config.frequency_hz

    def onchip_memory_bytes(self) -> int:
        return self.config.onchip_memory_bytes

    def workload_time_s(self, network: Network, batch: int) -> float:
        perf = self.performance.network_performance(network, batch)
        return perf.total_time_per_batch_s

    def workload_power_w(self, network: Network, batch: int) -> float:
        return self.power_model.network_power(network, batch).total_w

    # ------------------------------------------------------------------ #
    # per-kernel-size throughput comparison (the Fig. 5 ablation)
    # ------------------------------------------------------------------ #
    def throughput_fraction(self, kernel_size: int) -> float:
        """Fraction of the dual-channel throughput reached (``1/K``)."""
        return 1.0 / kernel_size

    def layer_utilization(self, layer: ConvLayer) -> float:
        """Temporal utilization of the active PEs for one layer."""
        perf = self.performance.layer_performance(layer)
        return perf.temporal_utilization

    def utilization_by_kernel(self, kernel_sizes=(3, 5, 7, 9, 11)) -> Dict[int, float]:
        """Peak-throughput fraction per kernel size, for the Fig. 5 bench."""
        return {k: self.throughput_fraction(k) for k in kernel_sizes}
