"""Chain-NN wrapped in the common baseline interface.

The :class:`~repro.core.accelerator.ChainNN` facade is the library's main
entry point; this adapter exposes it through
:class:`~repro.baselines.base.AcceleratorModel` so that the Table V
comparison can iterate over all architectures uniformly.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import AcceleratorModel
from repro.cnn.network import Network
from repro.core.accelerator import ChainNN
from repro.core.config import ChainConfig
from repro.energy.area import AreaModel
from repro.energy.technology import TSMC_28NM, TechNode


class ChainNNModel(AcceleratorModel):
    """Chain-NN (this paper) as an :class:`AcceleratorModel`."""

    name = "Chain-NN (this model)"

    def __init__(self, chip: Optional[ChainNN] = None,
                 calibrate_power_to: Optional[Network] = None) -> None:
        if chip is not None:
            self.chip = chip
        elif calibrate_power_to is not None:
            self.chip = ChainNN.paper_configuration(calibrate_power_to=calibrate_power_to)
        else:
            self.chip = ChainNN.paper_configuration()
        self.area_model = AreaModel(self.chip.config)

    @property
    def config(self) -> ChainConfig:
        """The underlying chain configuration."""
        return self.chip.config

    @property
    def technology(self) -> TechNode:
        return TSMC_28NM

    @property
    def parallelism(self) -> int:
        return self.config.num_pes

    @property
    def frequency_hz(self) -> float:
        return self.config.frequency_hz

    def gate_count(self) -> float:
        return self.area_model.report().total_gates

    def onchip_memory_bytes(self) -> int:
        return self.config.onchip_memory_bytes

    def workload_time_s(self, network: Network, batch: int) -> float:
        return self.chip.performance_model.network_performance(network, batch).total_time_per_batch_s

    def workload_power_w(self, network: Network, batch: int) -> float:
        return self.chip.power_model.network_power(network, batch).total_w
