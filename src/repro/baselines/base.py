"""Common interface of the accelerator models used in the Table V comparison.

Every architecture — Chain-NN itself, the memory-centric baseline and the 2D
spatial baseline — answers the same questions: what is your peak throughput,
how fast do you run a CNN's convolutional layers, and how much power do you
draw while doing it.  The comparison and sweep tooling only talks to this
interface, so adding another baseline is a single subclass.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cnn.network import Network
from repro.energy.technology import TechNode


@dataclass(frozen=True)
class AcceleratorSummary:
    """Headline numbers of one accelerator on one workload."""

    name: str
    technology: str
    parallelism: int
    frequency_hz: float
    gate_count: Optional[float]
    onchip_memory_bytes: Optional[int]
    peak_gops: float
    achieved_gops: float
    power_w: float
    batch: int

    @property
    def energy_efficiency_gops_w(self) -> float:
        """Peak-throughput energy efficiency (the Table V metric)."""
        return self.peak_gops / self.power_w if self.power_w else 0.0

    @property
    def achieved_efficiency_gops_w(self) -> float:
        """Sustained-throughput energy efficiency on the workload."""
        return self.achieved_gops / self.power_w if self.power_w else 0.0

    @property
    def gates_per_pe(self) -> Optional[float]:
        """Logic gates per PE (the Sec. V.D area-efficiency metric)."""
        if self.gate_count is None or self.parallelism == 0:
            return None
        return self.gate_count / self.parallelism

    def as_row(self) -> Dict[str, float | str | None]:
        """Row for the Table V report."""
        return {
            "Technology": self.technology,
            "Gate Count (k)": None if self.gate_count is None else self.gate_count / 1e3,
            "On-chip Memory (KB)": None if self.onchip_memory_bytes is None
            else self.onchip_memory_bytes / 1024,
            "Parallelism": self.parallelism,
            "Core Freq. (MHz)": self.frequency_hz / 1e6,
            "Power (W)": self.power_w,
            "Peak Throughput (GOPS)": self.peak_gops,
            "Energy Eff. (GOPS/W)": self.energy_efficiency_gops_w,
        }


class AcceleratorModel(abc.ABC):
    """Interface shared by every modelled architecture."""

    #: human-readable architecture name
    name: str = "accelerator"

    @property
    @abc.abstractmethod
    def technology(self) -> TechNode:
        """Process node the model's energies are expressed in."""

    @property
    @abc.abstractmethod
    def parallelism(self) -> int:
        """Number of MAC units / PEs."""

    @property
    @abc.abstractmethod
    def frequency_hz(self) -> float:
        """Core clock frequency."""

    @property
    def peak_gops(self) -> float:
        """Peak throughput with every MAC unit busy (2 ops per MAC)."""
        return self.parallelism * 2 * self.frequency_hz / 1e9

    @abc.abstractmethod
    def workload_time_s(self, network: Network, batch: int) -> float:
        """Time to run the network's convolutional layers for a batch."""

    @abc.abstractmethod
    def workload_power_w(self, network: Network, batch: int) -> float:
        """Average power while running the workload."""

    def achieved_gops(self, network: Network, batch: int) -> float:
        """Sustained throughput on the workload."""
        time_s = self.workload_time_s(network, batch)
        operations = 2 * network.total_conv_macs * batch
        return operations / time_s / 1e9 if time_s > 0 else 0.0

    def gate_count(self) -> Optional[float]:
        """Total logic gates (``None`` when the model does not estimate area)."""
        return None

    def onchip_memory_bytes(self) -> Optional[int]:
        """On-chip storage (``None`` when not modelled)."""
        return None

    def summarise(self, network: Network, batch: int = 4) -> AcceleratorSummary:
        """Evaluate the workload and produce the Table V row."""
        return AcceleratorSummary(
            name=self.name,
            technology=self.technology.name,
            parallelism=self.parallelism,
            frequency_hz=self.frequency_hz,
            gate_count=self.gate_count(),
            onchip_memory_bytes=self.onchip_memory_bytes(),
            peak_gops=self.peak_gops,
            achieved_gops=self.achieved_gops(network, batch),
            power_w=self.workload_power_w(network, batch),
            batch=batch,
        )
