"""2D spatial-array baseline (Fig. 2(b) of the taxonomy; Eyeriss-like).

2D spatial architectures reduce memory traffic by passing operands between
neighbouring PEs over an on-chip network and by keeping frequently-reused
data in per-PE scratch pads.  The price is the peripheral circuitry: every PE
carries a local controller, NoC routers/links surround the array, and the
two-dimensional shape constrains how well a layer can be packed (the paper's
argument for going 1D).

The per-MAC energy therefore contains scratch-pad accesses, a NoC share and a
global-buffer share; the mapping efficiency term models the 2D packing loss
(Eyeriss reports 80-93 % for AlexNet's layers).  With the default parameters
the model reproduces Eyeriss's published ~245 GOPS/W at 65 nm; scaled to
28 nm it lands near the ~570 GOPS/W the paper's footnote quotes, preserving
the 2.5x gap to Chain-NN.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import AcceleratorModel
from repro.cnn.network import Network
from repro.energy.technology import TSMC_28NM, TSMC_65NM, TechNode
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Spatial2DParams:
    """Structural and energy parameters of the 2D spatial model (65 nm defaults)."""

    rows: int = 12
    cols: int = 14
    frequency_hz: float = 250e6
    onchip_memory_bytes: int = int(181.5 * 1024)
    gate_count: float = 1852e3
    #: 16-bit MAC energy at 65 nm
    mac_op_j: float = 2.00e-12
    #: per-MAC scratch-pad (register file) accesses x energy
    spad_accesses_per_mac: float = 2.0
    spad_access_j: float = 1.35e-12
    #: inter-PE NoC transfers per MAC x energy per hop
    noc_transfers_per_mac: float = 0.60
    noc_hop_j: float = 2.40e-12
    #: global-buffer accesses per MAC x energy
    buffer_accesses_per_mac: float = 0.15
    buffer_access_j: float = 14.0e-12
    #: local control + clocking per MAC
    overhead_j: float = 0.90e-12
    #: array packing efficiency for convolutional layers (row-stationary mapping)
    mapping_efficiency: float = 0.88

    def __post_init__(self) -> None:
        check_positive("rows", self.rows)
        check_positive("cols", self.cols)
        check_positive("frequency_hz", self.frequency_hz)
        check_positive("mapping_efficiency", self.mapping_efficiency)

    @property
    def parallelism(self) -> int:
        """Number of PEs in the array."""
        return self.rows * self.cols

    @property
    def energy_per_mac_j(self) -> float:
        """Average energy of one MAC including scratch pads, NoC and buffer shares."""
        return (
            self.mac_op_j
            + self.overhead_j
            + self.spad_accesses_per_mac * self.spad_access_j
            + self.noc_transfers_per_mac * self.noc_hop_j
            + self.buffer_accesses_per_mac * self.buffer_access_j
        )


class Spatial2DAccelerator(AcceleratorModel):
    """Eyeriss-style 2D row-stationary accelerator model."""

    name = "2D spatial (Eyeriss-like)"

    def __init__(self, params: Spatial2DParams | None = None,
                 technology: TechNode = TSMC_65NM) -> None:
        self.params = params or Spatial2DParams()
        self._technology = technology

    @classmethod
    def scaled_to_28nm(cls) -> "Spatial2DAccelerator":
        """The same architecture with energies/frequency ported to 28 nm.

        This is the normalisation the paper's Table V footnote applies before
        claiming the 2.5x advantage.  Like the footnote, the scaling is
        feature-size-only (28/65 on energy, 65/28 on frequency) — the supply
        voltage is assumed unchanged, which is the conservative choice for
        the baseline.
        """
        base = Spatial2DParams()
        energy_scale = TSMC_28NM.feature_nm / TSMC_65NM.feature_nm
        freq_scale = TSMC_65NM.frequency_scale_to(TSMC_28NM)
        scaled = Spatial2DParams(
            rows=base.rows,
            cols=base.cols,
            frequency_hz=base.frequency_hz * freq_scale,
            onchip_memory_bytes=base.onchip_memory_bytes,
            gate_count=base.gate_count,
            mac_op_j=base.mac_op_j * energy_scale,
            spad_accesses_per_mac=base.spad_accesses_per_mac,
            spad_access_j=base.spad_access_j * energy_scale,
            noc_transfers_per_mac=base.noc_transfers_per_mac,
            noc_hop_j=base.noc_hop_j * energy_scale,
            buffer_accesses_per_mac=base.buffer_accesses_per_mac,
            buffer_access_j=base.buffer_access_j * energy_scale,
            overhead_j=base.overhead_j * energy_scale,
            mapping_efficiency=base.mapping_efficiency,
        )
        return cls(scaled, technology=TSMC_28NM)

    # ------------------------------------------------------------------ #
    # interface
    # ------------------------------------------------------------------ #
    @property
    def technology(self) -> TechNode:
        return self._technology

    @property
    def parallelism(self) -> int:
        return self.params.parallelism

    @property
    def frequency_hz(self) -> float:
        return self.params.frequency_hz

    def gate_count(self) -> float:
        return self.params.gate_count

    def onchip_memory_bytes(self) -> int:
        return self.params.onchip_memory_bytes

    def workload_time_s(self, network: Network, batch: int) -> float:
        macs = network.total_conv_macs * batch
        rate = self.parallelism * self.params.mapping_efficiency * self.frequency_hz
        return macs / rate

    def workload_power_w(self, network: Network, batch: int) -> float:
        busy_macs_per_s = self.parallelism * self.params.mapping_efficiency * self.frequency_hz
        return busy_macs_per_s * self.params.energy_per_mac_j

    def peak_power_w(self) -> float:
        """Power with the whole array busy."""
        return self.parallelism * self.frequency_hz * self.params.energy_per_mac_j

    @property
    def peak_efficiency_gops_w(self) -> float:
        """Peak GOPS per watt (the Table V metric)."""
        return self.peak_gops / self.peak_power_w()

    @property
    def gates_per_pe(self) -> float:
        """Logic gates per PE (11.02k for the published Eyeriss numbers)."""
        return self.params.gate_count / self.parallelism
