"""Memory-hierarchy substrate: DRAM, on-chip SRAMs, traffic and bandwidth models."""

from repro.memory.bandwidth import BandwidthAnalyzer, LayerBandwidth
from repro.memory.dram import Dram, DramSpec
from repro.memory.hierarchy import HierarchySizes, MemoryHierarchy
from repro.memory.traffic import LayerTraffic, NetworkTraffic, TrafficModel

__all__ = [
    "BandwidthAnalyzer",
    "LayerBandwidth",
    "Dram",
    "DramSpec",
    "HierarchySizes",
    "MemoryHierarchy",
    "LayerTraffic",
    "NetworkTraffic",
    "TrafficModel",
]
