"""The Chain-NN on-chip memory hierarchy (Fig. 7, right half).

Three on-chip stores surround the chain:

* ``iMemory`` (32 KB SRAM) buffers the ifmap stripe currently streaming in;
* ``oMemory`` (25 KB SRAM) holds the partial ofmap tile being accumulated
  across ifmap channels;
* ``kMemory`` (295 KB total, distributed as 256-word register files inside
  the PEs) holds the stationary kernels.

The hierarchy object wires the three stores plus a DRAM channel together and
gives the traffic and power models one place to read the counters from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.config import ChainConfig
from repro.hwmodel.memory import Sram
from repro.memory.dram import Dram, DramSpec


@dataclass(frozen=True)
class HierarchySizes:
    """Capacities of the three on-chip stores in bytes."""

    imemory_bytes: int
    omemory_bytes: int
    kmemory_bytes: int

    @property
    def total_bytes(self) -> int:
        """Aggregate on-chip storage (the paper's 352 KB)."""
        return self.imemory_bytes + self.omemory_bytes + self.kmemory_bytes


class MemoryHierarchy:
    """iMemory + oMemory + (aggregate) kMemory + DRAM."""

    def __init__(self, config: ChainConfig | None = None,
                 dram_spec: DramSpec | None = None) -> None:
        self.config = config or ChainConfig()
        self.imemory = Sram(self.config.imemory_bytes, word_bytes=self.config.word_bytes,
                            name="iMemory")
        self.omemory = Sram(self.config.omemory_bytes, word_bytes=self.config.word_bytes,
                            name="oMemory")
        # kMemory is physically distributed over the PEs; for traffic/power
        # accounting the aggregate view is sufficient.
        self.kmemory = Sram(self.config.kmemory_total_bytes, word_bytes=self.config.word_bytes,
                            name="kMemory")
        self.dram = Dram(dram_spec)

    @property
    def sizes(self) -> HierarchySizes:
        """Capacities of the on-chip stores."""
        return HierarchySizes(
            imemory_bytes=self.imemory.capacity_bytes,
            omemory_bytes=self.omemory.capacity_bytes,
            kmemory_bytes=self.kmemory.capacity_bytes,
        )

    def onchip_traffic_bytes(self) -> Dict[str, int]:
        """Bytes moved per on-chip store since the last reset."""
        return {
            "iMemory": self.imemory.counters.total_bytes,
            "oMemory": self.omemory.counters.total_bytes,
            "kMemory": self.kmemory.counters.total_bytes,
        }

    def traffic_bytes(self) -> Dict[str, int]:
        """Bytes moved per store including DRAM."""
        traffic = self.onchip_traffic_bytes()
        traffic["DRAM"] = self.dram.total_bytes
        return traffic

    def reset(self) -> None:
        """Clear every counter in the hierarchy."""
        self.imemory.reset()
        self.omemory.reset()
        self.kmemory.reset()
        self.dram.reset()
